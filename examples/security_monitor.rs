//! Schneider security automata from safety closures.
//!
//! ```text
//! cargo run --example security_monitor
//! ```
//!
//! The paper (Section 1) recalls Schneider's result: *enforceable*
//! security policies are exactly the safety properties, and the
//! enforcement mechanisms — security automata — are Büchi automata
//! recognizing safe languages. This example specifies a resource-usage
//! policy in LTL over the event alphabet `{open, use, close}`:
//!
//! * no `use` before the first `open`, and
//! * after a `close`, no `use` until the resource is re-`open`ed,
//!
//! derives the deterministic monitor from the property's safety
//! closure (the *strongest* enforceable approximation, by the machine
//! closure of Theorem 6), and runs it over a batch of traces, showing
//! exactly where offending traces are truncated.

use safety_liveness::buchi::{Monitor, SecurityAutomaton, Verdict};
use safety_liveness::ltl::{parse, translate};
use safety_liveness::omega::{Alphabet, Word};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = Alphabet::new(&["open", "use", "close"]);
    // (!use W open) & G (close -> X (!use W open))
    let policy_text = "(!use W open) & G (close -> X (!use W open))";
    let policy = parse(&sigma, policy_text)?;
    println!("policy   : {}", policy.display(&sigma));

    let automaton = translate(&sigma, &policy);
    let monitor = Monitor::new(&automaton);
    println!(
        "monitor  : {} deterministic states (from a {}-state property automaton)",
        monitor.num_states(),
        automaton.num_states()
    );

    let traces = [
        "open use use close open use",
        "use open",
        "open use close use",
        "open close open use close",
        "open use close close open use",
    ];
    for text in traces {
        let trace = Word::parse(&sigma, text);
        let mut m = monitor.clone();
        let (verdict, consumed) = m.run(&trace);
        match verdict {
            Verdict::Ok => println!("PASS     : {text}"),
            Verdict::Violation => {
                println!("VIOLATION: {text}");
                println!("           detected after {consumed} event(s)");
            }
            Verdict::Unknown => {
                println!("UNKNOWN  : {text} (uninterpretable event {consumed})");
            }
        }

        // Enforcement: the security automaton truncates at the offense.
        let mut enforcer = SecurityAutomaton::new(&automaton);
        let allowed = enforcer.enforce(&trace);
        if enforcer.halted() {
            println!(
                "           enforced prefix: \"{}\"",
                allowed.display(&sigma)
            );
        }
    }

    // Liveness is unenforceable: the monitor of a liveness property
    // never fires, because its closure is the whole space.
    let liveness = parse(&sigma, "G F close")?; // "you eventually always come back to close"
    let mut m = Monitor::new(&translate(&sigma, &liveness));
    let (verdict, _) = m.run(&Word::parse(&sigma, "open use use use use use"));
    println!(
        "liveness policy 'G F close' on a close-free trace: {:?} (monitoring cannot enforce liveness)",
        verdict
    );
    Ok(())
}
