//! The serving layer as a library: an `sld` session without the daemon.
//!
//! ```text
//! cargo run --example service_session
//! ```
//!
//! `sld` (the `sl-service` binary) speaks newline-delimited JSON over
//! stdin or TCP, but the protocol engine underneath is an ordinary
//! library type: feed [`Service::handle_line`] one request per line and
//! it hands back the response line the daemon would have written. This
//! example scripts a complete session — define properties (one from an
//! LTL formula, one from HOA text), classify them, decompose one into
//! its safety and liveness halves, ask inclusion queries twice to watch
//! the result cache take over, step an incremental monitor across
//! request boundaries, and read the daemon's own `stats` at the end.

use safety_liveness::buchi::hoa::to_hoa;
use safety_liveness::buchi::{random_buchi, RandomConfig};
use safety_liveness::omega::Alphabet;
use safety_liveness::service::{Service, ServiceConfig};
use sl_support::FaultPlan;

fn main() {
    // A quiet daemon: no fault drill, defaults everywhere else. The
    // real binary uses `Service::from_env()` so `SL_FAULT_RATE` /
    // `SL_THREADS` apply; a scripted tour wants reproducibility.
    let svc = Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        ..ServiceConfig::default()
    });

    // A HOA payload for `define` — any ω-automaton tool's output works;
    // here we export one of our own random machines.
    let sigma = Alphabet::ab();
    let machine = random_buchi(&sigma, 7, RandomConfig::default());
    let hoa = to_hoa(&machine, "random-7")
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");

    let script = [
        // Define: LTL front-end and HOA ingest.
        r#"{"id":1,"verb":"define","name":"gfa","ltl":"G F a","alphabet":["a","b"]}"#.to_string(),
        r#"{"id":2,"verb":"define","name":"ga","ltl":"G a","alphabet":["a","b"]}"#.to_string(),
        format!(r#"{{"id":3,"verb":"define","name":"rnd","hoa":"{hoa}"}}"#),
        // The paper's trichotomy, per property.
        r#"{"id":4,"verb":"classify","target":"ga"}"#.to_string(),
        r#"{"id":5,"verb":"classify","target":"gfa"}"#.to_string(),
        r#"{"id":6,"verb":"classify","target":"rnd"}"#.to_string(),
        // Theorem 2: B = B_S ∩ B_L, materialized into the registry.
        r#"{"id":7,"verb":"decompose","target":"rnd"}"#.to_string(),
        r#"{"id":8,"verb":"classify","target":"rnd.safety"}"#.to_string(),
        // Inclusion twice: the second answer is a cache hit.
        r#"{"id":9,"verb":"include","left":"ga","right":"gfa"}"#.to_string(),
        r#"{"id":10,"verb":"include","left":"ga","right":"gfa"}"#.to_string(),
        // An incremental monitor session with a sticky verdict.
        r#"{"id":11,"verb":"monitor-step","monitor":"m","target":"ga","symbols":["a","a"]}"#
            .to_string(),
        r#"{"id":12,"verb":"monitor-step","monitor":"m","symbols":["b"]}"#.to_string(),
        // The daemon reports on itself.
        r#"{"id":13,"verb":"stats"}"#.to_string(),
    ];

    for line in &script {
        println!("> {line}");
        println!("< {}", svc.handle_line(line).line);
    }

    let cache = svc.cache_stats();
    println!(
        "\nresult cache: {} hits / {} misses over {} entries",
        cache.hits, cache.misses, cache.entries
    );
    assert!(cache.hits >= 1, "the repeated include must hit the cache");
}
