//! A guided tour of the paper's lattice-theoretic core.
//!
//! ```text
//! cargo run --example lattice_tour
//! ```
//!
//! Builds the paper's structures from scratch: a Boolean algebra with a
//! closure operator, the canonical decomposition (Theorem 2), the
//! strongest-safety / weakest-liveness extremal results (Theorems 6–7),
//! and the two counterexample lattices from Figures 1 and 2 showing why
//! modularity and distributivity are load-bearing.

use safety_liveness::lattice::{
    all_decompositions, classify, decompose, enumerate_closures, figure1, figure2, generators,
    theorem6_strongest_safety, theorem7_weakest_liveness, Closure,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A Boolean algebra with a closure ---------------------------
    let lattice = generators::boolean(3);
    println!(
        "B3: {} elements, boolean = {}",
        lattice.len(),
        lattice.is_boolean()
    );

    // A closure whose safety elements are {0b110, 0b111}.
    let cl = Closure::from_fixpoints(&lattice, &[0b110, 0b111])?;
    println!("closure fixpoints (safety elements): {:?}", cl.fixpoints());
    println!("liveness elements: {:?}", cl.liveness_elements(&lattice));

    for a in 0..lattice.len() {
        let d = decompose(&lattice, &cl, a)?;
        println!(
            "  {a:#05b} = {:#05b} /\\ {:#05b}   [{}]",
            d.safety,
            d.liveness,
            classify(&lattice, &cl, a)
        );
    }

    // --- Extremal theorems ------------------------------------------
    let a = 0b001;
    let strongest = theorem6_strongest_safety(&lattice, &cl, &cl, a)?;
    let weakest = theorem7_weakest_liveness(&lattice, &cl, &cl, a)?;
    println!("strongest safety part of {a:#05b}: {strongest:#05b} (machine closure)");
    println!("weakest second component of {a:#05b}: {weakest:#05b}");

    // --- Figure 1: why modularity matters ---------------------------
    let fig1 = figure1();
    println!(
        "\nFigure 1 (N5): modular = {}, decompositions of a: {}",
        fig1.lattice.is_modular(),
        all_decompositions(&fig1.lattice, &fig1.closure, &fig1.closure, fig1.a).len()
    );
    if let Some(violation) = fig1.lattice.modularity_violation() {
        println!(
            "  modular law fails on a={}, b={}, c={}: {} vs {}",
            violation.a, violation.b, violation.c, violation.left, violation.right
        );
    }

    // --- Figure 2: why distributivity matters -----------------------
    let fig2 = figure2();
    println!(
        "\nFigure 2 (M3): modular = {}, distributive = {}",
        fig2.lattice.is_modular(),
        fig2.lattice.is_distributive()
    );
    let join = fig2.lattice.join(fig2.a, fig2.b);
    println!(
        "  z <= a \\/ b? {} (Theorem 7's conclusion fails without distributivity)",
        fig2.lattice.leq(fig2.z, join)
    );

    // --- How many closures does a small lattice carry? ---------------
    let diamond = generators::boolean(2);
    println!(
        "\nB2 carries {} closure operators; every element decomposes under all of them",
        enumerate_closures(&diamond).len()
    );
    for cl in enumerate_closures(&diamond) {
        for x in 0..diamond.len() {
            decompose(&diamond, &cl, x)?;
        }
    }
    println!("all decompositions verified");
    Ok(())
}
