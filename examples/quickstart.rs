//! Quickstart: classify and decompose a linear-time property.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full pipeline on Rem's p3 (`a & F !a`): parse, translate
//! to a Büchi automaton, classify (neither safe nor live), decompose
//! into safety ∩ liveness per the paper's Theorem 2, and cross-check
//! the decomposition on every small lasso word.

use safety_liveness::buchi::{classify, decompose, find_accepted_word, is_liveness, is_safety};
use safety_liveness::ltl::{parse, translate};
use safety_liveness::omega::{all_lassos, Alphabet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = Alphabet::ab();
    let text = "a & F !a";
    let formula = parse(&sigma, text)?;
    println!("property       : {}", formula.display(&sigma));

    let automaton = translate(&sigma, &formula);
    println!(
        "automaton      : {} states, {} transitions",
        automaton.num_states(),
        automaton.num_transitions()
    );

    println!("classification : {}", classify(&automaton)?);

    let d = decompose(&automaton);
    println!(
        "safety part    : {} states (is_safety = {})",
        d.safety.num_states(),
        is_safety(&d.safety)?
    );
    println!(
        "liveness part  : {} states (is_liveness = {})",
        d.liveness.num_states(),
        is_liveness(&d.liveness)?
    );

    // The decomposition identity L(B) = L(B_S) ∩ L(B_L), word by word.
    let mut checked = 0;
    for w in all_lassos(&sigma, 3, 3) {
        assert_eq!(
            automaton.accepts(&w),
            d.safety.accepts(&w) && d.liveness.accepts(&w),
            "decomposition identity failed on {w}"
        );
        checked += 1;
    }
    println!("identity       : verified on {checked} lasso words");

    if let Some(example) = find_accepted_word(&automaton) {
        println!("example word   : {}", example.display(&sigma));
    }
    Ok(())
}
