//! Safety/liveness analysis of a token-passing mutual-exclusion
//! protocol — the "design and analysis of reactive systems" motivation
//! from the paper's introduction, end to end.
//!
//! ```text
//! cargo run --example protocol_analysis
//! ```
//!
//! Two processes share a critical section; the scheduler's visible
//! events are `c1` (process 1 in the critical section), `c2`
//! (process 2), and `idle`. We model a *system* as the Büchi automaton
//! of all behaviours a round-robin token scheduler can produce, and two
//! *specifications*:
//!
//! * **mutex** (safety): process 1 holds the section only at even
//!   rounds of its own turns — here simplified to "never two
//!   consecutive critical events by different processes without an
//!   idle in between";
//! * **progress** (liveness): both processes enter the critical
//!   section infinitely often.
//!
//! The example verifies the system against the conjunction, decomposes
//! the conjunction per Theorem 2, and shows that checking the system
//! splits into a monitorable safety check plus a pure liveness check —
//! the practical payoff the paper attributes to the decomposition.
//!
//! For state-based models of the same questions — `AG !bad` and
//! `FG !bad` on an explicit Kripke structure, decided by LT-PDR with
//! machine-checked certificates — see the `pdr_liveness` example and
//! the `sld` daemon's `check` verb.

use safety_liveness::buchi::{included_with_complement, BuchiBuilder, Monitor, Verdict};
use safety_liveness::ltl::{classify_formula, decompose_formula, parse, translate};
use safety_liveness::omega::{Alphabet, Word};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = Alphabet::new(&["c1", "c2", "idle"]);
    let c1 = sigma.symbol("c1").unwrap();
    let c2 = sigma.symbol("c2").unwrap();
    let idle = sigma.symbol("idle").unwrap();

    // The system: a token scheduler alternating c1 / c2 with optional
    // idling between handovers. The Büchi acceptance encodes the
    // scheduler's fairness: only runs with infinitely many complete
    // handover rounds are behaviours of the system (idling forever is
    // not something this scheduler does).
    let system = {
        let mut b = BuchiBuilder::new(sigma.clone());
        let turn1 = b.add_state(false);
        let turn2 = b.add_state(false);
        let round_done = b.add_state(true); // just completed c1 then c2
        b.add_transition(turn1, c1, turn2);
        b.add_transition(turn1, idle, turn1);
        b.add_transition(turn2, c2, round_done);
        b.add_transition(turn2, idle, turn2);
        b.add_transition(round_done, c1, turn2);
        b.add_transition(round_done, idle, turn1);
        b.build(turn1)
    };
    println!(
        "system    : {} states, {} transitions",
        system.num_states(),
        system.num_transitions()
    );

    // Specification pieces; classification and decomposition run at
    // the formula level, so complements come from negated formulas
    // instead of rank-based complementation. (The raw tableau for the
    // weak-until handover spec has hundreds of states; simulation
    // reduction in `translate` brings it down to single digits.)
    let mutex = parse(&sigma, "G (c1 -> X (!c1 W c2)) & G (c2 -> X (!c2 W c1))")?;
    let progress = parse(&sigma, "(G F c1) & (G F c2)")?;
    let spec = mutex.clone().and(progress.clone());

    println!("mutex     : {}", classify_formula(&sigma, &mutex));
    println!("progress  : {}", classify_formula(&sigma, &progress));
    println!("spec      : {}", classify_formula(&sigma, &spec));

    // Theorem 2: split the full spec into safety and liveness parts.
    let d = decompose_formula(&sigma, &spec);
    println!(
        "decomposed: property {} states, safety part {} states, liveness part {} states",
        d.automaton.num_states(),
        d.safety.num_states(),
        d.liveness.num_states(),
    );

    // Verification splits accordingly (and the safety half is the part
    // an online monitor can check):
    let safe_ok = d.system_satisfies_safety(&system).holds();
    let live_ok = d.system_satisfies_liveness(&system).holds();
    println!("system ⊆ safety part  : {safe_ok}");
    println!("system ⊆ liveness part: {live_ok}");
    let not_spec = translate(&sigma, &spec.clone().not());
    let full_ok = included_with_complement(&system, &not_spec).holds();
    println!("system ⊨ full spec    : {full_ok}");
    assert_eq!(full_ok, safe_ok && live_ok);

    // A runtime monitor for the safety half, exercised on finite logs.
    let monitor = Monitor::new(&d.safety);
    for log in [
        "c1 idle c2 c1 c2",
        "c1 c1", // double entry without handover: violation
        "idle idle c1 c2 idle c1",
    ] {
        let mut m = monitor.clone();
        let (verdict, consumed) = m.run(&Word::parse(&sigma, log));
        match verdict {
            Verdict::Ok => println!("log PASS  : {log}"),
            Verdict::Violation => println!("log FAIL  : {log} (at event {consumed})"),
            Verdict::Unknown => println!("log ???   : {log} (bad event {consumed})"),
        }
    }

    // A faulty system that can starve process 2 fails only the
    // liveness half — the decomposition localizes the bug.
    let starving = {
        let mut b = BuchiBuilder::new(sigma.clone());
        let turn1 = b.add_state(true);
        let turn2 = b.add_state(true);
        b.add_transition(turn1, c1, turn2);
        b.add_transition(turn1, idle, turn1);
        b.add_transition(turn2, c2, turn1);
        b.add_transition(turn2, idle, turn2);
        // Fault: process 1 may re-enter immediately, hogging the token.
        // (Keeps mutex alternation broken only on the liveness side:
        // re-entry still alternates with idles, never violating the
        // weak-until safety shape.)
        b.add_transition(turn1, idle, turn1);
        let faulty_idle_loop = b.add_state(true);
        b.add_transition(turn1, c1, faulty_idle_loop); // c1 then stuck idling
        b.add_transition(faulty_idle_loop, idle, faulty_idle_loop);
        b.build(turn1)
    };
    println!(
        "starving system ⊆ safety  : {}",
        d.system_satisfies_safety(&starving).holds()
    );
    println!(
        "starving system ⊆ liveness: {}",
        d.system_satisfies_liveness(&starving).holds()
    );

    // The same split is served state-based by the daemon: the `check`
    // verb runs LT-PDR on an inline Kripke structure (`mode: safety`
    // for AG !bad, `mode: liveness` for FG !bad via k-liveness) — see
    // the `pdr_liveness` example for the engine used directly.
    println!("state-based twin: sld's `check` verb (see examples/pdr_liveness.rs)");
    Ok(())
}
