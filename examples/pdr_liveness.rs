//! Property-directed reachability on a token-ring scheduler — safety
//! (`AG !bad`) and liveness (`FG !bad`) on the same engine, every
//! verdict backed by a certificate the example replays itself.
//!
//! ```text
//! cargo run --example pdr_liveness
//! ```
//!
//! The model is a three-process token ring with an explicit `panic`
//! state wired in behind a guard. LT-PDR proves the guarded ring safe
//! and hands back an inductive invariant; removing the guard flips the
//! verdict to a concrete counterexample trace. The liveness half asks
//! whether a transient startup glitch is eventually left forever
//! (`FG !glitch`): the k-liveness reduction answers by running the
//! same safety engine on a counter-augmented product, and a broken
//! variant that can re-glitch forever is refuted with a lasso.

use safety_liveness::omega::{Alphabet, Symbol};
use safety_liveness::pdr::{
    check_liveness, check_safety, validate_lasso, validate_safety_invariant, validate_trace,
    LivenessVerdict, SafetyVerdict,
};
use safety_liveness::trees::Kripke;
use sl_support::Budget;

/// Builds a Kripke structure over `{a, b}` with `b` labelling the bad
/// states — the same convention the `sld` `check` verb uses.
fn build(succ: Vec<Vec<usize>>, bad: &[usize]) -> Kripke {
    let sigma = Alphabet::ab();
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let labels: Vec<Symbol> = (0..succ.len())
        .map(|s| if bad.contains(&s) { b } else { a })
        .collect();
    Kripke::new(sigma, labels, succ, 0)
}

fn main() {
    let unlimited = Budget::unlimited();

    // ---- safety: AG !panic on the guarded ring --------------------
    //
    // States 0..3 pass the token around; state 3 is the `panic` state,
    // reachable only from itself — the guard keeps the ring out.
    println!("== safety: the guarded token ring ==");
    let ring = build(vec![vec![1], vec![2], vec![0], vec![3]], &[3]);
    let run = check_safety(&ring, &[3], &unlimited).expect("unbudgeted");
    match &run.verdict {
        SafetyVerdict::Safe { invariant } => {
            validate_safety_invariant(&ring, &[3], invariant).expect("certificate replays");
            let states: Vec<usize> = invariant.iter().collect();
            println!("verdict  : SAFE");
            println!("invariant: {states:?} (contains the initial state,");
            println!("           closed under every transition, disjoint from panic)");
        }
        SafetyVerdict::Unsafe { trace } => panic!("guarded ring cannot panic: {trace:?}"),
    }
    println!(
        "engine   : {} frames, {} obligations, {} generalizations",
        run.stats.frames, run.stats.obligations, run.stats.generalizations
    );

    // Drop the guard: state 2 may now mis-route the token into panic.
    println!("\n== safety: the same ring with the guard removed ==");
    let broken = build(vec![vec![1], vec![2], vec![0, 3], vec![3]], &[3]);
    let run = check_safety(&broken, &[3], &unlimited).expect("unbudgeted");
    match &run.verdict {
        SafetyVerdict::Unsafe { trace } => {
            validate_trace(&broken, &[3], trace).expect("counterexample replays");
            println!("verdict  : UNSAFE");
            println!("trace    : {trace:?} (a real run from the initial state into panic)");
        }
        SafetyVerdict::Safe { .. } => panic!("the unguarded ring must be refutable"),
    }

    // ---- liveness: FG !glitch via the k-liveness reduction --------
    //
    // Startup glitches once (state 0 is bad) and the steady-state loop
    // 1 -> 2 -> 1 never returns, so every path eventually avoids the
    // glitch forever. The reduction decides this by checking
    // AG (glitch-counter < k + 1) on a counter-augmented product.
    println!("\n== liveness: a transient startup glitch ==");
    let transient = build(vec![vec![1], vec![2], vec![1]], &[0]);
    let run = check_liveness(&transient, &[0], &unlimited).expect("unbudgeted");
    match &run.verdict {
        LivenessVerdict::Live { k, invariant } => {
            println!("verdict  : LIVE at k = {k} (no path glitches more than {k} time(s))");
            println!(
                "invariant: {} product states certify the counter bound",
                invariant.iter().count()
            );
        }
        LivenessVerdict::Lasso { stem, looping } => {
            panic!("transient glitch misjudged: stem {stem:?}, loop {looping:?}")
        }
    }

    // A regression that can glitch forever: 2 may fall back to 0.
    println!("\n== liveness: a regression that re-glitches forever ==");
    let relapsing = build(vec![vec![1], vec![2], vec![1, 0]], &[0]);
    let run = check_liveness(&relapsing, &[0], &unlimited).expect("unbudgeted");
    match &run.verdict {
        LivenessVerdict::Lasso { stem, looping } => {
            validate_lasso(&relapsing, &[0], stem, looping).expect("lasso replays");
            println!("verdict  : LASSO (some path glitches infinitely often)");
            println!("stem     : {stem:?}");
            println!("loop     : {looping:?} (revisits the glitch each time around)");
        }
        LivenessVerdict::Live { k, .. } => panic!("relapsing glitch misjudged live at k = {k}"),
    }

    println!("\nThe `sld` daemon serves both queries as the `check` verb —");
    println!("see scripts/check_session.jsonl for the wire format.");
}
