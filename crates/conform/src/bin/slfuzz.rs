//! `slfuzz` — the conformance fuzzer CLI.
//!
//! ```text
//! slfuzz [--seed N] [--cases N] [--oracle NAME]... [--case N]
//!        [--corpus PATH] [--append-corpus PATH]
//!        [--stats PATH | --stats-dir DIR] [--stable]
//!        [--max-seconds N]
//!        [--sabotage antichain-subsumption|pdr-relative-induction|dirty-scc-invalidation]
//!        [--dump N] [--list]
//! ```
//!
//! Exit status: 0 when the corpus replays clean and no oracle finds a
//! violation; 1 otherwise; 2 on usage errors.

use sl_conform::run::{fuzz, FuzzOptions};
use sl_conform::{corpus, oracles, Case};
use sl_support::prop::case_rng;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    opts: FuzzOptions,
    corpus: Option<PathBuf>,
    append_corpus: Option<PathBuf>,
    stats: Option<PathBuf>,
    stable: bool,
    sabotage: Option<String>,
    dump: Option<u32>,
    skip_fuzz: bool,
}

fn usage() -> String {
    let oracles = oracles::ORACLES.join(", ");
    format!(
        "usage: slfuzz [options]\n\
         \n\
         --seed N          base seed (default 2003)\n\
         --cases N         cases per oracle (default 256)\n\
         --oracle NAME     run one oracle (repeatable; default all)\n\
         --case N          replay exactly one case index\n\
         --corpus PATH     replay a regression corpus before fuzzing\n\
         --corpus-only     replay the corpus and skip fuzzing\n\
         --append-corpus PATH  append shrunk findings to this corpus\n\
         --stats PATH      write the stats JSON artifact to PATH\n\
         --stats-dir DIR   write it to DIR/BENCH_conform.json\n\
         --stable          omit wall-clock fields from the artifact\n\
         --max-seconds N   wall-clock budget; past it the run truncates\n\
         --sabotage WHAT   enable an engine sabotage drill\n\
         \x20                (supported: antichain-subsumption,\n\
         \x20                 pdr-relative-induction,\n\
         \x20                 dirty-scc-invalidation)\n\
         --dump N          print N generated cases per oracle and exit\n\
         --list            list oracles and exit\n\
         \n\
         oracles: {oracles}"
    )
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        opts: FuzzOptions::default(),
        corpus: None,
        append_corpus: None,
        stats: None,
        stable: false,
        sabotage: None,
        dump: None,
        skip_fuzz: false,
    };
    let mut picked_oracles: Vec<&'static str> = Vec::new();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                cli.opts.seed = parse_u64(&value(&mut args, "--seed")?)?;
            }
            "--cases" => {
                cli.opts.cases = value(&mut args, "--cases")?
                    .parse()
                    .map_err(|_| "--cases needs an unsigned integer".to_string())?;
            }
            "--oracle" => {
                let name = value(&mut args, "--oracle")?;
                let known = oracles::ORACLES
                    .iter()
                    .find(|&&o| o == name)
                    .ok_or(format!("unknown oracle `{name}` (see --list)"))?;
                picked_oracles.push(known);
            }
            "--case" => {
                cli.opts.only_case = Some(
                    value(&mut args, "--case")?
                        .parse()
                        .map_err(|_| "--case needs an unsigned integer".to_string())?,
                );
            }
            "--corpus" => cli.corpus = Some(PathBuf::from(value(&mut args, "--corpus")?)),
            "--corpus-only" => cli.skip_fuzz = true,
            "--append-corpus" => {
                cli.append_corpus = Some(PathBuf::from(value(&mut args, "--append-corpus")?));
            }
            "--stats" => cli.stats = Some(PathBuf::from(value(&mut args, "--stats")?)),
            "--stats-dir" => {
                cli.stats =
                    Some(PathBuf::from(value(&mut args, "--stats-dir")?).join("BENCH_conform.json"));
            }
            "--stable" => cli.stable = true,
            "--max-seconds" => {
                cli.opts.max_seconds = Some(
                    value(&mut args, "--max-seconds")?
                        .parse()
                        .map_err(|_| "--max-seconds needs an unsigned integer".to_string())?,
                );
            }
            "--sabotage" => {
                let what = value(&mut args, "--sabotage")?;
                let known = [
                    "antichain-subsumption",
                    "pdr-relative-induction",
                    "dirty-scc-invalidation",
                ];
                if !known.contains(&what.as_str()) {
                    return Err(format!("unknown sabotage drill `{what}`"));
                }
                cli.sabotage = Some(what);
            }
            "--dump" => {
                cli.dump = Some(
                    value(&mut args, "--dump")?
                        .parse()
                        .map_err(|_| "--dump needs an unsigned integer".to_string())?,
                );
            }
            "--list" => {
                println!("{}", oracles::ORACLES.join("\n"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
    }
    if !picked_oracles.is_empty() {
        cli.opts.oracles = picked_oracles;
    }
    Ok(cli)
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    }
    .map_err(|_| format!("not an unsigned integer: `{raw}`"))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("slfuzz: {message}");
            return ExitCode::from(2);
        }
    };
    if let Some(count) = cli.dump {
        for &oracle in &cli.opts.oracles {
            let stream = sl_conform::run::stream_name(oracle);
            for index in 0..count {
                let mut rng = case_rng(cli.opts.seed, &stream, index);
                let case = sl_conform::gen::gen_case(oracle, &mut rng);
                println!("{}", case.to_line());
            }
        }
        return ExitCode::SUCCESS;
    }
    match cli.sabotage.as_deref() {
        Some("antichain-subsumption") => {
            eprintln!("slfuzz: SABOTAGE DRILL ACTIVE: antichain subsumption deliberately broken");
            sl_buchi::antichain::sabotage::set_break_subsumption(true);
        }
        Some("pdr-relative-induction") => {
            eprintln!("slfuzz: SABOTAGE DRILL ACTIVE: PDR relative induction deliberately broken");
            sl_pdr::engine::sabotage::set_break_relative_induction(true);
        }
        Some("dirty-scc-invalidation") => {
            eprintln!(
                "slfuzz: SABOTAGE DRILL ACTIVE: incremental dirty-SCC invalidation deliberately broken"
            );
            sl_buchi::interned::sabotage::set_break_dirty_tracking(true);
        }
        _ => {}
    }
    let mut failed = false;

    // Corpus replay first: regressions stay fixed forever.
    if let Some(path) = &cli.corpus {
        match corpus::replay(path) {
            Ok(report) => {
                println!(
                    "corpus: {} replayed, {} accepted (budget), {} failures",
                    report.replayed,
                    report.accepted,
                    report.failures.len()
                );
                for failure in &report.failures {
                    eprintln!("slfuzz: {failure}");
                    failed = true;
                }
            }
            Err(message) => {
                eprintln!("slfuzz: {message}");
                return ExitCode::from(2);
            }
        }
    }

    if cli.skip_fuzz {
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let report = fuzz(&cli.opts);
    for o in &report.oracles {
        println!(
            "oracle {:<8} {} cases: {} passed, {} accepted (budget), {} failures{}",
            o.name,
            o.cases_run,
            o.passed,
            o.accepted,
            o.findings.len(),
            if cli.stable {
                String::new()
            } else {
                format!(" [{} ms]", o.elapsed_ms)
            }
        );
    }
    if report.truncated {
        println!("run truncated by --max-seconds");
    }
    let findings: Vec<&sl_conform::Finding> = report.findings();
    for finding in &findings {
        failed = true;
        eprintln!(
            "slfuzz: FAILURE oracle={} case={} seed={:#018x}\n  message: {}\n  shrunk ({} steps, weight {}): {}\n  repro: {}",
            finding.oracle,
            finding.case_index,
            finding.case_seed,
            finding.shrunk_message,
            finding.shrink_steps,
            finding.shrunk.weight(),
            finding.shrunk.to_line(),
            finding.repro,
        );
    }

    // Append shrunk findings to the regression corpus.
    if let Some(path) = &cli.append_corpus {
        if !findings.is_empty() {
            let cases: Vec<Case> = findings.iter().map(|f| f.shrunk.clone()).collect();
            match corpus::append(path, &cases) {
                Ok(added) => println!("corpus: appended {added} new reproducers to {}", path.display()),
                Err(message) => {
                    eprintln!("slfuzz: {message}");
                    failed = true;
                }
            }
        }
    }

    // Stats artifact.
    if let Some(path) = &cli.stats {
        let rendered = report.to_json(cli.stable).render();
        if let Err(e) = std::fs::write(path, rendered + "\n") {
            eprintln!("slfuzz: cannot write {}: {e}", path.display());
            failed = true;
        } else {
            println!("stats: wrote {}", path.display());
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
