//! The conformance case model and its JSON-lines codec.
//!
//! Every fuzz input is a self-contained [`Case`]: the corpus file
//! (`scripts/conform_corpus.jsonl`) stores one case per line as a JSON
//! object whose `"oracle"` field names the oracle that must accept it.
//! Automata travel as HOA text, lattices as a generating *recipe*
//! (factor list plus fixpoint bases) — recipes, unlike raw cover
//! relations, shrink gracefully and can never encode an invalid
//! lattice.

use sl_lattice::{generators, ops, Closure, FiniteLattice};
use sl_service::Json;

/// A lattice factor in a [`LatticeCase`] recipe. Every factor is
/// modular and complemented, and both properties are preserved by
/// finite products, so every recipe builds a lattice satisfying the
/// paper's Theorem 2/3 hypotheses by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Factor {
    /// The Boolean lattice with `atoms` atoms (2^atoms elements).
    Boolean(u8),
    /// The diamond M3 (5 elements): modular and complemented but not
    /// distributive — the Figure 2 shape.
    M3,
}

impl Factor {
    /// Number of elements the factor contributes multiplicatively.
    #[must_use]
    pub fn len(self) -> usize {
        match self {
            Factor::Boolean(atoms) => 1usize << atoms,
            Factor::M3 => 5,
        }
    }

    /// The corpus name of the factor.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Factor::Boolean(atoms) => format!("b{atoms}"),
            Factor::M3 => "m3".to_string(),
        }
    }

    /// Parses a corpus factor name (`b1`..`b3`, `m3`).
    pub fn parse(name: &str) -> Result<Factor, String> {
        match name {
            "m3" => Ok(Factor::M3),
            _ => match name.strip_prefix('b').and_then(|d| d.parse::<u8>().ok()) {
                Some(atoms @ 1..=3) => Ok(Factor::Boolean(atoms)),
                _ => Err(format!("unknown lattice factor `{name}`")),
            },
        }
    }

    fn build(self) -> FiniteLattice {
        match self {
            Factor::Boolean(atoms) => generators::boolean(atoms as usize),
            Factor::M3 => generators::m3(),
        }
    }
}

/// Inclusion-oracle case: two automata (HOA text) and an optional step
/// budget for the budgeted-twin check.
#[derive(Debug, Clone, PartialEq)]
pub struct InclCase {
    /// HOA text of the left automaton (`L(left) ⊆ L(right)?`).
    pub left: String,
    /// HOA text of the right automaton.
    pub right: String,
    /// Step budget for the budgeted variant, if any.
    pub budget: Option<u64>,
}

/// Three-engine inclusion case (oracle `incl3`): two automata plus a
/// seeded mutation sequence for the incremental-vs-scratch quotient
/// differential. `steps` edits of the left automaton are drawn from
/// `seed`, and after every edit the incrementally advanced interned
/// quotient must be bit-identical to a from-scratch computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Incl3Case {
    /// HOA text of the left automaton (`L(left) ⊆ L(right)?`).
    pub left: String,
    /// HOA text of the right automaton.
    pub right: String,
    /// Number of seeded mutations in the incremental differential.
    pub steps: u32,
    /// Seed for the mutation stream (kept within `u32` range so the
    /// JSON codec round-trips it exactly).
    pub seed: u64,
    /// Step budget for the budgeted on-the-fly twin, if any.
    pub budget: Option<u64>,
}

/// Lattice-oracle case: the recipe for a modular complemented lattice
/// and a closure pair `cl1 <= cl2`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeCase {
    /// Product factors, leftmost outermost. Must be nonempty.
    pub factors: Vec<Factor>,
    /// Generating elements for cl2's fixpoint base (interpreted modulo
    /// the lattice size, so shrinking factors never invalidates them).
    pub fix2: Vec<usize>,
    /// Extra generating elements added to cl1's base on top of cl2's —
    /// more fixpoints make cl1 pointwise smaller, so `cl1 <= cl2` holds
    /// by construction.
    pub extra1: Vec<usize>,
}

impl LatticeCase {
    /// Builds the lattice and the closure pair from the recipe.
    ///
    /// # Panics
    ///
    /// Panics if the recipe has no factors (the codec rejects that).
    #[must_use]
    pub fn build(&self) -> (FiniteLattice, Closure, Closure) {
        assert!(!self.factors.is_empty(), "recipe needs at least one factor");
        let mut lattice = self.factors[0].build();
        for factor in &self.factors[1..] {
            lattice = ops::product(&lattice, &factor.build());
        }
        let n = lattice.len();
        let mut base2: Vec<usize> = self.fix2.iter().map(|&e| e % n).collect();
        base2.push(lattice.top());
        let base2 = meet_close(&lattice, base2);
        let cl2 = Closure::from_fixpoints(&lattice, &base2)
            .expect("meet-closed base with top is a valid closure");
        let mut base1 = base2;
        base1.extend(self.extra1.iter().map(|&e| e % n));
        let base1 = meet_close(&lattice, base1);
        let cl1 = Closure::from_fixpoints(&lattice, &base1)
            .expect("meet-closed base with top is a valid closure");
        (lattice, cl1, cl2)
    }

    /// Number of elements of the generated lattice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.factors.iter().map(|f| f.len()).product()
    }

    /// Whether the recipe is empty (it never is for valid cases).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }
}

/// Closes a set of elements under binary meets (fixpoint iteration).
fn meet_close(lattice: &FiniteLattice, mut base: Vec<usize>) -> Vec<usize> {
    base.sort_unstable();
    base.dedup();
    loop {
        let mut grew = false;
        let snapshot = base.clone();
        for &s in &snapshot {
            for &t in &snapshot {
                let m = lattice.meet(s, t);
                if !base.contains(&m) {
                    base.push(m);
                    grew = true;
                }
            }
        }
        if !grew {
            base.sort_unstable();
            return base;
        }
        base.sort_unstable();
        base.dedup();
    }
}

/// HOA-oracle case: arbitrary (possibly mutated) HOA text.
#[derive(Debug, Clone, PartialEq)]
pub struct HoaCase {
    /// The document under test. When it parses, `to_hoa ∘ from_hoa`
    /// must be idempotent; whether or not it parses, diagnostics must
    /// be stable and the parser must never panic.
    pub text: String,
}

/// Monitor-oracle case: a policy automaton, a finite trace of symbol
/// names (names outside the policy alphabet probe the sticky Unknown
/// path), and an optional step budget.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorCase {
    /// HOA text of the policy automaton.
    pub policy: String,
    /// The trace, as symbol names.
    pub trace: Vec<String>,
    /// Step budget for `run_with_budget`, if any.
    pub budget: Option<u64>,
}

/// Session-oracle case: a JSON-lines daemon session replayed against
/// multiple service configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCase {
    /// The request lines, in order.
    pub lines: Vec<String>,
}

/// PDR-oracle case: a small total Kripke structure (successor lists
/// plus an initial state), a bad-state set, and the property flavour.
/// Safety cases differentially check LT-PDR against exact BFS
/// reachability; liveness cases check the k-liveness sweep against a
/// direct lasso search. Certificates (invariants, traces, lassos) are
/// replayed by independent code in the oracle itself.
#[derive(Debug, Clone, PartialEq)]
pub struct PdrCase {
    /// Successor lists, one per state. Every list must be nonempty
    /// (total transition relation) and every index in range.
    pub succ: Vec<Vec<usize>>,
    /// The initial state index.
    pub initial: usize,
    /// Bad state indices (interpreted modulo the state count by the
    /// oracle, so shrinking states never invalidates them).
    pub bad: Vec<usize>,
    /// `false` checks `AG !bad`, `true` checks `FG !bad`.
    pub liveness: bool,
    /// Step budget for the engine, if any (budget exhaustion is an
    /// accepted outcome, not a failure).
    pub budget: Option<u64>,
}

/// Crash-oracle case: a JSON-lines daemon session driven through the
/// deterministic crash drill — the persistent daemon is killed at
/// every journal record boundary (and mid-record, via truncation) and
/// the recovered daemon's remaining responses are diffed byte-for-byte
/// against an uninterrupted twin.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashCase {
    /// The request lines, in order. For `clients > 1` this is the
    /// *interleaved* view of several concurrent sessions: line `i`
    /// belongs to client `i mod clients` (round-robin), and each
    /// client's sub-session touches only its own namespaced targets
    /// and monitors.
    pub lines: Vec<String>,
    /// Journal records between automatic snapshots (0 = none), so the
    /// drill crosses snapshot rotations as well as plain appends.
    pub snapshot_every: u64,
    /// How many concurrent clients the lines interleave (1 = the
    /// classic single-session drill; omitted from the corpus encoding
    /// when 1). Beyond the crash drill on the interleaved journal,
    /// multi-client cases also check transcript independence: each
    /// client's replies must be byte-identical to a solo run.
    pub clients: u32,
}

/// One conformance case, tagged with the oracle that judges it.
#[derive(Debug, Clone, PartialEq)]
pub enum Case {
    /// Antichain-vs-rank differential (oracle `incl`).
    Incl(InclCase),
    /// Three-engine (on-the-fly / antichain / rank) differential with
    /// an incremental-vs-scratch quotient drill (oracle `incl3`).
    Incl3(Incl3Case),
    /// Theorems 2/3/5/6/7 on a generated lattice (oracle `lattice`).
    Lattice(LatticeCase),
    /// HOA round-trip and diagnostic stability (oracle `hoa`).
    Hoa(HoaCase),
    /// Monitor-vs-offline-classification differential (oracle
    /// `monitor`).
    Monitor(MonitorCase),
    /// Compiled dense-table monitor vs `Monitor` vs NFA-set reference,
    /// verdict-for-verdict, plus minimization correctness (oracle
    /// `compiled`). Same shape as a monitor case.
    Compiled(MonitorCase),
    /// Daemon replay equivalence (oracle `session`).
    Session(SessionCase),
    /// Crash-recovery equivalence: kill-at-every-record-boundary drill
    /// against the persistence layer (oracle `crash`).
    Crash(CrashCase),
    /// LT-PDR vs exact BFS / lasso-search differential with certificate
    /// replay (oracle `pdr`).
    Pdr(PdrCase),
}

impl Case {
    /// The oracle name used in corpus entries and CLI flags.
    #[must_use]
    pub fn oracle(&self) -> &'static str {
        match self {
            Case::Incl(_) => "incl",
            Case::Incl3(_) => "incl3",
            Case::Lattice(_) => "lattice",
            Case::Hoa(_) => "hoa",
            Case::Monitor(_) => "monitor",
            Case::Compiled(_) => "compiled",
            Case::Session(_) => "session",
            Case::Crash(_) => "crash",
            Case::Pdr(_) => "pdr",
        }
    }

    /// Serializes the case as one corpus JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Case::Incl(c) => {
                let mut pairs = vec![
                    ("oracle", Json::Str("incl".into())),
                    ("left", Json::Str(c.left.clone())),
                    ("right", Json::Str(c.right.clone())),
                ];
                if let Some(steps) = c.budget {
                    pairs.push(("budget", Json::Int(steps as i64)));
                }
                Json::obj(pairs)
            }
            Case::Incl3(c) => {
                let mut pairs = vec![
                    ("oracle", Json::Str("incl3".into())),
                    ("left", Json::Str(c.left.clone())),
                    ("right", Json::Str(c.right.clone())),
                    ("steps", Json::Int(i64::from(c.steps))),
                    ("seed", Json::Int(c.seed as i64)),
                ];
                if let Some(steps) = c.budget {
                    pairs.push(("budget", Json::Int(steps as i64)));
                }
                Json::obj(pairs)
            }
            Case::Lattice(c) => Json::obj(vec![
                ("oracle", Json::Str("lattice".into())),
                (
                    "factors",
                    Json::Arr(c.factors.iter().map(|f| Json::Str(f.name())).collect()),
                ),
                (
                    "fix2",
                    Json::Arr(c.fix2.iter().map(|&e| Json::Int(e as i64)).collect()),
                ),
                (
                    "extra1",
                    Json::Arr(c.extra1.iter().map(|&e| Json::Int(e as i64)).collect()),
                ),
            ]),
            Case::Hoa(c) => Json::obj(vec![
                ("oracle", Json::Str("hoa".into())),
                ("text", Json::Str(c.text.clone())),
            ]),
            Case::Monitor(c) | Case::Compiled(c) => {
                let mut pairs = vec![
                    ("oracle", Json::Str(self.oracle().into())),
                    ("policy", Json::Str(c.policy.clone())),
                    (
                        "trace",
                        Json::Arr(c.trace.iter().map(|s| Json::Str(s.clone())).collect()),
                    ),
                ];
                if let Some(steps) = c.budget {
                    pairs.push(("budget", Json::Int(steps as i64)));
                }
                Json::obj(pairs)
            }
            Case::Session(c) => Json::obj(vec![
                ("oracle", Json::Str("session".into())),
                (
                    "lines",
                    Json::Arr(c.lines.iter().map(|l| Json::Str(l.clone())).collect()),
                ),
            ]),
            Case::Crash(c) => {
                let mut pairs = vec![
                    ("oracle", Json::Str("crash".into())),
                    (
                        "lines",
                        Json::Arr(c.lines.iter().map(|l| Json::Str(l.clone())).collect()),
                    ),
                    ("snapshot_every", Json::Int(c.snapshot_every as i64)),
                ];
                if c.clients > 1 {
                    pairs.push(("clients", Json::Int(i64::from(c.clients))));
                }
                Json::obj(pairs)
            }
            Case::Pdr(c) => {
                let row = |outs: &Vec<usize>| {
                    Json::Arr(outs.iter().map(|&t| Json::Int(t as i64)).collect())
                };
                let mut pairs = vec![
                    ("oracle", Json::Str("pdr".into())),
                    ("succ", Json::Arr(c.succ.iter().map(row).collect())),
                    ("initial", Json::Int(c.initial as i64)),
                    (
                        "bad",
                        Json::Arr(c.bad.iter().map(|&b| Json::Int(b as i64)).collect()),
                    ),
                    ("liveness", Json::Bool(c.liveness)),
                ];
                if let Some(steps) = c.budget {
                    pairs.push(("budget", Json::Int(steps as i64)));
                }
                Json::obj(pairs)
            }
        }
    }

    /// Renders the case as one corpus line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        self.to_json().render()
    }

    /// Parses a corpus line back into a case.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (unknown
    /// oracle, missing field, wrong type, empty recipe).
    pub fn from_line(line: &str) -> Result<Case, String> {
        let doc = sl_service::json::parse(line)?;
        Self::from_json(&doc)
    }

    /// Parses a corpus JSON object back into a case.
    ///
    /// # Errors
    ///
    /// See [`Case::from_line`].
    pub fn from_json(doc: &Json) -> Result<Case, String> {
        let oracle = doc
            .get("oracle")
            .and_then(Json::as_str)
            .ok_or("missing string field `oracle`")?;
        let text_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field `{key}`"))
        };
        let list_field = |key: &str| -> Result<Vec<String>, String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or(format!("missing array field `{key}`"))?
                .iter()
                .map(|v| v.as_str().map(str::to_string).ok_or(format!("non-string in `{key}`")))
                .collect()
        };
        let nums_field = |key: &str| -> Result<Vec<usize>, String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or(format!("missing array field `{key}`"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or(format!("non-integer in `{key}`"))
                })
                .collect()
        };
        let budget = doc.get("budget").and_then(Json::as_u64);
        match oracle {
            "incl" => Ok(Case::Incl(InclCase {
                left: text_field("left")?,
                right: text_field("right")?,
                budget,
            })),
            "incl3" => Ok(Case::Incl3(Incl3Case {
                left: text_field("left")?,
                right: text_field("right")?,
                steps: doc
                    .get("steps")
                    .and_then(Json::as_u64)
                    .ok_or("missing integer field `steps`")? as u32,
                seed: doc
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or("missing integer field `seed`")?,
                budget,
            })),
            "lattice" => {
                let factors = list_field("factors")?
                    .iter()
                    .map(|name| Factor::parse(name))
                    .collect::<Result<Vec<Factor>, String>>()?;
                if factors.is_empty() {
                    return Err("lattice recipe needs at least one factor".into());
                }
                Ok(Case::Lattice(LatticeCase {
                    factors,
                    fix2: nums_field("fix2")?,
                    extra1: nums_field("extra1")?,
                }))
            }
            "hoa" => Ok(Case::Hoa(HoaCase {
                text: text_field("text")?,
            })),
            "monitor" => Ok(Case::Monitor(MonitorCase {
                policy: text_field("policy")?,
                trace: list_field("trace")?,
                budget,
            })),
            "compiled" => Ok(Case::Compiled(MonitorCase {
                policy: text_field("policy")?,
                trace: list_field("trace")?,
                budget,
            })),
            "session" => Ok(Case::Session(SessionCase {
                lines: list_field("lines")?,
            })),
            "crash" => Ok(Case::Crash(CrashCase {
                lines: list_field("lines")?,
                snapshot_every: doc
                    .get("snapshot_every")
                    .and_then(Json::as_u64)
                    .ok_or("missing integer field `snapshot_every`")?,
                clients: match doc.get("clients") {
                    None => 1,
                    Some(v) => match v.as_u64() {
                        Some(n @ 1..) => n as u32,
                        _ => return Err("`clients` must be a positive integer".into()),
                    },
                },
            })),
            "pdr" => {
                let succ = doc
                    .get("succ")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field `succ`")?
                    .iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or("non-array row in `succ`".to_string())?
                            .iter()
                            .map(|v| {
                                v.as_u64()
                                    .map(|n| n as usize)
                                    .ok_or("non-integer in `succ`".to_string())
                            })
                            .collect::<Result<Vec<usize>, String>>()
                    })
                    .collect::<Result<Vec<Vec<usize>>, String>>()?;
                if succ.is_empty() {
                    return Err("`succ` needs at least one state".into());
                }
                Ok(Case::Pdr(PdrCase {
                    succ,
                    initial: doc
                        .get("initial")
                        .and_then(Json::as_u64)
                        .ok_or("missing integer field `initial`")?
                        as usize,
                    bad: nums_field("bad")?,
                    liveness: doc
                        .get("liveness")
                        .and_then(Json::as_bool)
                        .ok_or("missing boolean field `liveness`")?,
                    budget,
                }))
            }
            other => Err(format!("unknown oracle `{other}`")),
        }
    }

    /// A rough size for reporting and shrink-bound checks: automaton
    /// states, lattice elements, trace/session length.
    #[must_use]
    pub fn weight(&self) -> usize {
        let states = |hoa: &str| crate::oracles::parse_states(hoa);
        match self {
            Case::Incl(c) => states(&c.left) + states(&c.right),
            Case::Incl3(c) => states(&c.left) + states(&c.right) + c.steps as usize,
            Case::Lattice(c) => c.len(),
            Case::Hoa(c) => c.text.lines().count(),
            Case::Monitor(c) | Case::Compiled(c) => states(&c.policy) + c.trace.len(),
            Case::Session(c) => c.lines.len(),
            Case::Crash(c) => c.lines.len(),
            Case::Pdr(c) => {
                c.succ.len() + c.succ.iter().map(Vec::len).sum::<usize>() + c.bad.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_variant() {
        let cases = vec![
            Case::Incl(InclCase {
                left: "HOA: v1\nStates: 1\n".into(),
                right: "HOA: v1\nStates: 2\n".into(),
                budget: Some(77),
            }),
            Case::Incl3(Incl3Case {
                left: "HOA: v1\nStates: 3\n".into(),
                right: "HOA: v1\nStates: 2\n".into(),
                steps: 5,
                seed: 0x00ab_cdef,
                budget: Some(123),
            }),
            Case::Incl3(Incl3Case {
                left: "HOA: v1\nStates: 1\n".into(),
                right: "HOA: v1\nStates: 1\n".into(),
                steps: 0,
                seed: 0,
                budget: None,
            }),
            Case::Lattice(LatticeCase {
                factors: vec![Factor::Boolean(2), Factor::M3],
                fix2: vec![0, 3],
                extra1: vec![7],
            }),
            Case::Hoa(HoaCase {
                text: "not hoa at \"all\"\nline 2".into(),
            }),
            Case::Monitor(MonitorCase {
                policy: "HOA: v1\n".into(),
                trace: vec!["a".into(), "zz".into()],
                budget: None,
            }),
            Case::Compiled(MonitorCase {
                policy: "HOA: v1\n".into(),
                trace: vec!["b".into(), "zz".into(), "a".into()],
                budget: Some(9),
            }),
            Case::Session(SessionCase {
                lines: vec!["{\"id\":1,\"verb\":\"stats\"}".into()],
            }),
            Case::Crash(CrashCase {
                lines: vec!["{\"id\":1,\"verb\":\"classify\",\"target\":\"p0\"}".into()],
                snapshot_every: 3,
                clients: 1,
            }),
            Case::Crash(CrashCase {
                lines: vec![
                    "{\"id\":1,\"verb\":\"classify\",\"target\":\"c0_p0\"}".into(),
                    "{\"id\":1,\"verb\":\"classify\",\"target\":\"c1_p0\"}".into(),
                ],
                snapshot_every: 0,
                clients: 2,
            }),
            Case::Pdr(PdrCase {
                succ: vec![vec![1, 2], vec![0], vec![2]],
                initial: 0,
                bad: vec![2],
                liveness: true,
                budget: Some(44),
            }),
            Case::Pdr(PdrCase {
                succ: vec![vec![0]],
                initial: 0,
                bad: vec![],
                liveness: false,
                budget: None,
            }),
        ];
        for case in cases {
            let line = case.to_line();
            let back = Case::from_line(&line).expect("round trip");
            assert_eq!(back, case, "line: {line}");
            assert_eq!(back.to_line(), line, "renders are canonical");
        }
    }

    #[test]
    fn recipe_builds_ordered_closure_pair() {
        let case = LatticeCase {
            factors: vec![Factor::Boolean(2), Factor::M3],
            fix2: vec![3, 11],
            extra1: vec![5],
        };
        let (lattice, cl1, cl2) = case.build();
        assert_eq!(lattice.len(), 20);
        assert!(lattice.is_modular());
        assert!(lattice.is_complemented());
        assert!(cl1.pointwise_leq(&lattice, &cl2), "cl1 <= cl2 by construction");
    }

    #[test]
    fn factor_names_round_trip() {
        for factor in [Factor::Boolean(1), Factor::Boolean(3), Factor::M3] {
            assert_eq!(Factor::parse(&factor.name()), Ok(factor));
        }
        assert!(Factor::parse("b9").is_err());
        assert!(Factor::parse("n5").is_err());
    }

    #[test]
    fn codec_rejects_malformed_lines() {
        assert!(Case::from_line("{oops").is_err());
        assert!(Case::from_line("{\"oracle\":\"nope\"}").is_err());
        assert!(Case::from_line("{\"oracle\":\"incl\",\"left\":\"x\"}").is_err());
        assert!(
            Case::from_line("{\"oracle\":\"incl3\",\"left\":\"x\",\"right\":\"y\",\"seed\":1}")
                .is_err(),
            "incl3 without a step count is rejected"
        );
        assert!(
            Case::from_line("{\"oracle\":\"lattice\",\"factors\":[],\"fix2\":[],\"extra1\":[]}")
                .is_err(),
            "empty recipes are rejected"
        );
        assert!(
            Case::from_line(
                "{\"oracle\":\"crash\",\"lines\":[\"x\"],\"snapshot_every\":0,\"clients\":0}"
            )
            .is_err(),
            "zero clients is rejected"
        );
        assert!(
            Case::from_line(
                "{\"oracle\":\"pdr\",\"succ\":[],\"initial\":0,\"bad\":[],\"liveness\":false}"
            )
            .is_err(),
            "empty state set is rejected"
        );
    }
}
