//! # sl-conform — the deterministic differential conformance fuzzer
//!
//! The workspace carries several independent implementations of the
//! same lattice-theoretic facts from Manolios & Trefler's PODC 2003
//! characterization: rank-based vs antichain inclusion, offline
//! classify/decompose vs the incremental monitor, direct structures vs
//! HOA round-trips, cached vs uncached daemon queries. Because the
//! paper's Theorems 2/3 (decomposition), 5 (impossibility), and 6/7
//! (extremality) are universally quantified, every randomly generated
//! structure is a test: this crate turns them into metamorphic oracles
//! and cross-checks every engine against every other one.
//!
//! * [`case`] — the self-contained case model and JSONL codec;
//! * [`gen`] — seed-deterministic generators (lattice recipes, LTL,
//!   Büchi automata, HOA documents, daemon sessions);
//! * [`oracles`] — the registry of seven differential/metamorphic
//!   oracles (including the `crash` drill, which kills a persistent
//!   daemon at every journal record boundary and diffs the recovered
//!   daemon's answers byte-for-byte against an uninterrupted twin),
//!   where `Budget` exhaustion is accepted but a wrong answer never
//!   is;
//! * [`shrink`] — per-oracle [`sl_support::prop::Strategy`] shrinkers
//!   driven by the shared greedy [`sl_support::prop::minimize`] loop;
//! * [`corpus`] — the checked-in regression corpus CI replays forever;
//! * [`run`] — the fuzz loop and the `BENCH_conform.json` stats
//!   artifact.
//!
//! The `slfuzz` binary wires these together; `slfuzz --seed N --oracle
//! X --case C` replays any failure in isolation.

pub mod case;
pub mod corpus;
pub mod gen;
pub mod oracles;
pub mod run;
pub mod shrink;

pub use case::{Case, CrashCase, Factor, HoaCase, InclCase, LatticeCase, MonitorCase, SessionCase};
pub use oracles::{check, crash_drill, Outcome, ORACLES};
pub use run::{fuzz, Finding, FuzzOptions, OracleReport, RunReport};
