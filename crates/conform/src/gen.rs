//! Seed-deterministic case generators, one per oracle.
//!
//! Everything is driven by a caller-supplied [`SplitMix`] stream (the
//! runner derives one per (seed, oracle, case index) via
//! [`sl_support::prop::case_rng`]), so a single case replays in
//! isolation from its coordinates alone.

use crate::case::{
    Case, CrashCase, Factor, HoaCase, Incl3Case, InclCase, LatticeCase, MonitorCase, PdrCase,
    SessionCase,
};
use sl_buchi::{hoa, random_buchi, Buchi, RandomConfig};
use sl_ltl::Ltl;
use sl_omega::Alphabet;
use sl_support::SplitMix;

/// Upper bound on generated automaton sizes. Small enough that the
/// rank-based complement (2^(n) · ranks state space) stays fast in the
/// thousands-of-cases regime, large enough to exercise subsumption.
const MAX_STATES: usize = 4;

/// Upper bound on generated lattice sizes; theorem checks are O(n²)
/// per element, so this caps a case at ~64k comparisons.
const MAX_LATTICE: usize = 40;

/// Draws a random alphabet of 2 or 3 symbols.
fn gen_alphabet(rng: &mut SplitMix) -> Alphabet {
    if rng.flip() {
        Alphabet::ab()
    } else {
        Alphabet::new(&["a", "b", "c"])
    }
}

/// Draws a random automaton over `alphabet` with at most `max_states`
/// states.
pub fn gen_buchi(rng: &mut SplitMix, alphabet: &Alphabet, max_states: usize) -> Buchi {
    let config = RandomConfig {
        states: 1 + rng.below(max_states),
        density_percent: 40 + rng.below(81) as u32,
        accepting_percent: 20 + rng.below(61) as u32,
    };
    random_buchi(alphabet, rng.next_u64(), config)
}

/// Draws a random LTL formula over `alphabet` with nesting depth at
/// most `depth`.
pub fn gen_ltl(rng: &mut SplitMix, alphabet: &Alphabet, depth: usize) -> Ltl {
    let ap = |rng: &mut SplitMix| {
        let idx = rng.below(alphabet.len());
        let sym = alphabet.symbols().nth(idx).expect("in range");
        Ltl::ap(sym)
    };
    if depth == 0 || rng.percent() < 30 {
        return ap(rng);
    }
    match rng.below(8) {
        0 => Ltl::not(gen_ltl(rng, alphabet, depth - 1)),
        1 => Ltl::and(gen_ltl(rng, alphabet, depth - 1), gen_ltl(rng, alphabet, depth - 1)),
        2 => Ltl::or(gen_ltl(rng, alphabet, depth - 1), gen_ltl(rng, alphabet, depth - 1)),
        3 => Ltl::next(gen_ltl(rng, alphabet, depth - 1)),
        4 => Ltl::finally(gen_ltl(rng, alphabet, depth - 1)),
        5 => Ltl::globally(gen_ltl(rng, alphabet, depth - 1)),
        6 => Ltl::until(gen_ltl(rng, alphabet, depth - 1), gen_ltl(rng, alphabet, depth - 1)),
        _ => Ltl::release(gen_ltl(rng, alphabet, depth - 1), gen_ltl(rng, alphabet, depth - 1)),
    }
}

/// Inclusion-oracle case: two automata over a shared alphabet, with a
/// step budget one case in four.
pub fn gen_incl(rng: &mut SplitMix) -> InclCase {
    let alphabet = gen_alphabet(rng);
    let left = gen_buchi(rng, &alphabet, MAX_STATES);
    // Half the time derive the right side from the left (small edits
    // make near-inclusions, the interesting regime for subsumption);
    // otherwise independent.
    let right = if rng.flip() {
        let mut b = gen_buchi(rng, &alphabet, MAX_STATES);
        if rng.flip() {
            b = sl_buchi::union(&left, &b);
        }
        b
    } else {
        gen_buchi(rng, &alphabet, MAX_STATES)
    };
    let budget = if rng.percent() < 25 {
        Some(1 + rng.next_u64() % 50_000)
    } else {
        None
    };
    InclCase {
        left: hoa::to_hoa(&left, "left"),
        right: hoa::to_hoa(&right, "right"),
        budget,
    }
}

/// Three-engine inclusion case: bigger automata than [`gen_incl`] (the
/// on-the-fly and eager antichain engines are polynomial per macro
/// state, and the rank oracle skips itself via its complement budget
/// when a pair is out of reach), plus a seeded mutation sequence for
/// the incremental-vs-scratch quotient differential.
pub fn gen_incl3(rng: &mut SplitMix) -> Incl3Case {
    let alphabet = gen_alphabet(rng);
    let left = gen_buchi(rng, &alphabet, MAX_STATES + 2);
    // Same derived-right bias as `gen_incl`: near-inclusions are the
    // interesting regime for subsumption and lazy expansion. The union
    // addend stays small — the antichain product is exponential in the
    // right side's state count, and a 15-state union turns one case
    // into a minute-long search.
    let right = if rng.flip() {
        if rng.flip() {
            sl_buchi::union(&left, &gen_buchi(rng, &alphabet, 2))
        } else {
            gen_buchi(rng, &alphabet, MAX_STATES + 2)
        }
    } else {
        gen_buchi(rng, &alphabet, MAX_STATES + 2)
    };
    let steps = 1 + rng.below(8) as u32;
    // Seed kept within u32 range so the i64-backed JSON codec
    // round-trips it exactly.
    let seed = rng.next_u64() >> 32;
    let budget = if rng.percent() < 25 {
        Some(1 + rng.next_u64() % 50_000)
    } else {
        None
    };
    Incl3Case {
        left: hoa::to_hoa(&left, "left"),
        right: hoa::to_hoa(&right, "right"),
        steps,
        seed,
        budget,
    }
}

/// Lattice-oracle case: a product of modular complemented factors
/// capped at [`MAX_LATTICE`] elements, plus random fixpoint bases.
pub fn gen_lattice(rng: &mut SplitMix) -> LatticeCase {
    let mut factors = Vec::new();
    let mut size = 1usize;
    let count = 1 + rng.below(3);
    for _ in 0..count {
        let factor = match rng.below(4) {
            0 => Factor::Boolean(1),
            1 => Factor::Boolean(2),
            2 => Factor::Boolean(3),
            _ => Factor::M3,
        };
        if size * factor.len() > MAX_LATTICE {
            continue;
        }
        size *= factor.len();
        factors.push(factor);
    }
    if factors.is_empty() {
        factors.push(Factor::Boolean(2));
        size = 4;
    }
    let fix2 = (0..rng.below(4)).map(|_| rng.below(size)).collect();
    let extra1 = (0..rng.below(3)).map(|_| rng.below(size)).collect();
    LatticeCase {
        factors,
        fix2,
        extra1,
    }
}

/// HOA-oracle case: a well-formed document half the time, a mutated
/// one otherwise (dropped/duplicated/swapped lines, corrupted bytes,
/// truncations — the parser must stay total and stable on all of it).
pub fn gen_hoa(rng: &mut SplitMix) -> HoaCase {
    let alphabet = gen_alphabet(rng);
    let b = gen_buchi(rng, &alphabet, MAX_STATES + 2);
    let mut text = hoa::to_hoa(&b, "fuzz");
    if rng.flip() {
        let mutations = 1 + rng.below(3);
        for _ in 0..mutations {
            text = mutate_text(rng, &text);
        }
    }
    HoaCase { text }
}

/// One random structural or byte-level mutation of a document.
fn mutate_text(rng: &mut SplitMix, text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "Garbage: 1".to_string();
    }
    match rng.below(6) {
        // Drop a line.
        0 => {
            let i = rng.below(lines.len());
            let mut out: Vec<&str> = lines.clone();
            out.remove(i);
            out.join("\n")
        }
        // Duplicate a line.
        1 => {
            let i = rng.below(lines.len());
            let mut out: Vec<&str> = lines.clone();
            out.insert(i, lines[i]);
            out.join("\n")
        }
        // Swap two lines.
        2 => {
            let i = rng.below(lines.len());
            let j = rng.below(lines.len());
            let mut out: Vec<&str> = lines.clone();
            out.swap(i, j);
            out.join("\n")
        }
        // Replace one byte with a random printable character.
        3 => {
            let bytes: Vec<char> = text.chars().collect();
            if bytes.is_empty() {
                return text.to_string();
            }
            let i = rng.below(bytes.len());
            let replacement = (b' ' + rng.below(95) as u8) as char;
            bytes
                .iter()
                .enumerate()
                .map(|(j, &c)| if j == i { replacement } else { c })
                .collect()
        }
        // Truncate at a random character boundary.
        4 => {
            let chars: Vec<char> = text.chars().collect();
            let keep = rng.below(chars.len() + 1);
            chars[..keep].iter().collect()
        }
        // Insert an unknown header line.
        _ => {
            let i = rng.below(lines.len() + 1);
            let mut out: Vec<&str> = lines.clone();
            out.insert(i, "x-fuzz: 1 2 3");
            out.join("\n")
        }
    }
}

/// Monitor-oracle case: a policy automaton and a short trace, with an
/// out-of-alphabet name (`zz`) mixed in one symbol in ten and a step
/// budget one case in four.
pub fn gen_monitor(rng: &mut SplitMix) -> MonitorCase {
    let alphabet = gen_alphabet(rng);
    let policy = gen_buchi(rng, &alphabet, MAX_STATES + 1);
    let names: Vec<String> = alphabet
        .symbols()
        .map(|s| alphabet.name(s).to_string())
        .collect();
    let len = rng.below(13);
    let trace = (0..len)
        .map(|_| {
            if rng.percent() < 10 {
                "zz".to_string()
            } else {
                names[rng.below(names.len())].clone()
            }
        })
        .collect();
    let budget = if rng.percent() < 25 {
        Some(1 + rng.next_u64() % 32)
    } else {
        None
    };
    MonitorCase {
        policy: hoa::to_hoa(&policy, "policy"),
        trace,
        budget,
    }
}

/// Compiled-oracle case: same shape as a monitor case, but judged by
/// the three-way compiled/subset/NFA-set differential. Traces run a
/// little longer (the dense table is a per-step artifact, so longer
/// prefixes probe more of it) and allow slightly bigger policies so
/// minimization has something to merge.
pub fn gen_compiled(rng: &mut SplitMix) -> MonitorCase {
    let alphabet = gen_alphabet(rng);
    let policy = gen_buchi(rng, &alphabet, MAX_STATES + 2);
    let names: Vec<String> = alphabet
        .symbols()
        .map(|s| alphabet.name(s).to_string())
        .collect();
    let len = rng.below(21);
    let trace = (0..len)
        .map(|_| {
            if rng.percent() < 10 {
                "zz".to_string()
            } else {
                names[rng.below(names.len())].clone()
            }
        })
        .collect();
    let budget = if rng.percent() < 25 {
        Some(1 + rng.next_u64() % 32)
    } else {
        None
    };
    MonitorCase {
        policy: hoa::to_hoa(&policy, "policy"),
        trace,
        budget,
    }
}

/// Session-oracle case: a JSON-lines daemon session with 2–3 defines
/// (LTL or HOA source) and 3–8 queries, including deliberate unknown
/// names, malformed lines, tight budgets, and batches. The `stats`
/// verb is excluded: its reply legitimately differs between cache
/// configurations, which is exactly what this oracle diffs.
pub fn gen_session(rng: &mut SplitMix) -> SessionCase {
    let alphabet = Alphabet::ab();
    let alphabet_json = "[\"a\",\"b\"]";
    let mut lines = Vec::new();
    let mut id = 0u64;
    let mut next_id = |lines: &mut Vec<String>, body: String| {
        id += 1;
        lines.push(format!("{{\"id\":{id},{body}}}"));
    };
    let defines = 2 + rng.below(2);
    let names: Vec<String> = (0..defines).map(|i| format!("p{i}")).collect();
    for name in &names {
        if rng.flip() {
            let formula = gen_ltl(rng, &alphabet, 3);
            let text = escape(&formula.display(&alphabet));
            next_id(
                &mut lines,
                format!(
                    "\"verb\":\"define\",\"name\":\"{name}\",\"ltl\":\"{text}\",\"alphabet\":{alphabet_json}"
                ),
            );
        } else {
            let b = gen_buchi(rng, &alphabet, MAX_STATES);
            let text = escape(&sl_buchi::hoa::to_hoa(&b, name));
            next_id(
                &mut lines,
                format!("\"verb\":\"define\",\"name\":\"{name}\",\"hoa\":\"{text}\""),
            );
        }
    }
    let pick = |rng: &mut SplitMix| -> String {
        if rng.percent() < 8 {
            "ghost".to_string() // deliberately undefined
        } else {
            names[rng.below(names.len())].clone()
        }
    };
    let queries = 3 + rng.below(6);
    for _ in 0..queries {
        let budget = if rng.percent() < 30 {
            format!(",\"budget\":{{\"steps\":{}}}", 1 + rng.next_u64() % 5_000)
        } else {
            String::new()
        };
        match rng.below(8) {
            0 => next_id(
                &mut lines,
                format!("\"verb\":\"classify\",\"target\":\"{}\"{budget}", pick(rng)),
            ),
            1 => next_id(
                &mut lines,
                format!("\"verb\":\"universal\",\"target\":\"{}\"{budget}", pick(rng)),
            ),
            2 => next_id(
                &mut lines,
                format!(
                    "\"verb\":\"include\",\"left\":\"{}\",\"right\":\"{}\"{budget}",
                    pick(rng),
                    pick(rng)
                ),
            ),
            3 => next_id(
                &mut lines,
                format!(
                    "\"verb\":\"equivalent\",\"left\":\"{}\",\"right\":\"{}\"{budget}",
                    pick(rng),
                    pick(rng)
                ),
            ),
            4 => next_id(
                &mut lines,
                format!("\"verb\":\"decompose\",\"target\":\"{}\"{budget}", pick(rng)),
            ),
            5 => {
                let symbols: Vec<String> = (0..1 + rng.below(4))
                    .map(|_| {
                        if rng.percent() < 10 {
                            "\"zz\"".to_string()
                        } else if rng.flip() {
                            "\"a\"".to_string()
                        } else {
                            "\"b\"".to_string()
                        }
                    })
                    .collect();
                next_id(
                    &mut lines,
                    format!(
                        "\"verb\":\"monitor-step\",\"monitor\":\"m0\",\"target\":\"{}\",\"symbols\":[{}]{budget}",
                        pick(rng),
                        symbols.join(",")
                    ),
                );
            }
            6 => {
                let items: Vec<String> = (0..2 + rng.below(2))
                    .map(|_| {
                        format!(
                            "{{\"verb\":\"classify\",\"target\":\"{}\"}}",
                            pick(rng)
                        )
                    })
                    .collect();
                next_id(
                    &mut lines,
                    format!("\"verb\":\"batch\",\"items\":[{}]{budget}", items.join(",")),
                );
            }
            _ => {
                if rng.percent() < 20 {
                    lines.push("{not json".to_string()); // parse-error path
                } else {
                    next_id(
                        &mut lines,
                        format!("\"verb\":\"classify\",\"target\":\"{}\"{budget}", pick(rng)),
                    );
                }
            }
        }
    }
    SessionCase { lines }
}

/// Crash-oracle case: a session heavy on the *journaled* verbs
/// (`define`, `decompose`, `monitor-step`) so the drill gets record
/// boundaries to kill at, interleaved with queries whose responses the
/// recovered daemon must reproduce byte-for-byte. `stats` is excluded
/// (persistence metrics legitimately differ between a crashed-and-
/// recovered daemon and its uninterrupted twin), as are `quit` and
/// `shutdown` (the drill manages lifecycle itself). Budgets are
/// omitted: the drill's contract is byte-identity, no degradation
/// excuse. The snapshot interval is drawn small enough that rotations
/// land inside the generated sessions.
///
/// Some cases are **multi-client**: `k > 1` independent sessions over
/// namespaced targets (`c{j}_p0`, monitors `c{j}_m0`) interleaved
/// round-robin, line `i` belonging to client `i mod k` — the shape a
/// concurrent daemon's journal takes when several connections mutate
/// state at once. Every client contributes the same number of lines so
/// the positional assignment is total.
pub fn gen_crash(rng: &mut SplitMix) -> CrashCase {
    let clients = [1, 1, 1, 1, 2, 2, 3][rng.below(7)];
    // Multi-client sessions are kept shorter per client: the drill is
    // O(records²) in the *interleaved* length.
    let defines = 1 + rng.below(2);
    let ops = if clients == 1 { 3 + rng.below(6) } else { 2 + rng.below(3) };
    let sessions: Vec<Vec<String>> = (0..clients)
        .map(|j| {
            let ns = if clients == 1 { String::new() } else { format!("c{j}_") };
            gen_crash_session(rng, &ns, defines, ops)
        })
        .collect();
    let per_client = defines + ops;
    let mut lines = Vec::with_capacity(clients * per_client);
    for round in 0..per_client {
        for session in &sessions {
            lines.push(session[round].clone());
        }
    }
    let snapshot_every = [0u64, 1, 2, 3, 5, 8][rng.below(6)];
    CrashCase {
        lines,
        snapshot_every,
        clients: clients as u32,
    }
}

/// One client's crash-drill sub-session: `defines` definitions then
/// `ops` operations (exactly one line each), every target and monitor
/// name prefixed with `ns` so concurrent clients never share state.
fn gen_crash_session(rng: &mut SplitMix, ns: &str, defines: usize, ops: usize) -> Vec<String> {
    let alphabet = Alphabet::ab();
    let alphabet_json = "[\"a\",\"b\"]";
    let mut lines = Vec::new();
    let mut id = 0u64;
    let mut next_id = |lines: &mut Vec<String>, body: String| {
        id += 1;
        lines.push(format!("{{\"id\":{id},{body}}}"));
    };
    let names: Vec<String> = (0..defines).map(|i| format!("{ns}p{i}")).collect();
    for name in &names {
        if rng.flip() {
            let formula = gen_ltl(rng, &alphabet, 3);
            let text = escape(&formula.display(&alphabet));
            next_id(
                &mut lines,
                format!(
                    "\"verb\":\"define\",\"name\":\"{name}\",\"ltl\":\"{text}\",\"alphabet\":{alphabet_json}"
                ),
            );
        } else {
            let b = gen_buchi(rng, &alphabet, MAX_STATES);
            let text = escape(&sl_buchi::hoa::to_hoa(&b, name));
            next_id(
                &mut lines,
                format!("\"verb\":\"define\",\"name\":\"{name}\",\"hoa\":\"{text}\""),
            );
        }
    }
    let pick = |rng: &mut SplitMix| -> String {
        if rng.percent() < 8 {
            format!("{ns}ghost") // deliberately undefined
        } else {
            names[rng.below(names.len())].clone()
        }
    };
    for _ in 0..ops {
        match rng.below(8) {
            // Journaled verbs dominate: record boundaries are kill
            // points, so sessions need plenty of them.
            0 | 1 | 2 => {
                let symbols: Vec<String> = (0..1 + rng.below(4))
                    .map(|_| {
                        if rng.percent() < 10 {
                            "\"zz\"".to_string()
                        } else if rng.flip() {
                            "\"a\"".to_string()
                        } else {
                            "\"b\"".to_string()
                        }
                    })
                    .collect();
                let monitor = format!("{ns}m{}", rng.below(3));
                next_id(
                    &mut lines,
                    format!(
                        "\"verb\":\"monitor-step\",\"monitor\":\"{monitor}\",\"target\":\"{}\",\"symbols\":[{}]",
                        pick(rng),
                        symbols.join(",")
                    ),
                );
            }
            3 => next_id(
                &mut lines,
                format!("\"verb\":\"decompose\",\"target\":\"{}\"", pick(rng)),
            ),
            4 => {
                // Redefinition mid-session: live monitor sessions keep
                // their original automaton, and recovery must too.
                let name = names[rng.below(names.len())].clone();
                let b = gen_buchi(rng, &alphabet, MAX_STATES);
                let text = escape(&sl_buchi::hoa::to_hoa(&b, &name));
                next_id(
                    &mut lines,
                    format!("\"verb\":\"define\",\"name\":\"{name}\",\"hoa\":\"{text}\""),
                );
            }
            5 => next_id(
                &mut lines,
                format!("\"verb\":\"classify\",\"target\":\"{}\"", pick(rng)),
            ),
            6 => next_id(
                &mut lines,
                format!(
                    "\"verb\":\"include\",\"left\":\"{}\",\"right\":\"{}\"",
                    pick(rng),
                    pick(rng)
                ),
            ),
            _ => {
                if rng.percent() < 20 {
                    lines.push("{not json".to_string()); // never journaled
                } else {
                    next_id(
                        &mut lines,
                        format!("\"verb\":\"universal\",\"target\":\"{}\"", pick(rng)),
                    );
                }
            }
        }
    }
    lines
}

/// PDR-oracle case: a small total Kripke structure (every state keeps
/// at least one successor), a bad set drawn one state in four, the
/// property flavour by coin flip, and a tight step budget one case in
/// five so the budget-exhaustion path stays exercised. Sizes stay
/// small because the differential reference (exact BFS / lasso search)
/// and the oracle's certificate replay are both run per case.
pub fn gen_pdr(rng: &mut SplitMix) -> PdrCase {
    let n = 1 + rng.below(8);
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let outs = 1 + rng.below(3);
            (0..outs).map(|_| rng.below(n)).collect()
        })
        .collect();
    let initial = rng.below(n);
    let bad: Vec<usize> = (0..n).filter(|_| rng.percent() < 25).collect();
    let liveness = rng.flip();
    let budget = if rng.percent() < 20 {
        Some(1 + rng.next_u64() % 200)
    } else {
        None
    };
    PdrCase {
        succ,
        initial,
        bad,
        liveness,
        budget,
    }
}

/// Minimal JSON string escaping for embedding generated text in
/// hand-rendered request lines.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Generates the case for `oracle` from the stream.
///
/// # Panics
///
/// Panics on an unknown oracle name (the CLI validates first).
#[must_use]
pub fn gen_case(oracle: &str, rng: &mut SplitMix) -> Case {
    match oracle {
        "incl" => Case::Incl(gen_incl(rng)),
        "incl3" => Case::Incl3(gen_incl3(rng)),
        "lattice" => Case::Lattice(gen_lattice(rng)),
        "hoa" => Case::Hoa(gen_hoa(rng)),
        "monitor" => Case::Monitor(gen_monitor(rng)),
        "compiled" => Case::Compiled(gen_compiled(rng)),
        "session" => Case::Session(gen_session(rng)),
        "crash" => Case::Crash(gen_crash(rng)),
        "pdr" => Case::Pdr(gen_pdr(rng)),
        other => panic!("unknown oracle `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_support::prop::case_rng;

    #[test]
    fn generators_are_deterministic_in_the_stream() {
        for oracle in crate::oracles::ORACLES {
            for case in 0..8u32 {
                let a = gen_case(oracle, &mut case_rng(11, oracle, case));
                let b = gen_case(oracle, &mut case_rng(11, oracle, case));
                assert_eq!(a, b, "oracle {oracle} case {case}");
            }
        }
    }

    #[test]
    fn generated_cases_survive_the_codec() {
        for oracle in crate::oracles::ORACLES {
            for case in 0..8u32 {
                let c = gen_case(oracle, &mut case_rng(23, oracle, case));
                let back = Case::from_line(&c.to_line()).expect("codec");
                assert_eq!(back, c);
            }
        }
    }

    #[test]
    fn generated_ltl_reparses() {
        let alphabet = Alphabet::ab();
        let mut rng = SplitMix::new(5);
        for _ in 0..50 {
            let f = gen_ltl(&mut rng, &alphabet, 3);
            let text = f.display(&alphabet);
            let back = sl_ltl::parse(&alphabet, &text).expect("display reparses");
            assert_eq!(back, f, "{text}");
        }
    }
}
