//! Case shrinking: a [`sl_support::prop::Strategy`] per oracle, so the
//! greedy [`sl_support::prop::minimize`] loop drives minimization.
//!
//! Automata shrink by dropping states (non-initial), dropping
//! transitions, and clearing accepting bits; lattices shrink by
//! dropping or simplifying recipe factors and thinning fixpoint bases;
//! HOA documents shrink line-wise; traces and sessions shrink by
//! dropping entries. Candidates are ordered biggest-reduction-first so
//! the greedy loop converges in few evaluations.

use crate::case::{
    Case, CrashCase, Factor, HoaCase, Incl3Case, InclCase, LatticeCase, MonitorCase, PdrCase,
    SessionCase,
};
use crate::gen;
use sl_buchi::{hoa, BuchiBuilder};
use sl_support::prop::Strategy;
use sl_support::SplitMix;

/// The per-oracle strategy handed to the runner: `generate` draws from
/// [`gen::gen_case`], `shrink` proposes structurally smaller cases.
pub struct CaseStrategy {
    /// Which oracle's cases this strategy produces.
    pub oracle: &'static str,
}

impl Strategy for CaseStrategy {
    type Value = Case;

    fn generate(&self, rng: &mut SplitMix) -> Case {
        gen::gen_case(self.oracle, rng)
    }

    fn shrink(&self, value: &Case) -> Vec<Case> {
        shrink_case(value)
    }
}

/// All shrink candidates for a case, biggest reductions first.
#[must_use]
pub fn shrink_case(case: &Case) -> Vec<Case> {
    match case {
        Case::Incl(c) => shrink_incl(c),
        Case::Incl3(c) => shrink_incl3(c),
        Case::Lattice(c) => shrink_lattice(c),
        Case::Hoa(c) => shrink_hoa(c),
        Case::Monitor(c) => wrap_monitor_variants(c, Case::Monitor),
        Case::Compiled(c) => wrap_monitor_variants(c, Case::Compiled),
        Case::Session(c) => shrink_session(c),
        Case::Crash(c) => shrink_crash(c),
        Case::Pdr(c) => shrink_pdr(c),
    }
}

/// Smaller variants of an automaton, via its parsed form. Returns
/// nothing when the HOA text does not parse (corrupt case).
fn shrink_buchi(text: &str) -> Vec<String> {
    let Ok(b) = hoa::from_hoa(text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Drop a non-initial state (and every transition touching it).
    for q in 0..b.num_states() {
        if q == b.initial() {
            continue;
        }
        let keep: Vec<bool> = (0..b.num_states()).map(|s| s != q).collect();
        out.push(b.restrict(&keep));
    }
    // Drop one transition.
    for q in 0..b.num_states() {
        for sym in b.alphabet().symbols() {
            for (i, _) in b.successors(q, sym).iter().enumerate() {
                let mut builder = BuchiBuilder::new(b.alphabet().clone());
                for s in 0..b.num_states() {
                    builder.add_state(b.is_accepting(s));
                }
                for s in 0..b.num_states() {
                    for sym2 in b.alphabet().symbols() {
                        for (j, &succ) in b.successors(s, sym2).iter().enumerate() {
                            if s == q && sym2 == sym && j == i {
                                continue;
                            }
                            builder.add_transition(s, sym2, succ);
                        }
                    }
                }
                out.push(builder.build(b.initial()));
            }
        }
    }
    // Clear one accepting bit.
    for q in 0..b.num_states() {
        if !b.is_accepting(q) {
            continue;
        }
        let mut builder = BuchiBuilder::new(b.alphabet().clone());
        for s in 0..b.num_states() {
            builder.add_state(s != q && b.is_accepting(s));
        }
        for s in 0..b.num_states() {
            for sym in b.alphabet().symbols() {
                for &succ in b.successors(s, sym) {
                    builder.add_transition(s, sym, succ);
                }
            }
        }
        out.push(builder.build(b.initial()));
    }
    out.into_iter().map(|b| hoa::to_hoa(&b, "shrunk")).collect()
}

fn shrink_incl(c: &InclCase) -> Vec<Case> {
    let mut out = Vec::new();
    for left in shrink_buchi(&c.left) {
        out.push(Case::Incl(InclCase {
            left,
            right: c.right.clone(),
            budget: c.budget,
        }));
    }
    for right in shrink_buchi(&c.right) {
        out.push(Case::Incl(InclCase {
            left: c.left.clone(),
            right,
            budget: c.budget,
        }));
    }
    if c.budget.is_some() {
        out.push(Case::Incl(InclCase {
            left: c.left.clone(),
            right: c.right.clone(),
            budget: None,
        }));
    }
    out
}

fn shrink_incl3(c: &Incl3Case) -> Vec<Case> {
    let with = |left: String, right: String, steps: u32, budget: Option<u64>| {
        Case::Incl3(Incl3Case {
            left,
            right,
            steps,
            seed: c.seed,
            budget,
        })
    };
    let mut out = Vec::new();
    // Halve the mutation sequence first: the incremental drill
    // re-derives its edits from (seed, steps), so a shorter prefix is
    // still a faithful replay and usually the biggest reduction.
    if c.steps > 1 {
        out.push(with(c.left.clone(), c.right.clone(), c.steps / 2, c.budget));
    }
    for left in shrink_buchi(&c.left) {
        out.push(with(left, c.right.clone(), c.steps, c.budget));
    }
    for right in shrink_buchi(&c.right) {
        out.push(with(c.left.clone(), right, c.steps, c.budget));
    }
    if c.steps > 0 {
        out.push(with(c.left.clone(), c.right.clone(), c.steps - 1, c.budget));
    }
    if c.budget.is_some() {
        out.push(with(c.left.clone(), c.right.clone(), c.steps, None));
    }
    out
}

fn shrink_lattice(c: &LatticeCase) -> Vec<Case> {
    let mut out = Vec::new();
    // Drop a factor (keeping at least one).
    if c.factors.len() > 1 {
        for i in 0..c.factors.len() {
            let mut factors = c.factors.clone();
            factors.remove(i);
            out.push(Case::Lattice(LatticeCase {
                factors,
                fix2: c.fix2.clone(),
                extra1: c.extra1.clone(),
            }));
        }
    }
    // Simplify a factor (M3 → B2 → B1; B3 → B2 → B1).
    for (i, factor) in c.factors.iter().enumerate() {
        let smaller = match factor {
            Factor::M3 | Factor::Boolean(3) => Some(Factor::Boolean(2)),
            Factor::Boolean(2) => Some(Factor::Boolean(1)),
            Factor::Boolean(_) => None,
        };
        if let Some(smaller) = smaller {
            let mut factors = c.factors.clone();
            factors[i] = smaller;
            out.push(Case::Lattice(LatticeCase {
                factors,
                fix2: c.fix2.clone(),
                extra1: c.extra1.clone(),
            }));
        }
    }
    // Thin the fixpoint bases.
    for i in 0..c.fix2.len() {
        let mut fix2 = c.fix2.clone();
        fix2.remove(i);
        out.push(Case::Lattice(LatticeCase {
            factors: c.factors.clone(),
            fix2,
            extra1: c.extra1.clone(),
        }));
    }
    for i in 0..c.extra1.len() {
        let mut extra1 = c.extra1.clone();
        extra1.remove(i);
        out.push(Case::Lattice(LatticeCase {
            factors: c.factors.clone(),
            fix2: c.fix2.clone(),
            extra1,
        }));
    }
    out
}

fn shrink_hoa(c: &HoaCase) -> Vec<Case> {
    let lines: Vec<&str> = c.text.lines().collect();
    let mut out = Vec::new();
    // Keep only the first half (big reductions first).
    if lines.len() > 1 {
        out.push(Case::Hoa(HoaCase {
            text: lines[..lines.len() / 2].join("\n"),
        }));
    }
    // Drop one line at a time.
    for i in 0..lines.len() {
        let mut rest = lines.clone();
        rest.remove(i);
        out.push(Case::Hoa(HoaCase {
            text: rest.join("\n"),
        }));
    }
    out
}

/// Trace/policy/budget shrinks for a monitor-shaped case, re-wrapped
/// into the originating oracle (`monitor` and `compiled` share the
/// case shape, and a shrunk case must stay with its oracle).
fn wrap_monitor_variants(c: &MonitorCase, wrap: fn(MonitorCase) -> Case) -> Vec<Case> {
    let mut out = Vec::new();
    for policy in shrink_buchi(&c.policy) {
        out.push(wrap(MonitorCase {
            policy,
            trace: c.trace.clone(),
            budget: c.budget,
        }));
    }
    for i in 0..c.trace.len() {
        let mut trace = c.trace.clone();
        trace.remove(i);
        out.push(wrap(MonitorCase {
            policy: c.policy.clone(),
            trace,
            budget: c.budget,
        }));
    }
    if c.budget.is_some() {
        out.push(wrap(MonitorCase {
            policy: c.policy.clone(),
            trace: c.trace.clone(),
            budget: None,
        }));
    }
    out
}

fn shrink_session(c: &SessionCase) -> Vec<Case> {
    let mut out = Vec::new();
    // Drop the tail half first, then single lines.
    if c.lines.len() > 1 {
        out.push(Case::Session(SessionCase {
            lines: c.lines[..c.lines.len() / 2].to_vec(),
        }));
    }
    for i in 0..c.lines.len() {
        let mut lines = c.lines.clone();
        lines.remove(i);
        if lines.is_empty() {
            continue;
        }
        out.push(Case::Session(SessionCase { lines }));
    }
    out
}

fn shrink_crash(c: &CrashCase) -> Vec<Case> {
    let mut out = Vec::new();
    let clients = c.clients.max(1) as usize;
    if clients > 1 {
        // The round-robin assignment is positional (line i → client
        // i mod k), so interior removal would silently reassign every
        // later line. Shrink along the moves that preserve it: keep
        // one client's sub-session as a single-client case, or drop
        // whole tail rounds.
        for j in 0..clients {
            let lines: Vec<String> = c
                .lines
                .iter()
                .enumerate()
                .filter(|(i, _)| i % clients == j)
                .map(|(_, l)| l.clone())
                .collect();
            if !lines.is_empty() {
                out.push(Case::Crash(CrashCase {
                    lines,
                    snapshot_every: c.snapshot_every,
                    clients: 1,
                }));
            }
        }
        if c.lines.len() > clients {
            let keep = (c.lines.len() / 2 / clients).max(1) * clients;
            out.push(Case::Crash(CrashCase {
                lines: c.lines[..keep].to_vec(),
                snapshot_every: c.snapshot_every,
                clients: c.clients,
            }));
        }
        if c.snapshot_every != 0 {
            out.push(Case::Crash(CrashCase {
                lines: c.lines.clone(),
                snapshot_every: 0,
                clients: c.clients,
            }));
        }
        return out;
    }
    // Drop the tail half first, then single lines — the drill is
    // O(records²), so shedding lines early pays twice.
    if c.lines.len() > 1 {
        out.push(Case::Crash(CrashCase {
            lines: c.lines[..c.lines.len() / 2].to_vec(),
            snapshot_every: c.snapshot_every,
            clients: 1,
        }));
    }
    for i in 0..c.lines.len() {
        let mut lines = c.lines.clone();
        lines.remove(i);
        if lines.is_empty() {
            continue;
        }
        out.push(Case::Crash(CrashCase {
            lines,
            snapshot_every: c.snapshot_every,
            clients: 1,
        }));
    }
    // Snapshot rotation off is the simpler-to-debug configuration.
    if c.snapshot_every != 0 {
        out.push(Case::Crash(CrashCase {
            lines: c.lines.clone(),
            snapshot_every: 0,
            clients: 1,
        }));
    }
    out
}

fn shrink_pdr(c: &PdrCase) -> Vec<Case> {
    let mut out = Vec::new();
    let with = |succ: Vec<Vec<usize>>, bad: Vec<usize>, liveness: bool, budget: Option<u64>| {
        Case::Pdr(PdrCase {
            succ,
            initial: c.initial,
            bad,
            liveness,
            budget,
        })
    };
    // Drop a state. The oracle interprets every index modulo the state
    // count, so the remaining rows (and `initial`/`bad`) stay valid
    // without remapping.
    if c.succ.len() > 1 {
        for i in 0..c.succ.len() {
            let mut succ = c.succ.clone();
            succ.remove(i);
            out.push(with(succ, c.bad.clone(), c.liveness, c.budget));
        }
    }
    // Drop one successor, keeping the relation total.
    for s in 0..c.succ.len() {
        if c.succ[s].len() < 2 {
            continue;
        }
        for j in 0..c.succ[s].len() {
            let mut succ = c.succ.clone();
            succ[s].remove(j);
            out.push(with(succ, c.bad.clone(), c.liveness, c.budget));
        }
    }
    // Thin the bad set.
    for i in 0..c.bad.len() {
        let mut bad = c.bad.clone();
        bad.remove(i);
        out.push(with(c.succ.clone(), bad, c.liveness, c.budget));
    }
    // Safety is the simpler-to-debug property, and no budget the
    // simpler configuration.
    if c.liveness {
        out.push(with(c.succ.clone(), c.bad.clone(), false, c.budget));
    }
    if c.budget.is_some() {
        out.push(with(c.succ.clone(), c.bad.clone(), c.liveness, None));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_support::prop::case_rng;

    #[test]
    fn shrink_candidates_are_strictly_smaller_or_equal() {
        for oracle in crate::oracles::ORACLES {
            for case in 0..6u32 {
                let c = gen::gen_case(oracle, &mut case_rng(31, oracle, case));
                for candidate in shrink_case(&c) {
                    assert!(
                        candidate.weight() <= c.weight() && candidate != c,
                        "candidate not smaller for {oracle}: {} -> {}",
                        c.weight(),
                        candidate.weight()
                    );
                }
            }
        }
    }

    #[test]
    fn buchi_shrinking_reaches_one_state() {
        let sigma = sl_omega::Alphabet::ab();
        let b = sl_buchi::random_buchi(
            &sigma,
            9,
            sl_buchi::RandomConfig {
                states: 4,
                density_percent: 90,
                accepting_percent: 50,
            },
        );
        let mut current = hoa::to_hoa(&b, "t");
        // Greedily take the first candidate until none are left: must
        // bottom out at a single state with no transitions.
        loop {
            let candidates = shrink_buchi(&current);
            match candidates.into_iter().next() {
                Some(next) => current = next,
                None => break,
            }
        }
        let minimal = hoa::from_hoa(&current).unwrap();
        assert_eq!(minimal.num_states(), 1);
    }
}
