//! The regression corpus: a checked-in JSONL file of minimal
//! reproducers that CI replays forever.
//!
//! Format: one [`Case`] JSON object per line (see [`Case::to_line`]);
//! blank lines and `#` comments are skipped. New findings are appended
//! by `slfuzz --append-corpus`, already-shrunk.

use crate::case::Case;
use crate::oracles::{self, Outcome};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One replayed corpus entry.
#[derive(Debug)]
pub struct CorpusResult {
    /// 1-based line number in the corpus file.
    pub line_number: usize,
    /// The replayed case's oracle.
    pub oracle: String,
    /// The oracle's verdict.
    pub outcome: Outcome,
}

/// Summary of a full corpus replay.
#[derive(Debug, Default)]
pub struct CorpusReport {
    /// Entries replayed.
    pub replayed: usize,
    /// Entries whose oracle reported `Fail` (plus malformed lines).
    pub failures: Vec<String>,
    /// Entries accepted under a budget/fault degradation.
    pub accepted: usize,
}

/// Loads the corpus file into cases, reporting malformed lines by
/// number. A missing file is an empty corpus, not an error — the
/// corpus starts empty and grows with findings.
///
/// # Errors
///
/// Returns the I/O error message if the file exists but cannot be
/// read.
pub fn load(path: &Path) -> Result<Vec<(usize, Result<Case, String>)>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty() && !line.trim_start().starts_with('#'))
        .map(|(i, line)| (i + 1, Case::from_line(line)))
        .collect())
}

/// Replays every corpus entry through its oracle.
///
/// # Errors
///
/// Propagates [`load`] errors.
pub fn replay(path: &Path) -> Result<CorpusReport, String> {
    let mut report = CorpusReport::default();
    for (line_number, parsed) in load(path)? {
        match parsed {
            Err(msg) => report
                .failures
                .push(format!("{}:{line_number}: malformed corpus entry: {msg}", path.display())),
            Ok(case) => {
                report.replayed += 1;
                match oracles::check(&case) {
                    Outcome::Pass => {}
                    Outcome::Accepted(_) => report.accepted += 1,
                    Outcome::Fail(msg) => report.failures.push(format!(
                        "{}:{line_number}: oracle {} rejects corpus entry: {msg}",
                        path.display(),
                        case.oracle()
                    )),
                }
            }
        }
    }
    Ok(report)
}

/// Appends cases to the corpus file (created if missing), skipping
/// entries already present byte-for-byte.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn append(path: &Path, cases: &[Case]) -> Result<usize, String> {
    let existing: std::collections::HashSet<String> = if path.exists() {
        fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .lines()
            .map(str::to_string)
            .collect()
    } else {
        std::collections::HashSet::new()
    };
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut added = 0;
    for case in cases {
        let line = case.to_line();
        if existing.contains(&line) {
            continue;
        }
        writeln!(file, "{line}").map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        added += 1;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{Factor, LatticeCase};

    #[test]
    fn missing_corpus_is_empty() {
        let report = replay(Path::new("/nonexistent/conform_corpus.jsonl")).unwrap();
        assert_eq!(report.replayed, 0);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn append_dedupes_and_replay_accepts() {
        let dir = std::env::temp_dir().join(format!("sl-conform-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.jsonl");
        let _ = fs::remove_file(&path);
        let case = Case::Lattice(LatticeCase {
            factors: vec![Factor::Boolean(2)],
            fix2: vec![1],
            extra1: vec![2],
        });
        assert_eq!(append(&path, &[case.clone()]).unwrap(), 1);
        assert_eq!(append(&path, &[case.clone()]).unwrap(), 0, "dedupe");
        let report = replay(&path).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_are_reported_not_fatal() {
        let dir = std::env::temp_dir().join(format!("sl-conform-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        fs::write(&path, "# comment\n\n{broken\n").unwrap();
        let report = replay(&path).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.failures.len(), 1);
        let _ = fs::remove_file(&path);
    }
}
