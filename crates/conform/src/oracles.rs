//! The differential / metamorphic oracle registry.
//!
//! Each oracle takes a [`Case`] and returns an [`Outcome`]:
//!
//! * `Pass` — every law held;
//! * `Accepted(reason)` — a `Budget` ran out or a fault drill fired;
//!   degradation is allowed, a wrong answer never is;
//! * `Fail(message)` — a law was violated; the runner shrinks the case
//!   and records a reproducer.
//!
//! The laws are the paper's universally-quantified theorems plus the
//! engine-equivalence contracts the workspace already promises:
//! antichain and rank inclusion agree (with validated witnesses),
//! classify/decompose satisfy Theorems 2/3/5/6/7 on every generated
//! lattice, `to_hoa ∘ from_hoa` is the identity with stable
//! diagnostics, monitor verdict prefixes match an independent
//! set-stepper over the safety closure, the compiled dense-table
//! monitor matches both the subset-construction `Monitor` and that
//! set-stepper verdict-for-verdict (with minimization proven
//! language-preserving per case), and daemon sessions replay
//! equivalently across thread counts and cache configurations.

use crate::case::{
    Case, CrashCase, HoaCase, Incl3Case, InclCase, LatticeCase, MonitorCase, PdrCase, SessionCase,
};
use sl_buchi::{
    accepts, closure, equivalent_antichain, equivalent_onthefly, equivalent_rank, hoa,
    included_antichain, included_antichain_budgeted, included_onthefly,
    included_onthefly_budgeted_with_cache, included_rank, live_states, scratch_quotient,
    universal_antichain, universal_onthefly, universal_rank, Buchi, BuchiBuilder, CompiledMonitor,
    Inclusion, InternedGraph, Monitor, QuotientCache, Verdict,
};
use sl_lattice::{
    classify, decompose, decompose_pair_checked, no_decomposition_exists, theorem5_applies,
    theorem6_strongest_safety, theorem7_weakest_liveness, verify_decomposition, Bitset,
    LatticeError,
};
use sl_ltl::classify_formula;
use sl_omega::{Alphabet, LassoWord, Symbol, Word};
use sl_pdr::{bmc_lasso, bmc_safety, check_liveness, check_safety, LivenessVerdict, SafetyVerdict};
use sl_service::{Json, PersistConfig, Service, ServiceConfig, Verb};
use sl_support::{fault, Budget, FaultPlan, SlError, SplitMix};
use sl_trees::{counter_product, Kripke};

/// All oracle names, in registry order.
pub const ORACLES: [&str; 9] = [
    "incl", "incl3", "lattice", "hoa", "monitor", "compiled", "session", "crash", "pdr",
];

/// The result of judging one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every law held.
    Pass,
    /// A budget or fault-drill degradation; never wrong, so accepted.
    Accepted(&'static str),
    /// A law was violated.
    Fail(String),
}

/// Judges `case` with the oracle named by its tag.
#[must_use]
pub fn check(case: &Case) -> Outcome {
    match case {
        Case::Incl(c) => check_incl(c),
        Case::Incl3(c) => check_incl3(c),
        Case::Lattice(c) => check_lattice(c),
        Case::Hoa(c) => check_hoa(c),
        Case::Monitor(c) => check_monitor(c),
        Case::Compiled(c) => check_compiled(c),
        Case::Session(c) => check_session(c),
        Case::Crash(c) => check_crash(c),
        Case::Pdr(c) => check_pdr(c),
    }
}

macro_rules! fail {
    ($($fmt:tt)*) => { return Outcome::Fail(format!($($fmt)*)) };
}

/// Extracts the declared state count from HOA text (for weight
/// reporting without a full parse).
#[must_use]
pub fn parse_states(text: &str) -> usize {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("States:") {
            if let Ok(n) = rest.trim().parse::<usize>() {
                return n;
            }
        }
    }
    text.lines().filter(|l| l.starts_with("State:")).count()
}

// ---------------------------------------------------------------------
// Oracle 1: antichain vs rank inclusion
// ---------------------------------------------------------------------

fn parse_pair(left: &str, right: &str) -> Result<(Buchi, Buchi), Outcome> {
    let left = hoa::from_hoa(left)
        .map_err(|e| Outcome::Fail(format!("case corrupt: left HOA does not parse: {e}")))?;
    let right = hoa::from_hoa(right)
        .map_err(|e| Outcome::Fail(format!("case corrupt: right HOA does not parse: {e}")))?;
    if left.alphabet() != right.alphabet() {
        return Err(Outcome::Fail("case corrupt: alphabet mismatch".into()));
    }
    Ok((left, right))
}

/// Validates an inclusion counterexample: accepted by `a`, rejected by
/// `b` — checked against *both* original automata, so neither engine
/// can launder a bogus witness.
fn valid_cex(a: &Buchi, b: &Buchi, w: &LassoWord) -> Result<(), String> {
    if !accepts(a, w) {
        return Err(format!("counterexample {w:?} is not accepted by the left automaton"));
    }
    if accepts(b, w) {
        return Err(format!("counterexample {w:?} is accepted by the right automaton"));
    }
    Ok(())
}

fn check_incl(c: &InclCase) -> Outcome {
    let (a, b) = match parse_pair(&c.left, &c.right) {
        Ok(pair) => pair,
        Err(outcome) => return outcome,
    };
    // Differential: both engines on a ⊆ b.
    let fast = included_antichain(&a, &b);
    let slow = included_rank(&a, &b);
    match (&fast, &slow) {
        (Ok(fa), Ok(sl)) => {
            let (fh, sh) = (
                matches!(fa, Inclusion::Holds),
                matches!(sl, Inclusion::Holds),
            );
            if fh != sh {
                fail!("engines disagree on inclusion: antichain={fa:?} rank={sl:?}");
            }
            if let Inclusion::CounterExample(w) = fa {
                if let Err(msg) = valid_cex(&a, &b, w) {
                    fail!("antichain {msg}");
                }
            }
            if let Inclusion::CounterExample(w) = sl {
                if let Err(msg) = valid_cex(&a, &b, w) {
                    fail!("rank {msg}");
                }
            }
        }
        _ => return Outcome::Accepted("complement budget exceeded"),
    }
    // Differential: both engines on universality of a.
    match (universal_antichain(&a), universal_rank(&a)) {
        (Ok(fa), Ok(sl)) => {
            if fa.is_ok() != sl.is_ok() {
                fail!("engines disagree on universality: antichain={fa:?} rank={sl:?}");
            }
            for w in [fa.err(), sl.err()].into_iter().flatten() {
                if accepts(&a, &w) {
                    fail!("universality witness {w:?} is accepted (not a rejection)");
                }
            }
        }
        _ => return Outcome::Accepted("complement budget exceeded"),
    }
    // Differential: both engines on equivalence.
    match (equivalent_antichain(&a, &b), equivalent_rank(&a, &b)) {
        (Ok(fa), Ok(sl)) => {
            if fa.is_ok() != sl.is_ok() {
                fail!("engines disagree on equivalence: antichain={fa:?} rank={sl:?}");
            }
            for w in [fa.err(), sl.err()].into_iter().flatten() {
                if accepts(&a, &w) == accepts(&b, &w) {
                    fail!("equivalence separator {w:?} does not separate the languages");
                }
            }
        }
        _ => return Outcome::Accepted("complement budget exceeded"),
    }
    // Budgeted twin: a successful budgeted run must agree with the
    // unbudgeted engine; exhaustion and injected faults are accepted.
    if let Some(steps) = c.budget {
        let budget = Budget::unlimited().with_steps(steps);
        match (included_antichain_budgeted(&a, &b, &budget), &fast) {
            (Ok(bud), Ok(unb)) => {
                if matches!(bud, Inclusion::Holds) != matches!(unb, Inclusion::Holds) {
                    fail!("budgeted antichain disagrees with unbudgeted: {bud:?} vs {unb:?}");
                }
                if let Inclusion::CounterExample(w) = &bud {
                    if let Err(msg) = valid_cex(&a, &b, w) {
                        fail!("budgeted antichain {msg}");
                    }
                }
            }
            (Err(e), _) if e.is_budget_exceeded() || e.is_fault_injected() => {
                return Outcome::Accepted("step budget exhausted");
            }
            (Err(e), _) => fail!("budgeted antichain returned a non-budget error: {e}"),
            (Ok(_), Err(_)) => {}
        }
    }
    Outcome::Pass
}

// ---------------------------------------------------------------------
// Oracle 1b: three-engine inclusion + incremental quotient drill
// ---------------------------------------------------------------------

/// The editable shape of an automaton for the seeded mutation drill:
/// acceptance bits plus the per-(state, symbol-index) successor lists.
/// Mutations edit this and rebuild, since [`Buchi`] is immutable.
struct Shape {
    accepting: Vec<bool>,
    succ: Vec<Vec<Vec<usize>>>,
}

fn shape_of(b: &Buchi) -> Shape {
    let n = b.num_states();
    Shape {
        accepting: (0..n).map(|q| b.is_accepting(q)).collect(),
        succ: (0..n)
            .map(|q| {
                b.alphabet()
                    .symbols()
                    .map(|sym| b.successors(q, sym).to_vec())
                    .collect()
            })
            .collect(),
    }
}

fn build_shape(sigma: &Alphabet, shape: &Shape) -> Buchi {
    let mut builder = BuchiBuilder::new(sigma.clone());
    let ids: Vec<usize> = shape.accepting.iter().map(|&acc| builder.add_state(acc)).collect();
    for (q, by_sym) in shape.succ.iter().enumerate() {
        for (s, sym) in sigma.symbols().enumerate() {
            for &r in &by_sym[s] {
                builder.add_transition(ids[q], sym, ids[r]);
            }
        }
    }
    builder.build(ids[0])
}

/// One seeded random edit: toggle an acceptance bit, add or remove a
/// transition, or graft a fresh state reachable from an existing one.
fn mutate_shape(sigma: &Alphabet, shape: &mut Shape, rng: &mut SplitMix) {
    let n = shape.accepting.len();
    let nsyms = sigma.len();
    match rng.below(5) {
        0 => {
            let q = rng.below(n);
            shape.accepting[q] = !shape.accepting[q];
        }
        1 | 2 => {
            let (q, s, r) = (rng.below(n), rng.below(nsyms), rng.below(n));
            if !shape.succ[q][s].contains(&r) {
                shape.succ[q][s].push(r);
                shape.succ[q][s].sort_unstable();
            }
        }
        3 => {
            let (q, s) = (rng.below(n), rng.below(nsyms));
            if !shape.succ[q][s].is_empty() {
                let at = rng.below(shape.succ[q][s].len());
                shape.succ[q][s].remove(at);
            }
        }
        _ => {
            let from = rng.below(n);
            let s = rng.below(nsyms);
            let back = rng.below(n);
            shape.accepting.push(rng.flip());
            shape.succ.push(vec![Vec::new(); nsyms]);
            let fresh = shape.accepting.len() - 1;
            if !shape.succ[from][s].contains(&fresh) {
                shape.succ[from][s].push(fresh);
                shape.succ[from][s].sort_unstable();
            }
            shape.succ[fresh][s].push(back);
        }
    }
}

/// Three-engine differential (on-the-fly / eager antichain / rank) on
/// inclusion, universality, and equivalence, followed by the
/// incremental-quotient drill: `steps` seeded edits of the left
/// automaton, each `advance`d through an [`InternedGraph`] and checked
/// bit-for-bit against a from-scratch quotient. The dirty-SCC
/// invalidation sabotage drill must be caught here.
fn check_incl3(c: &Incl3Case) -> Outcome {
    let (a, b) = match parse_pair(&c.left, &c.right) {
        Ok(pair) => pair,
        Err(outcome) => return outcome,
    };
    // The two antichain engines are polynomial per macro-state and must
    // both answer; the rank oracle joins only on pairs small enough for
    // its complement to be cheap (incl3 pairs run bigger than the
    // rank-friendly `incl` sizes, and even a budget-aborted rank run
    // pays for the exploration up to the abort).
    let rank_feasible = a.num_states().max(b.num_states()) <= 4;
    let of = included_onthefly(&a, &b);
    let ac = included_antichain(&a, &b);
    match (&of, &ac) {
        (Ok(of), Ok(ac)) => {
            let (oh, ah) = (matches!(of, Inclusion::Holds), matches!(ac, Inclusion::Holds));
            if oh != ah {
                fail!("engines disagree on inclusion: onthefly={of:?} antichain={ac:?}");
            }
            for (engine, verdict) in [("onthefly", of), ("antichain", ac)] {
                if let Inclusion::CounterExample(w) = verdict {
                    if let Err(msg) = valid_cex(&a, &b, w) {
                        fail!("{engine} {msg}");
                    }
                }
            }
            if rank_feasible {
                if let Ok(rk) = included_rank(&a, &b) {
                    if matches!(rk, Inclusion::Holds) != ah {
                        fail!("engines disagree on inclusion: antichain={ac:?} rank={rk:?}");
                    }
                    if let Inclusion::CounterExample(w) = &rk {
                        if let Err(msg) = valid_cex(&a, &b, w) {
                            fail!("rank {msg}");
                        }
                    }
                }
            }
        }
        _ => return Outcome::Accepted("complement budget exceeded"),
    }
    // Universality of a, three ways.
    match (universal_onthefly(&a), universal_antichain(&a)) {
        (Ok(of), Ok(ac)) => {
            let ac_ok = ac.is_ok();
            if of.is_ok() != ac_ok {
                fail!("engines disagree on universality: onthefly={of:?} antichain={ac:?}");
            }
            let mut witnesses = vec![of.err(), ac.err()];
            if rank_feasible {
                if let Ok(rk) = universal_rank(&a) {
                    if rk.is_ok() != ac_ok {
                        fail!("engines disagree on universality: antichain vs rank={rk:?}");
                    }
                    witnesses.push(rk.err());
                }
            }
            for w in witnesses.into_iter().flatten() {
                if accepts(&a, &w) {
                    fail!("universality witness {w:?} is accepted (not a rejection)");
                }
            }
        }
        _ => return Outcome::Accepted("complement budget exceeded"),
    }
    // Equivalence, three ways.
    match (equivalent_onthefly(&a, &b), equivalent_antichain(&a, &b)) {
        (Ok(of), Ok(ac)) => {
            let ac_ok = ac.is_ok();
            if of.is_ok() != ac_ok {
                fail!("engines disagree on equivalence: onthefly={of:?} antichain={ac:?}");
            }
            let mut separators = vec![of.err(), ac.err()];
            if rank_feasible {
                if let Ok(rk) = equivalent_rank(&a, &b) {
                    if rk.is_ok() != ac_ok {
                        fail!("engines disagree on equivalence: antichain vs rank={rk:?}");
                    }
                    separators.push(rk.err());
                }
            }
            for w in separators.into_iter().flatten() {
                if accepts(&a, &w) == accepts(&b, &w) {
                    fail!("equivalence separator {w:?} does not separate the languages");
                }
            }
        }
        _ => return Outcome::Accepted("complement budget exceeded"),
    }
    // Budgeted on-the-fly twin through an explicit quotient cache; a
    // successful run must agree, exhaustion and faults are accepted.
    if let Some(steps) = c.budget {
        let budget = Budget::unlimited().with_steps(steps);
        let cache = QuotientCache::new();
        match (included_onthefly_budgeted_with_cache(&cache, &a, &b, &budget), &of) {
            (Ok(bud), Ok(unb)) => {
                if matches!(bud, Inclusion::Holds) != matches!(unb, Inclusion::Holds) {
                    fail!("budgeted onthefly disagrees with unbudgeted: {bud:?} vs {unb:?}");
                }
                if let Inclusion::CounterExample(w) = &bud {
                    if let Err(msg) = valid_cex(&a, &b, w) {
                        fail!("budgeted onthefly {msg}");
                    }
                }
            }
            (Err(e), _) if e.is_budget_exceeded() || e.is_fault_injected() => {
                return Outcome::Accepted("step budget exhausted");
            }
            (Err(e), _) => fail!("budgeted onthefly returned a non-budget error: {e}"),
            (Ok(_), Err(_)) => {}
        }
    }
    // Incremental-vs-scratch quotient drill: the greatest simulation
    // fixpoint is unique, so after every advance the interned node's
    // quotient must be bit-identical to a from-scratch computation.
    let sigma = a.alphabet().clone();
    let mut rng = SplitMix::new(c.seed);
    let mut graph = InternedGraph::new();
    let mut prev = a;
    graph.quotient(&prev);
    let mut shape = shape_of(&prev);
    for step in 0..c.steps {
        mutate_shape(&sigma, &mut shape, &mut rng);
        let next = build_shape(&sigma, &shape);
        graph.advance(&prev, &next);
        let Some(node) = graph.node(&next) else {
            fail!("advance did not intern the mutated automaton at step {step}");
        };
        let incremental = node.quotient();
        let scratch = scratch_quotient(&next);
        if *incremental != scratch {
            fail!(
                "incremental quotient diverged from scratch at step {step}: \
                 {} vs {} states (stale dirty-SCC seeding?)",
                incremental.num_states(),
                scratch.num_states()
            );
        }
        prev = next;
    }
    Outcome::Pass
}

// ---------------------------------------------------------------------
// Oracle 2: Theorems 2/3/5/6/7 on generated lattices
// ---------------------------------------------------------------------

fn check_lattice(c: &LatticeCase) -> Outcome {
    let (lattice, cl1, cl2) = c.build();
    if !lattice.is_modular() || !lattice.is_complemented() {
        fail!("recipe invariant broken: product of b*/m3 factors must be modular and complemented");
    }
    if !cl1.pointwise_leq(&lattice, &cl2) {
        fail!("recipe invariant broken: cl1 <= cl2 must hold by construction");
    }
    let distributive = lattice.is_distributive();
    let top = lattice.top();
    for a in 0..lattice.len() {
        // Theorem 2 (single closure) and Theorem 3 (closure pair):
        // the decomposition exists and verifies.
        match decompose(&lattice, &cl2, a) {
            Ok(d) => {
                if !verify_decomposition(&lattice, &cl2, &cl2, &a, &d) {
                    fail!("Theorem 2 decomposition of {a} does not verify: {d:?}");
                }
            }
            Err(e) => fail!("Theorem 2 decomposition of {a} failed: {e:?}"),
        }
        let pair = match decompose_pair_checked(&lattice, &cl1, &cl2, a) {
            Ok(d) => {
                if lattice.meet(d.safety, d.liveness) != a {
                    fail!("Theorem 3 identity broken at {a}: {d:?}");
                }
                if cl1.apply(d.safety) != d.safety {
                    fail!("Theorem 3 safety part of {a} is not a cl1 fixpoint: {d:?}");
                }
                if cl2.apply(d.liveness) != top {
                    fail!("Theorem 3 liveness part of {a} is not cl2-live: {d:?}");
                }
                d
            }
            Err(e) => fail!("Theorem 3 decomposition of {a} failed on a modular complemented lattice: {e:?}"),
        };
        // Classification is definitional — check it agrees with the
        // closure's own fixpoint structure.
        let class = classify(&lattice, &cl2, a);
        let is_safe = cl2.apply(a) == a;
        let is_live = cl2.apply(a) == top;
        let matches_def = match class {
            sl_lattice::decompose::Classification::Both => is_safe && is_live,
            sl_lattice::decompose::Classification::Safety => is_safe && !is_live,
            sl_lattice::decompose::Classification::Liveness => is_live && !is_safe,
            sl_lattice::decompose::Classification::Neither => !is_safe && !is_live,
        };
        if !matches_def {
            fail!("classify({a}) = {class:?} contradicts cl2.{a} = {}", cl2.apply(a));
        }
        // Theorem 5: when cl2.a = 1 and cl1.a < 1, no decomposition
        // into a cl2-safety and cl1-liveness element exists.
        if theorem5_applies(&lattice, &cl1, &cl2, a)
            && !no_decomposition_exists(&lattice, &cl2, &cl1, a)
        {
            fail!("Theorem 5 violated at {a}: hypotheses hold but a decomposition exists");
        }
        // Theorem 6: the strongest safety part is exactly cl1.a.
        match theorem6_strongest_safety(&lattice, &cl1, &cl2, a) {
            Ok(s) => {
                if s != cl1.apply(a) {
                    fail!("Theorem 6 returned {s}, expected cl1.{a} = {}", cl1.apply(a));
                }
                if s != pair.safety {
                    fail!("Theorem 6 strongest safety {s} differs from the Theorem 3 part {}", pair.safety);
                }
            }
            Err(e) => fail!("Theorem 6 failed at {a}: {e:?}"),
        }
        // Theorem 7: in a distributive lattice the weakest liveness
        // part is a ∨ b; in a non-distributive one (an M3 factor) the
        // typed refusal is the required negative control.
        match theorem7_weakest_liveness(&lattice, &cl1, &cl2, a) {
            Ok(w) => {
                if !distributive {
                    fail!("Theorem 7 accepted a non-distributive lattice at {a}");
                }
                if !lattice.leq(pair.liveness, w) {
                    fail!("Theorem 7 weakest liveness {w} is not above the Theorem 3 part {}", pair.liveness);
                }
                if lattice.meet(cl1.apply(a), w) != a {
                    fail!("Theorem 7 weakest part {w} does not re-decompose {a}");
                }
            }
            Err(LatticeError::HypothesisViolated("distributivity")) => {
                if distributive {
                    fail!("Theorem 7 refused a distributive lattice at {a}");
                }
            }
            Err(LatticeError::NoComplement(_)) => {
                fail!("Theorem 7 found no complement in a complemented lattice at {a}");
            }
            Err(e) => fail!("Theorem 7 failed at {a}: {e:?}"),
        }
    }
    Outcome::Pass
}

// ---------------------------------------------------------------------
// Oracle 3: HOA round-trip and diagnostic stability
// ---------------------------------------------------------------------

fn check_hoa(c: &HoaCase) -> Outcome {
    let attempt = || -> Result<Buchi, SlError> { hoa::from_hoa(&c.text) };
    let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(attempt));
    let first = match first {
        Ok(result) => result,
        Err(_) => fail!("from_hoa panicked on untrusted input"),
    };
    // Diagnostic stability: re-parsing yields the identical outcome.
    let second = hoa::from_hoa(&c.text);
    match (&first, &second) {
        (Ok(a), Ok(b)) => {
            if a != b {
                fail!("from_hoa is nondeterministic: two parses differ");
            }
            // Round-trip: render and re-parse is the identity on the
            // parsed automaton.
            let rendered = hoa::to_hoa(a, "roundtrip");
            match hoa::from_hoa(&rendered) {
                Ok(back) => {
                    if &back != a {
                        fail!("to_hoa ∘ from_hoa is not the identity:\n{rendered}");
                    }
                }
                Err(e) => fail!("to_hoa output does not re-parse: {e}\n{rendered}"),
            }
        }
        (Err(a), Err(b)) => {
            if a.to_string() != b.to_string() {
                fail!("parse diagnostics are unstable: `{a}` vs `{b}`");
            }
        }
        _ => fail!("from_hoa flip-flops between Ok and Err on the same input"),
    }
    Outcome::Pass
}

// ---------------------------------------------------------------------
// Oracle 4: monitor verdict prefixes vs offline classification
// ---------------------------------------------------------------------

/// An independent reference for the monitor: a nondeterministic
/// set-stepper over the live states of the safety closure. Same
/// building blocks (`closure`, `live_states`), no subset construction,
/// no memo table — so a determinization bug cannot hide.
struct SetStepper {
    cls: Buchi,
    live: Vec<bool>,
    current: Vec<usize>,
    unknown: bool,
}

impl SetStepper {
    fn new(policy: &Buchi) -> Self {
        let cls = closure(policy);
        let live = live_states(&cls);
        let current = if cls.num_states() > 0 && live.get(cls.initial()) == Some(&true) {
            vec![cls.initial()]
        } else {
            Vec::new()
        };
        SetStepper {
            cls,
            live,
            current,
            unknown: false,
        }
    }

    fn step(&mut self, sym: Symbol) -> Verdict {
        if self.current.is_empty() {
            return Verdict::Violation;
        }
        if self.unknown {
            return Verdict::Unknown;
        }
        if sym.index() >= self.cls.alphabet().len() {
            self.unknown = true;
            return Verdict::Unknown;
        }
        let mut next: Vec<usize> = self
            .current
            .iter()
            .flat_map(|&q| self.cls.successors(q, sym).iter().copied())
            .filter(|&q| self.live[q])
            .collect();
        next.sort_unstable();
        next.dedup();
        self.current = next;
        if self.current.is_empty() {
            Verdict::Violation
        } else {
            Verdict::Ok
        }
    }
}

fn check_monitor(c: &MonitorCase) -> Outcome {
    let policy = match hoa::from_hoa(&c.policy) {
        Ok(b) => b,
        Err(e) => fail!("case corrupt: policy HOA does not parse: {e}"),
    };
    let alphabet = policy.alphabet().clone();
    // Out-of-alphabet names map to an impossible symbol index, the same
    // convention the daemon uses for untrusted monitor-step requests.
    let symbols: Vec<Symbol> = c
        .trace
        .iter()
        .map(|name| alphabet.symbol(name).unwrap_or(Symbol(u16::MAX)))
        .collect();
    let mut monitor = Monitor::new(&policy);
    let mut reference = SetStepper::new(&policy);
    let mut verdicts = Vec::with_capacity(symbols.len());
    for (i, &sym) in symbols.iter().enumerate() {
        let got = monitor.step(sym);
        let want = reference.step(sym);
        if got != want {
            fail!(
                "verdict prefix diverges at step {i} on {:?}: monitor={got:?} reference={want:?}",
                c.trace.get(i)
            );
        }
        if got != monitor.verdict() {
            fail!("step() return and verdict() disagree at step {i}: {got:?} vs {:?}", monitor.verdict());
        }
        verdicts.push(got);
    }
    // Verdict stickiness: once settled, later verdicts never change.
    for pair in verdicts.windows(2) {
        if pair[0] != Verdict::Ok && pair[1] != pair[0] {
            fail!("settled verdict {:?} drifted to {:?}", pair[0], pair[1]);
        }
    }
    // run() over the whole word agrees with the final stepped verdict.
    let word = Word::new(&symbols);
    let (final_verdict, consumed) = monitor.run(&word);
    let expected_final = verdicts.last().copied().unwrap_or_else(|| {
        let mut fresh = Monitor::new(&policy);
        fresh.reset();
        fresh.verdict()
    });
    if !symbols.is_empty() && final_verdict != expected_final {
        fail!("run() verdict {final_verdict:?} disagrees with stepped prefix {expected_final:?}");
    }
    if consumed > symbols.len() {
        fail!("run() consumed {consumed} symbols of a {}-symbol trace", symbols.len());
    }
    // Budgeted twin: enough budget must agree; exhaustion is accepted.
    if let Some(steps) = c.budget {
        let budget = Budget::unlimited().with_steps(steps);
        match monitor.run_with_budget(&word, &budget) {
            Ok((v, n)) => {
                if (v, n) != (final_verdict, consumed) {
                    fail!("budgeted run ({v:?}, {n}) disagrees with unbudgeted ({final_verdict:?}, {consumed})");
                }
            }
            Err(e) if e.is_budget_exceeded() || e.is_fault_injected() => {
                return Outcome::Accepted("monitor budget exhausted");
            }
            Err(e) => fail!("budgeted run returned a non-budget error: {e}"),
        }
    }
    Outcome::Pass
}

// ---------------------------------------------------------------------
// Oracle 5: compiled dense-table monitor vs Monitor vs NFA-set stepper
// ---------------------------------------------------------------------

fn check_compiled(c: &MonitorCase) -> Outcome {
    let policy = match hoa::from_hoa(&c.policy) {
        Ok(b) => b,
        Err(e) => fail!("case corrupt: policy HOA does not parse: {e}"),
    };
    let alphabet = policy.alphabet().clone();
    let symbols: Vec<Symbol> = c
        .trace
        .iter()
        .map(|name| alphabet.symbol(name).unwrap_or(Symbol(u16::MAX)))
        .collect();
    let mut compiled = match CompiledMonitor::new(&policy) {
        Ok(m) => m,
        Err(e) => fail!("compile failed on a {}-state policy: {e}", policy.num_states()),
    };
    // Minimization correctness: the minimized table is no larger than
    // the raw subset-construction DFA and language-equivalent to it.
    match CompiledMonitor::without_minimization(&policy) {
        Ok(raw) => {
            if compiled.num_states() > raw.num_states() {
                fail!(
                    "minimized table has {} states, the raw DFA only {}",
                    compiled.num_states(),
                    raw.num_states()
                );
            }
            if !compiled.agrees_with(&raw) {
                fail!("minimization changed the verdict language");
            }
        }
        Err(e) => fail!("unminimized compile failed: {e}"),
    }
    // Three-way step differential: compiled vs subset-construction
    // Monitor vs the independent NFA-set reference, verdict for
    // verdict (including out-of-alphabet and post-violation symbols).
    let mut monitor = Monitor::new(&policy);
    let mut reference = SetStepper::new(&policy);
    let mut verdicts = Vec::with_capacity(symbols.len());
    for (i, &sym) in symbols.iter().enumerate() {
        let got = compiled.step(sym);
        let subset = monitor.step(sym);
        let want = reference.step(sym);
        if got != subset {
            fail!(
                "compiled diverges from Monitor at step {i} on {:?}: compiled={got:?} monitor={subset:?}",
                c.trace.get(i)
            );
        }
        if got != want {
            fail!(
                "compiled diverges from the NFA-set reference at step {i} on {:?}: compiled={got:?} reference={want:?}",
                c.trace.get(i)
            );
        }
        if got != compiled.verdict() {
            fail!("step() return and verdict() disagree at step {i}: {got:?} vs {:?}", compiled.verdict());
        }
        verdicts.push(got);
    }
    for pair in verdicts.windows(2) {
        if pair[0] != Verdict::Ok && pair[1] != pair[0] {
            fail!("settled verdict {:?} drifted to {:?}", pair[0], pair[1]);
        }
    }
    // run() twins: same verdict AND same settle position as Monitor.
    let word = Word::new(&symbols);
    let (final_verdict, consumed) = compiled.run(&word);
    let (monitor_verdict, monitor_consumed) = monitor.run(&word);
    if (final_verdict, consumed) != (monitor_verdict, monitor_consumed) {
        fail!(
            "compiled run ({final_verdict:?}, {consumed}) disagrees with Monitor run ({monitor_verdict:?}, {monitor_consumed})"
        );
    }
    let expected_final = verdicts.last().copied().unwrap_or_else(|| {
        CompiledMonitor::new(&policy).expect("compiled above").verdict()
    });
    if !symbols.is_empty() && final_verdict != expected_final {
        fail!("run() verdict {final_verdict:?} disagrees with stepped prefix {expected_final:?}");
    }
    if consumed > symbols.len() {
        fail!("run() consumed {consumed} symbols of a {}-symbol trace", symbols.len());
    }
    // Budgeted twin: both implementations under the same budget either
    // agree on the result or both exhaust.
    if let Some(steps) = c.budget {
        let budget = Budget::unlimited().with_steps(steps);
        let ours = compiled.run_with_budget(&word, &budget);
        let theirs = monitor.run_with_budget(&word, &budget);
        match (ours, theirs) {
            (Ok(a), Ok(b)) => {
                if a != b {
                    fail!("budgeted compiled run {a:?} disagrees with budgeted Monitor run {b:?}");
                }
                if a != (final_verdict, consumed) {
                    fail!("budgeted run {a:?} disagrees with unbudgeted ({final_verdict:?}, {consumed})");
                }
            }
            (Err(e1), Err(e2))
                if (e1.is_budget_exceeded() || e1.is_fault_injected())
                    && (e2.is_budget_exceeded() || e2.is_fault_injected()) =>
            {
                return Outcome::Accepted("monitor budget exhausted");
            }
            (Err(e), _) if !e.is_budget_exceeded() && !e.is_fault_injected() => {
                fail!("budgeted compiled run returned a non-budget error: {e}");
            }
            (a, b) => fail!("budget exhaustion asymmetry: compiled={a:?} monitor={b:?}"),
        }
    }
    Outcome::Pass
}

// ---------------------------------------------------------------------
// Oracle 6: daemon replay equivalence
// ---------------------------------------------------------------------

/// Error kinds that a budget, cancellation, or fault drill can
/// legitimately produce on one configuration but not another.
const DEGRADED_KINDS: [&str; 3] = ["budget_exceeded", "cancelled", "fault_injected"];

fn is_degraded(line: &str) -> bool {
    let Ok(doc) = sl_service::json::parse(line) else {
        return false;
    };
    let kind = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str);
    match kind {
        Some(kind) => DEGRADED_KINDS.contains(&kind),
        None => {
            // A batch reply is degraded if any item is.
            doc.get("result")
                .and_then(|r| r.get("items"))
                .and_then(Json::as_arr)
                .is_some_and(|items| {
                    items.iter().any(|item| {
                        item.get("error")
                            .and_then(|e| e.get("kind"))
                            .and_then(Json::as_str)
                            .is_some_and(|k| DEGRADED_KINDS.contains(&k))
                    })
                })
        }
    }
}

fn replay(c: &SessionCase, threads: usize, cache_cap: usize) -> Vec<String> {
    let service = Service::new(ServiceConfig {
        fault: *fault::global(),
        threads,
        max_line: 1 << 20,
        cache_cap,
        ..ServiceConfig::default()
    });
    c.lines
        .iter()
        .map(|line| service.handle_line(line).line)
        .collect()
}

/// Whether a process-wide fault drill is running (the verify.sh
/// fault-injection stage sets `SL_FAULT_RATE` for the whole suite).
fn drill_active() -> bool {
    fault::global().is_enabled()
}

fn check_session(c: &SessionCase) -> Outcome {
    let baseline = replay(c, 1, 256);
    if baseline.len() != c.lines.len() {
        fail!(
            "daemon produced {} replies for {} requests",
            baseline.len(),
            c.lines.len()
        );
    }
    // Thread-count invariance and cache-on/off/cap-and-clear
    // equivalence. A line may differ only when one side degraded
    // (budget/cancel/fault) — a cache hit legitimately dodges a budget
    // that a recomputation blows.
    let drill_active = drill_active();
    // cache_cap 1 is the practical "cache off": every insertion past
    // the first clears the table, so nothing is ever served warm.
    for (threads, cache_cap) in [(2usize, 256usize), (4, 256), (2, 1)] {
        let variant = replay(c, threads, cache_cap);
        if variant.len() != baseline.len() {
            fail!(
                "variant (threads={threads}, cache_cap={cache_cap}) reply count {} != baseline {}",
                variant.len(),
                baseline.len()
            );
        }
        let same_cache = cache_cap == 256;
        for (i, (base, var)) in baseline.iter().zip(&variant).enumerate() {
            if base == var {
                continue;
            }
            let excusable = if same_cache {
                // Same cache shape, different thread count: replies are
                // contractually byte-identical unless a fault drill is
                // active (worker-indexed fault sites move with the
                // schedule).
                drill_active && (is_degraded(base) || is_degraded(var))
            } else {
                is_degraded(base) || is_degraded(var)
            };
            if !excusable {
                fail!(
                    "variant (threads={threads}, cache_cap={cache_cap}) differs at line {i}:\n  base: {base}\n  var:  {var}"
                );
            }
        }
    }
    // Metamorphic link back to the offline engine: classify replies
    // for LTL-defined targets must match `classify_formula`.
    if let Some(msg) = cross_check_classify(c, &baseline) {
        return Outcome::Fail(msg);
    }
    Outcome::Pass
}

/// Cross-checks every successful `classify` reply whose target was
/// defined via LTL against the offline `classify_formula`.
fn cross_check_classify(c: &SessionCase, replies: &[String]) -> Option<String> {
    let mut defined: Vec<(String, Alphabet, sl_ltl::Ltl)> = Vec::new();
    for (line, reply) in c.lines.iter().zip(replies) {
        let Ok(doc) = sl_service::json::parse(line) else {
            continue;
        };
        let verb = doc.get("verb").and_then(Json::as_str);
        if verb == Some("define") {
            let (Some(name), Some(ltl), Some(alpha)) = (
                doc.get("name").and_then(Json::as_str),
                doc.get("ltl").and_then(Json::as_str),
                doc.get("alphabet").and_then(Json::as_arr),
            ) else {
                continue;
            };
            // Only index definitions the daemon actually accepted.
            let Ok(reply_doc) = sl_service::json::parse(reply) else {
                continue;
            };
            if reply_doc.get("ok").and_then(Json::as_bool) != Some(true) {
                continue;
            }
            let names: Vec<&str> = alpha.iter().filter_map(Json::as_str).collect();
            let alphabet = Alphabet::new(&names);
            let Ok(formula) = sl_ltl::parse(&alphabet, ltl) else {
                continue;
            };
            defined.retain(|(n, _, _)| n != name);
            defined.push((name.to_string(), alphabet, formula));
            continue;
        }
        if verb != Some("classify") {
            continue;
        }
        let Some(target) = doc.get("target").and_then(Json::as_str) else {
            continue;
        };
        let Some((_, alphabet, formula)) = defined.iter().find(|(n, _, _)| n == target) else {
            continue;
        };
        let Ok(reply_doc) = sl_service::json::parse(reply) else {
            continue;
        };
        let Some(got) = reply_doc
            .get("result")
            .and_then(|r| r.get("class"))
            .and_then(Json::as_str)
        else {
            continue; // error reply (budget, fault, …): nothing to diff
        };
        let want = match classify_formula(alphabet, formula) {
            sl_buchi::Classification::Safety => "safety",
            sl_buchi::Classification::Liveness => "liveness",
            sl_buchi::Classification::Both => "both",
            sl_buchi::Classification::Neither => "neither",
        };
        if got != want {
            return Some(format!(
                "daemon classified `{target}` as {got}, offline classify_formula says {want}"
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Oracle 7: crash-recovery equivalence
// ---------------------------------------------------------------------

/// Whether the daemon journals this request line ahead of dispatch.
/// Mirrors the engine's rule exactly: the line must build a [`Request`]
/// (malformed lines are answered, never journaled) and carry a
/// state-mutating verb.
fn is_journaled_line(line: &str) -> bool {
    match sl_service::parse_request(line) {
        Ok(req) => matches!(req.verb, Verb::Define | Verb::Decompose | Verb::MonitorStep),
        Err(_) => false,
    }
}

/// A fresh scratch directory for one recovery. The process id plus a
/// process-wide counter keeps parallel test binaries and drill
/// iterations apart.
fn fresh_dir(tag: &str) -> Result<std::path::PathBuf, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "sl-crash-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Chops one byte off the highest-epoch journal in `dir`, forging the
/// on-disk signature of a crash mid-`write`.
fn truncate_active_journal(dir: &std::path::Path) -> Result<(), String> {
    let mut active: Option<(u64, std::path::PathBuf)> = None;
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let epoch = name
            .strip_prefix("journal-")
            .and_then(|rest| rest.strip_suffix(".slj"))
            .and_then(|g| g.parse::<u64>().ok());
        if let Some(g) = epoch {
            if active.as_ref().is_none_or(|(best, _)| g > *best) {
                active = Some((g, entry.path()));
            }
        }
    }
    let (_, path) = active.ok_or("no journal file to truncate")?;
    let len = std::fs::metadata(&path)
        .map_err(|e| format!("cannot stat {}: {e}", path.display()))?
        .len();
    if len == 0 {
        return Err(format!("journal {} is unexpectedly empty", path.display()));
    }
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .and_then(|f| f.set_len(len - 1))
        .map_err(|e| format!("cannot truncate {}: {e}", path.display()))
}

/// The deterministic crash drill behind the `crash` oracle (public so
/// the repo-level recovery test drives 200+-request sessions through
/// it).
///
/// An uninterrupted non-persistent twin answers every line first. Then
/// for every journal record boundary `k` the drill runs a persistent
/// daemon over the prefix holding `k` records, drops it cold (no
/// drain — the write-ahead journal is all that survives), recovers a
/// successor from the directory, and requires the successor's answers
/// for the remaining lines to be byte-identical to the twin's. A
/// second pass re-runs every kill point with the journal truncated
/// mid-record: the damaged record's request must be lost (unless a
/// snapshot already absorbed it) and everything before it kept.
///
/// # Errors
///
/// A human-readable divergence description naming the kill point and
/// the first differing line.
pub fn crash_drill(lines: &[String], snapshot_every: u64) -> Result<(), String> {
    let config = || ServiceConfig {
        fault: FaultPlan::disabled(),
        ..ServiceConfig::default()
    };
    let twin = Service::new(config());
    let twin_replies: Vec<String> = lines.iter().map(|l| twin.handle_line(l).line).collect();
    let muts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, line)| is_journaled_line(line))
        .map(|(i, _)| i)
        .collect();

    // Pass 1: kill at every record boundary (k journal records on
    // disk, the journal file otherwise intact).
    for k in 0..=muts.len() {
        let cut = if k == muts.len() { lines.len() } else { muts[k] };
        let dir = fresh_dir("boundary")?;
        let persist = PersistConfig {
            dir: dir.clone(),
            snapshot_every,
        };
        let result = (|| {
            let doomed = Service::with_persistence(config(), &persist)
                .map_err(|e| format!("boundary {k}: first open failed: {e}"))?;
            for (i, line) in lines[..cut].iter().enumerate() {
                let got = doomed.handle_line(line).line;
                if got != twin_replies[i] {
                    return Err(format!(
                        "boundary {k}: persistent daemon diverges from twin at line {i} before any crash:\n  twin: {}\n  got:  {got}",
                        twin_replies[i]
                    ));
                }
            }
            drop(doomed); // crash: journal only, no drain
            let recovered = Service::with_persistence(config(), &persist)
                .map_err(|e| format!("boundary {k}: recovery failed: {e}"))?;
            for (i, line) in lines[cut..].iter().enumerate() {
                let got = recovered.handle_line(line).line;
                if got != twin_replies[cut + i] {
                    return Err(format!(
                        "boundary {k}: recovered daemon diverges at line {}:\n  twin: {}\n  got:  {got}",
                        cut + i,
                        twin_replies[cut + i]
                    ));
                }
            }
            Ok(())
        })();
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }

    // Pass 2: kill mid-record. The daemon journaled record k+1 and
    // dispatched it, but the record's tail never hit the disk: the
    // recovered daemon must have forgotten exactly that request —
    // unless a snapshot rotation already absorbed it, in which case
    // chopping a byte only grazes the fresh journal's magic.
    for (k, &mutation) in muts.iter().enumerate() {
        let cut = mutation + 1;
        let absorbed = snapshot_every > 0 && (k as u64 + 1) % snapshot_every == 0;
        let resume = if absorbed { cut } else { mutation };
        let dir = fresh_dir("midrec")?;
        let persist = PersistConfig {
            dir: dir.clone(),
            snapshot_every,
        };
        let result = (|| {
            let doomed = Service::with_persistence(config(), &persist)
                .map_err(|e| format!("midrec {k}: first open failed: {e}"))?;
            for line in &lines[..cut] {
                doomed.handle_line(line);
            }
            drop(doomed);
            truncate_active_journal(&dir).map_err(|e| format!("midrec {k}: {e}"))?;
            let recovered = Service::with_persistence(config(), &persist)
                .map_err(|e| format!("midrec {k}: recovery failed: {e}"))?;
            let notes = recovered.take_recovery_notes();
            if !absorbed && !notes.iter().any(|n| n.contains("truncated")) {
                return Err(format!(
                    "midrec {k}: a truncated journal recovered without a truncation note: {notes:?}"
                ));
            }
            for (i, line) in lines[resume..].iter().enumerate() {
                let got = recovered.handle_line(line).line;
                if got != twin_replies[resume + i] {
                    return Err(format!(
                        "midrec {k}: recovered daemon diverges at line {}:\n  twin: {}\n  got:  {got}",
                        resume + i,
                        twin_replies[resume + i]
                    ));
                }
            }
            Ok(())
        })();
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }
    Ok(())
}

fn check_crash(c: &CrashCase) -> Outcome {
    let clients = c.clients.max(1) as usize;
    if clients > 1 {
        // Transcript independence: the interleaved run (one shared
        // daemon answering line i for client i mod k) must give each
        // client exactly the replies a solo run of its sub-session
        // gives — concurrent clients over disjoint names cannot
        // observe each other. This is the multi-client half of the
        // tentpole guarantee; the crash drill below then holds the
        // *interleaved journal* to recovery byte-identity.
        let config = || ServiceConfig {
            fault: FaultPlan::disabled(),
            ..ServiceConfig::default()
        };
        let shared = Service::new(config());
        let interleaved: Vec<String> =
            c.lines.iter().map(|l| shared.handle_line(l).line).collect();
        for j in 0..clients {
            let solo = Service::new(config());
            for (i, line) in c.lines.iter().enumerate() {
                if i % clients != j {
                    continue;
                }
                let got = solo.handle_line(line).line;
                if got != interleaved[i] {
                    fail!(
                        "client {j} of {clients}: interleaved reply at line {i} differs from a solo run:\n  solo:        {got}\n  interleaved: {}",
                        interleaved[i]
                    );
                }
            }
        }
    }
    match crash_drill(&c.lines, c.snapshot_every) {
        Ok(()) => Outcome::Pass,
        Err(msg) => Outcome::Fail(msg),
    }
}

// ---------------------------------------------------------------------
// Oracle 8: LT-PDR vs exact reachability / direct lasso search
// ---------------------------------------------------------------------

/// Edge membership over raw successor lists — the oracle's certificate
/// replay deliberately never touches the engine's lattice ops or the
/// `Kripke` accessors it was handed.
fn pdr_edge(succ: &[Vec<usize>], s: usize, t: usize) -> bool {
    s < succ.len() && succ[s].contains(&t)
}

/// Replays a Safe invariant over raw successor lists: contains the
/// initial state, closed under every edge, disjoint from bad.
fn pdr_replay_invariant(
    succ: &[Vec<usize>],
    initial: usize,
    bad: &[usize],
    invariant: &Bitset,
) -> Result<(), String> {
    if invariant.universe() != succ.len() {
        return Err(format!(
            "invariant universe {} does not match {} states",
            invariant.universe(),
            succ.len()
        ));
    }
    if !invariant.contains(initial) {
        return Err(format!("invariant misses the initial state {initial}"));
    }
    for s in invariant.iter() {
        for &t in &succ[s] {
            if !invariant.contains(t) {
                return Err(format!("invariant not closed under edge {s} -> {t}"));
            }
        }
    }
    for &b in bad {
        if invariant.contains(b) {
            return Err(format!("invariant contains bad state {b}"));
        }
    }
    Ok(())
}

/// Replays an Unsafe trace over raw successor lists: starts at the
/// initial state, every step is an edge, ends bad.
fn pdr_replay_trace(
    succ: &[Vec<usize>],
    initial: usize,
    bad: &[usize],
    trace: &[usize],
) -> Result<(), String> {
    let Some(&first) = trace.first() else {
        return Err("empty trace".into());
    };
    if first != initial {
        return Err(format!("trace starts at {first}, not the initial state"));
    }
    for w in trace.windows(2) {
        if !pdr_edge(succ, w[0], w[1]) {
            return Err(format!("no edge {} -> {}", w[0], w[1]));
        }
    }
    let last = *trace.last().expect("nonempty");
    if !bad.contains(&last) {
        return Err(format!("trace ends at {last}, which is not bad"));
    }
    Ok(())
}

/// Replays a lasso over raw successor lists: the stem runs from the
/// initial state to the loop entry, the loop continues from the
/// entry's successor back to the entry and visits a bad state.
fn pdr_replay_lasso(
    succ: &[Vec<usize>],
    initial: usize,
    bad: &[usize],
    stem: &[usize],
    looping: &[usize],
) -> Result<(), String> {
    let Some(&first) = stem.first() else {
        return Err("empty stem".into());
    };
    if first != initial {
        return Err(format!("stem starts at {first}, not the initial state"));
    }
    for w in stem.windows(2) {
        if !pdr_edge(succ, w[0], w[1]) {
            return Err(format!("no stem edge {} -> {}", w[0], w[1]));
        }
    }
    let entry = *stem.last().expect("nonempty");
    let Some(&loop_head) = looping.first() else {
        return Err("empty loop".into());
    };
    if !pdr_edge(succ, entry, loop_head) {
        return Err(format!("no edge {entry} -> {loop_head} into the loop"));
    }
    for w in looping.windows(2) {
        if !pdr_edge(succ, w[0], w[1]) {
            return Err(format!("no loop edge {} -> {}", w[0], w[1]));
        }
    }
    if *looping.last().expect("nonempty") != entry {
        return Err(format!("loop does not return to its entry {entry}"));
    }
    if !looping.iter().any(|s| bad.contains(s)) {
        return Err("loop visits no bad state".into());
    }
    Ok(())
}

/// The LT-PDR oracle. Differential: the engine's `AG !bad` verdict
/// must match exact BFS reachability ([`bmc_safety`]) and its
/// `FG !bad` verdict the direct lasso search ([`bmc_lasso`]) — neither
/// reference shares a line of code with the frame/obligation engine.
/// Every certificate is then replayed here over the raw successor
/// lists, so a verdict can only pass with a machine-checked witness.
/// Budget exhaustion (and injected faults) are accepted; a wrong
/// answer never is.
fn check_pdr(c: &PdrCase) -> Outcome {
    let n = c.succ.len();
    if n == 0 {
        fail!("case corrupt: no states");
    }
    for (s, outs) in c.succ.iter().enumerate() {
        if outs.is_empty() {
            fail!("case corrupt: state {s} has no successor (relation must be total)");
        }
    }
    // Indices are interpreted modulo the state count, so shrinking the
    // state set never invalidates a case.
    let succ: Vec<Vec<usize>> = c
        .succ
        .iter()
        .map(|outs| outs.iter().map(|&t| t % n).collect())
        .collect();
    let initial = c.initial % n;
    let mut bad: Vec<usize> = c.bad.iter().map(|&b| b % n).collect();
    bad.sort_unstable();
    bad.dedup();
    let sigma = Alphabet::ab();
    let a_sym = sigma.symbol("a").expect("in alphabet");
    let b_sym = sigma.symbol("b").expect("in alphabet");
    let labels: Vec<Symbol> = (0..n)
        .map(|s| if bad.binary_search(&s).is_ok() { b_sym } else { a_sym })
        .collect();
    let kripke = Kripke::new(sigma, labels, succ.clone(), initial);
    let budget = c.budget.map_or_else(Budget::unlimited, |steps| {
        Budget::unlimited().with_steps(steps)
    });
    if c.liveness {
        let run = match check_liveness(&kripke, &bad, &budget) {
            Ok(run) => run,
            Err(e) if e.is_budget_exceeded() || e.is_fault_injected() => {
                return Outcome::Accepted("pdr budget exhausted");
            }
            Err(e) => fail!("k-liveness returned a non-budget error: {e}"),
        };
        let reference = bmc_lasso(&kripke, &bad);
        match run.verdict {
            LivenessVerdict::Live { k, invariant } => {
                if let Some((stem, looping)) = reference {
                    fail!(
                        "engines disagree on FG !bad: pdr=Live at k={k}, lasso search found stem {stem:?} loop {looping:?}"
                    );
                }
                if k > bad.len() {
                    fail!("k bound {k} exceeds the pigeonhole bound {}", bad.len());
                }
                // The Live certificate lives on the counter-augmented
                // product; rebuild it and replay inductiveness there.
                let product = counter_product(&kripke, &bad, k + 1);
                let psucc: Vec<Vec<usize>> = (0..product.kripke.len())
                    .map(|s| product.kripke.successors(s).to_vec())
                    .collect();
                if let Err(msg) = pdr_replay_invariant(
                    &psucc,
                    product.kripke.initial(),
                    &product.bad,
                    &invariant,
                ) {
                    fail!("Live certificate fails product replay at k={k}: {msg}");
                }
            }
            LivenessVerdict::Lasso { stem, looping } => {
                if reference.is_none() {
                    fail!(
                        "engines disagree on FG !bad: pdr found lasso stem {stem:?} loop {looping:?}, direct search says live"
                    );
                }
                if let Err(msg) = pdr_replay_lasso(&succ, initial, &bad, &stem, &looping) {
                    fail!("Lasso certificate fails replay: {msg}");
                }
            }
        }
    } else {
        let run = match check_safety(&kripke, &bad, &budget) {
            Ok(run) => run,
            Err(e) if e.is_budget_exceeded() || e.is_fault_injected() => {
                return Outcome::Accepted("pdr budget exhausted");
            }
            Err(e) => fail!("pdr returned a non-budget error: {e}"),
        };
        let reference = bmc_safety(&kripke, &bad);
        let pdr_safe = matches!(run.verdict, SafetyVerdict::Safe { .. });
        let bmc_safe = matches!(reference, SafetyVerdict::Safe { .. });
        if pdr_safe != bmc_safe {
            fail!(
                "engines disagree on AG !bad: pdr says {}, exact BFS says {}",
                if pdr_safe { "safe" } else { "unsafe" },
                if bmc_safe { "safe" } else { "unsafe" }
            );
        }
        match run.verdict {
            SafetyVerdict::Safe { invariant } => {
                if let Err(msg) = pdr_replay_invariant(&succ, initial, &bad, &invariant) {
                    fail!("Safe certificate fails replay: {msg}");
                }
            }
            SafetyVerdict::Unsafe { trace } => {
                if let Err(msg) = pdr_replay_trace(&succ, initial, &bad, &trace) {
                    fail!("Unsafe certificate fails replay: {msg}");
                }
            }
        }
    }
    Outcome::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use sl_support::prop::case_rng;

    /// A small smoke sweep: every oracle passes (or budget-accepts) its
    /// own generated cases.
    #[test]
    fn oracles_accept_generated_cases() {
        for oracle in ORACLES {
            for case in 0..12u32 {
                let c = gen::gen_case(oracle, &mut case_rng(2003, oracle, case));
                match check(&c) {
                    Outcome::Fail(msg) => {
                        panic!("oracle {oracle} rejected its own case {case}: {msg}\n{}", c.to_line())
                    }
                    Outcome::Pass | Outcome::Accepted(_) => {}
                }
            }
        }
    }

    #[test]
    fn incl_oracle_validates_counterexamples() {
        // Σ^ω ⊆ (only a)^ω must yield a counterexample both engines
        // validate.
        let sigma = Alphabet::ab();
        let mut all = sl_buchi::BuchiBuilder::new(sigma.clone());
        let q = all.add_state(true);
        for sym in sigma.symbols() {
            all.add_transition(q, sym, q);
        }
        let all = all.build(q);
        let mut only_a = sl_buchi::BuchiBuilder::new(sigma.clone());
        let p = only_a.add_state(true);
        only_a.add_transition(p, sigma.symbol("a").unwrap(), p);
        let only_a = only_a.build(p);
        let case = InclCase {
            left: hoa::to_hoa(&all, "all"),
            right: hoa::to_hoa(&only_a, "onlya"),
            budget: None,
        };
        assert_eq!(check_incl(&case), Outcome::Pass);
    }

    #[test]
    fn lattice_oracle_accepts_figure_shapes_in_recipes() {
        // An M3 factor exercises the Theorem 7 refusal path.
        let case = LatticeCase {
            factors: vec![crate::case::Factor::M3],
            fix2: vec![1],
            extra1: vec![2],
        };
        assert_eq!(check_lattice(&case), Outcome::Pass);
        // A purely Boolean recipe exercises the distributive path.
        let case = LatticeCase {
            factors: vec![crate::case::Factor::Boolean(3)],
            fix2: vec![5],
            extra1: vec![3],
        };
        assert_eq!(check_lattice(&case), Outcome::Pass);
    }

    #[test]
    fn monitor_oracle_rejects_nothing_on_handwritten_traces() {
        let sigma = Alphabet::ab();
        let mut b = sl_buchi::BuchiBuilder::new(sigma.clone());
        let q = b.add_state(true);
        b.add_transition(q, sigma.symbol("a").unwrap(), q);
        let b = b.build(q); // safety: a^ω
        let case = MonitorCase {
            policy: hoa::to_hoa(&b, "ga"),
            trace: vec!["a".into(), "b".into(), "a".into(), "zz".into()],
            budget: Some(100),
        };
        assert_eq!(check_monitor(&case), Outcome::Pass);
    }

    #[test]
    fn compiled_oracle_accepts_handwritten_traces() {
        let sigma = Alphabet::ab();
        let mut b = sl_buchi::BuchiBuilder::new(sigma.clone());
        let q = b.add_state(true);
        b.add_transition(q, sigma.symbol("a").unwrap(), q);
        let b = b.build(q); // safety: a^ω
        let case = MonitorCase {
            policy: hoa::to_hoa(&b, "ga"),
            trace: vec!["a".into(), "zz".into(), "b".into(), "a".into()],
            budget: Some(100),
        };
        assert_eq!(check_compiled(&case), Outcome::Pass);
    }

    #[test]
    fn crash_oracle_accepts_a_handwritten_session() {
        let lines: Vec<String> = [
            r#"{"id":1,"verb":"define","name":"p0","ltl":"G a","alphabet":["a","b"]}"#,
            r#"{"id":2,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["a","a"]}"#,
            r#"{"id":3,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["b"]}"#,
            r#"{"id":4,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["a"]}"#,
            r#"{"id":5,"verb":"decompose","target":"p0"}"#,
            r#"{"id":6,"verb":"classify","target":"p0.safety"}"#,
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        // The violation at line 3 must stay sticky across every kill
        // point, including restarts landing between lines 3 and 4.
        for snapshot_every in [0u64, 1, 2] {
            crash_drill(&lines, snapshot_every).unwrap();
        }
    }

    #[test]
    fn crash_drill_names_the_kill_point_on_divergence() {
        // A `stats` line makes recovered and twin replies legitimately
        // differ (the recovered daemon reports persistence metrics), so
        // the drill must fail — proving it actually diffs bytes.
        let lines: Vec<String> = vec![
            r#"{"id":1,"verb":"define","name":"p0","ltl":"G a","alphabet":["a","b"]}"#.to_string(),
            r#"{"id":2,"verb":"stats"}"#.to_string(),
        ];
        let err = crash_drill(&lines, 0).unwrap_err();
        assert!(err.contains("boundary"), "{err}");
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn pdr_oracle_judges_handwritten_cases() {
        // Safe: 0 <-> 1 with a fenced bad state 2.
        let safe = PdrCase {
            succ: vec![vec![1], vec![0], vec![2]],
            initial: 0,
            bad: vec![2],
            liveness: false,
            budget: None,
        };
        assert_eq!(check_pdr(&safe), Outcome::Pass);
        // Unsafe: bad sink one step away.
        let falsified = PdrCase {
            succ: vec![vec![1], vec![1]],
            initial: 0,
            bad: vec![1],
            liveness: false,
            budget: None,
        };
        assert_eq!(check_pdr(&falsified), Outcome::Pass);
        // Liveness refuted by a reachable bad cycle.
        let lasso = PdrCase {
            succ: vec![vec![1], vec![2], vec![1]],
            initial: 0,
            bad: vec![2],
            liveness: true,
            budget: None,
        };
        assert_eq!(check_pdr(&lasso), Outcome::Pass);
        // A one-step budget exhausts without a verdict: accepted.
        let budgeted = PdrCase {
            succ: vec![vec![1], vec![2], vec![3], vec![4], vec![4]],
            initial: 0,
            bad: vec![4],
            liveness: false,
            budget: Some(1),
        };
        assert!(matches!(check_pdr(&budgeted), Outcome::Accepted(_)));
    }

    #[test]
    fn session_oracle_handles_malformed_lines() {
        let case = SessionCase {
            lines: vec![
                "{not json".into(),
                "{\"id\":1,\"verb\":\"classify\",\"target\":\"ghost\"}".into(),
            ],
        };
        assert_eq!(check_session(&case), Outcome::Pass);
    }
}
