//! The fuzz runner: drives cases through the oracle registry, shrinks
//! failures with [`sl_support::prop::minimize`], and renders the
//! `BENCH_conform.json`-style stats artifact.

use crate::case::Case;
use crate::gen;
use crate::oracles::{self, Outcome};
use crate::shrink::CaseStrategy;
use sl_service::Json;
use sl_support::prop::{case_seed, case_rng, minimize};
use std::time::Instant;

/// What to run. `seed` and `cases` mirror the `slfuzz` CLI flags.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; every (oracle, case index) derives its own stream.
    pub seed: u64,
    /// Cases per oracle.
    pub cases: u32,
    /// Which oracles to run (subset of [`oracles::ORACLES`]).
    pub oracles: Vec<&'static str>,
    /// Run exactly one case index (replay mode for repro commands).
    pub only_case: Option<u32>,
    /// Wall-clock budget in seconds; when exceeded, remaining cases
    /// are skipped and the run is marked truncated.
    pub max_seconds: Option<u64>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 2003,
            cases: 256,
            oracles: oracles::ORACLES.to_vec(),
            only_case: None,
            max_seconds: None,
        }
    }
}

/// A shrunk failing case plus everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The oracle that rejected the case.
    pub oracle: &'static str,
    /// The failing case index under the base seed.
    pub case_index: u32,
    /// The derived per-case seed.
    pub case_seed: u64,
    /// The original failure message.
    pub message: String,
    /// The minimized case.
    pub shrunk: Case,
    /// The minimized case's failure message.
    pub shrunk_message: String,
    /// Successful shrink steps taken.
    pub shrink_steps: usize,
    /// One-line reproduction command.
    pub repro: String,
}

/// Per-oracle counters.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Oracle name.
    pub name: &'static str,
    /// Cases actually run (may be short of the request if truncated).
    pub cases_run: u32,
    /// Cases that passed every law.
    pub passed: u32,
    /// Cases where a budget or fault degradation was accepted.
    pub accepted: u32,
    /// Shrunk failures.
    pub findings: Vec<Finding>,
    /// Total shrink steps across findings.
    pub shrink_steps: usize,
    /// Wall-clock milliseconds spent in this oracle.
    pub elapsed_ms: u128,
}

/// The whole run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The base seed.
    pub seed: u64,
    /// Requested cases per oracle.
    pub cases_requested: u32,
    /// Per-oracle reports, in registry order.
    pub oracles: Vec<OracleReport>,
    /// Whether the wall-clock budget cut the run short.
    pub truncated: bool,
}

impl RunReport {
    /// All findings across oracles.
    #[must_use]
    pub fn findings(&self) -> Vec<&Finding> {
        self.oracles.iter().flat_map(|o| &o.findings).collect()
    }

    /// Renders the stats artifact. With `stable`, wall-clock-derived
    /// fields (elapsed, cases/sec) are omitted so the output is
    /// byte-deterministic for a given seed — the determinism gate in
    /// verify.sh diffs exactly this form.
    #[must_use]
    pub fn to_json(&self, stable: bool) -> Json {
        let oracles = self
            .oracles
            .iter()
            .map(|o| {
                let mut pairs = vec![
                    ("name", Json::Str(o.name.into())),
                    ("cases", Json::Int(i64::from(o.cases_run))),
                    ("passed", Json::Int(i64::from(o.passed))),
                    ("accepted_budget", Json::Int(i64::from(o.accepted))),
                    ("failures", Json::Int(o.findings.len() as i64)),
                    ("shrink_steps", Json::Int(o.shrink_steps as i64)),
                ];
                if !stable {
                    pairs.push(("elapsed_ms", Json::Int(o.elapsed_ms as i64)));
                    let secs = (o.elapsed_ms as f64 / 1000.0).max(1e-9);
                    pairs.push((
                        "cases_per_sec",
                        Json::Int((f64::from(o.cases_run) / secs) as i64),
                    ));
                }
                Json::obj(pairs)
            })
            .collect();
        let findings = self
            .oracles
            .iter()
            .flat_map(|o| &o.findings)
            .map(|f| {
                Json::obj(vec![
                    ("oracle", Json::Str(f.oracle.into())),
                    ("case", Json::Int(i64::from(f.case_index))),
                    ("case_seed", Json::Str(format!("{:#018x}", f.case_seed))),
                    ("message", Json::Str(f.shrunk_message.clone())),
                    ("shrink_steps", Json::Int(f.shrink_steps as i64)),
                    ("weight", Json::Int(f.shrunk.weight() as i64)),
                    ("repro", Json::Str(f.repro.clone())),
                    ("shrunk", f.shrunk.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("suite", Json::Str("conform".into())),
            ("seed", Json::Int(self.seed as i64)),
            ("cases_per_oracle", Json::Int(i64::from(self.cases_requested))),
            ("truncated", Json::Bool(self.truncated)),
            ("oracles", Json::Arr(oracles)),
            ("findings", Json::Arr(findings)),
        ])
    }
}

/// The stream name a case index is drawn under — namespaced so each
/// oracle gets an independent stream from the same base seed.
#[must_use]
pub fn stream_name(oracle: &str) -> String {
    format!("conform.{oracle}")
}

/// Runs the fuzzer.
#[must_use]
pub fn fuzz(opts: &FuzzOptions) -> RunReport {
    let start = Instant::now();
    let mut truncated = false;
    let mut reports = Vec::new();
    for &oracle in &opts.oracles {
        let oracle_start = Instant::now();
        let stream = stream_name(oracle);
        let mut report = OracleReport {
            name: oracle,
            cases_run: 0,
            passed: 0,
            accepted: 0,
            findings: Vec::new(),
            shrink_steps: 0,
            elapsed_ms: 0,
        };
        let indices: Vec<u32> = match opts.only_case {
            Some(i) => vec![i],
            None => (0..opts.cases).collect(),
        };
        for index in indices {
            if let Some(limit) = opts.max_seconds {
                if start.elapsed().as_secs() >= limit {
                    truncated = true;
                    break;
                }
            }
            let mut rng = case_rng(opts.seed, &stream, index);
            let case = gen::gen_case(oracle, &mut rng);
            report.cases_run += 1;
            match oracles::check(&case) {
                Outcome::Pass => report.passed += 1,
                Outcome::Accepted(_) => report.accepted += 1,
                Outcome::Fail(message) => {
                    let strategy = CaseStrategy { oracle };
                    let property = |c: &Case| match oracles::check(c) {
                        Outcome::Fail(msg) => Err(msg),
                        _ => Ok(()),
                    };
                    let (shrunk, shrunk_message, steps) =
                        minimize(&strategy, &property, &case, &message);
                    report.shrink_steps += steps;
                    report.findings.push(Finding {
                        oracle,
                        case_index: index,
                        case_seed: case_seed(opts.seed, &stream, index),
                        message,
                        shrunk,
                        shrunk_message,
                        shrink_steps: steps,
                        repro: format!(
                            "slfuzz --seed {} --oracle {} --case {}",
                            opts.seed, oracle, index
                        ),
                    });
                }
            }
        }
        report.elapsed_ms = oracle_start.elapsed().as_millis();
        reports.push(report);
    }
    RunReport {
        seed: opts.seed,
        cases_requested: opts.cases,
        oracles: reports,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_has_no_findings() {
        let opts = FuzzOptions {
            seed: 2003,
            cases: 4,
            ..FuzzOptions::default()
        };
        let report = fuzz(&opts);
        assert!(report.findings().is_empty(), "{:?}", report.findings());
        assert!(!report.truncated);
        for o in &report.oracles {
            assert_eq!(o.cases_run, 4);
            assert_eq!(u32::from(o.passed) + u32::from(o.accepted), 4);
        }
    }

    #[test]
    fn stable_stats_are_byte_deterministic() {
        let opts = FuzzOptions {
            seed: 7,
            cases: 3,
            ..FuzzOptions::default()
        };
        let a = fuzz(&opts).to_json(true).render();
        let b = fuzz(&opts).to_json(true).render();
        assert_eq!(a, b);
        assert!(!a.contains("elapsed_ms"));
        assert!(fuzz(&opts).to_json(false).render().contains("elapsed_ms"));
    }

    #[test]
    fn only_case_replays_a_single_index() {
        let opts = FuzzOptions {
            seed: 11,
            cases: 100,
            oracles: vec!["hoa"],
            only_case: Some(42),
            max_seconds: None,
        };
        let report = fuzz(&opts);
        assert_eq!(report.oracles[0].cases_run, 1);
    }
}
