//! The acceptance drills for the conformance fuzzer itself:
//! deliberately break an engine (the test-only flags in
//! `sl_buchi::antichain::sabotage` and `sl_pdr::engine::sabotage`) and
//! prove the matching oracle catches the bug and shrinks it to a tiny
//! reproducer.
//!
//! This lives in its own integration-test binary so the process-global
//! sabotage flags cannot leak into any other test. The two drills
//! toggle disjoint flags and fuzz disjoint oracles, so they may run
//! concurrently within the binary.

use sl_buchi::antichain::sabotage;
use sl_conform::run::{fuzz, FuzzOptions};
use sl_conform::{check, Outcome};

#[test]
fn broken_subsumption_is_caught_and_shrunk_small() {
    sabotage::set_break_subsumption(true);
    let report = fuzz(&FuzzOptions {
        seed: 2003,
        cases: 64,
        oracles: vec!["incl"],
        only_case: None,
        max_seconds: None,
    });
    sabotage::set_break_subsumption(false);

    let findings = report.findings();
    assert!(
        !findings.is_empty(),
        "the incl oracle must catch a broken subsumption check within 64 cases"
    );
    // Acceptance bound: the shrunk reproducer has at most 8 automaton
    // states (summed over both operands).
    let smallest = findings.iter().map(|f| f.shrunk.weight()).min().unwrap();
    assert!(
        smallest <= 8,
        "smallest shrunk reproducer has weight {smallest}, want <= 8"
    );
    for finding in &findings {
        assert!(
            finding.repro.starts_with("slfuzz --seed 2003 --oracle incl --case "),
            "repro command malformed: {}",
            finding.repro
        );
        // The shrunk case must still fail under sabotage and pass with
        // the engine healthy — i.e. it reproduces the injected bug, not
        // some shrinking artifact.
        sabotage::set_break_subsumption(true);
        let broken = check(&finding.shrunk);
        sabotage::set_break_subsumption(false);
        assert!(
            matches!(broken, Outcome::Fail(_)),
            "shrunk case no longer reproduces under sabotage: {}",
            finding.shrunk.to_line()
        );
        let healthy = check(&finding.shrunk);
        assert!(
            matches!(healthy, Outcome::Pass | Outcome::Accepted(_)),
            "shrunk case fails even with the engine healthy: {healthy:?}"
        );
    }
}

#[test]
fn broken_relative_induction_is_caught_and_shrunk_small() {
    use sl_pdr::engine::sabotage as pdr_sabotage;
    pdr_sabotage::set_break_relative_induction(true);
    let report = fuzz(&FuzzOptions {
        seed: 2003,
        cases: 64,
        oracles: vec!["pdr"],
        only_case: None,
        max_seconds: None,
    });
    pdr_sabotage::set_break_relative_induction(false);

    let findings = report.findings();
    assert!(
        !findings.is_empty(),
        "the pdr oracle must catch a broken relative-induction check within 64 cases"
    );
    // Acceptance bound: the shrunk reproducer has at most 10 units of
    // weight (states + edges + bad states).
    let smallest = findings.iter().map(|f| f.shrunk.weight()).min().unwrap();
    assert!(
        smallest <= 10,
        "smallest shrunk reproducer has weight {smallest}, want <= 10"
    );
    for finding in &findings {
        assert!(
            finding.repro.starts_with("slfuzz --seed 2003 --oracle pdr --case "),
            "repro command malformed: {}",
            finding.repro
        );
        // The shrunk case must still fail under sabotage and pass with
        // the engine healthy.
        pdr_sabotage::set_break_relative_induction(true);
        let broken = check(&finding.shrunk);
        pdr_sabotage::set_break_relative_induction(false);
        assert!(
            matches!(broken, Outcome::Fail(_)),
            "shrunk case no longer reproduces under sabotage: {}",
            finding.shrunk.to_line()
        );
        let healthy = check(&finding.shrunk);
        assert!(
            matches!(healthy, Outcome::Pass | Outcome::Accepted(_)),
            "shrunk case fails even with the engine healthy: {healthy:?}"
        );
    }
}
