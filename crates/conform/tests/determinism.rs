//! Byte-determinism of the fuzzer: same seed, same findings, same
//! stable stats artifact — run-to-run and independent of thread-count
//! configuration (the session oracle pins its own thread counts).

use sl_conform::run::{fuzz, FuzzOptions};

fn small_run(seed: u64) -> FuzzOptions {
    FuzzOptions {
        seed,
        cases: 6,
        ..FuzzOptions::default()
    }
}

#[test]
fn stable_artifact_is_identical_across_runs() {
    let a = fuzz(&small_run(42)).to_json(true).render();
    let b = fuzz(&small_run(42)).to_json(true).render();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_streams() {
    let a = fuzz(&small_run(1)).to_json(true).render();
    let b = fuzz(&small_run(2)).to_json(true).render();
    // The counters can coincide, but the seed is embedded in the
    // artifact, so the artifacts must differ.
    assert_ne!(a, b);
}

#[test]
fn artifact_shape_is_gateable() {
    // The verify.sh conformance stage greps these fields; keep them.
    let rendered = fuzz(&small_run(9)).to_json(true).render();
    for needle in [
        "\"suite\":\"conform\"",
        "\"seed\":9",
        "\"truncated\":false",
        "\"oracles\":[",
        "\"findings\":[",
        "\"accepted_budget\":",
        "\"shrink_steps\":",
    ] {
        assert!(rendered.contains(needle), "missing {needle} in {rendered}");
    }
    let timed = fuzz(&small_run(9)).to_json(false).render();
    assert!(timed.contains("\"elapsed_ms\":"));
    assert!(timed.contains("\"cases_per_sec\":"));
}
