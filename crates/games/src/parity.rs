//! Parity games on finite arenas.
//!
//! A parity game is a two-player infinite-duration game on a directed
//! graph: each vertex is owned by [`Player::Even`] or [`Player::Odd`]
//! and carries a priority; the owner of the current vertex picks the
//! next edge; Even wins a play iff the maximum priority occurring
//! infinitely often is even. Parity games are the algorithmic engine for
//! tree-automata emptiness and membership in `sl-rabin`.

use std::fmt;

/// The two players.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Player {
    /// Wins when the maximal infinitely-recurring priority is even.
    Even,
    /// Wins when it is odd.
    Odd,
}

impl Player {
    /// The opponent.
    #[must_use]
    pub fn opponent(self) -> Player {
        match self {
            Player::Even => Player::Odd,
            Player::Odd => Player::Even,
        }
    }

    /// The player who likes the given priority.
    #[must_use]
    pub fn of_priority(priority: u32) -> Player {
        if priority.is_multiple_of(2) {
            Player::Even
        } else {
            Player::Odd
        }
    }
}

impl fmt::Display for Player {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Player::Even => f.write_str("Even"),
            Player::Odd => f.write_str("Odd"),
        }
    }
}

/// A parity game arena. Every vertex must have at least one successor
/// (total arenas; the standard normalization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityGame {
    owner: Vec<Player>,
    priority: Vec<u32>,
    succ: Vec<Vec<usize>>,
}

impl ParityGame {
    /// Builds a game from parallel vertex arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays disagree in length, a successor is out of
    /// range, or some vertex has no successor.
    #[must_use]
    pub fn new(owner: Vec<Player>, priority: Vec<u32>, succ: Vec<Vec<usize>>) -> Self {
        let n = owner.len();
        assert_eq!(priority.len(), n, "priority array length mismatch");
        assert_eq!(succ.len(), n, "successor array length mismatch");
        for (v, outs) in succ.iter().enumerate() {
            assert!(!outs.is_empty(), "vertex {v} has no successors");
            for &w in outs {
                assert!(w < n, "successor {w} of vertex {v} out of range");
            }
        }
        ParityGame {
            owner,
            priority,
            succ,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the arena has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Owner of vertex `v`.
    #[must_use]
    pub fn owner(&self, v: usize) -> Player {
        self.owner[v]
    }

    /// Priority of vertex `v`.
    #[must_use]
    pub fn priority(&self, v: usize) -> u32 {
        self.priority[v]
    }

    /// Successors of vertex `v`.
    #[must_use]
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.succ[v]
    }

    /// The attractor of `target` for `player` within the sub-arena
    /// `alive`: all vertices from which `player` can force the play into
    /// `target`. Also returns an attractor strategy: for each
    /// player-owned vertex added, an edge moving one step closer.
    ///
    /// `alive[v]` marks the vertices of the sub-arena; `target` must be
    /// a subset of it.
    #[must_use]
    pub fn attractor(
        &self,
        alive: &[bool],
        target: &[usize],
        player: Player,
    ) -> (Vec<bool>, Vec<Option<usize>>) {
        let n = self.len();
        let mut inside = vec![false; n];
        let mut strategy: Vec<Option<usize>> = vec![None; n];
        // Count of alive successors not yet attracted, for opponent
        // vertices.
        let mut pending: Vec<usize> = (0..n)
            .map(|v| self.succ[v].iter().filter(|&&w| alive[w]).count())
            .collect();
        let mut work: Vec<usize> = Vec::new();
        for &t in target {
            debug_assert!(alive[t], "target must lie in the sub-arena");
            if !inside[t] {
                inside[t] = true;
                work.push(t);
            }
        }
        // Predecessor scan: arenas here are small and dense; an explicit
        // reverse adjacency list is built on demand.
        let mut pred = vec![Vec::new(); n];
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            for &w in &self.succ[v] {
                if alive[w] {
                    pred[w].push(v);
                }
            }
        }
        while let Some(v) = work.pop() {
            for &u in &pred[v] {
                if inside[u] || !alive[u] {
                    continue;
                }
                if self.owner[u] == player {
                    inside[u] = true;
                    strategy[u] = Some(v);
                    work.push(u);
                } else {
                    pending[u] -= 1;
                    if pending[u] == 0 {
                        inside[u] = true;
                        work.push(u);
                    }
                }
            }
        }
        (inside, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two vertices, Even owns both; 0 -> 1 -> 1.
    fn chain() -> ParityGame {
        ParityGame::new(
            vec![Player::Even, Player::Even],
            vec![1, 2],
            vec![vec![1], vec![1]],
        )
    }

    #[test]
    fn accessors() {
        let g = chain();
        assert_eq!(g.len(), 2);
        assert_eq!(g.owner(0), Player::Even);
        assert_eq!(g.priority(1), 2);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn player_helpers() {
        assert_eq!(Player::Even.opponent(), Player::Odd);
        assert_eq!(Player::of_priority(4), Player::Even);
        assert_eq!(Player::of_priority(3), Player::Odd);
        assert_eq!(Player::Even.to_string(), "Even");
    }

    #[test]
    #[should_panic(expected = "has no successors")]
    fn totality_enforced() {
        let _ = ParityGame::new(vec![Player::Even], vec![0], vec![vec![]]);
    }

    #[test]
    fn attractor_pulls_own_vertices() {
        // 0 (Even) -> {1, 2}; 1,2 sinks with self loops. Attractor of
        // {1} for Even contains 0 (Even chooses to go there).
        let g = ParityGame::new(
            vec![Player::Even, Player::Odd, Player::Odd],
            vec![0, 0, 0],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let alive = vec![true; 3];
        let (inside, strategy) = g.attractor(&alive, &[1], Player::Even);
        assert_eq!(inside, vec![true, true, false]);
        assert_eq!(strategy[0], Some(1));
    }

    #[test]
    fn attractor_requires_all_edges_for_opponent() {
        // 0 (Odd) -> {1, 2}: Odd can dodge into 2, so 0 is not in the
        // Even-attractor of {1}.
        let g = ParityGame::new(
            vec![Player::Odd, Player::Odd, Player::Odd],
            vec![0, 0, 0],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let alive = vec![true; 3];
        let (inside, _) = g.attractor(&alive, &[1], Player::Even);
        assert_eq!(inside, vec![false, true, false]);
        // But if both exits lead to the target, 0 is attracted.
        let (inside, _) = g.attractor(&alive, &[1, 2], Player::Even);
        assert!(inside[0]);
    }

    #[test]
    fn attractor_respects_sub_arena() {
        // With vertex 1 dead, Odd's only alive exit from 0 is 2.
        let g = ParityGame::new(
            vec![Player::Odd, Player::Odd, Player::Odd],
            vec![0, 0, 0],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let alive = vec![true, false, true];
        let (inside, _) = g.attractor(&alive, &[2], Player::Even);
        assert!(inside[0], "only alive exit leads to target");
    }
}
