//! Rabin games, solved by reduction to parity games via index appearance
//! records (IAR).
//!
//! A Rabin winning condition is a list of pairs `(Green_i, Red_i)`; the
//! protagonist (player [`Player::Even`] after the reduction) wins a play
//! iff for some `i`, `Green_i` is visited infinitely often and `Red_i`
//! only finitely often — the same acceptance shape as the paper's Rabin
//! tree automata (Section 4.4, `Φ = ⋁_i (GF green_i ∧ FG ¬red_i)`).
//!
//! The IAR keeps a permutation of the pair indices; on every step the
//! indices whose red set was just hit are moved to the front. A pair
//! whose green recurs forever while its red eventually stops migrates to
//! a stable position and dominates with an even priority.

use crate::parity::{ParityGame, Player};
use crate::zielonka::{solve, Solution};
use std::collections::HashMap;

/// A Rabin game arena: like a parity game but with pair-based winning.
#[derive(Debug, Clone)]
pub struct RabinGame {
    /// Owner of each vertex; [`Player::Even`] is the protagonist who
    /// wants the Rabin condition to hold.
    pub owner: Vec<Player>,
    /// Successor lists (every vertex needs at least one).
    pub succ: Vec<Vec<usize>>,
    /// The Rabin pairs: `(green, red)` membership flags per vertex.
    pub pairs: Vec<(Vec<bool>, Vec<bool>)>,
}

/// The solution of a Rabin game (winners per vertex, in the *original*
/// arena).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RabinSolution {
    /// `winner[v]` for each original vertex, assuming the IAR starts in
    /// the identity permutation.
    pub winner: Vec<Player>,
}

impl RabinGame {
    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    fn validate(&self) {
        let n = self.len();
        assert_eq!(self.succ.len(), n, "succ length mismatch");
        for (green, red) in &self.pairs {
            assert_eq!(green.len(), n, "green set length mismatch");
            assert_eq!(red.len(), n, "red set length mismatch");
        }
        for (v, outs) in self.succ.iter().enumerate() {
            assert!(!outs.is_empty(), "vertex {v} has no successors");
            for &w in outs {
                assert!(w < n, "successor out of range");
            }
        }
    }
}

/// One vertex of the IAR-expanded parity game: original vertex plus the
/// current permutation of pair indices.
type IarNode = (usize, Vec<usize>);

/// Solves a Rabin game by expanding index appearance records into a
/// parity game and running Zielonka. Exponential in the number of pairs
/// (factorially many permutations), fine for the handful of pairs tree
/// automata produce.
///
/// # Panics
///
/// Panics if the arena is malformed (see [`RabinGame`] field docs).
#[must_use]
pub fn solve_rabin(game: &RabinGame) -> RabinSolution {
    game.validate();
    let n = game.len();
    let k = game.pairs.len();
    if k == 0 {
        // No pairs: the Rabin condition is unsatisfiable; Odd wins
        // everywhere.
        return RabinSolution {
            winner: vec![Player::Odd; n],
        };
    }

    // Lazily build the product arena from all (vertex, permutation)
    // pairs reachable from identity starts.
    let mut ids: HashMap<IarNode, usize> = HashMap::new();
    let mut nodes: Vec<IarNode> = Vec::new();
    let mut work: Vec<usize> = Vec::new();
    let identity: Vec<usize> = (0..k).collect();
    for v in 0..n {
        let node = (v, identity.clone());
        ids.insert(node.clone(), nodes.len());
        work.push(nodes.len());
        nodes.push(node);
    }
    let mut owner: Vec<Player> = Vec::new();
    let mut priority: Vec<u32> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();

    // Priorities computed on entry to a node: examine the node's vertex
    // against the *previous* permutation is the usual formulation; the
    // equivalent vertex-based variant computes the record update and the
    // priority when constructing the node, storing both.
    // Here each IAR node stores the permutation *before* processing its
    // vertex; the outgoing step updates it.
    while let Some(id) = work.pop() {
        let (v, perm) = nodes[id].clone();
        // Positions are 1-based from the back: higher position = more
        // senior (longer since last red hit).
        let pos = |i: usize| perm.iter().position(|&x| x == i).expect("perm") + 1;
        let mut highest_red = 0usize;
        let mut highest_green = 0usize;
        for i in 0..k {
            if game.pairs[i].1[v] {
                highest_red = highest_red.max(pos(i));
            }
            if game.pairs[i].0[v] {
                highest_green = highest_green.max(pos(i));
            }
        }
        // Even (the protagonist) profits from a green beyond every red.
        let prio = if highest_green > highest_red {
            2 * highest_green as u32
        } else {
            2 * highest_red as u32 + 1
        };
        // Update the record: move red-hit indices to the front
        // (position 1 side), preserving relative order of the rest.
        let mut moved: Vec<usize> = perm
            .iter()
            .copied()
            .filter(|&i| game.pairs[i].1[v])
            .collect();
        let rest: Vec<usize> = perm
            .iter()
            .copied()
            .filter(|&i| !game.pairs[i].1[v])
            .collect();
        moved.extend(rest);
        let next_perm = moved;

        while owner.len() <= id {
            owner.push(Player::Even);
            priority.push(0);
            edges.push(Vec::new());
        }
        owner[id] = game.owner[v];
        priority[id] = prio;
        let mut outs = Vec::new();
        for &w in &game.succ[v] {
            let node = (w, next_perm.clone());
            let nid = match ids.get(&node) {
                Some(&nid) => nid,
                None => {
                    let nid = nodes.len();
                    ids.insert(node.clone(), nid);
                    nodes.push(node);
                    work.push(nid);
                    nid
                }
            };
            outs.push(nid);
        }
        edges[id] = outs;
    }
    debug_assert_eq!(owner.len(), nodes.len(), "all IAR nodes processed");
    let parity = ParityGame::new(owner, priority, edges);
    let solution: Solution = solve(&parity);
    RabinSolution {
        winner: (0..n).map(|v| solution.winner[v]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodes a parity game as a Rabin game (max-even parity): for each
    /// even priority d, pair (green = {pr = d}, red = {pr > d}).
    fn parity_as_rabin(owner: &[Player], priority: &[u32], succ: &[Vec<usize>]) -> RabinGame {
        let n = owner.len();
        let mut pairs = Vec::new();
        let top = priority.iter().copied().max().unwrap_or(0);
        for d in (0..=top).filter(|d| d % 2 == 0) {
            let green: Vec<bool> = (0..n).map(|v| priority[v] == d).collect();
            let red: Vec<bool> = (0..n).map(|v| priority[v] > d).collect();
            pairs.push((green, red));
        }
        RabinGame {
            owner: owner.to_vec(),
            succ: succ.to_vec(),
            pairs,
        }
    }

    #[test]
    fn single_pair_green_loop() {
        // One vertex, self loop, green for pair 0, no red: Even wins.
        let game = RabinGame {
            owner: vec![Player::Even],
            succ: vec![vec![0]],
            pairs: vec![(vec![true], vec![false])],
        };
        assert_eq!(solve_rabin(&game).winner, vec![Player::Even]);
    }

    #[test]
    fn single_pair_red_and_green_loop() {
        // The loop hits both green and red of the same pair: Rabin
        // condition fails (red infinitely often): Odd wins.
        let game = RabinGame {
            owner: vec![Player::Even],
            succ: vec![vec![0]],
            pairs: vec![(vec![true], vec![true])],
        };
        assert_eq!(solve_rabin(&game).winner, vec![Player::Odd]);
    }

    #[test]
    fn no_pairs_odd_wins() {
        let game = RabinGame {
            owner: vec![Player::Even],
            succ: vec![vec![0]],
            pairs: vec![],
        };
        assert_eq!(solve_rabin(&game).winner, vec![Player::Odd]);
    }

    #[test]
    fn protagonist_chooses_clean_loop() {
        // 0 (Even) -> {1, 2}; 1: green0 loop; 2: red0 loop.
        let game = RabinGame {
            owner: vec![Player::Even; 3],
            succ: vec![vec![1, 2], vec![1], vec![2]],
            pairs: vec![(vec![false, true, false], vec![false, false, true])],
        };
        let sol = solve_rabin(&game);
        assert_eq!(sol.winner[0], Player::Even);
        assert_eq!(sol.winner[1], Player::Even);
        assert_eq!(sol.winner[2], Player::Odd);
    }

    #[test]
    fn antagonist_forces_red() {
        // Same arena, Odd owns vertex 0.
        let game = RabinGame {
            owner: vec![Player::Odd, Player::Even, Player::Even],
            succ: vec![vec![1, 2], vec![1], vec![2]],
            pairs: vec![(vec![false, true, false], vec![false, false, true])],
        };
        let sol = solve_rabin(&game);
        assert_eq!(sol.winner[0], Player::Odd);
    }

    #[test]
    fn two_pairs_alternation() {
        // Loop alternating 0 and 1; pair 0: green at 0, red at 1;
        // pair 1: green at 1, red at 0. Both pairs see their red
        // infinitely often: Odd wins.
        let game = RabinGame {
            owner: vec![Player::Even, Player::Even],
            succ: vec![vec![1], vec![0]],
            pairs: vec![
                (vec![true, false], vec![false, true]),
                (vec![false, true], vec![true, false]),
            ],
        };
        assert_eq!(solve_rabin(&game).winner, vec![Player::Odd, Player::Odd]);
    }

    #[test]
    fn two_pairs_one_satisfiable() {
        // Loop alternating 0 and 1; pair 0 red everywhere, pair 1 green
        // at 1 and never red: Even wins via pair 1.
        let game = RabinGame {
            owner: vec![Player::Even, Player::Even],
            succ: vec![vec![1], vec![0]],
            pairs: vec![
                (vec![true, true], vec![true, true]),
                (vec![false, true], vec![false, false]),
            ],
        };
        assert_eq!(solve_rabin(&game).winner, vec![Player::Even, Player::Even]);
    }

    /// Differential test: random parity games encoded as Rabin games
    /// must produce identical winners through the IAR pipeline.
    #[test]
    fn iar_agrees_with_direct_parity() {
        let mut state = 0x00C0_FFEEu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for round in 0..100 {
            let n = 2 + rng() % 5;
            let owner: Vec<Player> = (0..n)
                .map(|_| {
                    if rng() % 2 == 0 {
                        Player::Even
                    } else {
                        Player::Odd
                    }
                })
                .collect();
            let priority: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
            let succ: Vec<Vec<usize>> = (0..n)
                .map(|_| {
                    let degree = 1 + rng() % 2;
                    let mut outs: Vec<usize> = (0..degree).map(|_| rng() % n).collect();
                    outs.sort_unstable();
                    outs.dedup();
                    outs
                })
                .collect();
            let direct = solve(&ParityGame::new(
                owner.clone(),
                priority.clone(),
                succ.clone(),
            ));
            let rabin = solve_rabin(&parity_as_rabin(&owner, &priority, &succ));
            assert_eq!(
                rabin.winner, direct.winner,
                "round {round}: IAR disagrees with direct parity\nowners {owner:?} prios {priority:?} succ {succ:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "has no successors")]
    fn totality_enforced() {
        let game = RabinGame {
            owner: vec![Player::Even],
            succ: vec![vec![]],
            pairs: vec![(vec![true], vec![false])],
        };
        let _ = solve_rabin(&game);
    }
}
