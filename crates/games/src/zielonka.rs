//! Zielonka's recursive algorithm with winning-strategy extraction, plus
//! an independent strategy verifier used to cross-check the solver.

use crate::parity::{ParityGame, Player};
use sl_support::{Budget, BudgetMeter, SlError};

/// A solved parity game: per-vertex winner and, for each vertex owned by
/// its winner, a winning move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// `winner[v]` is the player who wins from `v` (with optimal play).
    pub winner: Vec<Player>,
    /// `strategy[v]` is the winning move at `v` when `owner(v) ==
    /// winner[v]`; `None` otherwise (the loser needs no strategy).
    pub strategy: Vec<Option<usize>>,
}

impl Solution {
    /// The winning region of a player.
    #[must_use]
    pub fn region(&self, player: Player) -> Vec<usize> {
        (0..self.winner.len())
            .filter(|&v| self.winner[v] == player)
            .collect()
    }
}

/// Solves a parity game by Zielonka's algorithm.
#[must_use]
pub fn solve(game: &ParityGame) -> Solution {
    solve_with_budget(game, &Budget::unlimited()).expect("unlimited budget cannot be exceeded")
}

/// Solves a parity game under a cooperative [`Budget`]: each recursive
/// sub-arena charges one step against the budget's meter (phase
/// `"games.zielonka"`), so a step limit, wall-clock deadline, or
/// cancellation flag aborts the recursion with a typed error instead of
/// running an adversarial instance to completion. Zielonka's recursion
/// depth is linear but the call tree can be exponential in the number
/// of priorities — exactly the shape a deadline should bound.
///
/// # Errors
///
/// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the budget.
pub fn solve_with_budget(game: &ParityGame, budget: &Budget) -> Result<Solution, SlError> {
    let n = game.len();
    let mut winner = vec![Player::Even; n];
    let mut strategy: Vec<Option<usize>> = vec![None; n];
    let alive = vec![true; n];
    let mut meter = budget.meter("games.zielonka");
    solve_rec(game, alive, &mut winner, &mut strategy, &mut meter)?;
    Ok(Solution { winner, strategy })
}

fn solve_rec(
    game: &ParityGame,
    alive: Vec<bool>,
    winner: &mut [Player],
    strategy: &mut [Option<usize>],
    meter: &mut BudgetMeter,
) -> Result<(), SlError> {
    let vertices: Vec<usize> = (0..game.len()).filter(|&v| alive[v]).collect();
    if vertices.is_empty() {
        return Ok(());
    }
    meter.charge(1)?;
    let top = vertices
        .iter()
        .map(|&v| game.priority(v))
        .max()
        .expect("nonempty");
    let favored = Player::of_priority(top);
    let target: Vec<usize> = vertices
        .iter()
        .copied()
        .filter(|&v| game.priority(v) == top)
        .collect();
    let (attracted, attract_strategy) = game.attractor(&alive, &target, favored);

    // Solve the sub-arena without the attractor.
    let mut rest = alive.clone();
    for v in 0..game.len() {
        if attracted[v] {
            rest[v] = false;
        }
    }
    let mut sub_winner = vec![Player::Even; game.len()];
    let mut sub_strategy: Vec<Option<usize>> = vec![None; game.len()];
    solve_rec(game, rest.clone(), &mut sub_winner, &mut sub_strategy, meter)?;

    let opponent = favored.opponent();
    let opponent_pocket: Vec<usize> = (0..game.len())
        .filter(|&v| rest[v] && sub_winner[v] == opponent)
        .collect();

    if opponent_pocket.is_empty() {
        // favored wins everywhere in this sub-arena.
        for &v in &vertices {
            winner[v] = favored;
            strategy[v] = None;
            if game.owner(v) != favored {
                continue;
            }
            if rest[v] {
                strategy[v] = sub_strategy[v];
            } else if let Some(next) = attract_strategy[v] {
                // Attractor move towards the top-priority set.
                strategy[v] = Some(next);
            } else {
                // v is in the target itself: any move staying alive works
                // (the play re-enters the attractor).
                strategy[v] = game.successors(v).iter().copied().find(|&w| alive[w]);
            }
        }
    } else {
        // The opponent wins their pocket plus its attractor; recurse on
        // the remainder.
        let (opp_attracted, opp_strategy) = game.attractor(&alive, &opponent_pocket, opponent);
        for v in 0..game.len() {
            if !alive[v] || !opp_attracted[v] {
                continue;
            }
            winner[v] = opponent;
            if game.owner(v) == opponent {
                // Inside the pocket keep the recursive strategy;
                // on the approach use the attractor strategy.
                strategy[v] = if rest[v] && sub_winner[v] == opponent {
                    sub_strategy[v]
                } else {
                    opp_strategy[v]
                };
            } else {
                strategy[v] = None;
            }
        }
        let mut remainder = alive;
        for v in 0..game.len() {
            if opp_attracted[v] {
                remainder[v] = false;
            }
        }
        solve_rec(game, remainder, winner, strategy, meter)?;
    }
    Ok(())
}

/// Independently verifies a claimed solution:
///
/// 1. winning regions are closed for the winner (the loser cannot escape
///    in one step without entering the winner's other region — i.e. each
///    region is a trap for its loser), and
/// 2. in the winner-strategy-restricted subgraph of each region, every
///    cycle has the winner's parity.
///
/// Returns a description of the first defect found.
pub fn verify(game: &ParityGame, solution: &Solution) -> Result<(), String> {
    let n = game.len();
    if solution.winner.len() != n || solution.strategy.len() != n {
        return Err("solution size mismatch".into());
    }
    for player in [Player::Even, Player::Odd] {
        let region: Vec<bool> = (0..n).map(|v| solution.winner[v] == player).collect();
        // Region must be nonempty to need checking.
        // Build restricted edges.
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            if !region[v] {
                continue;
            }
            if game.owner(v) == player {
                let Some(next) = solution.strategy[v] else {
                    return Err(format!("missing strategy at vertex {v}"));
                };
                if !game.successors(v).contains(&next) {
                    return Err(format!("strategy at {v} uses a non-edge"));
                }
                if !region[next] {
                    return Err(format!("strategy at {v} leaves the winning region"));
                }
                edges[v].push(next);
            } else {
                for &w in game.successors(v) {
                    if !region[w] {
                        return Err(format!(
                            "vertex {v} lets the opponent escape the region of {player}"
                        ));
                    }
                    edges[v].push(w);
                }
            }
        }
        // Every cycle in `edges` within the region must have max
        // priority of `player`'s parity. Check recursively: find the
        // max priority in each SCC; if it is the loser's parity, fail
        // when it lies on a cycle; remove those vertices and recurse.
        let mut active: Vec<bool> = region.clone();
        loop {
            let comps = sccs(n, &edges, &active);
            let mut changed = false;
            let mut bad = false;
            for comp in &comps {
                let cyclic = comp.len() > 1 || edges[comp[0]].contains(&comp[0]);
                if !cyclic {
                    continue;
                }
                let top = comp
                    .iter()
                    .map(|&v| game.priority(v))
                    .max()
                    .expect("nonempty");
                if Player::of_priority(top) == player {
                    // Winner's parity dominates: drop the top vertices
                    // and look for loser-dominated sub-cycles.
                    for &v in comp {
                        if game.priority(v) == top {
                            active[v] = false;
                            changed = true;
                        }
                    }
                } else {
                    bad = true;
                }
            }
            if bad {
                return Err(format!(
                    "a cycle in the {player} region is dominated by the opponent's parity"
                ));
            }
            if !changed {
                break;
            }
        }
    }
    Ok(())
}

/// SCCs of the restricted graph (simple iterative Tarjan).
fn sccs(n: usize, edges: &[Vec<usize>], active: &[bool]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for root in 0..n {
        if !active[root] || index[root] != UNSET {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < edges[v].len() {
                        let w = edges[v][i];
                        i += 1;
                        if !active[w] {
                            continue;
                        }
                        if index[w] == UNSET {
                            work.push(Frame::Resume(v, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                    if let Some(Frame::Resume(parent, _)) = work.last() {
                        let parent = *parent;
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_even_loop() {
        let g = ParityGame::new(vec![Player::Even], vec![2], vec![vec![0]]);
        let s = solve(&g);
        assert_eq!(s.winner, vec![Player::Even]);
        verify(&g, &s).unwrap();
    }

    #[test]
    fn single_odd_loop() {
        let g = ParityGame::new(vec![Player::Even], vec![1], vec![vec![0]]);
        let s = solve(&g);
        assert_eq!(s.winner, vec![Player::Odd]);
        verify(&g, &s).unwrap();
    }

    #[test]
    fn chooser_picks_the_good_loop() {
        // 0 (Even, pr 0) -> {1, 2}; 1 (pr 2) self-loop; 2 (pr 1)
        // self-loop. Even should pick 1 and win everywhere except 2.
        let g = ParityGame::new(
            vec![Player::Even, Player::Even, Player::Even],
            vec![0, 2, 1],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let s = solve(&g);
        assert_eq!(s.winner, vec![Player::Even, Player::Even, Player::Odd]);
        assert_eq!(s.strategy[0], Some(1));
        verify(&g, &s).unwrap();
    }

    #[test]
    fn opponent_forces_the_bad_loop() {
        // Same arena but Odd owns vertex 0: Odd sends the play to 2.
        let g = ParityGame::new(
            vec![Player::Odd, Player::Even, Player::Even],
            vec![0, 2, 1],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let s = solve(&g);
        assert_eq!(s.winner, vec![Player::Odd, Player::Even, Player::Odd]);
        verify(&g, &s).unwrap();
    }

    #[test]
    fn alternation_cycle() {
        // 0 (Even, pr 1) <-> 1 (Odd, pr 2): the only play alternates and
        // sees max priority 2 infinitely often: Even wins everywhere.
        let g = ParityGame::new(
            vec![Player::Even, Player::Odd],
            vec![1, 2],
            vec![vec![1], vec![0]],
        );
        let s = solve(&g);
        assert_eq!(s.winner, vec![Player::Even, Player::Even]);
        verify(&g, &s).unwrap();
    }

    #[test]
    fn textbook_example_with_escape() {
        // 0 (Odd, pr 3) -> 1; 1 (Even, pr 2) -> {0, 2}; 2 (Even, pr 4)
        // -> 2. From 1, Even should escape to the pr-4 loop; vertex 0
        // feeds into 1 so Even wins everywhere.
        let g = ParityGame::new(
            vec![Player::Odd, Player::Even, Player::Even],
            vec![3, 2, 4],
            vec![vec![1], vec![0, 2], vec![2]],
        );
        let s = solve(&g);
        assert_eq!(s.winner, vec![Player::Even, Player::Even, Player::Even]);
        assert_eq!(s.strategy[1], Some(2));
        verify(&g, &s).unwrap();
    }

    #[test]
    fn verifier_rejects_wrong_winner() {
        let g = ParityGame::new(vec![Player::Even], vec![1], vec![vec![0]]);
        let bogus = Solution {
            winner: vec![Player::Even],
            strategy: vec![Some(0)],
        };
        assert!(verify(&g, &bogus).is_err());
    }

    #[test]
    fn verifier_rejects_escaping_strategy() {
        let g = ParityGame::new(
            vec![Player::Even, Player::Even, Player::Even],
            vec![0, 2, 1],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let bogus = Solution {
            winner: vec![Player::Even, Player::Even, Player::Odd],
            strategy: vec![Some(2), Some(1), None], // 0 -> 2 leaves region
        };
        assert!(verify(&g, &bogus).is_err());
    }

    /// Random games cross-checked: solve, then verify the strategies.
    #[test]
    fn random_games_verify() {
        let mut state = 0xDEAD_BEEFu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for round in 0..200 {
            let n = 2 + rng() % 7;
            let owner: Vec<Player> = (0..n)
                .map(|_| {
                    if rng() % 2 == 0 {
                        Player::Even
                    } else {
                        Player::Odd
                    }
                })
                .collect();
            let priority: Vec<u32> = (0..n).map(|_| (rng() % 6) as u32).collect();
            let succ: Vec<Vec<usize>> = (0..n)
                .map(|_| {
                    let degree = 1 + rng() % 3;
                    let mut outs: Vec<usize> = (0..degree).map(|_| rng() % n).collect();
                    outs.sort_unstable();
                    outs.dedup();
                    outs
                })
                .collect();
            let g = ParityGame::new(owner, priority, succ);
            let s = solve(&g);
            verify(&g, &s).unwrap_or_else(|e| panic!("round {round}: {e}\n{g:?}\n{s:?}"));
        }
    }

    #[test]
    fn budgeted_solve_matches_unbudgeted() {
        let g = ParityGame::new(
            vec![Player::Odd, Player::Even, Player::Even],
            vec![3, 2, 4],
            vec![vec![1], vec![0, 2], vec![2]],
        );
        let s = solve_with_budget(&g, &Budget::unlimited()).unwrap();
        assert_eq!(s, solve(&g));
    }

    #[test]
    fn budgeted_solve_stops_on_step_limit() {
        // The chooser arena needs at least two sub-arenas: the pr-2
        // attractor leaves the pr-1 self-loop for a recursive call.
        let g = ParityGame::new(
            vec![Player::Even, Player::Even, Player::Even],
            vec![0, 2, 1],
            vec![vec![1, 2], vec![1], vec![2]],
        );
        let err = solve_with_budget(&g, &Budget::unlimited().with_steps(1)).unwrap_err();
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(2), "fails on the second sub-arena");
    }

    #[test]
    fn budgeted_solve_honors_cancellation() {
        use sl_support::CancelFlag;
        let flag = CancelFlag::new();
        flag.cancel();
        let g = ParityGame::new(vec![Player::Even], vec![2], vec![vec![0]]);
        let err = solve_with_budget(&g, &Budget::unlimited().with_cancel(&flag)).unwrap_err();
        assert!(err.is_cancelled());
    }

    #[test]
    fn regions_partition() {
        let g = ParityGame::new(
            vec![Player::Odd, Player::Even, Player::Even],
            vec![3, 2, 4],
            vec![vec![1], vec![0, 2], vec![2]],
        );
        let s = solve(&g);
        let even = s.region(Player::Even);
        let odd = s.region(Player::Odd);
        assert_eq!(even.len() + odd.len(), g.len());
    }
}
