//! # sl-games
//!
//! Infinite-duration games on finite graphs: parity games solved by
//! Zielonka's algorithm (with extracted, independently verified winning
//! strategies) and Rabin games solved via the index-appearance-record
//! reduction to parity.
//!
//! This crate is the algorithmic substrate for `sl-rabin`: emptiness and
//! membership of Rabin tree automata (paper, Section 4.4) reduce to
//! acceptance games whose winning conditions are exactly the Rabin
//! condition `⋁_i (GF green_i ∧ FG ¬red_i)`.
//!
//! ```
//! use sl_games::{solve, ParityGame, Player};
//!
//! // One Even-owned vertex choosing between an even and an odd loop.
//! let game = ParityGame::new(
//!     vec![Player::Even, Player::Even, Player::Even],
//!     vec![0, 2, 1],
//!     vec![vec![1, 2], vec![1], vec![2]],
//! );
//! let solution = solve(&game);
//! assert_eq!(solution.winner[0], Player::Even);
//! assert_eq!(solution.strategy[0], Some(1)); // pick the even loop
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod parity;
pub mod rabin;
pub mod zielonka;

pub use parity::{ParityGame, Player};
pub use rabin::{solve_rabin, RabinGame, RabinSolution};
pub use zielonka::{solve, solve_with_budget, verify, Solution};
