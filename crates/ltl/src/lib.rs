//! # sl-ltl
//!
//! Linear Temporal Logic over alphabet-symbol atoms: syntax, parser,
//! negation normal form, exact evaluation on lasso words, syntactic
//! safety/co-safety fragments, and a tableau translation to Büchi
//! automata — the property front-end for the linear-time half of
//! Manolios & Trefler's *A Lattice-Theoretic Characterization of Safety
//! and Liveness* (PODC 2003).
//!
//! ```
//! use sl_ltl::{eval, parse, translate};
//! use sl_omega::{all_lassos, Alphabet};
//!
//! let sigma = Alphabet::ab();
//! let p3 = parse(&sigma, "a & F !a")?; // Rem's p3
//! let automaton = translate(&sigma, &p3);
//! // The automaton and the evaluator agree on every lasso word.
//! for w in all_lassos(&sigma, 2, 2) {
//!     assert_eq!(automaton.accepts(&w), eval(&p3, &w));
//! }
//! # Ok::<(), sl_ltl::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod classify;
pub mod eval;
pub mod fragments;
pub mod nnf;
pub mod parse;
pub mod rem;
pub mod translate;

pub use ast::Ltl;
pub use classify::{
    classify_formula, decompose_formula, is_liveness_formula, is_safety_formula,
    FormulaDecomposition,
};
pub use eval::{eval, eval_at, LtlProperty};
pub use fragments::{is_syntactic_cosafety, is_syntactic_safety};
pub use nnf::{is_nnf, nnf, simplify};
pub use parse::{parse, ParseError};
pub use rem::{examples as rem_examples, RemExample};
pub use translate::{translate, translate_with_budget};
