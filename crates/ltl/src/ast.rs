//! Linear Temporal Logic syntax.
//!
//! Formulas are interpreted over ω-words whose positions carry exactly
//! one alphabet symbol, so the atomic propositions are the symbols
//! themselves: `Ap(a)` holds at position `i` of word `t` iff `t.i = a`.
//! This matches the paper's examples (Section 2.3), where properties
//! like `a ∧ F ¬a` talk about which symbol occupies each position.

use sl_omega::{Alphabet, Symbol};
use std::fmt;

/// An LTL formula over alphabet-symbol atoms.
///
/// The derived `Ord` is structural; it exists so formulas can live in
/// `BTreeSet`s during the tableau translation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ltl {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// "The current symbol is `a`".
    Ap(Symbol),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Implication (sugar; eliminated by NNF).
    Implies(Box<Ltl>, Box<Ltl>),
    /// Next-time `X φ`.
    Next(Box<Ltl>),
    /// Eventually `F φ`.
    Finally(Box<Ltl>),
    /// Always `G φ`.
    Globally(Box<Ltl>),
    /// Until `φ U ψ`.
    Until(Box<Ltl>, Box<Ltl>),
    /// Release `φ R ψ` (the dual of until).
    Release(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// Atomic proposition.
    #[must_use]
    pub fn ap(sym: Symbol) -> Ltl {
        Ltl::Ap(sym)
    }

    /// Negation. Also available as the `!` operator via [`std::ops::Not`].
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ltl {
        Ltl::Not(Box::new(self))
    }

    /// Conjunction.
    #[must_use]
    pub fn and(self, other: Ltl) -> Ltl {
        Ltl::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    #[must_use]
    pub fn or(self, other: Ltl) -> Ltl {
        Ltl::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    #[must_use]
    pub fn implies(self, other: Ltl) -> Ltl {
        Ltl::Implies(Box::new(self), Box::new(other))
    }

    /// Next-time.
    #[must_use]
    pub fn next(self) -> Ltl {
        Ltl::Next(Box::new(self))
    }

    /// Eventually.
    #[must_use]
    pub fn finally(self) -> Ltl {
        Ltl::Finally(Box::new(self))
    }

    /// Always.
    #[must_use]
    pub fn globally(self) -> Ltl {
        Ltl::Globally(Box::new(self))
    }

    /// Until.
    #[must_use]
    pub fn until(self, other: Ltl) -> Ltl {
        Ltl::Until(Box::new(self), Box::new(other))
    }

    /// Release.
    #[must_use]
    pub fn release(self, other: Ltl) -> Ltl {
        Ltl::Release(Box::new(self), Box::new(other))
    }

    /// All subformulas including `self`, children before parents.
    #[must_use]
    pub fn subformulas(&self) -> Vec<&Ltl> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a Ltl>) {
        match self {
            Ltl::True | Ltl::False | Ltl::Ap(_) => {}
            Ltl::Not(p) | Ltl::Next(p) | Ltl::Finally(p) | Ltl::Globally(p) => {
                p.collect(out);
            }
            Ltl::And(p, q)
            | Ltl::Or(p, q)
            | Ltl::Implies(p, q)
            | Ltl::Until(p, q)
            | Ltl::Release(p, q) => {
                p.collect(out);
                q.collect(out);
            }
        }
        if !out.contains(&self) {
            out.push(self);
        }
    }

    /// Number of AST nodes.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Ap(_) => 1,
            Ltl::Not(p) | Ltl::Next(p) | Ltl::Finally(p) | Ltl::Globally(p) => 1 + p.size(),
            Ltl::And(p, q)
            | Ltl::Or(p, q)
            | Ltl::Implies(p, q)
            | Ltl::Until(p, q)
            | Ltl::Release(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// Renders with symbol names from the alphabet.
    #[must_use]
    pub fn display(&self, alphabet: &Alphabet) -> String {
        fn go(f: &Ltl, alphabet: &Alphabet, out: &mut String) {
            match f {
                Ltl::True => out.push_str("true"),
                Ltl::False => out.push_str("false"),
                Ltl::Ap(sym) => out.push_str(alphabet.name(*sym)),
                Ltl::Not(p) => {
                    out.push('!');
                    paren(p, alphabet, out);
                }
                Ltl::Next(p) => {
                    out.push_str("X ");
                    paren(p, alphabet, out);
                }
                Ltl::Finally(p) => {
                    out.push_str("F ");
                    paren(p, alphabet, out);
                }
                Ltl::Globally(p) => {
                    out.push_str("G ");
                    paren(p, alphabet, out);
                }
                Ltl::And(p, q) => binop(p, "&", q, alphabet, out),
                Ltl::Or(p, q) => binop(p, "|", q, alphabet, out),
                Ltl::Implies(p, q) => binop(p, "->", q, alphabet, out),
                Ltl::Until(p, q) => binop(p, "U", q, alphabet, out),
                Ltl::Release(p, q) => binop(p, "R", q, alphabet, out),
            }
        }
        fn paren(f: &Ltl, alphabet: &Alphabet, out: &mut String) {
            let atomic = matches!(f, Ltl::True | Ltl::False | Ltl::Ap(_));
            if atomic {
                go(f, alphabet, out);
            } else {
                out.push('(');
                go(f, alphabet, out);
                out.push(')');
            }
        }
        fn binop(p: &Ltl, op: &str, q: &Ltl, alphabet: &Alphabet, out: &mut String) {
            paren(p, alphabet, out);
            out.push(' ');
            out.push_str(op);
            out.push(' ');
            paren(q, alphabet, out);
        }
        let mut out = String::new();
        go(self, alphabet, &mut out);
        out
    }
}

impl std::ops::Not for Ltl {
    type Output = Ltl;

    fn not(self) -> Ltl {
        Ltl::Not(Box::new(self))
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render with raw symbol indices when no alphabet is at hand.
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Ap(sym) => write!(f, "p{}", sym.0),
            Ltl::Not(p) => write!(f, "!({p})"),
            Ltl::Next(p) => write!(f, "X ({p})"),
            Ltl::Finally(p) => write!(f, "F ({p})"),
            Ltl::Globally(p) => write!(f, "G ({p})"),
            Ltl::And(p, q) => write!(f, "({p}) & ({q})"),
            Ltl::Or(p, q) => write!(f, "({p}) | ({q})"),
            Ltl::Implies(p, q) => write!(f, "({p}) -> ({q})"),
            Ltl::Until(p, q) => write!(f, "({p}) U ({q})"),
            Ltl::Release(p, q) => write!(f, "({p}) R ({q})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn builders_compose() {
        let s = ab();
        let a = s.symbol("a").unwrap();
        let f = Ltl::ap(a).and(Ltl::ap(a).not().finally());
        assert_eq!(f.display(&s), "a & (F (!a))");
        assert_eq!(f.size(), 5); // a, a, !a, F !a, and the conjunction
    }

    #[test]
    fn subformulas_children_first() {
        let s = ab();
        let a = s.symbol("a").unwrap();
        let f = Ltl::ap(a).until(Ltl::ap(a).not());
        let subs = f.subformulas();
        assert_eq!(subs.len(), 3);
        // Children appear before the parent.
        let pos = |g: &Ltl| subs.iter().position(|x| *x == g).unwrap();
        assert!(pos(&Ltl::ap(a)) < pos(&f));
        assert!(pos(&Ltl::ap(a).not()) < pos(&f));
    }

    #[test]
    fn subformulas_deduplicate() {
        let s = ab();
        let a = s.symbol("a").unwrap();
        let f = Ltl::ap(a).and(Ltl::ap(a));
        assert_eq!(f.subformulas().len(), 2); // a and (a & a)
    }

    #[test]
    fn display_round_trips_shape() {
        let s = ab();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let f = Ltl::ap(a).globally().or(Ltl::ap(b).next());
        assert_eq!(f.display(&s), "(G a) | (X b)");
        // The alphabet-free Display also renders something sensible.
        assert_eq!(f.to_string(), "(G (p0)) | (X (p1))");
    }

    #[test]
    fn ord_is_usable_in_sets() {
        let s = ab();
        let a = s.symbol("a").unwrap();
        let mut set = std::collections::BTreeSet::new();
        set.insert(Ltl::ap(a));
        set.insert(Ltl::ap(a));
        set.insert(Ltl::True);
        assert_eq!(set.len(), 2);
    }
}
