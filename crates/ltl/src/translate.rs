//! Tableau translation from LTL to Büchi automata.
//!
//! The construction is the classic obligation-set tableau: an automaton
//! state is the set of formulas that must hold of the remaining word,
//! plus a record of which until-promises the incoming transition
//! fulfilled. Reading a symbol expands every obligation by the expansion
//! laws
//!
//! ```text
//! p U q  =  q ∨ (p ∧ X(p U q))        (q-branch fulfills the promise)
//! p R q  =  q ∧ (p ∨ X(p R q))
//! ```
//!
//! and acceptance requires every until either absent or fulfilled
//! infinitely often — a generalized Büchi condition, degeneralized with
//! the standard round-robin counter.
//!
//! The output is trimmed and reduced by direct simulation
//! ([`sl_buchi::reduce()`]), then cross-checked against the direct
//! lasso-word semantics of [`crate::eval()`] by the test suite — the kind
//! of ground-truth redundancy the rest of the workspace leans on.

use crate::ast::Ltl;
use crate::nnf::nnf;
use sl_buchi::{Buchi, BuchiBuilder};
use sl_omega::{Alphabet, Symbol};
use sl_support::{Budget, SlError};
use std::collections::{BTreeSet, HashMap};

/// An obligation set plus the promises fulfilled on entry.
type TableauNode = (BTreeSet<Ltl>, u64);

/// Translates an LTL formula into a Büchi automaton with the same
/// language. The formula is converted to negation normal form first.
///
/// # Panics
///
/// Panics if the formula has more than 64 until-subformulas (promise
/// masks are `u64`).
///
/// # Examples
///
/// ```
/// use sl_ltl::{parse, translate};
/// use sl_omega::{Alphabet, LassoWord};
///
/// let sigma = Alphabet::ab();
/// let automaton = translate(&sigma, &parse(&sigma, "G F a")?);
/// assert!(automaton.accepts(&LassoWord::parse(&sigma, "b", "a b")));
/// assert!(!automaton.accepts(&LassoWord::parse(&sigma, "a a", "b")));
/// # Ok::<(), sl_ltl::ParseError>(())
/// ```
#[must_use]
pub fn translate(alphabet: &Alphabet, formula: &Ltl) -> Buchi {
    match translate_with_budget(alphabet, formula, &Budget::unlimited()) {
        Ok(b) => b,
        Err(err) => panic!("{err}"),
    }
}

/// Translates under a cooperative [`Budget`]: every tableau node
/// charges one step against the budget's meter (phase
/// `"ltl.translate"`). The tableau is worst-case exponential in the
/// formula, so adversarial or machine-generated formulas should come
/// through here with a deadline.
///
/// # Errors
///
/// * [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the
///   budget;
/// * [`SlError::InvalidInput`] if the formula has more than 64
///   until-subformulas (promise masks are `u64`) — a typed error here,
///   where [`translate`] panics.
pub fn translate_with_budget(
    alphabet: &Alphabet,
    formula: &Ltl,
    budget: &Budget,
) -> Result<Buchi, SlError> {
    let mut meter = budget.meter("ltl.translate");
    let normalized = nnf(formula);
    // Identify the until-subformulas: each carries a promise bit.
    let untils: Vec<Ltl> = normalized
        .subformulas()
        .into_iter()
        .filter(|f| matches!(f, Ltl::Until(_, _)))
        .cloned()
        .collect();
    if untils.len() > 64 {
        return Err(SlError::InvalidInput(format!(
            "too many until subformulas: {} (promise masks are u64)",
            untils.len()
        )));
    }
    let promise_of: HashMap<Ltl, u64> = untils
        .iter()
        .enumerate()
        .map(|(i, f)| (f.clone(), 1u64 << i))
        .collect();
    let k = untils.len();

    // Generalized tableau states, explored lazily.
    let mut ids: HashMap<TableauNode, usize> = HashMap::new();
    let mut transitions: Vec<Vec<(Symbol, usize)>> = Vec::new();
    let mut nodes: Vec<TableauNode> = Vec::new();

    let mut initial_set = BTreeSet::new();
    initial_set.insert(normalized.clone());
    let start: TableauNode = (initial_set, 0);
    meter.charge(1)?;
    ids.insert(start.clone(), 0);
    nodes.push(start.clone());
    transitions.push(Vec::new());
    let mut work = vec![start];

    while let Some(node) = work.pop() {
        let from = ids[&node];
        for sym in alphabet.symbols() {
            // Expand the conjunction of all obligations.
            let mut alternatives: Vec<(BTreeSet<Ltl>, u64)> = vec![(BTreeSet::new(), 0)];
            for obligation in &node.0 {
                let expansions = expand(obligation, sym, &promise_of);
                let mut combined = Vec::new();
                for (next, fulfilled) in &alternatives {
                    for (ob2, f2) in &expansions {
                        let mut merged = next.clone();
                        merged.extend(ob2.iter().cloned());
                        combined.push((merged, fulfilled | f2));
                    }
                }
                alternatives = combined;
                if alternatives.is_empty() {
                    break;
                }
            }
            alternatives.sort();
            alternatives.dedup();
            for target in alternatives {
                let to = match ids.get(&target) {
                    Some(&id) => id,
                    None => {
                        meter.charge(1)?;
                        let id = nodes.len();
                        ids.insert(target.clone(), id);
                        nodes.push(target.clone());
                        transitions.push(Vec::new());
                        work.push(target);
                        id
                    }
                };
                transitions[from].push((sym, to));
            }
        }
    }

    // Degeneralize: NBA states are (tableau node, counter in 0..k).
    // With no untils, every state is accepting.
    let mut builder = BuchiBuilder::new(alphabet.clone());
    let in_set = |node: &TableauNode, i: usize| -> bool {
        let bit = 1u64 << i;
        node.1 & bit != 0 || !node.0.contains(&untils[i])
    };
    if k == 0 {
        for _ in 0..nodes.len() {
            builder.add_state(true);
        }
        for (from, outs) in transitions.iter().enumerate() {
            for &(sym, to) in outs {
                builder.add_transition(from, sym, to);
            }
        }
        return Ok(sl_buchi::reduce(&builder.build(0).trim_unreachable()));
    }
    // State id = node * k + counter.
    for node in &nodes {
        for counter in 0..k {
            let accepting = counter == 0 && in_set(node, 0);
            builder.add_state(accepting);
            let _ = node;
        }
    }
    for (from, outs) in transitions.iter().enumerate() {
        for counter in 0..k {
            let next_counter = if in_set(&nodes[from], counter) {
                (counter + 1) % k
            } else {
                counter
            };
            for &(sym, to) in outs {
                builder.add_transition(from * k + counter, sym, to * k + next_counter);
            }
        }
    }
    Ok(sl_buchi::reduce(&builder.build(0).trim_unreachable()))
}

/// Expands one NNF formula on one symbol into the disjunction of
/// (next-step obligations, fulfilled promises).
fn expand(f: &Ltl, sym: Symbol, promise_of: &HashMap<Ltl, u64>) -> Vec<(BTreeSet<Ltl>, u64)> {
    match f {
        Ltl::True => vec![(BTreeSet::new(), 0)],
        Ltl::False => Vec::new(),
        Ltl::Ap(a) => {
            if *a == sym {
                vec![(BTreeSet::new(), 0)]
            } else {
                Vec::new()
            }
        }
        Ltl::Not(inner) => match &**inner {
            Ltl::Ap(a) => {
                if *a != sym {
                    vec![(BTreeSet::new(), 0)]
                } else {
                    Vec::new()
                }
            }
            other => unreachable!("formula not in NNF: !({other})"),
        },
        Ltl::And(l, r) => {
            let left = expand(l, sym, promise_of);
            let right = expand(r, sym, promise_of);
            let mut out = Vec::new();
            for (ol, fl) in &left {
                for (or, fr) in &right {
                    let mut merged = ol.clone();
                    merged.extend(or.iter().cloned());
                    out.push((merged, fl | fr));
                }
            }
            out
        }
        Ltl::Or(l, r) => {
            let mut out = expand(l, sym, promise_of);
            out.extend(expand(r, sym, promise_of));
            out
        }
        Ltl::Next(p) => {
            let mut obligations = BTreeSet::new();
            obligations.insert((**p).clone());
            vec![(obligations, 0)]
        }
        Ltl::Until(l, r) => {
            let promise = promise_of[f];
            // q-branch: fulfill the promise now.
            let mut out: Vec<(BTreeSet<Ltl>, u64)> = expand(r, sym, promise_of)
                .into_iter()
                .map(|(ob, fl)| (ob, fl | promise))
                .collect();
            // p-branch: hold p now, re-assert the until next step.
            for (mut ob, fl) in expand(l, sym, promise_of) {
                ob.insert(f.clone());
                out.push((ob, fl));
            }
            out
        }
        Ltl::Release(l, r) => {
            // r must hold now; either l releases now, or the release
            // carries to the next step.
            let right = expand(r, sym, promise_of);
            let left = expand(l, sym, promise_of);
            let mut out = Vec::new();
            for (or, fr) in &right {
                for (ol, fl) in &left {
                    let mut merged = or.clone();
                    merged.extend(ol.iter().cloned());
                    out.push((merged, fr | fl));
                }
                let mut carried = or.clone();
                carried.insert(f.clone());
                out.push((carried, *fr));
            }
            out
        }
        Ltl::Implies(_, _) | Ltl::Finally(_) | Ltl::Globally(_) => {
            unreachable!("formula not in NNF: {f}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parse::parse;
    use sl_omega::{all_lassos, LassoWord};

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    /// Exhaustive agreement between the automaton and the evaluator on
    /// all small lassos.
    fn check_agreement(text: &str, max_stem: usize, max_cycle: usize) {
        let s = ab();
        let f = parse(&s, text).unwrap();
        let m = translate(&s, &f);
        for w in all_lassos(&s, max_stem, max_cycle) {
            assert_eq!(
                m.accepts(&w),
                eval(&f, &w),
                "{text} (automaton has {} states) on {w}",
                m.num_states()
            );
        }
    }

    #[test]
    fn atoms_and_boolean() {
        check_agreement("a", 2, 2);
        check_agreement("!a", 2, 2);
        check_agreement("a & X b", 2, 2);
        check_agreement("a | X b", 2, 2);
        check_agreement("true", 2, 2);
        check_agreement("false", 2, 2);
    }

    #[test]
    fn rem_examples() {
        check_agreement("a & F !a", 3, 3); // p3
        check_agreement("F G !a", 3, 3); // p4
        check_agreement("G F a", 3, 3); // p5
    }

    #[test]
    fn untils_and_releases() {
        check_agreement("a U b", 3, 3);
        check_agreement("b R a", 3, 3);
        check_agreement("a U (b U a)", 2, 3);
        check_agreement("(a U b) R a", 2, 3);
    }

    #[test]
    fn nested_temporal() {
        check_agreement("G (a -> F b)", 2, 3);
        check_agreement("F (a & X a)", 2, 3);
        check_agreement("G (a -> X b)", 2, 3);
        check_agreement("(F a) & (F b)", 2, 3);
        check_agreement("(G a) | (G b)", 2, 3);
    }

    #[test]
    fn implication_and_iff() {
        check_agreement("a -> F b", 2, 3);
        check_agreement("a <-> X a", 2, 3);
    }

    #[test]
    fn weak_until() {
        check_agreement("a W b", 3, 3);
        check_agreement("b W a", 3, 3);
    }

    #[test]
    fn translated_gfa_is_small() {
        let s = ab();
        let m = translate(&s, &parse(&s, "G F a").unwrap());
        // Tableau + degeneralization should stay in single digits here.
        assert!(m.num_states() <= 8, "got {}", m.num_states());
    }

    #[test]
    fn empty_formula_empty_language() {
        let s = ab();
        let m = translate(&s, &Ltl::False);
        assert!(sl_buchi::is_empty(&m));
        let m = translate(&s, &Ltl::True);
        for w in all_lassos(&s, 2, 2) {
            assert!(m.accepts(&w));
        }
    }

    #[test]
    fn negated_formulas_complement_on_samples() {
        let s = ab();
        for text in ["a U b", "G F a", "a & F !a"] {
            let f = parse(&s, text).unwrap();
            let m = translate(&s, &f);
            let mn = translate(&s, &f.clone().not());
            for w in all_lassos(&s, 2, 3) {
                assert_ne!(m.accepts(&w), mn.accepts(&w), "{text} on {w}");
            }
        }
    }

    #[test]
    fn budgeted_translate_matches_unbudgeted() {
        let s = ab();
        let f = parse(&s, "G (a -> F b)").unwrap();
        let m = translate_with_budget(&s, &f, &Budget::unlimited()).unwrap();
        assert_eq!(m, translate(&s, &f));
    }

    #[test]
    fn budgeted_translate_stops_on_step_limit() {
        let s = ab();
        let f = parse(&s, "G (a -> F b)").unwrap();
        let err = translate_with_budget(&s, &f, &Budget::unlimited().with_steps(1)).unwrap_err();
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(2), "second tableau node breaks the limit");
    }

    #[test]
    fn specific_word_checks() {
        let s = ab();
        let m = translate(&s, &parse(&s, "a U b").unwrap());
        assert!(m.accepts(&LassoWord::parse(&s, "a a b", "a")));
        assert!(!m.accepts(&LassoWord::parse(&s, "", "a")));
    }
}
