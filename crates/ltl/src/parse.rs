//! A recursive-descent parser for LTL formulas.
//!
//! Grammar (loosest to tightest binding, matching the paper's
//! conventions in Section 2.1):
//!
//! ```text
//! iff     := implies ('<->' implies)*
//! implies := or ('->' or)*          (right associative)
//! or      := and ('|' and)*
//! and     := until ('&' until)*
//! until   := unary (('U' | 'R' | 'W') until)?   (right associative)
//! unary   := ('!' | 'X' | 'F' | 'G') unary | atom
//! atom    := 'true' | 'false' | ident | '(' iff ')'
//! ```
//!
//! `W` (weak until) is sugar: `p W q = (p U q) | G p`. `<->` is sugar for
//! conjoined implications. Identifiers are looked up in the alphabet.

use crate::ast::Ltl;
use sl_omega::Alphabet;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub position: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Next,
    Finally,
    Globally,
    Until,
    Release,
    WeakUntil,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let token = match c {
            '(' => {
                i += 1;
                Token::LParen
            }
            ')' => {
                i += 1;
                Token::RParen
            }
            '!' => {
                i += 1;
                Token::Not
            }
            '&' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'&' {
                    i += 1;
                }
                Token::And
            }
            '|' => {
                i += 1;
                if i < bytes.len() && bytes[i] == b'|' {
                    i += 1;
                }
                Token::Or
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 2;
                    Token::Implies
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected '->'".into(),
                    });
                }
            }
            '<' => {
                if input[i..].starts_with("<->") {
                    i += 3;
                    Token::Iff
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected '<->'".into(),
                    });
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && {
                    let c = bytes[j] as char;
                    c.is_alphanumeric() || c == '_'
                } {
                    j += 1;
                }
                let word = &input[i..j];
                i = j;
                match word {
                    "true" => Token::True,
                    "false" => Token::False,
                    "X" => Token::Next,
                    "F" => Token::Finally,
                    "G" => Token::Globally,
                    "U" => Token::Until,
                    "R" => Token::Release,
                    "W" => Token::WeakUntil,
                    _ => Token::Ident(word.to_string()),
                }
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        tokens.push((start, token));
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    alphabet: &'a Alphabet,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(p, _)| *p)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.here(),
            message: message.into(),
        }
    }

    fn iff(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.implies()?;
        while self.peek() == Some(&Token::Iff) {
            self.bump();
            let rhs = self.implies()?;
            lhs = lhs.clone().implies(rhs.clone()).and(rhs.implies(lhs));
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Token::Implies) {
            self.bump();
            let rhs = self.implies()?; // right associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Token::Or) {
            self.bump();
            lhs = lhs.or(self.and()?);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.until()?;
        while self.peek() == Some(&Token::And) {
            self.bump();
            lhs = lhs.and(self.until()?);
        }
        Ok(lhs)
    }

    fn until(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.unary()?;
        match self.peek() {
            Some(Token::Until) => {
                self.bump();
                let rhs = self.until()?;
                Ok(lhs.until(rhs))
            }
            Some(Token::Release) => {
                self.bump();
                let rhs = self.until()?;
                Ok(lhs.release(rhs))
            }
            Some(Token::WeakUntil) => {
                self.bump();
                let rhs = self.until()?;
                // p W q = (p U q) | G p.
                Ok(lhs.clone().until(rhs).or(lhs.globally()))
            }
            _ => Ok(lhs),
        }
    }

    fn unary(&mut self) -> Result<Ltl, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.bump();
                Ok(self.unary()?.not())
            }
            Some(Token::Next) => {
                self.bump();
                Ok(self.unary()?.next())
            }
            Some(Token::Finally) => {
                self.bump();
                Ok(self.unary()?.finally())
            }
            Some(Token::Globally) => {
                self.bump();
                Ok(self.unary()?.globally())
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Ltl, ParseError> {
        match self.bump() {
            Some(Token::True) => Ok(Ltl::True),
            Some(Token::False) => Ok(Ltl::False),
            Some(Token::Ident(name)) => self
                .alphabet
                .symbol(&name)
                .map(Ltl::Ap)
                .ok_or_else(|| self.error(format!("unknown symbol {name:?}"))),
            Some(Token::LParen) => {
                let inner = self.iff()?;
                if self.bump() != Some(Token::RParen) {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            other => Err(self.error(format!("expected a formula, found {other:?}"))),
        }
    }
}

/// Parses an LTL formula over the given alphabet.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or unknown symbols.
///
/// # Examples
///
/// ```
/// use sl_ltl::parse;
/// use sl_omega::Alphabet;
///
/// let sigma = Alphabet::ab();
/// let f = parse(&sigma, "a & F !a")?;
/// assert_eq!(f.display(&sigma), "a & (F (!a))");
/// # Ok::<(), sl_ltl::ParseError>(())
/// ```
pub fn parse(alphabet: &Alphabet, input: &str) -> Result<Ltl, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        alphabet,
        input_len: input.len(),
    };
    let formula = parser.iff()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("trailing input"));
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn parses_rem_examples() {
        let s = ab();
        for text in ["false", "a", "!a", "a & F !a", "F G !a", "G F a", "true"] {
            let f = parse(&s, text).unwrap();
            assert!(f.size() >= 1);
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let s = ab();
        let f = parse(&s, "a | b & a").unwrap();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        assert_eq!(f, Ltl::ap(a).or(Ltl::ap(b).and(Ltl::ap(a))));
    }

    #[test]
    fn until_binds_tighter_than_and() {
        let s = ab();
        let f = parse(&s, "a U b & b U a").unwrap();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        assert_eq!(
            f,
            Ltl::ap(a)
                .until(Ltl::ap(b))
                .and(Ltl::ap(b).until(Ltl::ap(a)))
        );
    }

    #[test]
    fn until_is_right_associative() {
        let s = ab();
        let f = parse(&s, "a U b U a").unwrap();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        assert_eq!(f, Ltl::ap(a).until(Ltl::ap(b).until(Ltl::ap(a))));
    }

    #[test]
    fn unary_operators_stack() {
        let s = ab();
        let f = parse(&s, "G F !a").unwrap();
        let a = s.symbol("a").unwrap();
        assert_eq!(f, Ltl::ap(a).not().finally().globally());
    }

    #[test]
    fn weak_until_desugars() {
        let s = ab();
        let f = parse(&s, "a W b").unwrap();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        assert_eq!(f, Ltl::ap(a).until(Ltl::ap(b)).or(Ltl::ap(a).globally()));
    }

    #[test]
    fn iff_desugars() {
        let s = ab();
        let f = parse(&s, "a <-> b").unwrap();
        let a = Ltl::ap(s.symbol("a").unwrap());
        let b = Ltl::ap(s.symbol("b").unwrap());
        assert_eq!(f, a.clone().implies(b.clone()).and(b.implies(a)));
    }

    #[test]
    fn parens_override() {
        let s = ab();
        let f = parse(&s, "(a | b) & a").unwrap();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        assert_eq!(f, Ltl::ap(a).or(Ltl::ap(b)).and(Ltl::ap(a)));
    }

    #[test]
    fn c_style_operators_accepted() {
        let s = ab();
        assert_eq!(parse(&s, "a && b").unwrap(), parse(&s, "a & b").unwrap());
        assert_eq!(parse(&s, "a || b").unwrap(), parse(&s, "a | b").unwrap());
    }

    #[test]
    fn errors_have_positions() {
        let s = ab();
        let err = parse(&s, "a & q").unwrap_err();
        assert!(err.message.contains("unknown symbol"));
        let err = parse(&s, "a &").unwrap_err();
        assert!(err.message.contains("expected a formula"));
        let err = parse(&s, "(a").unwrap_err();
        assert!(err.message.contains("expected ')'"));
        let err = parse(&s, "a b").unwrap_err();
        assert!(err.message.contains("trailing input"));
        let err = parse(&s, "a @ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn display_reparses_to_same_ast() {
        let s = ab();
        for text in ["a & F !a", "G F a", "a U (b R a)", "X X a", "a -> F b"] {
            let f = parse(&s, text).unwrap();
            let g = parse(&s, &f.display(&s)).unwrap();
            assert_eq!(f, g, "{text}");
        }
    }
}
