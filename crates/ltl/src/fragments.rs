//! Syntactic safety and co-safety fragments of LTL.
//!
//! A classic sufficient condition (Sistla): an NNF formula with no
//! `U`/`F` defines a safety property, and one with no `R`/`G` defines a
//! co-safety (guarantee) property. These checks are *syntactic* — sound
//! but not complete. The exact semantic deciders live in
//! `sl_buchi::classify`; the test suite confirms the syntactic fragment
//! always agrees with the semantic decision where it claims membership.

use crate::ast::Ltl;
use crate::nnf::nnf;

/// Whether the NNF of the formula avoids `U` (a syntactic safety
/// witness; `F` desugars to `U`, `X`/`R`/`G` are allowed).
#[must_use]
pub fn is_syntactic_safety(formula: &Ltl) -> bool {
    fn no_until(f: &Ltl) -> bool {
        match f {
            Ltl::True | Ltl::False | Ltl::Ap(_) => true,
            Ltl::Not(p) | Ltl::Next(p) => no_until(p),
            Ltl::And(p, q) | Ltl::Or(p, q) | Ltl::Release(p, q) => no_until(p) && no_until(q),
            Ltl::Until(_, _) => false,
            // nnf output contains none of these:
            Ltl::Implies(_, _) | Ltl::Finally(_) | Ltl::Globally(_) => false,
        }
    }
    no_until(&nnf(formula))
}

/// Whether the NNF of the formula avoids `R` (a syntactic co-safety /
/// guarantee witness; `G` desugars to `R`).
#[must_use]
pub fn is_syntactic_cosafety(formula: &Ltl) -> bool {
    fn no_release(f: &Ltl) -> bool {
        match f {
            Ltl::True | Ltl::False | Ltl::Ap(_) => true,
            Ltl::Not(p) | Ltl::Next(p) => no_release(p),
            Ltl::And(p, q) | Ltl::Or(p, q) | Ltl::Until(p, q) => no_release(p) && no_release(q),
            Ltl::Release(_, _) => false,
            Ltl::Implies(_, _) | Ltl::Finally(_) | Ltl::Globally(_) => false,
        }
    }
    no_release(&nnf(formula))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::translate::translate;
    use sl_buchi::classify::{is_safety, Classification};
    use sl_omega::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn syntactic_safety_examples() {
        let s = ab();
        for text in ["a", "!a", "G a", "G (a -> X b)", "a R b", "X X a", "false"] {
            assert!(
                is_syntactic_safety(&parse(&s, text).unwrap()),
                "{text} should be syntactic safety"
            );
        }
        for text in ["F a", "a U b", "G F a"] {
            assert!(
                !is_syntactic_safety(&parse(&s, text).unwrap()),
                "{text} should not be syntactic safety"
            );
        }
    }

    #[test]
    fn syntactic_cosafety_examples() {
        let s = ab();
        for text in ["a", "F a", "a U b", "F (a & X b)", "true"] {
            assert!(
                is_syntactic_cosafety(&parse(&s, text).unwrap()),
                "{text} should be syntactic co-safety"
            );
        }
        for text in ["G a", "G F a", "a R b"] {
            assert!(
                !is_syntactic_cosafety(&parse(&s, text).unwrap()),
                "{text} should not be syntactic co-safety"
            );
        }
    }

    #[test]
    fn negation_swaps_fragments() {
        let s = ab();
        for text in ["G a", "a R b", "G (a -> X b)"] {
            let f = parse(&s, text).unwrap();
            assert!(is_syntactic_safety(&f));
            assert!(is_syntactic_cosafety(&f.not()));
        }
    }

    #[test]
    fn syntactic_safety_is_semantically_safe() {
        // Soundness: every syntactic-safety formula's language is a
        // semantic safety property per the exact automaton decider.
        let s = ab();
        for text in ["a", "!a", "G a", "a R b", "X a", "G (a -> X b)", "false"] {
            let f = parse(&s, text).unwrap();
            assert!(is_syntactic_safety(&f));
            let m = translate(&s, &f);
            assert!(is_safety(&m).unwrap(), "{text} not semantically safe");
        }
    }

    #[test]
    fn fragment_is_incomplete_by_design() {
        // "a | (!a)" is Σ^ω (safe) but syntactically harmless anyway;
        // construct a semantically safe formula outside the fragment:
        // F false is ∅, which is safe, but contains F.
        let s = ab();
        let f = parse(&s, "F false").unwrap();
        assert!(!is_syntactic_safety(&f));
        let m = translate(&s, &f);
        assert_eq!(
            sl_buchi::classify::classify(&m).unwrap(),
            Classification::Safety
        );
    }
}
