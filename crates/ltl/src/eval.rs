//! Exact LTL evaluation on ultimately periodic words.
//!
//! A lasso word has only `stem_len + period` distinct suffixes (its
//! *phases*), so every LTL formula has a well-defined truth value at each
//! phase computable by dynamic programming: propositional and `X` cases
//! are local, `U` is the least fixpoint and `R` the greatest fixpoint of
//! their expansion laws over the finite phase graph.
//!
//! This evaluator is the semantic ground truth for the LTL→Büchi
//! translation: `sl-buchi` cross-checks automaton membership against
//! [`eval`] on whole lasso corpora.

use crate::ast::Ltl;
use sl_omega::LassoWord;
use std::collections::HashMap;

/// Truth values of one formula at every phase of a lasso word.
type PhaseVector = Vec<bool>;

/// Evaluates `formula` on the ω-word `word` (truth at position 0).
///
/// # Examples
///
/// ```
/// use sl_ltl::{eval, parse};
/// use sl_omega::{Alphabet, LassoWord};
///
/// let sigma = Alphabet::ab();
/// let gfa = parse(&sigma, "G F a")?;
/// assert!(eval(&gfa, &LassoWord::parse(&sigma, "b", "a b")));
/// assert!(!eval(&gfa, &LassoWord::parse(&sigma, "a a", "b")));
/// # Ok::<(), sl_ltl::ParseError>(())
/// ```
#[must_use]
pub fn eval(formula: &Ltl, word: &LassoWord) -> bool {
    eval_at(formula, word)[0]
}

/// Evaluates `formula` at every phase of `word`; entry `i` is the truth
/// value on the suffix starting at position `i` (for
/// `i < word.phase_count()`).
#[must_use]
pub fn eval_at(formula: &Ltl, word: &LassoWord) -> PhaseVector {
    let mut memo: HashMap<&Ltl, PhaseVector> = HashMap::new();
    go(formula, word, &mut memo)
}

fn go<'f>(f: &'f Ltl, w: &LassoWord, memo: &mut HashMap<&'f Ltl, PhaseVector>) -> PhaseVector {
    if let Some(v) = memo.get(f) {
        return v.clone();
    }
    let n = w.phase_count();
    let vec: PhaseVector = match f {
        Ltl::True => vec![true; n],
        Ltl::False => vec![false; n],
        Ltl::Ap(sym) => (0..n).map(|i| w.at(i) == *sym).collect(),
        Ltl::Not(p) => go(p, w, memo).into_iter().map(|b| !b).collect(),
        Ltl::And(p, q) => {
            let vp = go(p, w, memo);
            let vq = go(q, w, memo);
            vp.into_iter().zip(vq).map(|(a, b)| a && b).collect()
        }
        Ltl::Or(p, q) => {
            let vp = go(p, w, memo);
            let vq = go(q, w, memo);
            vp.into_iter().zip(vq).map(|(a, b)| a || b).collect()
        }
        Ltl::Implies(p, q) => {
            let vp = go(p, w, memo);
            let vq = go(q, w, memo);
            vp.into_iter().zip(vq).map(|(a, b)| !a || b).collect()
        }
        Ltl::Next(p) => {
            let vp = go(p, w, memo);
            (0..n).map(|i| vp[w.next_phase(i)]).collect()
        }
        Ltl::Finally(p) => {
            let vp = go(p, w, memo);
            lfp(w, |u, i| vp[i] || u[w.next_phase(i)])
        }
        Ltl::Globally(p) => {
            let vp = go(p, w, memo);
            gfp(w, |u, i| vp[i] && u[w.next_phase(i)])
        }
        Ltl::Until(p, q) => {
            let vp = go(p, w, memo);
            let vq = go(q, w, memo);
            lfp(w, |u, i| vq[i] || (vp[i] && u[w.next_phase(i)]))
        }
        Ltl::Release(p, q) => {
            let vp = go(p, w, memo);
            let vq = go(q, w, memo);
            gfp(w, |u, i| vq[i] && (vp[i] || u[w.next_phase(i)]))
        }
    };
    memo.insert(f, vec.clone());
    vec
}

/// Least fixpoint of a monotone step function over the phase graph,
/// starting from all-false.
fn lfp<F: Fn(&[bool], usize) -> bool>(w: &LassoWord, step: F) -> PhaseVector {
    let n = w.phase_count();
    let mut current = vec![false; n];
    loop {
        let next: PhaseVector = (0..n).map(|i| step(&current, i)).collect();
        if next == current {
            return current;
        }
        current = next;
    }
}

/// Greatest fixpoint of a monotone step function, starting from all-true.
fn gfp<F: Fn(&[bool], usize) -> bool>(w: &LassoWord, step: F) -> PhaseVector {
    let n = w.phase_count();
    let mut current = vec![true; n];
    loop {
        let next: PhaseVector = (0..n).map(|i| step(&current, i)).collect();
        if next == current {
            return current;
        }
        current = next;
    }
}

/// An LTL formula viewed as a [`sl_omega::LinearProperty`], so formulas
/// can be compared directly against semantic oracles and automata.
pub struct LtlProperty {
    formula: Ltl,
    name: String,
}

impl LtlProperty {
    /// Wraps a formula, naming it by its alphabet-free rendering.
    #[must_use]
    pub fn new(formula: Ltl) -> Self {
        let name = formula.to_string();
        LtlProperty { formula, name }
    }

    /// Wraps a formula with an explicit display name.
    #[must_use]
    pub fn named(formula: Ltl, name: impl Into<String>) -> Self {
        LtlProperty {
            formula,
            name: name.into(),
        }
    }

    /// The wrapped formula.
    #[must_use]
    pub fn formula(&self) -> &Ltl {
        &self.formula
    }
}

impl sl_omega::LinearProperty for LtlProperty {
    fn contains(&self, word: &LassoWord) -> bool {
        eval(&self.formula, word)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::nnf;
    use crate::parse::parse;
    use sl_omega::{all_lassos, Alphabet};

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn atoms_inspect_first_symbol() {
        let s = ab();
        let a = parse(&s, "a").unwrap();
        assert!(eval(&a, &LassoWord::parse(&s, "a", "b")));
        assert!(!eval(&a, &LassoWord::parse(&s, "b", "a")));
    }

    #[test]
    fn next_shifts() {
        let s = ab();
        let f = parse(&s, "X a").unwrap();
        assert!(eval(&f, &LassoWord::parse(&s, "b a", "b")));
        assert!(!eval(&f, &LassoWord::parse(&s, "a b", "a")));
    }

    #[test]
    fn finally_and_globally() {
        let s = ab();
        let fa = parse(&s, "F a").unwrap();
        let ga = parse(&s, "G a").unwrap();
        assert!(eval(&fa, &LassoWord::parse(&s, "b b b", "a")));
        assert!(!eval(&fa, &LassoWord::parse(&s, "", "b")));
        assert!(eval(&ga, &LassoWord::parse(&s, "", "a")));
        assert!(!eval(&ga, &LassoWord::parse(&s, "a a", "b")));
    }

    #[test]
    fn until_requires_eventual_fulfillment() {
        let s = ab();
        let f = parse(&s, "a U b").unwrap();
        assert!(eval(&f, &LassoWord::parse(&s, "a a b", "a")));
        assert!(eval(&f, &LassoWord::parse(&s, "b", "a")));
        // a U b fails on a^ω: never fulfilled (least fixpoint matters).
        assert!(!eval(&f, &LassoWord::parse(&s, "", "a")));
    }

    #[test]
    fn release_is_greatest_fixpoint() {
        let s = ab();
        let f = parse(&s, "b R a").unwrap();
        // a^ω satisfies b R a (a holds forever, never released).
        assert!(eval(&f, &LassoWord::parse(&s, "", "a")));
        // a b ... : a holds up to and including the release point? b R a
        // requires a holds until (and including) a position where b & a?
        // b R a: a must hold up to and including the first b-position...
        // here symbols are exclusive so a & b is impossible; the only way
        // to satisfy is G a.
        assert!(!eval(&f, &LassoWord::parse(&s, "a", "b")));
    }

    #[test]
    fn rem_formulas_match_semantic_oracles() {
        use sl_omega::{rem, LinearProperty};
        let s = ab();
        let pairs: Vec<(&str, rem::BoxedProperty)> = vec![
            ("false", rem::p0(&s)),
            ("a", rem::p1(&s)),
            ("!a", rem::p2(&s)),
            ("a & F !a", rem::p3(&s)),
            ("F G !a", rem::p4(&s)),
            ("G F a", rem::p5(&s)),
            ("true", rem::p6(&s)),
        ];
        for (text, oracle) in pairs {
            let f = parse(&s, text).unwrap();
            for w in all_lassos(&s, 3, 3) {
                assert_eq!(
                    eval(&f, &w),
                    oracle.contains(&w),
                    "{text} disagrees with {} on {w}",
                    oracle.name()
                );
            }
        }
    }

    #[test]
    fn nnf_preserves_semantics() {
        let s = ab();
        let formulas = [
            "!(a U b)",
            "!(G F a)",
            "a -> (b U a)",
            "!(a <-> X b)",
            "!(a R (b | X a))",
            "F G (a -> X b)",
        ];
        for text in formulas {
            let f = parse(&s, text).unwrap();
            let g = nnf(&f);
            for w in all_lassos(&s, 2, 3) {
                assert_eq!(eval(&f, &w), eval(&g, &w), "{text} vs nnf on {w}");
            }
        }
    }

    #[test]
    fn simplify_preserves_semantics() {
        use crate::nnf::simplify;
        let s = ab();
        for text in [
            "(a & true) U (b | false)",
            "!!(F F a)",
            "X (true & (a | a))",
            "(false U b) R a",
        ] {
            let f = parse(&s, text).unwrap();
            let g = simplify(&f);
            for w in all_lassos(&s, 2, 2) {
                assert_eq!(eval(&f, &w), eval(&g, &w), "{text} vs simplified on {w}");
            }
        }
    }

    #[test]
    fn eval_at_is_consistent_with_suffixes() {
        let s = ab();
        let f = parse(&s, "a U b").unwrap();
        let w = LassoWord::parse(&s, "a b", "a b b");
        let phases = eval_at(&f, &w);
        for (i, &truth) in phases.iter().enumerate() {
            assert_eq!(truth, eval(&f, &w.suffix(i)), "phase {i}");
        }
    }

    #[test]
    fn expansion_laws_hold() {
        let s = ab();
        // p U q = q | (p & X(p U q)); p R q = q & (p | X(p R q)).
        let pu = parse(&s, "a U b").unwrap();
        let pu_expanded = parse(&s, "b | (a & X (a U b))").unwrap();
        let pr = parse(&s, "a R b").unwrap();
        let pr_expanded = parse(&s, "b & (a | X (a R b))").unwrap();
        for w in all_lassos(&s, 2, 3) {
            assert_eq!(eval(&pu, &w), eval(&pu_expanded, &w));
            assert_eq!(eval(&pr, &w), eval(&pr_expanded, &w));
        }
    }

    #[test]
    fn ltl_property_adapter() {
        use sl_omega::LinearProperty;
        let s = ab();
        let p = LtlProperty::named(parse(&s, "G F a").unwrap(), "inf-a");
        assert_eq!(p.name(), "inf-a");
        assert!(p.contains(&LassoWord::parse(&s, "", "a b")));
        assert!(!p.contains(&LassoWord::parse(&s, "a", "b")));
        assert_eq!(p.formula().size(), 3);
    }
}
