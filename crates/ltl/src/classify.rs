//! Formula-level safety/liveness classification and decomposition.
//!
//! For a property given as an LTL formula, the complement language is
//! available for free — translate the *negated* formula — so the
//! classification and decomposition avoid rank-based Büchi
//! complementation entirely:
//!
//! * `L(φ)` is **safe** iff `L(cl B_φ) ∩ L(B_¬φ) = ∅`;
//! * `L(φ)` is **live** iff `¬L(cl B_φ)` is empty (cheap subset
//!   complement of an all-accepting automaton);
//! * the decomposition's parts are `cl(B_φ)` and `B_φ ∪ ¬cl(B_φ)`,
//!   with `¬(liveness part)` computable as `B_¬φ ∩ cl(B_φ)` for
//!   inclusion checks.
//!
//! This is the practical payoff of the closure-operator view: *all* the
//! decision procedures for LTL-defined properties run on polynomial
//! constructions over the tableau automata.

use crate::ast::Ltl;
use crate::translate::translate;
use sl_buchi::{
    closure, complement_safety, find_accepted_word, included_with_complement, intersection, union,
    Buchi, Classification, Inclusion,
};
use sl_omega::{Alphabet, LassoWord};

/// Whether `L(φ)` is a safety property.
#[must_use]
pub fn is_safety_formula(alphabet: &Alphabet, formula: &Ltl) -> bool {
    let automaton = translate(alphabet, formula);
    let negated = translate(alphabet, &formula.clone().not());
    included_with_complement(&closure(&automaton), &negated).holds()
}

/// Whether `L(φ)` is a liveness property.
#[must_use]
pub fn is_liveness_formula(alphabet: &Alphabet, formula: &Ltl) -> bool {
    let automaton = translate(alphabet, formula);
    let cl = closure(&automaton);
    find_accepted_word(&complement_safety(&cl)).is_none()
}

/// Classifies `L(φ)` into the paper's trichotomy.
#[must_use]
pub fn classify_formula(alphabet: &Alphabet, formula: &Ltl) -> Classification {
    match (
        is_safety_formula(alphabet, formula),
        is_liveness_formula(alphabet, formula),
    ) {
        (true, true) => Classification::Both,
        (true, false) => Classification::Safety,
        (false, true) => Classification::Liveness,
        (false, false) => Classification::Neither,
    }
}

/// The decomposition of an LTL property with complement automata for
/// both parts, enabling inclusion checks against arbitrary systems
/// without rank-based complementation.
#[derive(Debug, Clone)]
pub struct FormulaDecomposition {
    /// `B_φ`, the property automaton.
    pub automaton: Buchi,
    /// `B_S = cl(B_φ)` — the safety part (strongest safety property
    /// containing `L(φ)`, per Theorem 6).
    pub safety: Buchi,
    /// `B_L = B_φ ∪ ¬B_S` — the liveness part.
    pub liveness: Buchi,
    /// `¬B_S` (subset-construction complement of the closure).
    pub not_safety: Buchi,
    /// `¬B_L = B_¬φ ∩ B_S`.
    pub not_liveness: Buchi,
}

/// Decomposes `φ` with ready-made complements.
#[must_use]
pub fn decompose_formula(alphabet: &Alphabet, formula: &Ltl) -> FormulaDecomposition {
    let automaton = translate(alphabet, formula);
    let negated = translate(alphabet, &formula.clone().not());
    let safety = closure(&automaton);
    let not_safety = complement_safety(&safety);
    let liveness = union(&automaton, &not_safety);
    let not_liveness = intersection(&negated, &safety);
    FormulaDecomposition {
        automaton,
        safety,
        liveness,
        not_safety,
        not_liveness,
    }
}

impl FormulaDecomposition {
    /// Checks `L(system) ⊆ L(B_S)` (the monitorable half).
    #[must_use]
    pub fn system_satisfies_safety(&self, system: &Buchi) -> Inclusion {
        included_with_complement(system, &self.not_safety)
    }

    /// Checks `L(system) ⊆ L(B_L)` (the liveness half).
    #[must_use]
    pub fn system_satisfies_liveness(&self, system: &Buchi) -> Inclusion {
        included_with_complement(system, &self.not_liveness)
    }

    /// Checks the decomposition identity on a lasso word.
    #[must_use]
    pub fn identity_holds_on(&self, word: &LassoWord) -> bool {
        self.automaton.accepts(word) == (self.safety.accepts(word) && self.liveness.accepts(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use sl_omega::all_lassos;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn rem_classifications_via_formula_route() {
        let s = sigma();
        let table = [
            ("false", Classification::Safety),
            ("a", Classification::Safety),
            ("!a", Classification::Safety),
            ("a & F !a", Classification::Neither),
            ("F G !a", Classification::Liveness),
            ("G F a", Classification::Liveness),
            ("true", Classification::Both),
        ];
        for (text, want) in table {
            let f = parse(&s, text).unwrap();
            assert_eq!(classify_formula(&s, &f), want, "{text}");
        }
    }

    #[test]
    fn formula_route_agrees_with_automaton_route() {
        let s = sigma();
        for text in ["a U b", "b R a", "X a", "G (a -> X b)"] {
            let f = parse(&s, text).unwrap();
            let m = translate(&s, &f);
            assert_eq!(
                classify_formula(&s, &f),
                sl_buchi::classify(&m).unwrap(),
                "{text}"
            );
        }
    }

    #[test]
    fn bigger_formulas_classify_without_blowup() {
        // These defeat the rank-based route but are fine here.
        let s = Alphabet::new(&["c1", "c2", "idle"]);
        let f = parse(&s, "G (c1 -> X (!c1 W c2)) & G (c2 -> X (!c2 W c1))").unwrap();
        assert_eq!(classify_formula(&s, &f), Classification::Safety);
        let f = parse(&s, "(G F c1) & (G F c2)").unwrap();
        assert_eq!(classify_formula(&s, &f), Classification::Liveness);
    }

    #[test]
    fn formula_decomposition_identity() {
        let s = sigma();
        for text in ["a & F !a", "a U b", "G F a"] {
            let f = parse(&s, text).unwrap();
            let d = decompose_formula(&s, &f);
            for w in all_lassos(&s, 3, 3) {
                assert!(d.identity_holds_on(&w), "{text} on {w}");
            }
        }
    }

    #[test]
    fn complements_are_genuine_on_samples() {
        let s = sigma();
        let f = parse(&s, "a & F !a").unwrap();
        let d = decompose_formula(&s, &f);
        for w in all_lassos(&s, 2, 3) {
            assert_ne!(d.safety.accepts(&w), d.not_safety.accepts(&w), "{w}");
            assert_ne!(d.liveness.accepts(&w), d.not_liveness.accepts(&w), "{w}");
        }
    }

    #[test]
    fn system_checks() {
        // The universal system violates the safety half of `a` but
        // satisfies the liveness half of `G F a`.
        let s = sigma();
        let universal = Buchi::universal(s.clone());
        let d = decompose_formula(&s, &parse(&s, "a").unwrap());
        assert!(!d.system_satisfies_safety(&universal).holds());
        let d = decompose_formula(&s, &parse(&s, "G F a").unwrap());
        assert!(d.system_satisfies_safety(&universal).holds());
        assert!(!d.system_satisfies_liveness(&universal).holds());
    }
}
