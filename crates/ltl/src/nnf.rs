//! Negation normal form and simplification.
//!
//! [`nnf`] pushes negations down to atoms using the temporal dualities
//! (`¬X = X¬`, `¬(p U q) = ¬p R ¬q`, `¬(p R q) = ¬p U ¬q`), eliminates
//! implications, and desugars `F`/`G` into `U`/`R`. The result uses only
//! the connectives the tableau translation understands: literals, `∧`,
//! `∨`, `X`, `U`, `R`.
//!
//! [`simplify`] applies standard validity-preserving rewrites, useful for
//! keeping translated automata small.

use crate::ast::Ltl;

/// Converts to negation normal form with `F`/`G`/`->`/`!` eliminated
/// (negations remain only directly on atoms).
#[must_use]
pub fn nnf(formula: &Ltl) -> Ltl {
    pos(formula)
}

fn pos(f: &Ltl) -> Ltl {
    match f {
        Ltl::True | Ltl::False | Ltl::Ap(_) => f.clone(),
        Ltl::Not(p) => neg(p),
        Ltl::And(p, q) => pos(p).and(pos(q)),
        Ltl::Or(p, q) => pos(p).or(pos(q)),
        Ltl::Implies(p, q) => neg(p).or(pos(q)),
        Ltl::Next(p) => pos(p).next(),
        Ltl::Finally(p) => Ltl::True.until(pos(p)),
        Ltl::Globally(p) => Ltl::False.release(pos(p)),
        Ltl::Until(p, q) => pos(p).until(pos(q)),
        Ltl::Release(p, q) => pos(p).release(pos(q)),
    }
}

fn neg(f: &Ltl) -> Ltl {
    match f {
        Ltl::True => Ltl::False,
        Ltl::False => Ltl::True,
        Ltl::Ap(sym) => Ltl::Ap(*sym).not(),
        Ltl::Not(p) => pos(p),
        Ltl::And(p, q) => neg(p).or(neg(q)),
        Ltl::Or(p, q) => neg(p).and(neg(q)),
        Ltl::Implies(p, q) => pos(p).and(neg(q)),
        Ltl::Next(p) => neg(p).next(),
        Ltl::Finally(p) => Ltl::False.release(neg(p)),
        Ltl::Globally(p) => Ltl::True.until(neg(p)),
        Ltl::Until(p, q) => neg(p).release(neg(q)),
        Ltl::Release(p, q) => neg(p).until(neg(q)),
    }
}

/// Whether a formula is in negation normal form (negations only on
/// atoms; no `F`, `G`, or `->`).
#[must_use]
pub fn is_nnf(f: &Ltl) -> bool {
    match f {
        Ltl::True | Ltl::False | Ltl::Ap(_) => true,
        Ltl::Not(p) => matches!(**p, Ltl::Ap(_)),
        Ltl::And(p, q) | Ltl::Or(p, q) | Ltl::Until(p, q) | Ltl::Release(p, q) => {
            is_nnf(p) && is_nnf(q)
        }
        Ltl::Next(p) => is_nnf(p),
        Ltl::Implies(_, _) | Ltl::Finally(_) | Ltl::Globally(_) => false,
    }
}

/// Applies validity-preserving simplifications bottom-up:
/// constant folding, idempotence, absorption of temporal operators
/// (`true U p ∨ ...` is left intact, but `p U true = true`,
/// `false R p = false R p`, `p U false = false`, `X true = true`, etc.).
#[must_use]
pub fn simplify(f: &Ltl) -> Ltl {
    match f {
        Ltl::True | Ltl::False | Ltl::Ap(_) => f.clone(),
        Ltl::Not(p) => match simplify(p) {
            Ltl::True => Ltl::False,
            Ltl::False => Ltl::True,
            Ltl::Not(inner) => *inner,
            sp => sp.not(),
        },
        Ltl::And(p, q) => {
            let (sp, sq) = (simplify(p), simplify(q));
            if sp == Ltl::False || sq == Ltl::False {
                Ltl::False
            } else if sp == Ltl::True {
                sq
            } else if sq == Ltl::True || sp == sq {
                sp
            } else {
                sp.and(sq)
            }
        }
        Ltl::Or(p, q) => {
            let (sp, sq) = (simplify(p), simplify(q));
            if sp == Ltl::True || sq == Ltl::True {
                Ltl::True
            } else if sp == Ltl::False {
                sq
            } else if sq == Ltl::False || sp == sq {
                sp
            } else {
                sp.or(sq)
            }
        }
        Ltl::Implies(p, q) => simplify(&Ltl::Not(p.clone()).or((**q).clone())),
        Ltl::Next(p) => match simplify(p) {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            sp => sp.next(),
        },
        Ltl::Finally(p) => match simplify(p) {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            Ltl::Finally(inner) => Ltl::Finally(inner),
            sp => sp.finally(),
        },
        Ltl::Globally(p) => match simplify(p) {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            Ltl::Globally(inner) => Ltl::Globally(inner),
            sp => sp.globally(),
        },
        Ltl::Until(p, q) => {
            let (sp, sq) = (simplify(p), simplify(q));
            if sq == Ltl::True {
                Ltl::True
            } else if sq == Ltl::False {
                Ltl::False
            } else if sp == Ltl::False {
                // false U q = q.
                sq
            } else if sp == sq {
                sp
            } else {
                sp.until(sq)
            }
        }
        Ltl::Release(p, q) => {
            let (sp, sq) = (simplify(p), simplify(q));
            if sq == Ltl::True {
                Ltl::True
            } else if sq == Ltl::False {
                Ltl::False
            } else if sp == Ltl::True {
                // true R q = q.
                sq
            } else if sp == sq {
                sp
            } else {
                sp.release(sq)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use sl_omega::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn nnf_pushes_negation_through_temporal() {
        let s = ab();
        let f = parse(&s, "!(a U b)").unwrap();
        let g = parse(&s, "!a R !b").unwrap();
        assert_eq!(nnf(&f), nnf(&g));
        let f = parse(&s, "!(a R b)").unwrap();
        let g = parse(&s, "!a U !b").unwrap();
        assert_eq!(nnf(&f), nnf(&g));
    }

    #[test]
    fn nnf_dualizes_fg() {
        let s = ab();
        // !F a = G !a; both should normalize to false R !a.
        let f = nnf(&parse(&s, "!F a").unwrap());
        let g = nnf(&parse(&s, "G !a").unwrap());
        assert_eq!(f, g);
        assert!(is_nnf(&f));
    }

    #[test]
    fn nnf_eliminates_implication() {
        let s = ab();
        let f = nnf(&parse(&s, "a -> b").unwrap());
        assert_eq!(f, parse(&s, "!a | b").unwrap());
    }

    #[test]
    fn nnf_handles_double_negation() {
        let s = ab();
        let f = nnf(&parse(&s, "!!a").unwrap());
        assert_eq!(f, parse(&s, "a").unwrap());
    }

    #[test]
    fn nnf_output_is_nnf() {
        let s = ab();
        for text in [
            "!(a & X b)",
            "!(G F a)",
            "!(a -> (b U a))",
            "!(a <-> b)",
            "F G !a",
        ] {
            let f = nnf(&parse(&s, text).unwrap());
            assert!(is_nnf(&f), "{text} -> {f}");
        }
    }

    #[test]
    fn simplify_constant_folds() {
        let s = ab();
        assert_eq!(
            simplify(&parse(&s, "a & true").unwrap()),
            parse(&s, "a").unwrap()
        );
        assert_eq!(simplify(&parse(&s, "a & false").unwrap()), Ltl::False);
        assert_eq!(simplify(&parse(&s, "a | true").unwrap()), Ltl::True);
        assert_eq!(simplify(&parse(&s, "X true").unwrap()), Ltl::True);
        assert_eq!(simplify(&parse(&s, "F false").unwrap()), Ltl::False);
        assert_eq!(simplify(&parse(&s, "a U true").unwrap()), Ltl::True);
        assert_eq!(
            simplify(&parse(&s, "a & a").unwrap()),
            parse(&s, "a").unwrap()
        );
        assert_eq!(
            simplify(&parse(&s, "!!a").unwrap()),
            parse(&s, "a").unwrap()
        );
        assert_eq!(
            simplify(&parse(&s, "F F a").unwrap()),
            parse(&s, "F a").unwrap()
        );
    }

    #[test]
    fn simplify_false_until() {
        let s = ab();
        // false U q = q.
        assert_eq!(
            simplify(&Ltl::False.until(parse(&s, "a").unwrap())),
            parse(&s, "a").unwrap()
        );
        // true R q = q.
        assert_eq!(
            simplify(&Ltl::True.release(parse(&s, "a").unwrap())),
            parse(&s, "a").unwrap()
        );
    }
}
