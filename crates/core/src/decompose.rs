//! The paper's decomposition and extremal theorems, executable.
//!
//! * [`decompose`] / [`decompose_pair`] — Theorems 2 and 3: in a modular
//!   complemented lattice, every element is the meet of a cl1-safety and a
//!   cl2-liveness element, constructed as `a = cl1.a /\ (a \/ b)` with
//!   `b` a complement of `cl2.a`.
//! * [`theorem5_applies`] / [`no_decomposition_exists`] — Theorem 5: when
//!   `cl2.a = 1` but `cl1.a < 1`, no decomposition into a cl2-safety and a
//!   cl1-liveness element exists (the "fourth combination" fails).
//! * [`theorem6_strongest_safety`] — Theorem 6: `cl1.a` is the strongest
//!   safety element usable in any decomposition of `a` (machine closure).
//! * [`theorem7_weakest_liveness`] — Theorem 7: in a distributive lattice,
//!   `a \/ b` is the weakest second component.
//!
//! The constructive parts are generic over [`crate::traits::Lattice`] so the same code
//! decomposes finite lattice elements, bitset languages, and Büchi
//! automata; the exhaustive verifiers are specific to [`FiniteLattice`].

use crate::closure::Closure;
use crate::error::{LatticeError, Result};
use crate::lattice::FiniteLattice;
use crate::traits::{BoundedLattice, LatticeClosure};

/// The result of decomposing an element `a` as `safety /\ liveness`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition<E> {
    /// The cl1-safety component, `cl1.a`.
    pub safety: E,
    /// The cl2-liveness component, `a \/ b`.
    pub liveness: E,
    /// The complement `b` of `cl2.a` that was used.
    pub complement: E,
}

/// Decomposes `a = cl1.a /\ (a \/ b)` in any bounded lattice, given the
/// two closures and a function producing a complement of `cl2.a`.
///
/// This is Theorem 3 as a construction. Correctness (that the meet
/// recovers `a` and the second component is cl2-live) additionally needs
/// the lattice to be modular; use [`verify_decomposition`] or the
/// `FiniteLattice`-specific [`decompose`] when you want that checked.
///
/// # Errors
///
/// Returns [`LatticeError::NoComplement`] if `cmp` cannot produce a
/// complement of `cl2.a`.
pub fn decompose_pair<L, C1, C2, F>(
    lattice: &L,
    cl1: &C1,
    cl2: &C2,
    cmp: F,
    a: &L::Elem,
) -> Result<Decomposition<L::Elem>>
where
    L: BoundedLattice,
    C1: LatticeClosure<L>,
    C2: LatticeClosure<L>,
    F: Fn(&L, &L::Elem) -> Option<L::Elem>,
{
    let safety = cl1.close(lattice, a);
    let closed2 = cl2.close(lattice, a);
    let complement = cmp(lattice, &closed2).ok_or(LatticeError::NoComplement(0))?;
    let liveness = lattice.join(a, &complement);
    Ok(Decomposition {
        safety,
        liveness,
        complement,
    })
}

/// Checks that a decomposition is genuinely a safety/liveness
/// decomposition of `a`:
///
/// 1. the safety part is a cl1-safety element,
/// 2. the liveness part is a cl2-liveness element (Lemma 4), and
/// 3. their meet is exactly `a` (Theorem 3; needs modularity).
pub fn verify_decomposition<L, C1, C2>(
    lattice: &L,
    cl1: &C1,
    cl2: &C2,
    a: &L::Elem,
    d: &Decomposition<L::Elem>,
) -> bool
where
    L: BoundedLattice,
    C1: LatticeClosure<L>,
    C2: LatticeClosure<L>,
{
    let safety_ok = cl1.close(lattice, &d.safety) == d.safety;
    let liveness_ok = cl2.close(lattice, &d.liveness) == lattice.top();
    let meet_ok = lattice.meet(&d.safety, &d.liveness) == *a;
    safety_ok && liveness_ok && meet_ok
}

/// Decomposes an element of a finite lattice per Theorem 3, verifying the
/// hypotheses (`cl1 <= cl2` pointwise) and the conclusion.
///
/// # Errors
///
/// * [`LatticeError::HypothesisViolated`] if `cl1 <= cl2` fails pointwise.
/// * [`LatticeError::NoComplement`] if `cl2.a` has no complement.
/// * [`LatticeError::HypothesisViolated`] if the verified identity fails —
///   which, per the paper's Figure 1, can only happen in a non-modular
///   lattice.
pub fn decompose_pair_checked(
    lattice: &FiniteLattice,
    cl1: &Closure,
    cl2: &Closure,
    a: usize,
) -> Result<Decomposition<usize>> {
    if !cl1.pointwise_leq(lattice, cl2) {
        return Err(LatticeError::HypothesisViolated("cl1 <= cl2 pointwise"));
    }
    let closed2 = cl2.apply(a);
    let complement = lattice
        .complement(closed2)
        .ok_or(LatticeError::NoComplement(closed2))?;
    let d = Decomposition {
        safety: cl1.apply(a),
        liveness: lattice.join(a, complement),
        complement,
    };
    if !verify_decomposition(lattice, cl1, cl2, &a, &d) {
        return Err(LatticeError::HypothesisViolated(
            "decomposition identity (lattice is probably not modular)",
        ));
    }
    Ok(d)
}

/// Theorem 2: the single-closure decomposition `a = cl.a /\ (a \/ b)`
/// with `b` a complement of `cl.a`.
///
/// # Errors
///
/// Same failure modes as [`decompose_pair_checked`] with `cl1 = cl2 = cl`.
pub fn decompose(lattice: &FiniteLattice, cl: &Closure, a: usize) -> Result<Decomposition<usize>> {
    decompose_pair_checked(lattice, cl, cl, a)
}

/// All decompositions of `a` as `s /\ l` with `s` a cl1-safety element
/// and `l` a cl2-liveness element, found by exhaustive search.
#[must_use]
pub fn all_decompositions(
    lattice: &FiniteLattice,
    cl1: &Closure,
    cl2: &Closure,
    a: usize,
) -> Vec<(usize, usize)> {
    let n = lattice.len();
    let mut out = Vec::new();
    for s in 0..n {
        if cl1.apply(s) != s {
            continue;
        }
        for l in 0..n {
            if cl2.apply(l) != lattice.top() {
                continue;
            }
            if lattice.meet(s, l) == a {
                out.push((s, l));
            }
        }
    }
    out
}

/// Whether the hypotheses of Theorem 5 hold for `a`: `cl2.a = 1` and
/// `cl1.a < 1`. Under these hypotheses no decomposition of `a` into a
/// cl2-safety and cl1-liveness element exists.
#[must_use]
pub fn theorem5_applies(lattice: &FiniteLattice, cl1: &Closure, cl2: &Closure, a: usize) -> bool {
    cl2.apply(a) == lattice.top() && cl1.apply(a) != lattice.top()
}

/// Exhaustively confirms the *conclusion* of Theorem 5: there is no pair
/// `(s, l)` with `cl2.s = s`, `cl1.l = 1`, and `a = s /\ l`.
///
/// Note the swapped roles relative to [`all_decompositions`]: here the
/// safety side uses `cl2` and the liveness side `cl1`.
#[must_use]
pub fn no_decomposition_exists(
    lattice: &FiniteLattice,
    cl_safety: &Closure,
    cl_liveness: &Closure,
    a: usize,
) -> bool {
    all_decompositions(lattice, cl_safety, cl_liveness, a).is_empty()
}

/// Theorem 6 (strongest safety / machine closure): for every
/// decomposition `a = s /\ z` where `s` is a cl1- or cl2-fixpoint,
/// `cl1.a <= s`. Returns `cl1.a` after exhaustively verifying the claim.
///
/// # Errors
///
/// Returns [`LatticeError::HypothesisViolated`] if `cl1 <= cl2` fails, or
/// if a counterexample decomposition is found (impossible per the paper —
/// this would indicate a bug).
pub fn theorem6_strongest_safety(
    lattice: &FiniteLattice,
    cl1: &Closure,
    cl2: &Closure,
    a: usize,
) -> Result<usize> {
    if !cl1.pointwise_leq(lattice, cl2) {
        return Err(LatticeError::HypothesisViolated("cl1 <= cl2 pointwise"));
    }
    let strongest = cl1.apply(a);
    let n = lattice.len();
    for s in 0..n {
        if cl1.apply(s) != s && cl2.apply(s) != s {
            continue;
        }
        for z in 0..n {
            if lattice.meet(s, z) == a && !lattice.leq(strongest, s) {
                return Err(LatticeError::HypothesisViolated(
                    "Theorem 6 counterexample found (bug)",
                ));
            }
        }
    }
    Ok(strongest)
}

/// Theorem 7 (weakest second component): in a *distributive* lattice, for
/// every decomposition `a = s /\ z` with `s` a cl1- or cl2-fixpoint and
/// every complement `b` of `cl1.a`, we have `z <= a \/ b`. Returns
/// `a \/ b` after exhaustively verifying the claim.
///
/// # Errors
///
/// * [`LatticeError::HypothesisViolated`] if the lattice is not
///   distributive or `cl1 <= cl2` fails.
/// * [`LatticeError::NoComplement`] if `cl1.a` has no complement.
pub fn theorem7_weakest_liveness(
    lattice: &FiniteLattice,
    cl1: &Closure,
    cl2: &Closure,
    a: usize,
) -> Result<usize> {
    if !lattice.is_distributive() {
        return Err(LatticeError::HypothesisViolated("distributivity"));
    }
    if !cl1.pointwise_leq(lattice, cl2) {
        return Err(LatticeError::HypothesisViolated("cl1 <= cl2 pointwise"));
    }
    let closed = cl1.apply(a);
    let b = lattice
        .complement(closed)
        .ok_or(LatticeError::NoComplement(closed))?;
    let weakest = lattice.join(a, b);
    let n = lattice.len();
    for s in 0..n {
        if cl1.apply(s) != s && cl2.apply(s) != s {
            continue;
        }
        for z in 0..n {
            if lattice.meet(s, z) == a && !lattice.leq(z, weakest) {
                return Err(LatticeError::HypothesisViolated(
                    "Theorem 7 counterexample found (bug)",
                ));
            }
        }
    }
    Ok(weakest)
}

/// Whether the pair `(s, z)` is a *machine-closed* decomposition of `a`:
/// `a = s /\ z` and `s = cl.a` — the safety part does as much of the
/// specifying as possible (Abadi–Lamport; paper, discussion after
/// Theorem 6).
#[must_use]
pub fn is_machine_closed(
    lattice: &FiniteLattice,
    cl: &Closure,
    a: usize,
    s: usize,
    z: usize,
) -> bool {
    lattice.meet(s, z) == a && cl.apply(a) == s
}

/// Lemma 4 as a checker: if `b` is a complement of `cl.a`, then `a \/ b`
/// is a cl-liveness element.
#[must_use]
pub fn lemma4_holds(lattice: &FiniteLattice, cl: &Closure, a: usize) -> bool {
    let closed = cl.apply(a);
    lattice
        .complements(closed)
        .into_iter()
        .all(|b| cl.apply(lattice.join(a, b)) == lattice.top())
}

/// Generic single-closure decomposition for any bounded lattice with a
/// complement function — used by the automata-theoretic instantiations.
///
/// # Errors
///
/// Returns [`LatticeError::NoComplement`] if `cmp` fails on `cl.a`.
pub fn decompose_generic<L, C, F>(
    lattice: &L,
    cl: &C,
    cmp: F,
    a: &L::Elem,
) -> Result<Decomposition<L::Elem>>
where
    L: BoundedLattice,
    C: LatticeClosure<L>,
    F: Fn(&L, &L::Elem) -> Option<L::Elem>,
{
    decompose_pair(lattice, cl, cl, cmp, a)
}

/// The classification of an element relative to a closure, mirroring the
/// paper's linear-time trichotomy (safety / liveness / neither, with the
/// top element being both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// `a = cl.a` and `cl.a != 1` (or `a` is not the top).
    Safety,
    /// `cl.a = 1` and `a != cl.a`.
    Liveness,
    /// Both safety and liveness: only the top element.
    Both,
    /// Neither: `a < cl.a < 1`.
    Neither,
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            Classification::Safety => "safety",
            Classification::Liveness => "liveness",
            Classification::Both => "safety+liveness",
            Classification::Neither => "neither",
        };
        f.write_str(text)
    }
}

/// Classifies `a` relative to `cl` on a finite lattice.
#[must_use]
pub fn classify(lattice: &FiniteLattice, cl: &Closure, a: usize) -> Classification {
    let safe = cl.apply(a) == a;
    let live = cl.apply(a) == lattice.top();
    match (safe, live) {
        (true, true) => Classification::Both,
        (true, false) => Classification::Safety,
        (false, true) => Classification::Liveness,
        (false, false) => Classification::Neither,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::enumerate_closures;
    use crate::poset::Poset;

    /// Boolean algebra on 3 atoms via bitmask order.
    fn b3() -> FiniteLattice {
        let p = Poset::from_leq(8, |a, b| a & b == a).unwrap();
        FiniteLattice::from_poset(p).unwrap()
    }

    fn diamond() -> FiniteLattice {
        FiniteLattice::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn theorem2_on_all_closures_of_diamond() {
        let l = diamond();
        for cl in enumerate_closures(&l) {
            for a in 0..l.len() {
                let d = decompose(&l, &cl, a).unwrap();
                assert!(verify_decomposition(&l, &cl, &cl, &a, &d));
                assert_eq!(l.meet(d.safety, d.liveness), a);
            }
        }
    }

    #[test]
    fn theorem2_on_all_closures_of_b3() {
        let l = b3();
        for cl in enumerate_closures(&l) {
            for a in 0..l.len() {
                let d = decompose(&l, &cl, a).unwrap();
                assert!(verify_decomposition(&l, &cl, &cl, &a, &d));
            }
        }
    }

    #[test]
    fn theorem3_two_closures() {
        let l = b3();
        let closures = enumerate_closures(&l);
        let mut tested = 0usize;
        for cl1 in &closures {
            for cl2 in &closures {
                if !cl1.pointwise_leq(&l, cl2) {
                    continue;
                }
                for a in 0..l.len() {
                    let d = decompose_pair_checked(&l, cl1, cl2, a).unwrap();
                    assert!(verify_decomposition(&l, cl1, cl2, &a, &d));
                    tested += 1;
                }
            }
        }
        assert!(tested > 100, "should exercise many closure pairs");
    }

    #[test]
    fn hypothesis_cl1_leq_cl2_enforced() {
        let l = diamond();
        let id = Closure::identity(&l);
        let ct = Closure::constant_top(&l);
        // cl1 = constant top, cl2 = identity violates cl1 <= cl2.
        assert_eq!(
            decompose_pair_checked(&l, &ct, &id, 1).unwrap_err(),
            LatticeError::HypothesisViolated("cl1 <= cl2 pointwise")
        );
    }

    #[test]
    fn missing_complement_reported() {
        // Chain of 3: middle element has no complement.
        let l = FiniteLattice::from_poset(Poset::chain(3).unwrap()).unwrap();
        let id = Closure::identity(&l);
        assert_eq!(
            decompose(&l, &id, 1).unwrap_err(),
            LatticeError::NoComplement(1)
        );
    }

    #[test]
    fn figure1_lemma6_no_decomposition() {
        // N5: 0 < a(1) < b(2) < 1(4), 0 < c(3) < 1(4); cl.a = b, identity
        // otherwise. Element a has no safety /\ liveness decomposition.
        let l = FiniteLattice::from_covers(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]).unwrap();
        let cl = Closure::new(&l, vec![0, 2, 2, 3, 4]).unwrap();
        assert!(!l.is_modular());
        assert!(all_decompositions(&l, &cl, &cl, 1).is_empty());
        // The constructive formula exists but fails verification.
        assert!(decompose(&l, &cl, 1).is_err());
        // The only liveness element is the top (paper's Lemma 6 argument).
        assert_eq!(cl.liveness_elements(&l), vec![4]);
    }

    #[test]
    fn theorem5_impossibility() {
        let l = b3();
        // cl2 = constant top (so cl2.a = 1 for all a), cl1 = identity.
        let cl1 = Closure::identity(&l);
        let cl2 = Closure::constant_top(&l);
        for a in 0..l.len() - 1 {
            // every non-top a: cl2.a = top, cl1.a = a < top.
            assert!(theorem5_applies(&l, &cl1, &cl2, a));
            // No decomposition with cl2-safety and cl1-liveness parts:
            assert!(no_decomposition_exists(&l, &cl2, &cl1, a));
        }
        // Top itself decomposes trivially.
        let top = l.top();
        assert!(!theorem5_applies(&l, &cl1, &cl2, top));
        assert!(!no_decomposition_exists(&l, &cl2, &cl1, top));
    }

    #[test]
    fn theorem6_strongest_safety_on_b3() {
        let l = b3();
        for cl in enumerate_closures(&l) {
            for a in 0..l.len() {
                let strongest = theorem6_strongest_safety(&l, &cl, &cl, a).unwrap();
                assert_eq!(strongest, cl.apply(a));
                // And the canonical decomposition attains it.
                let d = decompose(&l, &cl, a).unwrap();
                assert_eq!(d.safety, strongest);
            }
        }
    }

    #[test]
    fn theorem7_weakest_liveness_on_b3() {
        let l = b3();
        for cl in enumerate_closures(&l) {
            for a in 0..l.len() {
                let weakest = theorem7_weakest_liveness(&l, &cl, &cl, a).unwrap();
                let d = decompose(&l, &cl, a).unwrap();
                assert_eq!(d.liveness, weakest);
            }
        }
    }

    #[test]
    fn theorem7_requires_distributivity() {
        // M3 with an extra bottom is modular but not distributive; the
        // checker should refuse.
        let l = FiniteLattice::from_covers(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
            .unwrap();
        let cl = Closure::identity(&l);
        assert_eq!(
            theorem7_weakest_liveness(&l, &cl, &cl, 1).unwrap_err(),
            LatticeError::HypothesisViolated("distributivity")
        );
    }

    #[test]
    fn figure2_z_not_below_a_join_b() {
        // M3 relabeled per Figure 2: bottom = a(0), atoms s(1), b(2),
        // z(3), top = 1(4). Closure: a -> s, b -> top, z -> top, s -> s.
        let l = FiniteLattice::from_covers(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
            .unwrap();
        let cl = Closure::new(&l, vec![1, 1, 4, 4, 4]).unwrap();
        assert!(l.is_modular());
        assert!(!l.is_distributive());
        let (a, s, b, z) = (0, 1, 2, 3);
        // s is a safety element and a = s /\ z.
        assert!(cl.is_safety(s));
        assert_eq!(l.meet(s, z), a);
        // b is a complement of cl.a = s.
        assert!(l.complements(cl.apply(a)).contains(&b));
        // But z <= a \/ b fails: a \/ b = b, and z is incomparable to b.
        assert!(!l.leq(z, l.join(a, b)));
    }

    #[test]
    fn lemma4_on_all_closures() {
        for l in [diamond(), b3()] {
            for cl in enumerate_closures(&l) {
                for a in 0..l.len() {
                    assert!(lemma4_holds(&l, &cl, a));
                }
            }
        }
    }

    #[test]
    fn machine_closed_detection() {
        let l = b3();
        let cl = Closure::from_fixpoints(&l, &[3, 7]).unwrap();
        let a = 1; // cl.1 = 3 (join of atoms 1 and 2 in bitmask order)
        let d = decompose(&l, &cl, a).unwrap();
        assert!(is_machine_closed(&l, &cl, a, d.safety, d.liveness));
        // A non-canonical decomposition need not be machine closed:
        // s = top is a safety element and top /\ a = a.
        assert!(!is_machine_closed(&l, &cl, a, l.top(), a));
    }

    #[test]
    fn classification_trichotomy() {
        let l = b3();
        let cl = Closure::from_fixpoints(&l, &[3, 7]).unwrap();
        // 3 is a fixpoint below top: safety.
        assert_eq!(classify(&l, &cl, 3), Classification::Safety);
        // 7 is top: both.
        assert_eq!(classify(&l, &cl, 7), Classification::Both);
        // 4 closes to 7: liveness.
        assert_eq!(classify(&l, &cl, 4), Classification::Liveness);
        // 1 closes to 3 (neither itself nor top): neither.
        assert_eq!(classify(&l, &cl, 1), Classification::Neither);
        assert_eq!(classify(&l, &cl, 1).to_string(), "neither");
    }

    #[test]
    fn lemma2_meet_join_monotone() {
        // Lemma 2: a <= b implies a /\ c <= b /\ c and a \/ c <= b \/ c.
        let l = b3();
        for a in 0..l.len() {
            for b in 0..l.len() {
                if !l.leq(a, b) {
                    continue;
                }
                for c in 0..l.len() {
                    assert!(l.leq(l.meet(a, c), l.meet(b, c)));
                    assert!(l.leq(l.join(a, c), l.join(b, c)));
                }
            }
        }
    }

    #[test]
    fn lemma5_complement_disjointness() {
        // Lemma 5: c in cmp.b and a <= b imply a /\ c = 0.
        for l in [diamond(), b3(), crate::generators::m3()] {
            for b in 0..l.len() {
                for c in l.complements(b) {
                    for a in 0..l.len() {
                        if l.leq(a, b) {
                            assert_eq!(l.meet(a, c), l.bottom(), "a={a}, b={b}, c={c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lemma3_on_closures_of_corpus() {
        // Lemma 3: cl(a /\ b) <= cl.a /\ cl.b for every lattice closure.
        for (name, l) in crate::generators::modular_complemented_corpus() {
            if l.len() > 10 {
                continue;
            }
            for cl in enumerate_closures(&l) {
                assert!(cl.lemma3_holds(&l), "{name}");
            }
        }
    }

    #[test]
    fn generic_decomposition_via_traits() {
        let l = b3();
        let cl = Closure::from_fixpoints(&l, &[3, 7]).unwrap();
        let cmp = |lat: &FiniteLattice, x: &usize| lat.complement(*x);
        let d = decompose_generic(&l, &cl, cmp, &1).unwrap();
        assert!(verify_decomposition(&l, &cl, &cl, &1, &d));
    }
}
