//! The paper's two counterexample lattices, Figures 1 and 2, with their
//! closures, packaged for reuse by tests and the experiment harness.

use crate::closure::Closure;
use crate::lattice::FiniteLattice;

/// Figure 1 of the paper: the pentagon N5 together with the closure that
/// witnesses why *modularity* is needed in Theorem 3.
///
/// Elements (indices): `0 = 0`, `1 = a`, `2 = b`, `3 = c`, `4 = 1`, with
/// `0 < a < b < 1` and `0 < c < 1`. The closure maps `a` to `b` and is
/// the identity otherwise. Lemma 6: `a` cannot be expressed as the meet
/// of a cl-safety and a cl-liveness element.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The pentagon lattice.
    pub lattice: FiniteLattice,
    /// The closure `cl.a = b`, identity elsewhere.
    pub closure: Closure,
    /// Index of the element `a`.
    pub a: usize,
    /// Index of the element `b = cl.a`.
    pub b: usize,
    /// Index of the incomparable element `c`.
    pub c: usize,
}

/// Builds the Figure 1 counterexample.
#[must_use]
pub fn figure1() -> Figure1 {
    let lattice = FiniteLattice::from_covers(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)])
        .expect("N5 is a lattice");
    let closure = Closure::new(&lattice, vec![0, 2, 2, 3, 4]).expect("Figure 1 closure is valid");
    Figure1 {
        lattice,
        closure,
        a: 1,
        b: 2,
        c: 3,
    }
}

/// Figure 2 of the paper: the diamond M3 (relabeled) together with the
/// closure that witnesses why *distributivity* is needed in Theorem 7.
///
/// Elements (indices): `0 = a` (bottom), `1 = s`, `2 = b`, `3 = z`,
/// `4 = 1` (top); `s`, `b`, `z` are the three pairwise-incomparable
/// atoms. The closure maps `a` to `s` (forcing `b` and `z` to the top by
/// monotonicity) and fixes `s` and the top. Then `s` is a safety
/// element, `a = s /\ z`, and `b` is a complement of `cl.a`, but
/// `z <= a \/ b` fails.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The M3 lattice with bottom labeled `a`.
    pub lattice: FiniteLattice,
    /// The (unique) lattice closure with `cl.a = s`.
    pub closure: Closure,
    /// Index of the bottom element `a`.
    pub a: usize,
    /// Index of the atom `s = cl.a`.
    pub s: usize,
    /// Index of the atom `b` (a complement of `cl.a`).
    pub b: usize,
    /// Index of the atom `z` (with `a = s /\ z`).
    pub z: usize,
}

/// Builds the Figure 2 counterexample.
#[must_use]
pub fn figure2() -> Figure2 {
    let lattice = FiniteLattice::from_covers(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
        .expect("M3 is a lattice");
    let closure = Closure::new(&lattice, vec![1, 1, 4, 4, 4]).expect("Figure 2 closure is valid");
    Figure2 {
        lattice,
        closure,
        a: 0,
        s: 1,
        b: 2,
        z: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{all_decompositions, decompose};

    #[test]
    fn figure1_is_the_papers_lattice() {
        let fig = figure1();
        // Not modular (pentagon).
        assert!(!fig.lattice.is_modular());
        // cl.a = b, identity elsewhere.
        assert_eq!(fig.closure.apply(fig.a), fig.b);
        for x in [0, fig.b, fig.c, fig.lattice.top()] {
            assert_eq!(fig.closure.apply(x), x);
        }
        // The non-modular instance from the caption: a <= b but
        // a \/ (c /\ b) = a while (a \/ c) /\ b = b.
        let (a, b, c) = (fig.a, fig.b, fig.c);
        let l = &fig.lattice;
        assert!(l.leq(a, b));
        assert_eq!(l.join(a, l.meet(c, b)), a);
        assert_eq!(l.meet(l.join(a, c), b), b);
    }

    #[test]
    fn figure1_lemma6() {
        let fig = figure1();
        // Only liveness element is the top ...
        assert_eq!(
            fig.closure.liveness_elements(&fig.lattice),
            vec![fig.lattice.top()]
        );
        // ... so a has no decomposition, exhaustively and constructively.
        assert!(all_decompositions(&fig.lattice, &fig.closure, &fig.closure, fig.a).is_empty());
        assert!(decompose(&fig.lattice, &fig.closure, fig.a).is_err());
    }

    #[test]
    fn figure2_is_the_papers_lattice() {
        let fig = figure2();
        assert!(fig.lattice.is_modular());
        assert!(!fig.lattice.is_distributive());
        // The caption's non-distributive instance:
        // s /\ (b \/ z) = s but (s /\ b) \/ (s /\ z) = a.
        let l = &fig.lattice;
        assert_eq!(l.meet(fig.s, l.join(fig.b, fig.z)), fig.s);
        assert_eq!(l.join(l.meet(fig.s, fig.b), l.meet(fig.s, fig.z)), fig.a);
    }

    #[test]
    fn figure2_closure_is_forced() {
        // Any lattice closure with cl.a = s must map b and z to the top:
        // monotonicity forces cl.b >= s and the only elements above both
        // b and s is the top.
        let fig = figure2();
        assert_eq!(fig.closure.apply(fig.a), fig.s);
        assert_eq!(fig.closure.apply(fig.b), fig.lattice.top());
        assert_eq!(fig.closure.apply(fig.z), fig.lattice.top());
    }

    #[test]
    fn figure2_theorem7_fails_without_distributivity() {
        let fig = figure2();
        let l = &fig.lattice;
        // s is a safety element and a = s /\ z.
        assert!(fig.closure.is_safety(fig.s));
        assert_eq!(l.meet(fig.s, fig.z), fig.a);
        // b is a complement of cl.a = s.
        assert!(l.complements(fig.closure.apply(fig.a)).contains(&fig.b));
        // The Theorem 7 conclusion fails: z is not below a \/ b.
        assert!(!l.leq(fig.z, l.join(fig.a, fig.b)));
    }

    #[test]
    fn figure2_decomposition_still_works() {
        // Theorem 2 needs only modularity, which M3 has: the canonical
        // decomposition of a is valid even though Theorem 7's extremality
        // fails.
        let fig = figure2();
        let d = decompose(&fig.lattice, &fig.closure, fig.a).unwrap();
        assert_eq!(
            fig.lattice.meet(d.safety, d.liveness),
            fig.a,
            "Theorem 2 holds in modular lattices"
        );
    }
}
