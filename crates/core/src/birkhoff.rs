//! Birkhoff's representation theorem for finite distributive lattices.
//!
//! Every finite distributive lattice is isomorphic to the lattice of
//! down-sets of its poset of join-irreducible elements. This module
//! computes join-irreducibles, builds the representation, and verifies
//! the isomorphism — rounding out the structure theory the paper's
//! Section 3 leans on (distributivity is the extra hypothesis of
//! Theorem 7, and Birkhoff explains exactly how much structure it buys).

use crate::generators::downset_lattice;
use crate::lattice::FiniteLattice;
use crate::poset::Poset;

/// The join-irreducible elements: non-bottom elements that are not the
/// join of two strictly smaller elements. In a finite lattice these are
/// exactly the elements with a unique lower cover.
#[must_use]
pub fn join_irreducibles(lattice: &FiniteLattice) -> Vec<usize> {
    let n = lattice.len();
    (0..n)
        .filter(|&x| {
            if x == lattice.bottom() {
                return false;
            }
            let lower_covers = (0..n).filter(|&y| lattice.poset().covers(y, x)).count();
            lower_covers == 1
        })
        .collect()
}

/// The meet-irreducible elements (dual notion: unique upper cover).
#[must_use]
pub fn meet_irreducibles(lattice: &FiniteLattice) -> Vec<usize> {
    let n = lattice.len();
    (0..n)
        .filter(|&x| {
            if x == lattice.top() {
                return false;
            }
            let upper_covers = (0..n).filter(|&y| lattice.poset().covers(x, y)).count();
            upper_covers == 1
        })
        .collect()
}

/// The poset of join-irreducibles, with elements reindexed densely;
/// returns the poset and the original lattice indices in order.
///
/// # Panics
///
/// Panics only if the lattice is malformed (cannot happen for validated
/// lattices).
#[must_use]
pub fn irreducible_poset(lattice: &FiniteLattice) -> (Poset, Vec<usize>) {
    let irr = join_irreducibles(lattice);
    let poset = Poset::from_leq(irr.len().max(1), |a, b| {
        if irr.is_empty() {
            a == b
        } else {
            lattice.leq(irr[a], irr[b])
        }
    })
    .expect("restriction of a partial order");
    (poset, irr)
}

/// The outcome of checking Birkhoff's theorem on a lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BirkhoffOutcome {
    /// The lattice is distributive and isomorphic to the down-set
    /// lattice of its join-irreducibles (sizes and structure verified).
    Isomorphic,
    /// The lattice is not distributive; the representation cannot apply.
    NotDistributive,
    /// The down-set lattice has a different size — impossible for a
    /// distributive lattice; indicates a bug if ever returned.
    SizeMismatch {
        /// Number of elements in the lattice.
        lattice: usize,
        /// Number of down-sets of the irreducible poset.
        downsets: usize,
    },
}

/// Checks Birkhoff's theorem: builds the down-set lattice of the
/// join-irreducible poset and verifies the canonical map
/// `a ↦ { j irreducible : j ≤ a }` is a lattice isomorphism.
#[must_use]
pub fn birkhoff_check(lattice: &FiniteLattice) -> BirkhoffOutcome {
    if !lattice.is_distributive() {
        return BirkhoffOutcome::NotDistributive;
    }
    let (poset, irr) = irreducible_poset(lattice);
    if irr.is_empty() {
        // The one-element lattice: trivially isomorphic to downsets of
        // the empty poset — but our posets are nonempty, so handle the
        // singleton specially.
        return if lattice.len() == 1 {
            BirkhoffOutcome::Isomorphic
        } else {
            BirkhoffOutcome::SizeMismatch {
                lattice: lattice.len(),
                downsets: 0,
            }
        };
    }
    let (downs, masks) = downset_lattice(&poset).expect("valid poset");
    if downs.len() != lattice.len() {
        return BirkhoffOutcome::SizeMismatch {
            lattice: lattice.len(),
            downsets: downs.len(),
        };
    }
    // Canonical map: a ↦ bitmask of irreducibles below a.
    let encode = |a: usize| -> u32 {
        let mut mask = 0u32;
        for (i, &j) in irr.iter().enumerate() {
            if lattice.leq(j, a) {
                mask |= 1 << i;
            }
        }
        mask
    };
    let index_of = |mask: u32| masks.binary_search(&mask);
    for a in 0..lattice.len() {
        let Ok(ia) = index_of(encode(a)) else {
            return BirkhoffOutcome::SizeMismatch {
                lattice: lattice.len(),
                downsets: downs.len(),
            };
        };
        for b in 0..lattice.len() {
            let ib = index_of(encode(b)).expect("image is a down-set");
            let meet_image = index_of(encode(lattice.meet(a, b))).expect("down-set");
            let join_image = index_of(encode(lattice.join(a, b))).expect("down-set");
            if downs.meet(ia, ib) != meet_image || downs.join(ia, ib) != join_image {
                return BirkhoffOutcome::SizeMismatch {
                    lattice: lattice.len(),
                    downsets: downs.len(),
                };
            }
        }
    }
    BirkhoffOutcome::Isomorphic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn irreducibles_of_boolean_are_atoms() {
        let l = generators::boolean(3);
        assert_eq!(join_irreducibles(&l), l.atoms());
        assert_eq!(meet_irreducibles(&l), l.coatoms());
    }

    #[test]
    fn irreducibles_of_chain_are_all_but_bottom() {
        let l = generators::chain(5);
        assert_eq!(join_irreducibles(&l), vec![1, 2, 3, 4]);
        assert_eq!(meet_irreducibles(&l), vec![0, 1, 2, 3]);
    }

    #[test]
    fn birkhoff_on_distributive_corpus() {
        for (name, l) in generators::distributive_corpus() {
            assert_eq!(birkhoff_check(&l), BirkhoffOutcome::Isomorphic, "{name}");
        }
    }

    #[test]
    fn birkhoff_rejects_m3() {
        assert_eq!(
            birkhoff_check(&generators::m3()),
            BirkhoffOutcome::NotDistributive
        );
        assert_eq!(
            birkhoff_check(&generators::n5()),
            BirkhoffOutcome::NotDistributive
        );
    }

    #[test]
    fn singleton_lattice() {
        let l = generators::chain(1);
        assert!(join_irreducibles(&l).is_empty());
        assert_eq!(birkhoff_check(&l), BirkhoffOutcome::Isomorphic);
    }

    #[test]
    fn m3_irreducibles_exceed_representation() {
        // M3 has 3 join-irreducibles (the atoms); its "representation"
        // would have 2^3 = 8 > 5 elements... the antichain poset of the
        // atoms yields all subsets. The size check would catch it even
        // without the distributivity guard.
        let l = generators::m3();
        assert_eq!(join_irreducibles(&l).len(), 3);
    }

    #[test]
    fn divisor_lattice_irreducibles_are_prime_powers() {
        let (l, divisors) = generators::divisor_lattice(12);
        let irr: Vec<u64> = join_irreducibles(&l)
            .into_iter()
            .map(|i| divisors[i])
            .collect();
        assert_eq!(irr, vec![2, 3, 4]); // 2, 3, 4 = prime powers dividing 12
    }
}
