//! # sl-lattice
//!
//! An executable rendition of the lattice-theoretic characterization of
//! safety and liveness from:
//!
//! > Panagiotis Manolios and Richard Trefler. *A Lattice-Theoretic
//! > Characterization of Safety and Liveness.* PODC 2003.
//!
//! The paper's setting is a **modular complemented lattice** `(L, /\, \/,
//! 0, 1)` with a **lattice closure** `cl` (extensive, idempotent,
//! monotone). An element is a *cl-safety element* if `a = cl.a` and a
//! *cl-liveness element* if `cl.a = 1`. The central results, all
//! implemented here as constructions plus exhaustive verifiers:
//!
//! * **Theorems 2 & 3** ([`decompose()`], [`decompose_pair_checked`]):
//!   every element is the meet of a safety and a liveness element,
//!   `a = cl1.a /\ (a \/ b)` with `b` a complement of `cl2.a`.
//! * **Theorem 5** ([`theorem5_applies`], [`no_decomposition_exists`]):
//!   the "fourth combination" of two closures is impossible.
//! * **Theorems 6 & 7** ([`theorem6_strongest_safety`],
//!   [`theorem7_weakest_liveness`]): the decomposition is extremal —
//!   `cl.a` is the strongest safety part (machine closure) and, in a
//!   distributive lattice, `a \/ b` is the weakest second component.
//! * **Figures 1 & 2** ([`counterexamples`]): the pentagon shows
//!   modularity is necessary; the diamond M3 shows distributivity is
//!   necessary for Theorem 7.
//!
//! The sibling crates instantiate this framework exactly as the paper
//! does: `sl-buchi` for the lattice of ω-regular languages (where the
//! closure is computed on automata), `sl-trees` for branching time
//! (`ncl`/`fcl`), and `sl-rabin` for Rabin tree automata (`rfcl`).
//!
//! ## Quick start
//!
//! ```
//! use sl_lattice::{decompose, generators, Closure};
//!
//! // The Boolean algebra with 3 atoms, i.e. P({0,1,2}) by bitmask.
//! let lattice = generators::boolean(3);
//! // A closure whose fixpoints are {0b011, 0b111}.
//! let cl = Closure::from_fixpoints(&lattice, &[0b011, 0b111])?;
//! // Decompose the atom 0b001 into safety /\ liveness.
//! let d = decompose(&lattice, &cl, 0b001)?;
//! assert_eq!(lattice.meet(d.safety, d.liveness), 0b001);
//! assert!(cl.is_safety(d.safety));
//! assert!(cl.is_liveness(&lattice, d.liveness));
//! # Ok::<(), sl_lattice::LatticeError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod birkhoff;
pub mod bitset;
pub mod closure;
pub mod counterexamples;
pub mod decompose;
pub mod error;
pub mod generators;
pub mod lattice;
pub mod ops;
pub mod poset;
pub mod traits;

pub use birkhoff::{birkhoff_check, join_irreducibles, meet_irreducibles, BirkhoffOutcome};
pub use bitset::{Bitset, BitsetAlgebra};
pub use closure::{enumerate_closures, enumerate_closures_with_budget, random_closure, Closure};
pub use counterexamples::{figure1, figure2, Figure1, Figure2};
pub use decompose::{
    all_decompositions, classify, decompose, decompose_generic, decompose_pair,
    decompose_pair_checked, is_machine_closed, lemma4_holds, no_decomposition_exists,
    theorem5_applies, theorem6_strongest_safety, theorem7_weakest_liveness, verify_decomposition,
    Classification, Decomposition,
};
pub use error::{LatticeError, Result};
pub use lattice::{DistributivityViolation, FiniteLattice, ModularityViolation};
pub use ops::{dual, interval, product};
pub use poset::Poset;
pub use traits::{BoundedLattice, ComplementedLattice, Lattice, LatticeClosure};
