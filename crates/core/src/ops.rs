//! Lattice-building operations: products, duals, and intervals.

use crate::lattice::FiniteLattice;
use crate::poset::Poset;

/// The direct product of two lattices. Element `(a, b)` is encoded as
/// `a * right.len() + b`; the order, meet, and join are componentwise.
///
/// Products preserve modularity, distributivity, and complementedness —
/// which is how the corpus in [`crate::generators`] manufactures larger
/// modular complemented lattices.
#[must_use]
pub fn product(left: &FiniteLattice, right: &FiniteLattice) -> FiniteLattice {
    let nr = right.len();
    let n = left.len() * nr;
    let p = Poset::from_leq(n, |x, y| {
        left.leq(x / nr, y / nr) && right.leq(x % nr, y % nr)
    })
    .expect("product of partial orders is a partial order");
    FiniteLattice::from_poset(p).expect("product of lattices is a lattice")
}

/// Encodes a pair of element indices into the product lattice index.
#[must_use]
pub fn pair_index(right: &FiniteLattice, a: usize, b: usize) -> usize {
    a * right.len() + b
}

/// Decodes a product lattice index into the pair of component indices.
#[must_use]
pub fn unpair_index(right: &FiniteLattice, x: usize) -> (usize, usize) {
    (x / right.len(), x % right.len())
}

/// The order dual: all comparabilities reversed, meets and joins swapped.
/// Dualizing twice yields the original lattice.
#[must_use]
pub fn dual(lattice: &FiniteLattice) -> FiniteLattice {
    FiniteLattice::from_poset(lattice.poset().dual()).expect("dual of a lattice is a lattice")
}

/// The interval sublattice `[lo, hi] = { x : lo <= x <= hi }`, reindexed
/// densely. Returns the interval lattice and the map from new indices to
/// original element indices.
///
/// # Panics
///
/// Panics if `lo <= hi` fails.
#[must_use]
pub fn interval(lattice: &FiniteLattice, lo: usize, hi: usize) -> (FiniteLattice, Vec<usize>) {
    assert!(lattice.leq(lo, hi), "interval requires lo <= hi");
    let members: Vec<usize> = (0..lattice.len())
        .filter(|&x| lattice.leq(lo, x) && lattice.leq(x, hi))
        .collect();
    let p = Poset::from_leq(members.len(), |a, b| lattice.leq(members[a], members[b]))
        .expect("restriction of a partial order");
    let sub = FiniteLattice::from_poset(p).expect("intervals of lattices are lattices");
    (sub, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{boolean, chain, m3, n5};

    #[test]
    fn product_of_chains_is_grid() {
        let l = product(&chain(2), &chain(3));
        assert_eq!(l.len(), 6);
        assert!(l.is_distributive());
        // (1,0) /\ (0,2) = (0,0); (1,0) \/ (0,2) = (1,2).
        let r = chain(3);
        assert_eq!(
            l.meet(pair_index(&r, 1, 0), pair_index(&r, 0, 2)),
            pair_index(&r, 0, 0)
        );
        assert_eq!(
            l.join(pair_index(&r, 1, 0), pair_index(&r, 0, 2)),
            pair_index(&r, 1, 2)
        );
    }

    #[test]
    fn product_of_booleans_is_boolean() {
        let l = product(&boolean(1), &boolean(2));
        assert!(l.is_boolean());
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn product_preserves_modularity_not_distributivity() {
        let l = product(&m3(), &chain(2));
        assert!(l.is_modular());
        assert!(!l.is_distributive());
    }

    #[test]
    fn product_with_n5_is_not_modular() {
        let l = product(&n5(), &chain(2));
        assert!(!l.is_modular());
    }

    #[test]
    fn pair_roundtrip() {
        let r = chain(3);
        for a in 0..2 {
            for b in 0..3 {
                assert_eq!(unpair_index(&r, pair_index(&r, a, b)), (a, b));
            }
        }
    }

    #[test]
    fn dual_swaps_meet_join() {
        let l = boolean(2);
        let d = dual(&l);
        assert_eq!(d.bottom(), l.top());
        assert_eq!(d.top(), l.bottom());
        for a in 0..l.len() {
            for b in 0..l.len() {
                assert_eq!(d.meet(a, b), l.join(a, b));
                assert_eq!(d.join(a, b), l.meet(a, b));
            }
        }
    }

    #[test]
    fn dual_is_involutive() {
        let l = m3();
        assert_eq!(dual(&dual(&l)), l);
    }

    #[test]
    fn interval_of_boolean_is_boolean() {
        let l = boolean(3);
        // Interval [atom, top] in B3 is a B2.
        let (sub, members) = interval(&l, 1, 7);
        assert_eq!(sub.len(), 4);
        assert!(sub.is_boolean());
        assert!(members.contains(&1) && members.contains(&7));
    }

    #[test]
    fn full_interval_is_whole_lattice() {
        let l = m3();
        let (sub, members) = interval(&l, l.bottom(), l.top());
        assert_eq!(sub.len(), l.len());
        assert_eq!(members, (0..l.len()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "interval requires lo <= hi")]
    fn interval_rejects_unordered_bounds() {
        let l = m3();
        let _ = interval(&l, 1, 2); // atoms are incomparable
    }
}
