//! Error types for lattice construction and validation.

use std::fmt;

/// Errors produced when constructing or validating posets, lattices, and
/// closure operators.
///
/// Every constructor in this crate validates its input (posets must be
/// partial orders, lattices must have all binary meets and joins, closures
/// must satisfy the closure laws) and reports the first violation it finds
/// with enough context to locate the offending elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// The relation is not reflexive at the given element.
    NotReflexive(usize),
    /// The relation is not antisymmetric: both `a <= b` and `b <= a` hold
    /// for distinct `a`, `b`.
    NotAntisymmetric(usize, usize),
    /// The relation is not transitive: `a <= b` and `b <= c` but not
    /// `a <= c`.
    NotTransitive(usize, usize, usize),
    /// The pair has no meet (greatest lower bound).
    NoMeet(usize, usize),
    /// The pair has no join (least upper bound).
    NoJoin(usize, usize),
    /// The poset is empty; lattices in this crate are nonempty.
    Empty,
    /// An element index is out of range for the structure.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The size of the structure.
        size: usize,
    },
    /// A closure table is not extensive at the element: `cl.a < a` or
    /// incomparable.
    NotExtensive(usize),
    /// A closure table is not idempotent at the element.
    NotIdempotent(usize),
    /// A closure table is not monotone on the pair.
    NotMonotone(usize, usize),
    /// A base set for a closure is not closed under meets, so it does not
    /// induce a closure operator.
    BaseNotMeetClosed(usize, usize),
    /// A base set for a closure does not contain the top element.
    BaseMissingTop,
    /// The element has no complement in a context that requires one.
    NoComplement(usize),
    /// The two structures have different sizes where equal sizes are
    /// required (e.g. comparing closures on the same lattice).
    SizeMismatch {
        /// Size of the left-hand structure.
        left: usize,
        /// Size of the right-hand structure.
        right: usize,
    },
    /// The hypotheses of a theorem are not met (with a human-readable
    /// description of which one).
    HypothesisViolated(&'static str),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::NotReflexive(a) => {
                write!(f, "relation is not reflexive at element {a}")
            }
            LatticeError::NotAntisymmetric(a, b) => {
                write!(f, "relation is not antisymmetric on ({a}, {b})")
            }
            LatticeError::NotTransitive(a, b, c) => {
                write!(f, "relation is not transitive on ({a}, {b}, {c})")
            }
            LatticeError::NoMeet(a, b) => {
                write!(f, "elements {a} and {b} have no greatest lower bound")
            }
            LatticeError::NoJoin(a, b) => {
                write!(f, "elements {a} and {b} have no least upper bound")
            }
            LatticeError::Empty => write!(f, "structure must be nonempty"),
            LatticeError::OutOfRange { index, size } => {
                write!(f, "element index {index} out of range for size {size}")
            }
            LatticeError::NotExtensive(a) => {
                write!(f, "closure is not extensive at element {a}")
            }
            LatticeError::NotIdempotent(a) => {
                write!(f, "closure is not idempotent at element {a}")
            }
            LatticeError::NotMonotone(a, b) => {
                write!(f, "closure is not monotone on ({a}, {b})")
            }
            LatticeError::BaseNotMeetClosed(a, b) => {
                write!(
                    f,
                    "closure base is not meet-closed: meet of {a} and {b} missing"
                )
            }
            LatticeError::BaseMissingTop => {
                write!(f, "closure base must contain the top element")
            }
            LatticeError::NoComplement(a) => {
                write!(f, "element {a} has no complement")
            }
            LatticeError::SizeMismatch { left, right } => {
                write!(f, "size mismatch: {left} vs {right}")
            }
            LatticeError::HypothesisViolated(what) => {
                write!(f, "theorem hypothesis violated: {what}")
            }
        }
    }
}

impl std::error::Error for LatticeError {}

impl From<LatticeError> for sl_support::SlError {
    fn from(err: LatticeError) -> Self {
        sl_support::SlError::Domain {
            domain: "lattice",
            message: err.to_string(),
        }
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LatticeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples: Vec<LatticeError> = vec![
            LatticeError::NotReflexive(3),
            LatticeError::NotAntisymmetric(1, 2),
            LatticeError::NotTransitive(0, 1, 2),
            LatticeError::NoMeet(4, 5),
            LatticeError::NoJoin(4, 5),
            LatticeError::Empty,
            LatticeError::OutOfRange { index: 9, size: 4 },
            LatticeError::NotExtensive(0),
            LatticeError::NotIdempotent(1),
            LatticeError::NotMonotone(1, 2),
            LatticeError::BaseNotMeetClosed(2, 3),
            LatticeError::BaseMissingTop,
            LatticeError::NoComplement(7),
            LatticeError::SizeMismatch { left: 3, right: 4 },
            LatticeError::HypothesisViolated("modularity"),
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LatticeError::Empty, LatticeError::Empty);
        assert_ne!(LatticeError::NoMeet(0, 1), LatticeError::NoJoin(0, 1));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(LatticeError::Empty);
        assert_eq!(err.to_string(), "structure must be nonempty");
    }
}
