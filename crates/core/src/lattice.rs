//! Table-based finite lattices.
//!
//! A [`FiniteLattice`] is a validated finite lattice: a [`Poset`] in which
//! every pair of elements has a meet and a join, with both operation
//! tables precomputed. All structural predicates from the paper's Section 3
//! are decidable here and implemented exactly: modularity, distributivity,
//! complementation, and being a Boolean algebra.

use crate::error::{LatticeError, Result};
use crate::poset::Poset;
use crate::traits::{BoundedLattice, Lattice};

/// A finite lattice on elements `0..len()` with precomputed meet and join
/// tables.
///
/// # Examples
///
/// ```
/// use sl_lattice::{FiniteLattice, Poset};
///
/// // The diamond M2 = 2x2 Boolean algebra.
/// let p = Poset::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// let l = FiniteLattice::from_poset(p)?;
/// assert_eq!(l.meet(1, 2), 0);
/// assert_eq!(l.join(1, 2), 3);
/// assert!(l.is_distributive());
/// assert!(l.is_boolean());
/// # Ok::<(), sl_lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteLattice {
    poset: Poset,
    meet: Vec<u32>,
    join: Vec<u32>,
    bottom: usize,
    top: usize,
}

/// A witness that the modular law fails: `a <= c` but
/// `a \/ (b /\ c) != (a \/ b) /\ c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModularityViolation {
    /// The element `a` (with `a <= c`).
    pub a: usize,
    /// The element `b`.
    pub b: usize,
    /// The element `c`.
    pub c: usize,
    /// `a \/ (b /\ c)`.
    pub left: usize,
    /// `(a \/ b) /\ c`.
    pub right: usize,
}

/// A witness that distributivity fails:
/// `a /\ (b \/ c) != (a /\ b) \/ (a /\ c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributivityViolation {
    /// The element `a`.
    pub a: usize,
    /// The element `b`.
    pub b: usize,
    /// The element `c`.
    pub c: usize,
    /// `a /\ (b \/ c)`.
    pub left: usize,
    /// `(a /\ b) \/ (a /\ c)`.
    pub right: usize,
}

impl FiniteLattice {
    /// Builds a lattice from a poset, computing the meet and join tables.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::NoMeet`] or [`LatticeError::NoJoin`] if some
    /// pair of elements lacks a greatest lower or least upper bound.
    pub fn from_poset(poset: Poset) -> Result<Self> {
        let n = poset.len();
        let mut meet = vec![0u32; n * n];
        let mut join = vec![0u32; n * n];
        for a in 0..n {
            for b in a..n {
                let m = poset.meet(a, b).ok_or(LatticeError::NoMeet(a, b))?;
                let j = poset.join(a, b).ok_or(LatticeError::NoJoin(a, b))?;
                meet[a * n + b] = m as u32;
                meet[b * n + a] = m as u32;
                join[a * n + b] = j as u32;
                join[b * n + a] = j as u32;
            }
        }
        // A finite lattice always has a bottom (meet of everything) and a
        // top (join of everything); fold the tables to find them.
        let bottom = (0..n).fold(0usize, |acc, x| meet[acc * n + x] as usize);
        let top = (0..n).fold(0usize, |acc, x| join[acc * n + x] as usize);
        Ok(FiniteLattice {
            poset,
            meet,
            join,
            bottom,
            top,
        })
    }

    /// Builds a lattice from a cover relation; convenience over
    /// [`Poset::from_covers`] + [`FiniteLattice::from_poset`].
    ///
    /// # Errors
    ///
    /// Propagates poset validation errors and missing meet/join errors.
    pub fn from_covers(n: usize, covers: &[(usize, usize)]) -> Result<Self> {
        Self::from_poset(Poset::from_covers(n, covers)?)
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.poset.len()
    }

    /// Always false; lattices are nonempty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying poset.
    #[must_use]
    pub fn poset(&self) -> &Poset {
        &self.poset
    }

    /// Whether `a <= b` in the lattice order.
    #[must_use]
    pub fn leq(&self, a: usize, b: usize) -> bool {
        self.poset.leq(a, b)
    }

    /// Whether `a < b` strictly.
    #[must_use]
    pub fn lt(&self, a: usize, b: usize) -> bool {
        self.poset.lt(a, b)
    }

    /// Greatest lower bound (from the precomputed table).
    #[must_use]
    pub fn meet(&self, a: usize, b: usize) -> usize {
        self.meet[a * self.len() + b] as usize
    }

    /// Least upper bound (from the precomputed table).
    #[must_use]
    pub fn join(&self, a: usize, b: usize) -> usize {
        self.join[a * self.len() + b] as usize
    }

    /// The least element `0`.
    #[must_use]
    pub fn bottom(&self) -> usize {
        self.bottom
    }

    /// The greatest element `1`.
    #[must_use]
    pub fn top(&self) -> usize {
        self.top
    }

    /// Meet of an arbitrary collection (empty meet is the top element).
    pub fn meet_all<I: IntoIterator<Item = usize>>(&self, elems: I) -> usize {
        elems.into_iter().fold(self.top, |acc, x| self.meet(acc, x))
    }

    /// Join of an arbitrary collection (empty join is the bottom element).
    pub fn join_all<I: IntoIterator<Item = usize>>(&self, elems: I) -> usize {
        elems
            .into_iter()
            .fold(self.bottom, |acc, x| self.join(acc, x))
    }

    /// All complements of `a`: elements `b` with `a /\ b = 0` and
    /// `a \/ b = 1`. The paper writes this set `cmp.a`.
    #[must_use]
    pub fn complements(&self, a: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&b| self.meet(a, b) == self.bottom && self.join(a, b) == self.top)
            .collect()
    }

    /// Some complement of `a`, if one exists.
    #[must_use]
    pub fn complement(&self, a: usize) -> Option<usize> {
        let n = self.len();
        (0..n).find(|&b| self.meet(a, b) == self.bottom && self.join(a, b) == self.top)
    }

    /// Whether every element has at least one complement.
    #[must_use]
    pub fn is_complemented(&self) -> bool {
        (0..self.len()).all(|a| self.complement(a).is_some())
    }

    /// Searches for a violation of the modular law
    /// `a <= c  =>  a \/ (b /\ c) = (a \/ b) /\ c`.
    #[must_use]
    pub fn modularity_violation(&self) -> Option<ModularityViolation> {
        let n = self.len();
        for a in 0..n {
            for c in 0..n {
                if !self.leq(a, c) {
                    continue;
                }
                for b in 0..n {
                    let left = self.join(a, self.meet(b, c));
                    let right = self.meet(self.join(a, b), c);
                    if left != right {
                        return Some(ModularityViolation {
                            a,
                            b,
                            c,
                            left,
                            right,
                        });
                    }
                }
            }
        }
        None
    }

    /// Whether the lattice is modular.
    #[must_use]
    pub fn is_modular(&self) -> bool {
        self.modularity_violation().is_none()
    }

    /// Searches for a violation of distributivity
    /// `a /\ (b \/ c) = (a /\ b) \/ (a /\ c)`.
    #[must_use]
    pub fn distributivity_violation(&self) -> Option<DistributivityViolation> {
        let n = self.len();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let left = self.meet(a, self.join(b, c));
                    let right = self.join(self.meet(a, b), self.meet(a, c));
                    if left != right {
                        return Some(DistributivityViolation {
                            a,
                            b,
                            c,
                            left,
                            right,
                        });
                    }
                }
            }
        }
        None
    }

    /// Whether the lattice is distributive.
    ///
    /// As the paper notes after Theorem 6, `/\` distributes over `\/` iff
    /// `\/` distributes over `/\`; checking one direction suffices.
    #[must_use]
    pub fn is_distributive(&self) -> bool {
        self.distributivity_violation().is_none()
    }

    /// Whether the lattice is a Boolean algebra (distributive and
    /// complemented; complements are then unique).
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        self.is_distributive() && self.is_complemented()
    }

    /// The atoms: elements covering the bottom.
    #[must_use]
    pub fn atoms(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&a| self.poset.covers(self.bottom, a))
            .collect()
    }

    /// The coatoms: elements covered by the top.
    #[must_use]
    pub fn coatoms(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&a| self.poset.covers(a, self.top))
            .collect()
    }

    /// Whether the lattice is a chain (total order).
    #[must_use]
    pub fn is_chain(&self) -> bool {
        let n = self.len();
        (0..n).all(|a| (0..n).all(|b| self.leq(a, b) || self.leq(b, a)))
    }

    /// Searches for a pentagon N5 sublattice, returned as
    /// `(zero, x, y, c, one)` with `zero < x < y < one`, `zero < c < one`,
    /// `c` incomparable to `x` and `y`, and meets/joins internal to the
    /// pattern (`x /\ c = y /\ c = zero`, `x \/ c = y \/ c = one`).
    ///
    /// By Dedekind's theorem a lattice is modular iff it has no N5
    /// sublattice; [`FiniteLattice::is_modular`] cross-checks against this.
    #[must_use]
    pub fn find_n5(&self) -> Option<(usize, usize, usize, usize, usize)> {
        let n = self.len();
        for x in 0..n {
            for y in 0..n {
                if !self.lt(x, y) {
                    continue;
                }
                for c in 0..n {
                    if !self.poset.incomparable(c, x) || !self.poset.incomparable(c, y) {
                        continue;
                    }
                    let zero = self.meet(x, c);
                    let one = self.join(x, c);
                    if self.meet(y, c) == zero && self.join(y, c) == one {
                        return Some((zero, x, y, c, one));
                    }
                }
            }
        }
        None
    }

    /// Searches for a diamond M3 sublattice, returned as
    /// `(zero, x, y, z, one)` with `x`, `y`, `z` pairwise incomparable,
    /// pairwise meets `zero`, and pairwise joins `one`.
    ///
    /// Birkhoff's theorem: a lattice is distributive iff it contains
    /// neither N5 nor M3 as a sublattice.
    #[must_use]
    pub fn find_m3(&self) -> Option<(usize, usize, usize, usize, usize)> {
        let n = self.len();
        for x in 0..n {
            for y in (x + 1)..n {
                if !self.poset.incomparable(x, y) {
                    continue;
                }
                let zero = self.meet(x, y);
                let one = self.join(x, y);
                for z in (y + 1)..n {
                    if !self.poset.incomparable(x, z) || !self.poset.incomparable(y, z) {
                        continue;
                    }
                    if self.meet(x, z) == zero
                        && self.meet(y, z) == zero
                        && self.join(x, z) == one
                        && self.join(y, z) == one
                    {
                        return Some((zero, x, y, z, one));
                    }
                }
            }
        }
        None
    }

    /// The smallest sublattice containing `seed` (closed under meet and
    /// join), as a sorted list of elements.
    #[must_use]
    pub fn sublattice_closure(&self, seed: &[usize]) -> Vec<usize> {
        let n = self.len();
        let mut inside = vec![false; n];
        let mut work: Vec<usize> = Vec::new();
        for &s in seed {
            if !inside[s] {
                inside[s] = true;
                work.push(s);
            }
        }
        while let Some(a) = work.pop() {
            for b in 0..n {
                if !inside[b] {
                    continue;
                }
                for op in [self.meet(a, b), self.join(a, b)] {
                    if !inside[op] {
                        inside[op] = true;
                        work.push(op);
                    }
                }
            }
        }
        (0..n).filter(|&a| inside[a]).collect()
    }
}

impl Lattice for FiniteLattice {
    type Elem = usize;

    fn meet(&self, a: &usize, b: &usize) -> usize {
        FiniteLattice::meet(self, *a, *b)
    }

    fn join(&self, a: &usize, b: &usize) -> usize {
        FiniteLattice::join(self, *a, *b)
    }

    fn leq(&self, a: &usize, b: &usize) -> bool {
        FiniteLattice::leq(self, *a, *b)
    }
}

impl BoundedLattice for FiniteLattice {
    fn bottom(&self) -> usize {
        self.bottom
    }

    fn top(&self) -> usize {
        self.top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check;

    fn diamond() -> FiniteLattice {
        FiniteLattice::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    fn n5() -> FiniteLattice {
        // 0 < a(1) < b(2) < 1(4), 0 < c(3) < 1(4).
        FiniteLattice::from_covers(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]).unwrap()
    }

    fn m3() -> FiniteLattice {
        FiniteLattice::from_covers(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]).unwrap()
    }

    #[test]
    fn chain_is_a_lattice() {
        let l = FiniteLattice::from_poset(Poset::chain(4).unwrap()).unwrap();
        assert_eq!(l.meet(1, 3), 1);
        assert_eq!(l.join(1, 3), 3);
        assert_eq!(l.bottom(), 0);
        assert_eq!(l.top(), 3);
        assert!(l.is_chain());
        assert!(l.is_distributive());
        assert!(l.is_modular());
        // Chains of length > 2 are not complemented.
        assert!(!l.is_complemented());
    }

    #[test]
    fn two_element_chain_is_boolean() {
        let l = FiniteLattice::from_poset(Poset::chain(2).unwrap()).unwrap();
        assert!(l.is_boolean());
        assert_eq!(l.complements(0), vec![1]);
        assert_eq!(l.complements(1), vec![0]);
    }

    #[test]
    fn antichain_is_not_a_lattice() {
        let err = FiniteLattice::from_poset(Poset::antichain(2).unwrap()).unwrap_err();
        assert!(matches!(err, LatticeError::NoMeet(_, _)));
    }

    #[test]
    fn missing_join_detected() {
        // Two minimal, two maximal elements: meets of maximals missing.
        let p = Poset::from_covers(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let err = FiniteLattice::from_poset(p).unwrap_err();
        assert!(matches!(
            err,
            LatticeError::NoMeet(_, _) | LatticeError::NoJoin(_, _)
        ));
    }

    #[test]
    fn diamond_is_boolean() {
        let l = diamond();
        assert!(l.is_boolean());
        assert!(l.is_modular());
        assert_eq!(l.atoms(), vec![1, 2]);
        assert_eq!(l.coatoms(), vec![1, 2]);
        assert_eq!(l.complements(1), vec![2]);
    }

    #[test]
    fn n5_is_not_modular_and_witness_is_valid() {
        let l = n5();
        assert!(!l.is_modular());
        let w = l.modularity_violation().unwrap();
        assert!(l.leq(w.a, w.c));
        assert_eq!(l.join(w.a, l.meet(w.b, w.c)), w.left);
        assert_eq!(l.meet(l.join(w.a, w.b), w.c), w.right);
        assert_ne!(w.left, w.right);
    }

    #[test]
    fn n5_contains_n5_pattern() {
        let l = n5();
        let (zero, x, y, c, one) = l.find_n5().unwrap();
        assert!(l.lt(zero, x) && l.lt(x, y) && l.lt(y, one));
        assert!(l.poset().incomparable(c, x));
        assert_eq!(l.meet(x, c), zero);
        assert_eq!(l.join(y, c), one);
    }

    #[test]
    fn m3_is_modular_not_distributive() {
        let l = m3();
        assert!(l.is_modular());
        assert!(!l.is_distributive());
        let w = l.distributivity_violation().unwrap();
        assert_ne!(w.left, w.right);
        assert!(l.find_m3().is_some());
        assert!(l.find_n5().is_none());
    }

    #[test]
    fn m3_complements_are_not_unique() {
        let l = m3();
        // Every atom has the other two atoms as complements.
        assert_eq!(l.complements(1), vec![2, 3]);
        assert!(l.is_complemented());
        assert!(!l.is_boolean());
    }

    #[test]
    fn dedekind_birkhoff_cross_check() {
        for l in [diamond(), n5(), m3()] {
            assert_eq!(l.is_modular(), l.find_n5().is_none());
            assert_eq!(
                l.is_distributive(),
                l.find_n5().is_none() && l.find_m3().is_none()
            );
        }
    }

    #[test]
    fn meet_join_all() {
        let l = diamond();
        assert_eq!(l.meet_all([1, 2]), 0);
        assert_eq!(l.join_all([1, 2]), 3);
        assert_eq!(l.meet_all([]), l.top());
        assert_eq!(l.join_all([]), l.bottom());
    }

    #[test]
    fn sublattice_closure_of_incomparables() {
        let l = m3();
        let sub = l.sublattice_closure(&[1, 2]);
        assert_eq!(sub, vec![0, 1, 2, 4]);
    }

    #[test]
    fn trait_impl_agrees_with_inherent() {
        let l = diamond();
        let sample: Vec<usize> = (0..l.len()).collect();
        check::lattice_laws(&l, &sample).unwrap();
        check::bound_laws(&l, &sample).unwrap();
        check::distributive_law(&l, &sample).unwrap();
        assert!(Lattice::leq(&l, &1, &3));
        assert_eq!(BoundedLattice::top(&l), 3);
    }

    #[test]
    fn modular_law_checker_flags_n5() {
        let l = n5();
        let sample: Vec<usize> = (0..l.len()).collect();
        assert!(check::modular_law(&l, &sample).is_err());
    }
}
