//! Lattice closure operators on finite lattices.
//!
//! A lattice closure (paper, Section 3) is a map `cl : L -> L` that is
//! extensive (`a <= cl.a`), idempotent (`cl.cl.a = cl.a`), and monotone
//! (`a <= b  =>  cl.a <= cl.b`). Unlike a topological closure it need
//! *not* distribute over joins and need not fix the bottom element.
//!
//! On a finite lattice, closures are in bijection with their fixpoint sets:
//! a set `S` is the fixpoint set of a (unique) closure iff `S` is closed
//! under meets and contains the top element, and then
//! `cl.a = meet { s in S : a <= s }`. [`Closure::from_fixpoints`] and
//! [`Closure::fixpoints`] realize the two directions;
//! [`enumerate_closures`] walks the whole bijection for small lattices.

use crate::error::{LatticeError, Result};
use crate::lattice::FiniteLattice;
use crate::traits::LatticeClosure;
use sl_support::rng::{SplitMix, GOLDEN_GAMMA};

/// A validated table-based closure operator on a [`FiniteLattice`].
///
/// The closure stores only its table; pair it with the lattice it was
/// built from. Methods that need the lattice take it as an argument and
/// check sizes.
///
/// # Examples
///
/// ```
/// use sl_lattice::{Closure, FiniteLattice};
///
/// let l = FiniteLattice::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// // Fixpoints {2, 3}: closure maps 0 and 1 up into {2, 3}.
/// let cl = Closure::from_fixpoints(&l, &[2, 3])?;
/// assert_eq!(cl.apply(0), 2);
/// assert_eq!(cl.apply(1), 3);
/// assert!(cl.is_safety(1) == false && cl.is_safety(2));
/// # Ok::<(), sl_lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    table: Vec<u32>,
}

impl Closure {
    /// Builds a closure from an explicit table, validating the three
    /// closure laws against the lattice.
    ///
    /// # Errors
    ///
    /// Returns a size-mismatch error if the table length differs from the
    /// lattice, or the first violated closure law.
    pub fn new(lattice: &FiniteLattice, table: Vec<usize>) -> Result<Self> {
        let n = lattice.len();
        if table.len() != n {
            return Err(LatticeError::SizeMismatch {
                left: table.len(),
                right: n,
            });
        }
        for (a, &ca) in table.iter().enumerate() {
            if ca >= n {
                return Err(LatticeError::OutOfRange { index: ca, size: n });
            }
            if !lattice.leq(a, ca) {
                return Err(LatticeError::NotExtensive(a));
            }
        }
        for (a, &ca) in table.iter().enumerate() {
            if table[ca] != ca {
                return Err(LatticeError::NotIdempotent(a));
            }
        }
        for a in 0..n {
            for b in 0..n {
                if lattice.leq(a, b) && !lattice.leq(table[a], table[b]) {
                    return Err(LatticeError::NotMonotone(a, b));
                }
            }
        }
        Ok(Closure {
            table: table.into_iter().map(|x| x as u32).collect(),
        })
    }

    /// Builds the closure whose fixpoint set is `base`.
    ///
    /// # Errors
    ///
    /// Returns an error if `base` omits the top element or is not closed
    /// under binary meets (in which case no closure has exactly these
    /// fixpoints).
    pub fn from_fixpoints(lattice: &FiniteLattice, base: &[usize]) -> Result<Self> {
        let n = lattice.len();
        for &s in base {
            if s >= n {
                return Err(LatticeError::OutOfRange { index: s, size: n });
            }
        }
        if !base.contains(&lattice.top()) {
            return Err(LatticeError::BaseMissingTop);
        }
        for &s in base {
            for &t in base {
                if !base.contains(&lattice.meet(s, t)) {
                    return Err(LatticeError::BaseNotMeetClosed(s, t));
                }
            }
        }
        let table = (0..n)
            .map(|a| lattice.meet_all(base.iter().copied().filter(|&s| lattice.leq(a, s))))
            .collect();
        // The meet of all base elements above `a` is itself in the base
        // (base is meet-closed and nonempty above every `a` thanks to top),
        // so the table is idempotent; `new` re-validates for belt and
        // braces.
        Self::new(lattice, table)
    }

    /// The identity closure (every element is a fixpoint).
    #[must_use]
    pub fn identity(lattice: &FiniteLattice) -> Self {
        Closure {
            table: (0..lattice.len()).map(|x| x as u32).collect(),
        }
    }

    /// The coarsest closure, mapping everything to the top element.
    #[must_use]
    pub fn constant_top(lattice: &FiniteLattice) -> Self {
        Closure {
            table: vec![lattice.top() as u32; lattice.len()],
        }
    }

    /// Applies the closure.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn apply(&self, a: usize) -> usize {
        self.table[a] as usize
    }

    /// Number of elements of the underlying lattice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The fixpoint set, i.e. the safety elements, in increasing index
    /// order.
    #[must_use]
    pub fn fixpoints(&self) -> Vec<usize> {
        (0..self.len()).filter(|&a| self.apply(a) == a).collect()
    }

    /// Whether `a` is a cl-safety element (`a = cl.a`).
    #[must_use]
    pub fn is_safety(&self, a: usize) -> bool {
        self.apply(a) == a
    }

    /// Whether `a` is a cl-liveness element (`cl.a = 1`).
    #[must_use]
    pub fn is_liveness(&self, lattice: &FiniteLattice, a: usize) -> bool {
        self.apply(a) == lattice.top()
    }

    /// All cl-liveness elements.
    #[must_use]
    pub fn liveness_elements(&self, lattice: &FiniteLattice) -> Vec<usize> {
        (0..self.len())
            .filter(|&a| self.is_liveness(lattice, a))
            .collect()
    }

    /// Whether `self.a <= other.a` for every `a` — the hypothesis
    /// `cl1 <= cl2` of Theorem 3.
    #[must_use]
    pub fn pointwise_leq(&self, lattice: &FiniteLattice, other: &Closure) -> bool {
        self.len() == other.len()
            && (0..self.len()).all(|a| lattice.leq(self.apply(a), other.apply(a)))
    }

    /// Whether the closure is *topological* in the Alpern–Schneider sense:
    /// `cl.0 = 0` and `cl(a \/ b) = cl.a \/ cl.b`.
    ///
    /// The paper's point is that lattice closures strictly generalize
    /// these; the branching-time closure `ncl` fails the join condition.
    #[must_use]
    pub fn is_topological(&self, lattice: &FiniteLattice) -> bool {
        if self.apply(lattice.bottom()) != lattice.bottom() {
            return false;
        }
        let n = self.len();
        for a in 0..n {
            for b in 0..n {
                let lhs = self.apply(lattice.join(a, b));
                let rhs = lattice.join(self.apply(a), self.apply(b));
                if lhs != rhs {
                    return false;
                }
            }
        }
        true
    }

    /// Lemma 3 check: `cl(a /\ b) <= cl.a /\ cl.b` for all pairs. This
    /// holds for every lattice closure; exposed for tests and the
    /// experiment harness.
    #[must_use]
    pub fn lemma3_holds(&self, lattice: &FiniteLattice) -> bool {
        let n = self.len();
        for a in 0..n {
            for b in 0..n {
                let lhs = self.apply(lattice.meet(a, b));
                let rhs = lattice.meet(self.apply(a), self.apply(b));
                if !lattice.leq(lhs, rhs) {
                    return false;
                }
            }
        }
        true
    }
}

impl LatticeClosure<FiniteLattice> for Closure {
    fn close(&self, _lattice: &FiniteLattice, a: &usize) -> usize {
        self.apply(*a)
    }
}

/// Enumerates *all* closure operators on the lattice, via the bijection
/// with meet-closed subsets containing the top element.
///
/// # Panics
///
/// Panics if the lattice has more than 16 elements (the enumeration is
/// exponential in the size).
#[must_use]
pub fn enumerate_closures(lattice: &FiniteLattice) -> Vec<Closure> {
    match enumerate_closures_with_budget(lattice, &sl_support::Budget::unlimited()) {
        Ok(closures) => closures,
        Err(err) => panic!("{err}"),
    }
}

/// [`enumerate_closures`] under a cooperative [`sl_support::Budget`]:
/// each candidate subset charges one step (phase `"core.closures"`),
/// so a deadline or step limit bounds the `2^n` sweep, and the 16-element
/// cap surfaces as a typed error instead of a panic.
///
/// # Errors
///
/// * [`SlError`](sl_support::SlError)`::InvalidInput` for lattices with
///   more than 16 elements;
/// * `BudgetExceeded` / `Cancelled` from the budget;
/// * `Domain` if a meet-closed base unexpectedly fails validation (an
///   internal-invariant breach, surfaced instead of panicking).
pub fn enumerate_closures_with_budget(
    lattice: &FiniteLattice,
    budget: &sl_support::Budget,
) -> std::result::Result<Vec<Closure>, sl_support::SlError> {
    let n = lattice.len();
    if n > 16 {
        return Err(sl_support::SlError::InvalidInput(format!(
            "closure enumeration limited to 16 elements, got {n}"
        )));
    }
    let mut meter = budget.meter("core.closures");
    let top = lattice.top();
    let mut out = Vec::new();
    'subset: for mask in 0u32..(1u32 << n) {
        meter.charge(1)?;
        if mask & (1 << top) == 0 {
            continue;
        }
        let members: Vec<usize> = (0..n).filter(|&a| mask & (1 << a) != 0).collect();
        for &s in &members {
            for &t in &members {
                if mask & (1 << lattice.meet(s, t)) == 0 {
                    continue 'subset;
                }
            }
        }
        let cl = Closure::from_fixpoints(lattice, &members).map_err(|e| {
            sl_support::SlError::from(e)
                .context("enumerate_closures: meet-closed set with top must induce a closure")
        })?;
        out.push(cl);
    }
    Ok(out)
}

/// Builds a uniformly-seeded pseudo-random closure by closing a random
/// subset of elements under meets and adding the top. Deterministic in the
/// seed; used by property tests and benchmarks.
#[must_use]
pub fn random_closure(lattice: &FiniteLattice, seed: u64) -> Closure {
    let n = lattice.len();
    // Historically this inlined SplitMix64 with the state pre-advanced
    // by one gamma; seeding the shared generator at `seed + gamma`
    // reproduces that exact stream, keeping seeded corpora stable.
    let mut rng = SplitMix::new(seed.wrapping_add(GOLDEN_GAMMA));
    let mut base: Vec<usize> = (0..n).filter(|_| rng.next_u64() % 2 == 0).collect();
    if !base.contains(&lattice.top()) {
        base.push(lattice.top());
    }
    // Close under meets.
    loop {
        let mut added = false;
        let snapshot = base.clone();
        for &s in &snapshot {
            for &t in &snapshot {
                let m = lattice.meet(s, t);
                if !base.contains(&m) {
                    base.push(m);
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    Closure::from_fixpoints(lattice, &base).expect("meet-closed base induces a closure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::FiniteLattice;
    use crate::poset::Poset;

    fn diamond() -> FiniteLattice {
        FiniteLattice::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    fn chain(n: usize) -> FiniteLattice {
        FiniteLattice::from_poset(Poset::chain(n).unwrap()).unwrap()
    }

    #[test]
    fn identity_and_top_are_closures() {
        let l = diamond();
        let id = Closure::identity(&l);
        let ct = Closure::constant_top(&l);
        assert_eq!(id.fixpoints(), vec![0, 1, 2, 3]);
        assert_eq!(ct.fixpoints(), vec![3]);
        assert!(id.pointwise_leq(&l, &ct));
        assert!(!ct.pointwise_leq(&l, &id));
    }

    #[test]
    fn from_fixpoints_computes_least_cover() {
        let l = diamond();
        let cl = Closure::from_fixpoints(&l, &[2, 3]).unwrap();
        assert_eq!(cl.apply(0), 2);
        assert_eq!(cl.apply(1), 3);
        assert_eq!(cl.apply(2), 2);
        assert_eq!(cl.apply(3), 3);
    }

    #[test]
    fn base_missing_top_rejected() {
        let l = diamond();
        assert_eq!(
            Closure::from_fixpoints(&l, &[0, 1]).unwrap_err(),
            LatticeError::BaseMissingTop
        );
    }

    #[test]
    fn base_not_meet_closed_rejected() {
        let l = diamond();
        // {1, 2, 3} is missing 1 /\ 2 = 0.
        assert_eq!(
            Closure::from_fixpoints(&l, &[1, 2, 3]).unwrap_err(),
            LatticeError::BaseNotMeetClosed(1, 2)
        );
    }

    #[test]
    fn invalid_tables_rejected() {
        let l = chain(3);
        // Not extensive: maps 2 to 0.
        assert_eq!(
            Closure::new(&l, vec![0, 1, 0]).unwrap_err(),
            LatticeError::NotExtensive(2)
        );
        // Not idempotent: 0 -> 1 -> 2.
        assert_eq!(
            Closure::new(&l, vec![1, 2, 2]).unwrap_err(),
            LatticeError::NotIdempotent(0)
        );
        // Not monotone: 0 -> 2 but 1 -> 1.
        assert_eq!(
            Closure::new(&l, vec![2, 1, 2]).unwrap_err(),
            LatticeError::NotMonotone(0, 1)
        );
        // Wrong size.
        assert!(matches!(
            Closure::new(&l, vec![0, 1]).unwrap_err(),
            LatticeError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn safety_and_liveness_partition_style() {
        let l = diamond();
        let cl = Closure::from_fixpoints(&l, &[0, 3]).unwrap();
        assert!(cl.is_safety(0));
        assert!(!cl.is_safety(1));
        // cl maps 1 and 2 to the top, so they are liveness elements.
        assert!(cl.is_liveness(&l, 1));
        assert!(cl.is_liveness(&l, 2));
        assert_eq!(cl.liveness_elements(&l), vec![1, 2, 3]);
        // 0 is safety but not liveness; 3 (top) is both.
        assert!(!cl.is_liveness(&l, 0));
        assert!(cl.is_safety(3) && cl.is_liveness(&l, 3));
    }

    #[test]
    fn enumerate_closures_counts() {
        // On the chain 0 < 1, meet-closed sets containing top {1}:
        // {1}, {0,1} -> exactly 2 closures.
        let l = chain(2);
        assert_eq!(enumerate_closures(&l).len(), 2);
        // On the diamond: subsets containing 3 closed under meet.
        let l = diamond();
        let all = enumerate_closures(&l);
        // {3}, {0,3}, {1,3}, {2,3}, {0,1,3}, {0,2,3}, {0,1,2,3}; the set
        // {1,2,3} is excluded since 1 /\ 2 = 0 is missing. Total 7.
        for cl in &all {
            let fp = cl.fixpoints();
            assert!(fp.contains(&3));
            for &s in &fp {
                for &t in &fp {
                    assert!(fp.contains(&l.meet(s, t)));
                }
            }
        }
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn every_enumerated_closure_satisfies_lemma3() {
        let l = diamond();
        for cl in enumerate_closures(&l) {
            assert!(cl.lemma3_holds(&l));
        }
    }

    #[test]
    fn budgeted_enumeration_matches_and_stops() {
        use sl_support::Budget;
        let l = diamond();
        let all = enumerate_closures_with_budget(&l, &Budget::unlimited()).unwrap();
        assert_eq!(all, enumerate_closures(&l));
        // 2^4 = 16 candidate subsets; a budget of 5 steps stops early.
        let err = enumerate_closures_with_budget(&l, &Budget::unlimited().with_steps(5))
            .unwrap_err();
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(6));
    }

    #[test]
    fn lattice_errors_convert_to_sl_errors() {
        let err: sl_support::SlError = LatticeError::BaseMissingTop.into();
        match &err {
            sl_support::SlError::Domain { domain, message } => {
                assert_eq!(*domain, "lattice");
                assert!(message.contains("top"));
            }
            other => panic!("unexpected variant: {other:?}"),
        }
    }

    #[test]
    fn topological_check_distinguishes() {
        let l = diamond();
        // The identity is topological.
        assert!(Closure::identity(&l).is_topological(&l));
        // constant-top fails cl.0 = 0.
        assert!(!Closure::constant_top(&l).is_topological(&l));
        // Fixpoints {0, 3}: cl(1 \/ 2) = cl(3) = 3, cl.1 \/ cl.2 = 3: need
        // a finer example; fixpoints {0,1,3}: cl(2)=3, cl(0 \/ 2)=cl(2)=3,
        // cl0 \/ cl2 = 0 \/ 3 = 3 ... check law exhaustively instead.
        let cl = Closure::from_fixpoints(&l, &[0, 1, 3]).unwrap();
        // cl(1 \/ 2) = cl(3) = 3 = 1 \/ 3 = cl1 \/ cl2: holds; and cl.0 = 0.
        assert!(cl.is_topological(&l));
    }

    #[test]
    fn non_topological_closure_exists_on_three_atoms() {
        // Boolean algebra on 3 atoms: closure with fixpoints {0, top}
        // where 0 is bottom: cl(a \/ b) vs cl.a \/ cl.b both top for
        // distinct atoms; but cl bottom = bottom. Take fixpoints
        // {atom1, top}: cl.0 = atom1 != 0, not topological.
        let p = Poset::from_leq(8, |a, b| a & b == a).unwrap();
        let l = FiniteLattice::from_poset(p).unwrap();
        let cl = Closure::from_fixpoints(&l, &[1, 7]).unwrap();
        assert!(!cl.is_topological(&l));
        assert!(cl.lemma3_holds(&l));
    }

    #[test]
    fn random_closure_is_valid_and_deterministic() {
        let l = diamond();
        for seed in 0..50 {
            let cl1 = random_closure(&l, seed);
            let cl2 = random_closure(&l, seed);
            assert_eq!(cl1, cl2);
            assert!(cl1.lemma3_holds(&l));
        }
    }
}
