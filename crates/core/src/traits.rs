//! Abstract lattice interfaces.
//!
//! The decomposition machinery in the `decompose` module is written against
//! these traits so that it applies uniformly to the table-based
//! [`crate::FiniteLattice`], the bitset Boolean algebra
//! [`crate::BitsetAlgebra`], and any downstream lattice of properties (for
//! example the lattice of Büchi-recognizable languages in `sl-buchi`, where
//! elements are automata and `meet`/`join` are product and union).
//!
//! The design follows the paper's Section 3: a lattice is a carrier with
//! `meet` and `join` satisfying the associative, commutative, idempotency,
//! and absorption laws; the order is *defined* by
//! `a <= b  iff  a /\ b = a`.

/// A lattice whose elements are values of type `Self::Elem`, with the
/// operations provided by the structure value (so one type can represent a
/// whole family of lattices, e.g. all powerset algebras).
///
/// Implementations must satisfy the lattice laws: `meet` and `join` are
/// associative, commutative, and idempotent, and absorb each other
/// (`a /\ (a \/ b) = a`). [`check::lattice_laws`] verifies these on a
/// sample of elements.
pub trait Lattice {
    /// The element type of the lattice.
    type Elem: Clone + Eq;

    /// Greatest lower bound.
    fn meet(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Least upper bound.
    fn join(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// The induced partial order: `a <= b` iff `a /\ b = a`.
    fn leq(&self, a: &Self::Elem, b: &Self::Elem) -> bool {
        self.meet(a, b) == *a
    }
}

/// A lattice with least element `0` and greatest element `1`.
pub trait BoundedLattice: Lattice {
    /// The least element (`a \/ 0 = a`).
    fn bottom(&self) -> Self::Elem;

    /// The greatest element (`a /\ 1 = a`).
    fn top(&self) -> Self::Elem;
}

/// A bounded lattice in which every element has at least one complement,
/// and some complement can be computed.
///
/// Complements need not be unique in a merely modular lattice (the paper
/// writes `cmp.a` for the *set* of complements); implementations return an
/// arbitrary member of that set.
pub trait ComplementedLattice: BoundedLattice {
    /// Some `b` with `a /\ b = 0` and `a \/ b = 1`.
    fn complement(&self, a: &Self::Elem) -> Self::Elem;
}

/// A lattice closure in the sense of the paper (Section 3): an extensive,
/// idempotent, monotone map on a lattice.
///
/// Note what is *not* required: `cl` need not distribute over joins. That
/// is exactly the generality the paper needs for the branching-time closure
/// `ncl` and is what separates lattice closures from topological closure
/// operators.
pub trait LatticeClosure<L: Lattice + ?Sized> {
    /// Applies the closure to an element.
    fn close(&self, lattice: &L, a: &L::Elem) -> L::Elem;
}

/// Blanket implementation so plain functions and closures can be used as
/// lattice closures.
impl<L, F> LatticeClosure<L> for F
where
    L: Lattice + ?Sized,
    F: Fn(&L, &L::Elem) -> L::Elem,
{
    fn close(&self, lattice: &L, a: &L::Elem) -> L::Elem {
        self(lattice, a)
    }
}

/// Law checkers that validate trait implementations on a finite sample of
/// elements. These are used by property tests across the workspace.
pub mod check {
    use super::{BoundedLattice, Lattice, LatticeClosure};

    /// Checks the associative, commutative, idempotency, and absorption
    /// laws (and their duals) on all triples drawn from `sample`.
    /// Returns a human-readable description of the first violated law.
    pub fn lattice_laws<L: Lattice>(lat: &L, sample: &[L::Elem]) -> Result<(), String> {
        for a in sample {
            if lat.meet(a, a) != *a {
                return Err("meet idempotency".into());
            }
            if lat.join(a, a) != *a {
                return Err("join idempotency".into());
            }
            for b in sample {
                if lat.meet(a, b) != lat.meet(b, a) {
                    return Err("meet commutativity".into());
                }
                if lat.join(a, b) != lat.join(b, a) {
                    return Err("join commutativity".into());
                }
                if lat.meet(a, &lat.join(a, b)) != *a {
                    return Err("absorption a /\\ (a \\/ b) = a".into());
                }
                if lat.join(a, &lat.meet(a, b)) != *a {
                    return Err("absorption a \\/ (a /\\ b) = a".into());
                }
                for c in sample {
                    let left = lat.meet(&lat.meet(a, b), c);
                    let right = lat.meet(a, &lat.meet(b, c));
                    if left != right {
                        return Err("meet associativity".into());
                    }
                    let left = lat.join(&lat.join(a, b), c);
                    let right = lat.join(a, &lat.join(b, c));
                    if left != right {
                        return Err("join associativity".into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the bound laws `a /\ 1 = a` and `a \/ 0 = a` on `sample`.
    pub fn bound_laws<L: BoundedLattice>(lat: &L, sample: &[L::Elem]) -> Result<(), String> {
        let top = lat.top();
        let bottom = lat.bottom();
        for a in sample {
            if lat.meet(a, &top) != *a {
                return Err("a /\\ 1 = a".into());
            }
            if lat.join(a, &bottom) != *a {
                return Err("a \\/ 0 = a".into());
            }
        }
        Ok(())
    }

    /// Checks the modular law `a <= c  =>  a \/ (b /\ c) = (a \/ b) /\ c`
    /// on all triples drawn from `sample`.
    pub fn modular_law<L: Lattice>(lat: &L, sample: &[L::Elem]) -> Result<(), String> {
        for a in sample {
            for b in sample {
                for c in sample {
                    if !lat.leq(a, c) {
                        continue;
                    }
                    let left = lat.join(a, &lat.meet(b, c));
                    let right = lat.meet(&lat.join(a, b), c);
                    if left != right {
                        return Err("modular law".into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks distributivity `a /\ (b \/ c) = (a /\ b) \/ (a /\ c)` on all
    /// triples drawn from `sample`.
    pub fn distributive_law<L: Lattice>(lat: &L, sample: &[L::Elem]) -> Result<(), String> {
        for a in sample {
            for b in sample {
                for c in sample {
                    let left = lat.meet(a, &lat.join(b, c));
                    let right = lat.join(&lat.meet(a, b), &lat.meet(a, c));
                    if left != right {
                        return Err("distributive law".into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the three closure laws on `sample` (monotonicity on all
    /// comparable pairs in the sample).
    pub fn closure_laws<L: Lattice, C: LatticeClosure<L>>(
        lat: &L,
        cl: &C,
        sample: &[L::Elem],
    ) -> Result<(), String> {
        for a in sample {
            let ca = cl.close(lat, a);
            if !lat.leq(a, &ca) {
                return Err("closure extensivity a <= cl.a".into());
            }
            if cl.close(lat, &ca) != ca {
                return Err("closure idempotency".into());
            }
            for b in sample {
                if lat.leq(a, b) && !lat.leq(&ca, &cl.close(lat, b)) {
                    return Err("closure monotonicity".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-element Boolean algebra as a minimal trait implementation.
    struct Two;

    impl Lattice for Two {
        type Elem = bool;
        fn meet(&self, a: &bool, b: &bool) -> bool {
            *a && *b
        }
        fn join(&self, a: &bool, b: &bool) -> bool {
            *a || *b
        }
    }

    impl BoundedLattice for Two {
        fn bottom(&self) -> bool {
            false
        }
        fn top(&self) -> bool {
            true
        }
    }

    impl ComplementedLattice for Two {
        fn complement(&self, a: &bool) -> bool {
            !*a
        }
    }

    #[test]
    fn two_satisfies_all_laws() {
        let sample = [false, true];
        check::lattice_laws(&Two, &sample).unwrap();
        check::bound_laws(&Two, &sample).unwrap();
        check::modular_law(&Two, &sample).unwrap();
        check::distributive_law(&Two, &sample).unwrap();
    }

    #[test]
    fn induced_order_matches_implication() {
        assert!(Two.leq(&false, &true));
        assert!(!Two.leq(&true, &false));
        assert!(Two.leq(&true, &true));
    }

    #[test]
    fn function_as_closure() {
        // cl = constant top is a lattice closure.
        let cl = |_: &Two, _: &bool| true;
        check::closure_laws(&Two, &cl, &[false, true]).unwrap();
        assert!(cl.close(&Two, &false));
    }

    #[test]
    fn identity_is_a_closure() {
        let cl = |_: &Two, a: &bool| *a;
        check::closure_laws(&Two, &cl, &[false, true]).unwrap();
    }

    #[test]
    fn non_extensive_map_rejected() {
        let cl = |_: &Two, _: &bool| false;
        assert!(check::closure_laws(&Two, &cl, &[false, true]).is_err());
    }

    #[test]
    fn complement_laws() {
        for a in [false, true] {
            let c = Two.complement(&a);
            assert_eq!(Two.meet(&a, &c), Two.bottom());
            assert_eq!(Two.join(&a, &c), Two.top());
        }
    }
}
