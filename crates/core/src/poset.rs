//! Finite partially ordered sets.
//!
//! A [`Poset`] stores an explicit order relation on the elements
//! `0..len()`. Construction validates that the relation is reflexive,
//! antisymmetric, and transitive, so every `Poset` value is a genuine
//! partial order. Posets are the raw material for [`crate::FiniteLattice`]
//! and for Birkhoff-style constructions (down-set lattices).

use crate::error::{LatticeError, Result};

/// A finite partial order on the elements `0..len()`.
///
/// The relation is stored as a dense boolean matrix in row-major order:
/// `leq[a * n + b]` holds iff `a <= b`.
///
/// # Examples
///
/// ```
/// use sl_lattice::Poset;
///
/// // The diamond: 0 below 1 and 2, both below 3.
/// let p = Poset::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])?;
/// assert!(p.leq(0, 3));
/// assert!(!p.leq(1, 2));
/// assert_eq!(p.minimal_elements(), vec![0]);
/// # Ok::<(), sl_lattice::LatticeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Poset {
    n: usize,
    leq: Vec<bool>,
}

impl Poset {
    /// Builds a poset from an explicit `<=` predicate.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or if the induced relation is not
    /// reflexive, antisymmetric, or transitive.
    pub fn from_leq<F>(n: usize, leq: F) -> Result<Self>
    where
        F: Fn(usize, usize) -> bool,
    {
        if n == 0 {
            return Err(LatticeError::Empty);
        }
        let mut matrix = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                matrix[a * n + b] = leq(a, b);
            }
        }
        let poset = Poset { n, leq: matrix };
        poset.validate()?;
        Ok(poset)
    }

    /// Builds a poset as the reflexive-transitive closure of a cover
    /// relation given as `(lower, upper)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`, if a pair mentions an out-of-range
    /// element, or if the covers induce a cycle (which violates
    /// antisymmetry).
    pub fn from_covers(n: usize, covers: &[(usize, usize)]) -> Result<Self> {
        if n == 0 {
            return Err(LatticeError::Empty);
        }
        let mut matrix = vec![false; n * n];
        for a in 0..n {
            matrix[a * n + a] = true;
        }
        for &(lo, hi) in covers {
            for &x in &[lo, hi] {
                if x >= n {
                    return Err(LatticeError::OutOfRange { index: x, size: n });
                }
            }
            matrix[lo * n + hi] = true;
        }
        // Warshall transitive closure.
        for k in 0..n {
            for a in 0..n {
                if matrix[a * n + k] {
                    for b in 0..n {
                        if matrix[k * n + b] {
                            matrix[a * n + b] = true;
                        }
                    }
                }
            }
        }
        let poset = Poset { n, leq: matrix };
        poset.validate()?;
        Ok(poset)
    }

    /// The discrete (antichain) order on `n` elements.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn antichain(n: usize) -> Result<Self> {
        Self::from_leq(n, |a, b| a == b)
    }

    /// The linear order `0 < 1 < ... < n - 1`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn chain(n: usize) -> Result<Self> {
        Self::from_leq(n, |a, b| a <= b)
    }

    fn validate(&self) -> Result<()> {
        let n = self.n;
        for a in 0..n {
            if !self.leq(a, a) {
                return Err(LatticeError::NotReflexive(a));
            }
        }
        for a in 0..n {
            for b in 0..n {
                if a != b && self.leq(a, b) && self.leq(b, a) {
                    return Err(LatticeError::NotAntisymmetric(a, b));
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                if !self.leq(a, b) {
                    continue;
                }
                for c in 0..n {
                    if self.leq(b, c) && !self.leq(a, c) {
                        return Err(LatticeError::NotTransitive(a, b, c));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: posets in this crate are nonempty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `a <= b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn leq(&self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "element out of range");
        self.leq[a * self.n + b]
    }

    /// Whether `a < b` (strictly).
    #[must_use]
    pub fn lt(&self, a: usize, b: usize) -> bool {
        a != b && self.leq(a, b)
    }

    /// Whether `a` and `b` are incomparable.
    #[must_use]
    pub fn incomparable(&self, a: usize, b: usize) -> bool {
        !self.leq(a, b) && !self.leq(b, a)
    }

    /// Whether `b` covers `a`: `a < b` with nothing strictly between.
    #[must_use]
    pub fn covers(&self, a: usize, b: usize) -> bool {
        self.lt(a, b) && (0..self.n).all(|c| !(self.lt(a, c) && self.lt(c, b)))
    }

    /// All cover pairs `(lower, upper)`, i.e. the edges of the Hasse
    /// diagram, in lexicographic order.
    #[must_use]
    pub fn cover_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for a in 0..self.n {
            for b in 0..self.n {
                if self.covers(a, b) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Elements with nothing strictly below them.
    #[must_use]
    pub fn minimal_elements(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&a| (0..self.n).all(|b| !self.lt(b, a)))
            .collect()
    }

    /// Elements with nothing strictly above them.
    #[must_use]
    pub fn maximal_elements(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&a| (0..self.n).all(|b| !self.lt(a, b)))
            .collect()
    }

    /// The unique minimum element, if one exists.
    #[must_use]
    pub fn bottom(&self) -> Option<usize> {
        (0..self.n).find(|&a| (0..self.n).all(|b| self.leq(a, b)))
    }

    /// The unique maximum element, if one exists.
    #[must_use]
    pub fn top(&self) -> Option<usize> {
        (0..self.n).find(|&a| (0..self.n).all(|b| self.leq(b, a)))
    }

    /// The greatest lower bound of `a` and `b`, if it exists.
    #[must_use]
    pub fn meet(&self, a: usize, b: usize) -> Option<usize> {
        let lower: Vec<usize> = (0..self.n)
            .filter(|&c| self.leq(c, a) && self.leq(c, b))
            .collect();
        lower
            .iter()
            .copied()
            .find(|&c| lower.iter().all(|&d| self.leq(d, c)))
    }

    /// The least upper bound of `a` and `b`, if it exists.
    #[must_use]
    pub fn join(&self, a: usize, b: usize) -> Option<usize> {
        let upper: Vec<usize> = (0..self.n)
            .filter(|&c| self.leq(a, c) && self.leq(b, c))
            .collect();
        upper
            .iter()
            .copied()
            .find(|&c| upper.iter().all(|&d| self.leq(c, d)))
    }

    /// A linear extension: a permutation of the elements in which every
    /// element appears after everything strictly below it.
    #[must_use]
    pub fn linear_extension(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n).collect();
        // Counting how many elements lie weakly below each element yields a
        // valid topological key for a finite poset.
        let height: Vec<usize> = (0..self.n)
            .map(|a| (0..self.n).filter(|&b| self.leq(b, a)).count())
            .collect();
        order.sort_by_key(|&a| (height[a], a));
        order
    }

    /// The order-dual poset (all comparabilities reversed).
    #[must_use]
    pub fn dual(&self) -> Poset {
        let n = self.n;
        let mut leq = vec![false; n * n];
        for a in 0..n {
            for b in 0..n {
                leq[a * n + b] = self.leq[b * n + a];
            }
        }
        Poset { n, leq }
    }

    /// All down-sets (order ideals) of the poset, each encoded as a bitmask
    /// over the elements. Only supported for posets of at most 20 elements.
    ///
    /// The down-sets, ordered by inclusion, form a distributive lattice
    /// (Birkhoff's representation theorem); see
    /// [`crate::generators::downset_lattice`].
    ///
    /// # Panics
    ///
    /// Panics if the poset has more than 20 elements (the enumeration is
    /// exponential).
    #[must_use]
    pub fn down_sets(&self) -> Vec<u32> {
        assert!(self.n <= 20, "down-set enumeration limited to 20 elements");
        let n = self.n;
        let mut result = Vec::new();
        'outer: for mask in 0u32..(1u32 << n) {
            for a in 0..n {
                if mask & (1 << a) == 0 {
                    continue;
                }
                for b in 0..n {
                    if self.leq(b, a) && mask & (1 << b) == 0 {
                        continue 'outer;
                    }
                }
            }
            result.push(mask);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Poset {
        Poset::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn chain_orders_linearly() {
        let p = Poset::chain(5).unwrap();
        assert!(p.leq(0, 4));
        assert!(p.leq(2, 2));
        assert!(!p.leq(3, 1));
        assert_eq!(p.bottom(), Some(0));
        assert_eq!(p.top(), Some(4));
        assert_eq!(p.cover_pairs(), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn antichain_has_no_comparabilities() {
        let p = Poset::antichain(3).unwrap();
        assert!(p.incomparable(0, 1));
        assert!(p.incomparable(1, 2));
        assert_eq!(p.bottom(), None);
        assert_eq!(p.top(), None);
        assert_eq!(p.minimal_elements(), vec![0, 1, 2]);
        assert_eq!(p.maximal_elements(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_poset_rejected() {
        assert_eq!(Poset::chain(0).unwrap_err(), LatticeError::Empty);
        assert_eq!(Poset::from_covers(0, &[]).unwrap_err(), LatticeError::Empty);
    }

    #[test]
    fn cyclic_covers_rejected() {
        let err = Poset::from_covers(2, &[(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, LatticeError::NotAntisymmetric(_, _)));
    }

    #[test]
    fn out_of_range_covers_rejected() {
        let err = Poset::from_covers(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, LatticeError::OutOfRange { index: 5, size: 2 });
    }

    #[test]
    fn non_transitive_relation_rejected() {
        let err =
            Poset::from_leq(3, |a, b| a == b || (a, b) == (0, 1) || (a, b) == (1, 2)).unwrap_err();
        assert_eq!(err, LatticeError::NotTransitive(0, 1, 2));
    }

    #[test]
    fn non_reflexive_relation_rejected() {
        let err = Poset::from_leq(2, |a, b| a == 0 && b == 0).unwrap_err();
        assert_eq!(err, LatticeError::NotReflexive(1));
    }

    #[test]
    fn diamond_meets_and_joins() {
        let p = diamond();
        assert_eq!(p.meet(1, 2), Some(0));
        assert_eq!(p.join(1, 2), Some(3));
        assert_eq!(p.meet(1, 3), Some(1));
        assert_eq!(p.join(0, 2), Some(2));
    }

    #[test]
    fn diamond_covers() {
        let p = diamond();
        assert!(p.covers(0, 1));
        assert!(p.covers(2, 3));
        assert!(!p.covers(0, 3));
        assert_eq!(p.cover_pairs().len(), 4);
    }

    #[test]
    fn meet_missing_in_antichain() {
        let p = Poset::antichain(2).unwrap();
        assert_eq!(p.meet(0, 1), None);
        assert_eq!(p.join(0, 1), None);
    }

    #[test]
    fn join_missing_with_two_maximal_upper_bounds() {
        // 0 and 1 below both 2 and 3; 2, 3 incomparable: no least upper bound.
        let p = Poset::from_covers(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        assert_eq!(p.join(0, 1), None);
        assert_eq!(p.meet(2, 3), None);
    }

    #[test]
    fn linear_extension_respects_order() {
        let p = diamond();
        let order = p.linear_extension();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                if p.lt(a, b) {
                    assert!(pos(a) < pos(b), "{a} before {b}");
                }
            }
        }
    }

    #[test]
    fn dual_swaps_extremes() {
        let p = Poset::chain(3).unwrap();
        let d = p.dual();
        assert_eq!(d.bottom(), Some(2));
        assert_eq!(d.top(), Some(0));
        assert!(d.leq(2, 0));
    }

    #[test]
    fn dual_is_involutive() {
        let p = diamond();
        assert_eq!(p.dual().dual(), p);
    }

    #[test]
    fn down_sets_of_chain_are_prefixes() {
        let p = Poset::chain(3).unwrap();
        let ds = p.down_sets();
        assert_eq!(ds, vec![0b000, 0b001, 0b011, 0b111]);
    }

    #[test]
    fn down_sets_of_antichain_are_all_subsets() {
        let p = Poset::antichain(3).unwrap();
        assert_eq!(p.down_sets().len(), 8);
    }

    #[test]
    fn incomparable_is_symmetric_irreflexive() {
        let p = diamond();
        for a in 0..4 {
            assert!(!p.incomparable(a, a));
            for b in 0..4 {
                assert_eq!(p.incomparable(a, b), p.incomparable(b, a));
            }
        }
    }
}
