//! Standard finite lattices and lattice corpora.
//!
//! Everything here is built through the validated [`FiniteLattice`]
//! constructors, so each generator doubles as a test of the construction
//! machinery.

use crate::error::Result;
use crate::lattice::FiniteLattice;
use crate::ops::product;
use crate::poset::Poset;

/// The chain `0 < 1 < ... < n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn chain(n: usize) -> FiniteLattice {
    FiniteLattice::from_poset(Poset::chain(n).expect("n > 0")).expect("chains are lattices")
}

/// The Boolean algebra `P({0..atoms})`, with elements encoded as bitmasks
/// ordered by inclusion. `boolean(n)` has `2^n` elements.
///
/// # Panics
///
/// Panics if `atoms > 16` (the table representation would be huge).
#[must_use]
pub fn boolean(atoms: usize) -> FiniteLattice {
    assert!(atoms <= 16, "boolean lattice limited to 16 atoms");
    let n = 1usize << atoms;
    let p = Poset::from_leq(n, |a, b| a & b == a).expect("inclusion is a partial order");
    FiniteLattice::from_poset(p).expect("powersets are lattices")
}

/// The diamond M3: bottom, three pairwise-incomparable atoms, top. The
/// smallest modular non-distributive lattice.
#[must_use]
pub fn m3() -> FiniteLattice {
    FiniteLattice::from_covers(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)])
        .expect("M3 is a lattice")
}

/// The pentagon N5: `0 < a < b < 1` and `0 < c < 1`. The smallest
/// non-modular lattice.
#[must_use]
pub fn n5() -> FiniteLattice {
    FiniteLattice::from_covers(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)])
        .expect("N5 is a lattice")
}

/// The lattice of down-sets (order ideals) of a poset, ordered by
/// inclusion — Birkhoff's representation of finite distributive lattices.
/// Returns the lattice together with the down-set masks in element order.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for valid posets, but the
/// signature stays honest).
///
/// # Panics
///
/// Panics if the poset has more than 20 elements.
pub fn downset_lattice(poset: &Poset) -> Result<(FiniteLattice, Vec<u32>)> {
    let masks = poset.down_sets();
    let index_of = |m: u32| masks.binary_search(&m).expect("closed under ops");
    let n = masks.len();
    let p = Poset::from_leq(n, |a, b| masks[a] & masks[b] == masks[a])?;
    let lattice = FiniteLattice::from_poset(p)?;
    // Sanity: meets/joins of down-sets are intersection/union.
    debug_assert!({
        (0..n).all(|a| {
            (0..n).all(|b| {
                lattice.meet(a, b) == index_of(masks[a] & masks[b])
                    && lattice.join(a, b) == index_of(masks[a] | masks[b])
            })
        })
    });
    Ok((lattice, masks))
}

/// The divisors of `n` ordered by divisibility; meet is gcd, join is lcm.
/// Distributive; Boolean iff `n` is squarefree. Returns the lattice and
/// the divisor values in element order.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn divisor_lattice(n: u64) -> (FiniteLattice, Vec<u64>) {
    assert!(n > 0, "divisor lattice needs n > 0");
    let divisors: Vec<u64> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    let p = Poset::from_leq(divisors.len(), |a, b| {
        divisors[b].is_multiple_of(divisors[a])
    })
    .expect("divisibility is a partial order");
    let lattice = FiniteLattice::from_poset(p).expect("divisor posets are lattices");
    (lattice, divisors)
}

/// The lattice of set partitions of `{0..n}` ordered by refinement
/// (finer below coarser). Meet is common refinement, join the transitive
/// closure. Geometric, not modular for `n >= 4`. Returns the lattice and
/// the partitions as restricted-growth strings.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 7` (Bell numbers grow fast).
#[must_use]
pub fn partition_lattice(n: usize) -> (FiniteLattice, Vec<Vec<usize>>) {
    assert!(n > 0 && n <= 7, "partition lattice supported for 1..=7");
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    // Enumerate restricted growth strings: rgs[0] = 0 and
    // rgs[i] <= max(rgs[..i]) + 1.
    fn extend(prefix: &mut Vec<usize>, n: usize, out: &mut Vec<Vec<usize>>) {
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        let max = prefix.iter().copied().max().unwrap_or(0);
        for next in 0..=(max + 1) {
            prefix.push(next);
            extend(prefix, n, out);
            prefix.pop();
        }
    }
    extend(&mut vec![0], n, &mut partitions);
    // x refines y (x <= y) iff blocks of x are contained in blocks of y.
    let refines =
        |x: &[usize], y: &[usize]| (0..n).all(|i| (0..n).all(|j| x[i] != x[j] || y[i] == y[j]));
    let p = Poset::from_leq(partitions.len(), |a, b| {
        refines(&partitions[a], &partitions[b])
    })
    .expect("refinement is a partial order");
    let lattice = FiniteLattice::from_poset(p).expect("partition posets are lattices");
    (lattice, partitions)
}

/// A corpus of *modular complemented* lattices — the paper's ambient
/// structures — built from Boolean algebras, M3, and their products
/// (modularity and complementedness are preserved by products).
#[must_use]
pub fn modular_complemented_corpus() -> Vec<(String, FiniteLattice)> {
    let mut corpus: Vec<(String, FiniteLattice)> = vec![
        ("B1 (two-element)".into(), boolean(1)),
        ("B2 (diamond)".into(), boolean(2)),
        ("B3".into(), boolean(3)),
        ("M3".into(), m3()),
    ];
    let m3_x_b1 = product(&m3(), &boolean(1));
    corpus.push(("M3 x B1".into(), m3_x_b1));
    let m3_x_m3 = product(&m3(), &m3());
    corpus.push(("M3 x M3".into(), m3_x_m3));
    corpus
}

/// A corpus of *distributive* lattices for Theorem 7 experiments:
/// Boolean algebras, chains, divisor lattices, and down-set lattices.
#[must_use]
pub fn distributive_corpus() -> Vec<(String, FiniteLattice)> {
    let diamond_poset = Poset::from_covers(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    vec![
        ("chain(5)".into(), chain(5)),
        ("B3".into(), boolean(3)),
        ("divisors(60)".into(), divisor_lattice(60).0),
        (
            "downsets(diamond)".into(),
            downset_lattice(&diamond_poset).unwrap().0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_properties() {
        let l = chain(6);
        assert_eq!(l.len(), 6);
        assert!(l.is_chain());
        assert!(l.is_distributive());
    }

    #[test]
    fn boolean_properties() {
        for atoms in 1..=4 {
            let l = boolean(atoms);
            assert_eq!(l.len(), 1 << atoms);
            assert!(l.is_boolean());
            assert_eq!(l.atoms().len(), atoms);
            // Complements are unique in a Boolean algebra.
            for a in 0..l.len() {
                assert_eq!(l.complements(a).len(), 1);
            }
        }
    }

    #[test]
    fn boolean_meets_are_bitand() {
        let l = boolean(3);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(l.meet(a, b), a & b);
                assert_eq!(l.join(a, b), a | b);
            }
        }
    }

    #[test]
    fn m3_n5_shapes() {
        assert!(m3().is_modular() && !m3().is_distributive());
        assert!(!n5().is_modular());
        assert!(m3().is_complemented());
        assert!(n5().is_complemented()); // N5 happens to be complemented
    }

    #[test]
    fn downset_lattice_is_distributive() {
        // Down-sets of the "V" poset: 0 < 1, 0 < 2.
        let p = Poset::from_covers(3, &[(0, 1), (0, 2)]).unwrap();
        let (l, masks) = downset_lattice(&p).unwrap();
        assert!(l.is_distributive());
        assert_eq!(masks.len(), l.len());
        // Down-sets: {}, {0}, {0,1}, {0,2}, {0,1,2} -> 5 elements.
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn downsets_of_antichain_are_boolean() {
        let p = Poset::antichain(3).unwrap();
        let (l, _) = downset_lattice(&p).unwrap();
        assert!(l.is_boolean());
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn divisor_lattice_gcd_lcm() {
        let (l, divs) = divisor_lattice(12);
        assert_eq!(divs, vec![1, 2, 3, 4, 6, 12]);
        let idx = |v: u64| divs.iter().position(|&d| d == v).unwrap();
        assert_eq!(l.meet(idx(4), idx(6)), idx(2));
        assert_eq!(l.join(idx(4), idx(6)), idx(12));
        assert!(l.is_distributive());
        assert!(!l.is_complemented()); // 12 is not squarefree
    }

    #[test]
    fn squarefree_divisor_lattice_is_boolean() {
        let (l, _) = divisor_lattice(30);
        assert!(l.is_boolean());
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn partition_lattice_shape() {
        let (l, parts) = partition_lattice(3);
        // Bell(3) = 5.
        assert_eq!(l.len(), 5);
        assert_eq!(parts.len(), 5);
        // Bottom: all singletons (0,1,2); top: one block (0,0,0).
        assert_eq!(parts[l.bottom()], vec![0, 1, 2]);
        assert_eq!(parts[l.top()], vec![0, 0, 0]);
        assert!(l.is_modular());
    }

    #[test]
    fn partition_lattice_4_not_modular() {
        let (l, _) = partition_lattice(4);
        assert_eq!(l.len(), 15); // Bell(4)
        assert!(!l.is_modular());
        assert!(l.is_complemented());
    }

    #[test]
    fn corpus_lattices_have_advertised_properties() {
        for (name, l) in modular_complemented_corpus() {
            assert!(l.is_modular(), "{name} should be modular");
            assert!(l.is_complemented(), "{name} should be complemented");
        }
        for (name, l) in distributive_corpus() {
            assert!(l.is_distributive(), "{name} should be distributive");
        }
    }
}
