//! Powerset Boolean algebras over `{0..universe}` backed by packed bit
//! vectors.
//!
//! [`BitsetAlgebra`] is the scalable counterpart of
//! [`crate::generators::boolean`]: the latter materializes the full
//! `2^n x 2^n` operation tables, while this type computes meets
//! (intersection), joins (union), and complements directly on 64-bit
//! blocks, so universes of thousands of points are cheap. It implements
//! the [`Lattice`] traits, so the decomposition machinery of
//! [`crate::decompose()`] applies unchanged.

use crate::traits::{BoundedLattice, ComplementedLattice, Lattice};
use std::fmt;

/// A subset of `{0..universe}`, packed into 64-bit blocks.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    universe: usize,
    blocks: Vec<u64>,
}

impl Bitset {
    fn block_count(universe: usize) -> usize {
        universe.div_ceil(64)
    }

    /// The empty subset of `{0..universe}`.
    #[must_use]
    pub fn empty(universe: usize) -> Self {
        Bitset {
            universe,
            blocks: vec![0; Self::block_count(universe)],
        }
    }

    /// The full subset `{0..universe}`.
    #[must_use]
    pub fn full(universe: usize) -> Self {
        let mut set = Self::empty(universe);
        for i in 0..universe {
            set.insert(i);
        }
        set
    }

    /// A subset from explicit member indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn from_indices(universe: usize, indices: &[usize]) -> Self {
        let mut set = Self::empty(universe);
        for &i in indices {
            set.insert(i);
        }
        set
    }

    /// The size of the ambient universe.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Whether `i` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.universe, "index out of universe");
        self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Adds `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.universe, "index out of universe");
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i` from the set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.universe, "index out of universe");
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Iterates over the member indices in increasing order. Skips empty
    /// 64-bit blocks wholesale and walks set bits with `trailing_zeros`,
    /// so iteration cost is proportional to the population count, not
    /// the universe size.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            std::iter::successors(
                if block == 0 { None } else { Some(block) },
                |&rest| {
                    let next = rest & (rest - 1); // clear lowest set bit
                    if next == 0 {
                        None
                    } else {
                        Some(next)
                    }
                },
            )
            .map(move |rest| bi * 64 + rest.trailing_zeros() as usize)
        })
    }

    /// Whether the two sets share at least one member — a word-parallel
    /// short-circuit that avoids materializing the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersects(&self, other: &Bitset) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Unions `other` into `self` in place, without allocating — the
    /// hot-loop counterpart of [`Bitset::union`].
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_in_place(&mut self, other: &Bitset) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersection(&self, other: &Bitset) -> Bitset {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        Bitset {
            universe: self.universe,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn union(&self, other: &Bitset) -> Bitset {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        Bitset {
            universe: self.universe,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Complement within the universe.
    #[must_use]
    pub fn complement(&self) -> Bitset {
        let mut out = Bitset {
            universe: self.universe,
            blocks: self.blocks.iter().map(|b| !b).collect(),
        };
        // Mask off bits beyond the universe in the last block.
        let extra = out.blocks.len() * 64 - self.universe;
        if extra > 0 {
            if let Some(last) = out.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
        out
    }

    /// Whether `self` is a subset of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn is_subset(&self, other: &Bitset) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }
}

impl fmt::Debug for Bitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The Boolean algebra `P({0..universe})` with [`Bitset`] elements.
///
/// # Examples
///
/// ```
/// use sl_lattice::{Bitset, BitsetAlgebra};
/// use sl_lattice::traits::{BoundedLattice, ComplementedLattice, Lattice};
///
/// let alg = BitsetAlgebra::new(100);
/// let a = Bitset::from_indices(100, &[1, 2, 3]);
/// let b = Bitset::from_indices(100, &[3, 4]);
/// assert_eq!(alg.meet(&a, &b), Bitset::from_indices(100, &[3]));
/// assert!(alg.leq(&alg.meet(&a, &b), &a));
/// assert_eq!(alg.meet(&a, &alg.complement(&a)), alg.bottom());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsetAlgebra {
    universe: usize,
}

impl BitsetAlgebra {
    /// The powerset algebra over `{0..universe}`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        BitsetAlgebra { universe }
    }

    /// The size of the universe.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }
}

impl Lattice for BitsetAlgebra {
    type Elem = Bitset;

    fn meet(&self, a: &Bitset, b: &Bitset) -> Bitset {
        a.intersection(b)
    }

    fn join(&self, a: &Bitset, b: &Bitset) -> Bitset {
        a.union(b)
    }

    fn leq(&self, a: &Bitset, b: &Bitset) -> bool {
        a.is_subset(b)
    }
}

impl BoundedLattice for BitsetAlgebra {
    fn bottom(&self) -> Bitset {
        Bitset::empty(self.universe)
    }

    fn top(&self) -> Bitset {
        Bitset::full(self.universe)
    }
}

impl ComplementedLattice for BitsetAlgebra {
    fn complement(&self, a: &Bitset) -> Bitset {
        a.complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose_generic, verify_decomposition};
    use crate::traits::check;

    #[test]
    fn construction_and_membership() {
        let s = Bitset::from_indices(130, &[0, 64, 129]);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = Bitset::empty(70);
        s.insert(69);
        assert!(s.contains(69));
        s.remove(69);
        assert!(s.is_empty());
    }

    #[test]
    fn complement_masks_out_of_universe_bits() {
        let s = Bitset::empty(70);
        let c = s.complement();
        assert_eq!(c.len(), 70);
        assert_eq!(c, Bitset::full(70));
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn subset_and_order_agree() {
        let alg = BitsetAlgebra::new(10);
        let a = Bitset::from_indices(10, &[1, 2]);
        let b = Bitset::from_indices(10, &[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(alg.leq(&a, &b));
        assert!(!alg.leq(&b, &a));
    }

    #[test]
    fn algebra_satisfies_lattice_laws() {
        let alg = BitsetAlgebra::new(65);
        let sample = vec![
            Bitset::empty(65),
            Bitset::full(65),
            Bitset::from_indices(65, &[0, 10, 64]),
            Bitset::from_indices(65, &[10, 20]),
            Bitset::from_indices(65, &[64]),
        ];
        check::lattice_laws(&alg, &sample).unwrap();
        check::bound_laws(&alg, &sample).unwrap();
        check::distributive_law(&alg, &sample).unwrap();
        check::modular_law(&alg, &sample).unwrap();
    }

    #[test]
    fn complement_laws() {
        let alg = BitsetAlgebra::new(100);
        let a = Bitset::from_indices(100, &[5, 50, 99]);
        let c = ComplementedLattice::complement(&alg, &a);
        assert_eq!(alg.meet(&a, &c), alg.bottom());
        assert_eq!(alg.join(&a, &c), alg.top());
    }

    #[test]
    fn decomposition_on_bitsets() {
        // Closure: upward closure to a fixed superset family — here,
        // cl(X) = X union {0} if X nonempty, else X. Extensive, idempotent,
        // monotone? X ⊆ Y nonempty: cl X = X+{0} ⊆ Y+{0} = cl Y; if X
        // empty cl X = {} ⊆ cl Y. Valid lattice closure.
        let alg = BitsetAlgebra::new(8);
        let cl = |_: &BitsetAlgebra, x: &Bitset| {
            if x.is_empty() {
                x.clone()
            } else {
                let mut y = x.clone();
                y.insert(0);
                y
            }
        };
        check::closure_laws(
            &alg,
            &cl,
            &[
                Bitset::empty(8),
                Bitset::from_indices(8, &[1]),
                Bitset::from_indices(8, &[0, 1]),
                Bitset::full(8),
            ],
        )
        .unwrap();
        // Safety elements: sets containing 0 (or empty). A liveness
        // element must close to the full set, so cl.X = full means
        // X ⊇ {1..7}. Decompose X = {1, 2}:
        let x = Bitset::from_indices(8, &[1, 2]);
        let cmp = |a: &BitsetAlgebra, s: &Bitset| Some(ComplementedLattice::complement(a, s));
        let d = decompose_generic(&alg, &cl, cmp, &x).unwrap();
        assert!(verify_decomposition(&alg, &cl, &cl, &x, &d));
        assert_eq!(d.safety, Bitset::from_indices(8, &[0, 1, 2]));
    }

    #[test]
    fn intersects_agrees_with_intersection() {
        let a = Bitset::from_indices(130, &[0, 64, 129]);
        let b = Bitset::from_indices(130, &[64]);
        let c = Bitset::from_indices(130, &[1, 65]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersects(&c), !a.intersection(&c).is_empty());
        assert!(!Bitset::empty(130).intersects(&Bitset::full(130)));
    }

    #[test]
    fn union_in_place_matches_union() {
        let a = Bitset::from_indices(130, &[0, 64, 129]);
        let b = Bitset::from_indices(130, &[1, 64, 70]);
        let mut c = a.clone();
        c.union_in_place(&b);
        assert_eq!(c, a.union(&b));
        // Idempotent on self.
        let before = c.clone();
        let snapshot = c.clone();
        c.union_in_place(&snapshot);
        assert_eq!(c, before);
    }

    #[test]
    fn iter_skips_empty_blocks() {
        // A sparse set over a big universe: iteration must still list
        // exactly the members, in order.
        let members = [3usize, 64, 127, 128, 1000, 4095];
        let s = Bitset::from_indices(4096, &members);
        assert_eq!(s.iter().collect::<Vec<_>>(), members.to_vec());
        assert_eq!(Bitset::empty(4096).iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_panic() {
        let a = Bitset::empty(8);
        let b = Bitset::empty(9);
        let _ = a.union(&b);
    }

    #[test]
    fn debug_output_lists_members() {
        let s = Bitset::from_indices(8, &[1, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
