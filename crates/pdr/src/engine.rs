//! The lattice-generic LT-PDR engine.
//!
//! Following Kori et al. ("The Lattice-Theoretic Essence of Property
//! Directed Reachability Analysis"), IC3/PDR is a search for either a
//! witness to `lfp (init \/ post) <= safe` (an inductive invariant
//! between the reachable element and `safe`) or a refutation (a chain
//! of atoms from `init` into `!safe` connected by the one-step image).
//! The engine below is written purely against the workspace lattice
//! traits: frames are lattice elements, relative induction is a
//! `meet`/`leq` question, and the transition structure enters only
//! through two monotone maps passed via the [`LatticeClosure`]
//! interface (the blanket impl lets plain `Fn(&L, &L::Elem) -> L::Elem`
//! closures serve; extensivity/idempotency are not required of them).
//!
//! Frame invariants maintained throughout (`F[0] = init`, `k` = frontier):
//!
//! * `F[i] <= F[i+1]` for all `i < k` (monotone chain);
//! * `post(F[i]) <= F[i+1]` for all `i < k` (one-step soundness);
//! * `init <= F[i]` for all `i`;
//! * `F[i] <= safe` for all `i < k` (the frontier is being cleared).
//!
//! Safe verdicts are found when `F[i] = F[i+1]` after propagation; the
//! element is then an inductive invariant and is re-validated before it
//! is returned. Unsafe verdicts carry the obligation parent chain — a
//! sequence of atoms replayable through `post` — and are likewise
//! validated before return. Termination is guaranteed on lattices of
//! finite height (every blocking strictly shrinks a frame); on other
//! instantiations the step budget is the backstop.

use sl_lattice::traits::{ComplementedLattice, LatticeClosure};
use sl_support::{Budget, SlError};

/// Test-only engine sabotage, used by the conformance fuzzer to prove
/// the pdr oracle catches a real engine bug. Never enabled outside
/// dedicated drill tests.
#[doc(hidden)]
pub mod sabotage {
    use std::sync::atomic::{AtomicBool, Ordering};

    static BREAK_RELATIVE_INDUCTION: AtomicBool = AtomicBool::new(false);

    /// When enabled, the engine's shared image-containment primitive
    /// (`post(x) <= y`, used by the relative-induction check, cube
    /// propagation, and the internal certificate validator) reports
    /// success without testing anything — so PDR blocks unblockable
    /// cubes and returns Safe for reachable bad states. The BMC
    /// reference is untouched, which is exactly the disagreement
    /// `slfuzz --sabotage pdr-relative-induction` must detect and
    /// shrink.
    pub fn set_break_relative_induction(on: bool) {
        BREAK_RELATIVE_INDUCTION.store(on, Ordering::Relaxed);
    }

    /// Whether the drill flag is currently set.
    #[must_use]
    pub fn relative_induction_broken() -> bool {
        BREAK_RELATIVE_INDUCTION.load(Ordering::Relaxed)
    }
}

/// The image-containment question `post(x) <= y` — the primitive that
/// relative induction, propagation, and invariant validation all share
/// (and the one the sabotage drill breaks).
fn post_below<L, Post>(lattice: &L, post: &Post, x: &L::Elem, y: &L::Elem) -> bool
where
    L: ComplementedLattice + ?Sized,
    Post: LatticeClosure<L>,
{
    if sabotage::relative_induction_broken() {
        return true;
    }
    lattice.leq(&post.close(lattice, x), y)
}

/// Counters reported by one engine run (and summed per-verb by `sld`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PdrStats {
    /// Frames opened, counting the initial frontier.
    pub frames: u64,
    /// Obligations discharged by blocking a cube.
    pub obligations: u64,
    /// Blocked cubes strictly enlarged past the originating atom.
    pub generalizations: u64,
}

impl PdrStats {
    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: PdrStats) -> PdrStats {
        PdrStats {
            frames: self.frames + other.frames,
            obligations: self.obligations + other.obligations,
            generalizations: self.generalizations + other.generalizations,
        }
    }
}

/// The verdict of one LT-PDR run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdrOutcome<E> {
    /// `lfp (init \/ post) <= safe`, witnessed by an inductive
    /// invariant: `init <= inv`, `post(inv) <= inv`, `inv <= safe`.
    Safe {
        /// The invariant element.
        invariant: E,
    },
    /// Refuted by a chain of atoms `c0, .., cn` with
    /// `c0 /\ init != 0`, `c(j+1) /\ post(cj) != 0`, and
    /// `cn /\ !safe != 0`.
    Unsafe {
        /// The refutation chain, initial end first.
        chain: Vec<E>,
    },
}

/// A verdict plus the counters that produced it.
#[derive(Debug, Clone)]
pub struct PdrRun<E> {
    /// The (validated) verdict.
    pub outcome: PdrOutcome<E>,
    /// Engine counters.
    pub stats: PdrStats,
}

/// Extraction of atoms — minimal nonbottom elements — used to turn
/// frontier intersections and predecessor elements into obligations.
pub trait Atoms<L: ComplementedLattice + ?Sized> {
    /// Some atom below `x`, or `None` when `x` is bottom. Must be
    /// deterministic for reproducible transcripts.
    fn atom_below(&self, lattice: &L, x: &L::Elem) -> Option<L::Elem>;
}

/// Blanket impl so plain functions can serve as atom sources.
impl<L, F> Atoms<L> for F
where
    L: ComplementedLattice + ?Sized,
    F: Fn(&L, &L::Elem) -> Option<L::Elem>,
{
    fn atom_below(&self, lattice: &L, x: &L::Elem) -> Option<L::Elem> {
        self(lattice, x)
    }
}

/// One LT-PDR problem instance: decide `lfp (init \/ post) <= safe`.
pub struct PdrProblem<'a, L: ComplementedLattice + ?Sized, Post, Pre, A> {
    /// The ambient lattice.
    pub lattice: &'a L,
    /// The element of initial configurations.
    pub init: L::Elem,
    /// The safe region; the query is whether every reachable element
    /// stays below it.
    pub safe: L::Elem,
    /// One-step forward image (join-preserving in the intended models).
    pub post: Post,
    /// One-step backward image: `pre(x)` covers every atom with an
    /// image atom inside `x`.
    pub pre: Pre,
    /// Atom extraction.
    pub atoms: A,
}

/// Iteration cap for the forward generalization loop — each round costs
/// one image, and in practice the gain saturates after a few rounds.
const FORWARD_GENERALIZE_ROUNDS: usize = 4;

struct Obligation<E> {
    cube: E,
    level: usize,
    parent: Option<usize>,
}

struct Engine<'a, L: ComplementedLattice + ?Sized, Post, Pre, A> {
    problem: &'a PdrProblem<'a, L, Post, Pre, A>,
    /// `frames[0] = init`; `frames[i]` for `i >= 1` is the meet of the
    /// complements of every cube blocked at a level `>= i`.
    frames: Vec<L::Elem>,
    /// Cubes whose exact blocking level is `i` (for propagation).
    cubes: Vec<Vec<L::Elem>>,
    stats: PdrStats,
}

/// Runs LT-PDR on a problem instance under a budget.
///
/// The returned verdict is machine-checked before it is returned:
/// a Safe invariant is re-verified inductive and a refutation chain is
/// replayed through `post` (see [`validate_invariant`] /
/// [`validate_chain`]).
///
/// # Errors
///
/// [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] when the budget
/// runs out mid-search.
///
/// # Panics
///
/// Panics if the hooks are inconsistent (e.g. `pre` fails to cover a
/// predecessor that `post` implies) and the engine derives a verdict
/// whose certificate does not validate.
pub fn lt_pdr<L, Post, Pre, A>(
    problem: &PdrProblem<'_, L, Post, Pre, A>,
    budget: &Budget,
) -> Result<PdrRun<L::Elem>, SlError>
where
    L: ComplementedLattice + ?Sized,
    Post: LatticeClosure<L>,
    Pre: LatticeClosure<L>,
    A: Atoms<L>,
{
    let mut meter = budget.meter("pdr.engine");
    let lattice = problem.lattice;
    let mut engine = Engine {
        problem,
        frames: vec![problem.init.clone()],
        cubes: vec![Vec::new()],
        stats: PdrStats::default(),
    };

    // An unsafe initial element refutes without any search.
    let bad0 = lattice.meet(&problem.init, &lattice.complement(&problem.safe));
    if let Some(atom) = problem.atoms.atom_below(lattice, &bad0) {
        let run = PdrRun {
            outcome: PdrOutcome::Unsafe { chain: vec![atom] },
            stats: engine.stats,
        };
        engine.validate_run(&run);
        return Ok(run);
    }

    engine.open_frame();
    loop {
        // Clear the frontier of !safe atoms.
        loop {
            let k = engine.frames.len() - 1;
            let frontier_bad = lattice.meet(
                &engine.frames[k],
                &lattice.complement(&problem.safe),
            );
            let Some(atom) = problem.atoms.atom_below(lattice, &frontier_bad) else {
                break;
            };
            if let Some(chain) = engine.block(atom, k, &mut meter)? {
                let run = PdrRun {
                    outcome: PdrOutcome::Unsafe { chain },
                    stats: engine.stats,
                };
                engine.validate_run(&run);
                return Ok(run);
            }
        }
        // Propagate still-inductive cubes forward, then test adjacent
        // frames for convergence.
        engine.propagate(&mut meter)?;
        if let Some(invariant) = engine.converged() {
            let run = PdrRun {
                outcome: PdrOutcome::Safe { invariant },
                stats: engine.stats,
            };
            engine.validate_run(&run);
            return Ok(run);
        }
        engine.open_frame();
    }
}

impl<L, Post, Pre, A> Engine<'_, L, Post, Pre, A>
where
    L: ComplementedLattice + ?Sized,
    Post: LatticeClosure<L>,
    Pre: LatticeClosure<L>,
    A: Atoms<L>,
{
    fn lattice(&self) -> &L {
        self.problem.lattice
    }

    fn open_frame(&mut self) {
        self.frames.push(self.lattice().top());
        self.cubes.push(Vec::new());
        self.stats.frames += 1;
    }

    /// Meets `!cube` into frames `1..=level` and records the cube's
    /// exact level.
    fn install(&mut self, cube: L::Elem, level: usize) {
        let not_cube = self.lattice().complement(&cube);
        for i in 1..=level {
            self.frames[i] = self.lattice().meet(&self.frames[i], &not_cube);
        }
        self.cubes[level].push(cube);
    }

    /// `post(F[level] /\ !cube) <= !cube` — the relative induction
    /// question at the heart of PDR, phrased with one meet, one image,
    /// and one order test.
    fn relatively_inductive(&self, cube: &L::Elem, level: usize) -> bool {
        let lattice = self.lattice();
        let not_cube = lattice.complement(cube);
        let constrained = lattice.meet(&self.frames[level], &not_cube);
        post_below(lattice, &self.problem.post, &constrained, &not_cube)
    }

    /// Discharges the obligation `(atom, level)` and everything it
    /// spawns. Returns a refutation chain when an obligation reaches an
    /// initial atom, `None` when the frontier atom ends up blocked.
    fn block(
        &mut self,
        atom: L::Elem,
        level: usize,
        meter: &mut sl_support::BudgetMeter,
    ) -> Result<Option<Vec<L::Elem>>, SlError> {
        let mut arena: Vec<Obligation<L::Elem>> = vec![Obligation {
            cube: atom,
            level,
            parent: None,
        }];
        // Depth-first: the newest (deepest) obligation is processed
        // first, so predecessor chains extend before siblings run.
        let mut stack = vec![0usize];
        while let Some(idx) = stack.last().copied() {
            meter.charge(1)?;
            let lattice = self.lattice();
            let cube = arena[idx].cube.clone();
            let lvl = arena[idx].level;
            // An obligation touching init is a completed refutation:
            // the parent chain is a path from init into !safe.
            let at_init = !lattice
                .leq(&lattice.meet(&cube, &self.problem.init), &lattice.bottom());
            if lvl == 0 || at_init {
                let mut chain = Vec::new();
                let mut cursor = Some(idx);
                while let Some(i) = cursor {
                    chain.push(arena[i].cube.clone());
                    cursor = arena[i].parent;
                }
                return Ok(Some(chain));
            }
            // Already blocked since it was enqueued?
            if lattice.leq(&lattice.meet(&cube, &self.frames[lvl]), &lattice.bottom()) {
                stack.pop();
                continue;
            }
            meter.charge(1)?;
            if self.relatively_inductive(&cube, lvl - 1) {
                let (cube, grew) = self.generalize(cube, lvl, meter)?;
                let install_level = if grew.1 { self.frames.len() - 1 } else { lvl };
                self.install(cube, install_level);
                self.stats.obligations += 1;
                if grew.0 {
                    self.stats.generalizations += 1;
                }
                stack.pop();
            } else {
                // Extract a predecessor inside F[lvl-1] that steps into
                // the cube, and make proving it unreachable a new,
                // deeper obligation.
                meter.charge(1)?;
                let lattice = self.lattice();
                let pred_region = lattice.meet(
                    &self.frames[lvl - 1],
                    &self.problem.pre.close(lattice, &cube),
                );
                let pred = self
                    .problem
                    .atoms
                    .atom_below(lattice, &pred_region)
                    .expect("relative induction failed but no predecessor atom exists");
                arena.push(Obligation {
                    cube: pred,
                    level: lvl - 1,
                    parent: Some(idx),
                });
                stack.push(arena.len() - 1);
            }
        }
        Ok(None)
    }

    /// Enlarges a relatively-inductive cube. Two lattice-theoretic
    /// strategies, strongest first:
    ///
    /// 1. *Backward closure*: `B = lfp (cube \/ pre)`. `!B` is closed
    ///    under `post`, so if `B /\ init = 0` the whole backward cone
    ///    is blocked — absolutely inductively, so at the frontier.
    /// 2. *Forward tightening*: `cube' = !(init \/ post(F[l-1] /\
    ///    !cube))`. Since relative induction held, `!cube' <= !cube`,
    ///    and `post(F[l-1] /\ !cube') <= post(F[l-1] /\ !cube) <=
    ///    !cube'`, so the enlarged cube stays relatively inductive.
    ///    Iterated a few rounds.
    ///
    /// Returns the cube plus `(strictly_grew, absolute)`.
    fn generalize(
        &mut self,
        cube: L::Elem,
        level: usize,
        meter: &mut sl_support::BudgetMeter,
    ) -> Result<(L::Elem, (bool, bool)), SlError> {
        let lattice = self.lattice();
        // Strategy 1: the full backward cone, by frontier iteration —
        // each round applies `pre` only to the part added last round,
        // so the whole closure costs one pass over the cone's edges
        // instead of diameter-many passes over the accumulated cone.
        // For an additive `pre` (every image function is) this reaches
        // the same `lfp (cube \/ pre)`; a non-additive hook can only
        // under-close, which the explicit post-closure re-check below
        // rejects before the cone is ever used.
        let mut cone = cube.clone();
        let mut frontier = cube.clone();
        loop {
            meter.charge(1)?;
            let step = self.problem.pre.close(lattice, &frontier);
            let expanded = lattice.join(&cone, &step);
            if expanded == cone {
                break;
            }
            frontier = lattice.meet(&step, &lattice.complement(&cone));
            cone = expanded;
        }
        let init_hit = !lattice
            .leq(&lattice.meet(&cone, &self.problem.init), &lattice.bottom());
        if !init_hit {
            // `!cone` must be post-closed for consistent pre/post; the
            // cheap re-check guards against inconsistent hooks.
            let not_cone = lattice.complement(&cone);
            meter.charge(1)?;
            if post_below(lattice, &self.problem.post, &not_cone, &not_cone) {
                let grew = cone != cube;
                return Ok((cone, (grew, true)));
            }
        }
        // Strategy 2: forward tightening.
        let mut current = cube.clone();
        for _ in 0..FORWARD_GENERALIZE_ROUNDS {
            meter.charge(1)?;
            let not_current = lattice.complement(&current);
            let reach = self
                .problem
                .post
                .close(lattice, &lattice.meet(&self.frames[level - 1], &not_current));
            // Joining the original cube back in is a no-op when the
            // relative-induction premise holds (the tightened cube
            // always contains it) but keeps the frontier shrinking
            // under the sabotage drill, where the premise is a lie.
            let next = lattice.join(
                &lattice.complement(&lattice.join(&self.problem.init, &reach)),
                &cube,
            );
            if next == current {
                break;
            }
            current = next;
        }
        let grew = current != cube;
        Ok((current, (grew, false)))
    }

    /// Re-tests every cube one level below the frontier and promotes
    /// the still-inductive ones.
    fn propagate(&mut self, meter: &mut sl_support::BudgetMeter) -> Result<(), SlError> {
        let k = self.frames.len() - 1;
        for level in 1..k {
            let pending = std::mem::take(&mut self.cubes[level]);
            for cube in pending {
                meter.charge(1)?;
                if self.relatively_inductive(&cube, level) {
                    let not_cube = self.lattice().complement(&cube);
                    self.frames[level + 1] =
                        self.lattice().meet(&self.frames[level + 1], &not_cube);
                    self.cubes[level + 1].push(cube);
                } else {
                    self.cubes[level].push(cube);
                }
            }
        }
        Ok(())
    }

    /// `F[i] = F[i+1]` for some interior `i` means `F[i]` is closed
    /// under `post` and is the Safe witness.
    fn converged(&self) -> Option<L::Elem> {
        let k = self.frames.len() - 1;
        (1..k).find(|&i| self.frames[i] == self.frames[i + 1])
            .map(|i| self.frames[i].clone())
    }

    /// Machine-checks the verdict's certificate; inconsistent hooks
    /// surface here instead of as silently wrong answers.
    fn validate_run(&self, run: &PdrRun<L::Elem>) {
        let problem = self.problem;
        let result = match &run.outcome {
            PdrOutcome::Safe { invariant } => validate_invariant(
                self.lattice(),
                &problem.post,
                &problem.init,
                &problem.safe,
                invariant,
            ),
            PdrOutcome::Unsafe { chain } => validate_chain(
                self.lattice(),
                &problem.post,
                &problem.init,
                &problem.safe,
                chain,
            ),
        };
        assert!(
            result.is_ok(),
            "LT-PDR certificate failed validation (inconsistent post/pre/atom hooks): {}",
            result.unwrap_err()
        );
    }
}

/// Checks that `invariant` witnesses Safe: `init <= inv`,
/// `post(inv) <= inv`, `inv <= safe`.
///
/// # Errors
///
/// Names the first violated inclusion.
pub fn validate_invariant<L, Post>(
    lattice: &L,
    post: &Post,
    init: &L::Elem,
    safe: &L::Elem,
    invariant: &L::Elem,
) -> Result<(), String>
where
    L: ComplementedLattice + ?Sized,
    Post: LatticeClosure<L>,
{
    if !lattice.leq(init, invariant) {
        return Err("invariant does not contain init".into());
    }
    if !post_below(lattice, post, invariant, invariant) {
        return Err("invariant is not inductive under post".into());
    }
    if !lattice.leq(invariant, safe) {
        return Err("invariant is not contained in safe".into());
    }
    Ok(())
}

/// Checks that `chain` refutes Safe: a nonempty sequence whose head
/// meets `init`, whose consecutive elements are connected by `post`,
/// and whose last element meets `!safe`.
///
/// # Errors
///
/// Names the first broken link.
pub fn validate_chain<L, Post>(
    lattice: &L,
    post: &Post,
    init: &L::Elem,
    safe: &L::Elem,
    chain: &[L::Elem],
) -> Result<(), String>
where
    L: ComplementedLattice + ?Sized,
    Post: LatticeClosure<L>,
{
    let bottom = lattice.bottom();
    let Some(first) = chain.first() else {
        return Err("empty refutation chain".into());
    };
    if lattice.leq(&lattice.meet(first, init), &bottom) {
        return Err("chain head misses init".into());
    }
    for (i, window) in chain.windows(2).enumerate() {
        let image = post.close(lattice, &window[0]);
        if lattice.leq(&lattice.meet(&window[1], &image), &bottom) {
            return Err(format!("chain link {i} -> {} is not a post step", i + 1));
        }
    }
    let last = chain.last().expect("nonempty");
    let unsafe_region = lattice.complement(safe);
    if lattice.leq(&lattice.meet(last, &unsafe_region), &bottom) {
        return Err("chain tail misses !safe".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_lattice::{Bitset, BitsetAlgebra};

    /// A 4-state line 0 -> 1 -> 2 -> 3 (3 loops) as explicit images.
    fn line_post(universe: usize) -> impl Fn(&BitsetAlgebra, &Bitset) -> Bitset {
        move |_l: &BitsetAlgebra, x: &Bitset| {
            let mut out = Bitset::empty(universe);
            for s in x.iter() {
                let t = (s + 1).min(universe - 1);
                out.insert(t);
            }
            out
        }
    }

    fn line_pre(universe: usize) -> impl Fn(&BitsetAlgebra, &Bitset) -> Bitset {
        move |_l: &BitsetAlgebra, x: &Bitset| {
            let mut out = Bitset::empty(universe);
            for s in 0..universe {
                let t = (s + 1).min(universe - 1);
                if x.contains(t) {
                    out.insert(s);
                }
            }
            out
        }
    }

    fn first_atom(_l: &BitsetAlgebra, x: &Bitset) -> Option<Bitset> {
        x.iter()
            .next()
            .map(|i| Bitset::from_indices(x.universe(), &[i]))
    }

    #[test]
    fn reachable_bad_is_unsafe_with_replayable_chain() {
        let n = 4;
        let algebra = BitsetAlgebra::new(n);
        let problem = PdrProblem {
            lattice: &algebra,
            init: Bitset::from_indices(n, &[0]),
            safe: Bitset::from_indices(n, &[0, 1, 2]),
            post: line_post(n),
            pre: line_pre(n),
            atoms: first_atom,
        };
        let run = lt_pdr(&problem, &Budget::unlimited()).unwrap();
        match run.outcome {
            PdrOutcome::Unsafe { chain } => {
                let states: Vec<usize> =
                    chain.iter().map(|c| c.iter().next().unwrap()).collect();
                assert_eq!(states, vec![0, 1, 2, 3]);
            }
            PdrOutcome::Safe { .. } => panic!("line reaches state 3"),
        }
    }

    #[test]
    fn unreachable_bad_is_safe_with_inductive_invariant() {
        // 0 -> 1 -> 1; states 2,3 unreachable, 3 is bad.
        let n = 4;
        let algebra = BitsetAlgebra::new(n);
        let post = |_l: &BitsetAlgebra, x: &Bitset| {
            let mut out = Bitset::empty(n);
            for s in x.iter() {
                out.insert(match s {
                    0 => 1,
                    1 => 1,
                    2 => 3,
                    _ => 3,
                });
            }
            out
        };
        let pre = |_l: &BitsetAlgebra, x: &Bitset| {
            let mut out = Bitset::empty(n);
            for (s, t) in [(0, 1), (1, 1), (2, 3), (3, 3)] {
                if x.contains(t) {
                    out.insert(s);
                }
            }
            out
        };
        let problem = PdrProblem {
            lattice: &algebra,
            init: Bitset::from_indices(n, &[0]),
            safe: Bitset::from_indices(n, &[0, 1, 2]),
            post,
            pre,
            atoms: first_atom,
        };
        let run = lt_pdr(&problem, &Budget::unlimited()).unwrap();
        match run.outcome {
            PdrOutcome::Safe { invariant } => {
                validate_invariant(
                    &algebra,
                    &post,
                    &problem.init,
                    &problem.safe,
                    &invariant,
                )
                .unwrap();
            }
            PdrOutcome::Unsafe { .. } => panic!("state 3 is unreachable"),
        }
        assert!(run.stats.frames >= 1);
    }

    #[test]
    fn bad_initial_state_refutes_immediately() {
        let n = 2;
        let algebra = BitsetAlgebra::new(n);
        let problem = PdrProblem {
            lattice: &algebra,
            init: Bitset::from_indices(n, &[1]),
            safe: Bitset::from_indices(n, &[0]),
            post: line_post(n),
            pre: line_pre(n),
            atoms: first_atom,
        };
        let run = lt_pdr(&problem, &Budget::unlimited()).unwrap();
        match run.outcome {
            PdrOutcome::Unsafe { chain } => assert_eq!(chain.len(), 1),
            PdrOutcome::Safe { .. } => panic!("initial state is bad"),
        }
    }

    #[test]
    fn tiny_budget_is_a_typed_rejection() {
        let n = 64;
        let algebra = BitsetAlgebra::new(n);
        let problem = PdrProblem {
            lattice: &algebra,
            init: Bitset::from_indices(n, &[0]),
            safe: {
                let mut s = Bitset::full(n);
                s.remove(n - 1);
                s
            },
            post: line_post(n),
            pre: line_pre(n),
            atoms: first_atom,
        };
        let err = lt_pdr(&problem, &Budget::unlimited().with_steps(3)).unwrap_err();
        assert!(err.is_budget_exceeded(), "{err}");
    }
}
