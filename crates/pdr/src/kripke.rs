//! The powerset instantiation: LT-PDR over Bitset lattices of
//! Kripke-structure states.
//!
//! `AG !bad` on a finite [`Kripke`] structure is exactly the engine's
//! `lfp (init \/ post) <= safe` question on the Boolean algebra
//! `2^{states}`: `init` is the singleton initial state, `post`/`pre`
//! are the edge images, atoms are singletons (lowest index first, for
//! deterministic transcripts), and `safe` is the complement of the bad
//! set. Verdict certificates are translated to concrete form — a state
//! invariant or a state trace — and replayed against the structure by
//! the validators below, which deliberately use plain successor-list
//! iteration rather than the engine's lattice ops.

use crate::engine::{lt_pdr, PdrOutcome, PdrProblem, PdrStats};
use sl_lattice::{Bitset, BitsetAlgebra};
use sl_support::{Budget, SlError};
use sl_trees::Kripke;

/// The verdict of a safety (`AG !bad`) check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyVerdict {
    /// No bad state is reachable; the invariant contains the initial
    /// state, is closed under successors, and avoids every bad state.
    Safe {
        /// The inductive invariant, as a set of states.
        invariant: Bitset,
    },
    /// A bad state is reachable along this concrete trace (initial
    /// state first, bad state last, consecutive states are edges).
    Unsafe {
        /// The witness trace.
        trace: Vec<usize>,
    },
}

/// A safety verdict plus the engine counters that produced it.
#[derive(Debug, Clone)]
pub struct SafetyRun {
    /// The validated verdict.
    pub verdict: SafetyVerdict,
    /// Engine counters.
    pub stats: PdrStats,
}

/// Predecessor lists of a structure (reverse adjacency).
#[must_use]
pub fn predecessors(kripke: &Kripke) -> Vec<Vec<usize>> {
    let mut pred = vec![Vec::new(); kripke.len()];
    for s in 0..kripke.len() {
        for &t in kripke.successors(s) {
            pred[t].push(s);
        }
    }
    pred
}

/// Decides `AG !bad` by LT-PDR on the powerset lattice of states.
///
/// The returned certificate is machine-checked twice: once inside the
/// engine (lattice-level) and once here by explicit replay
/// ([`validate_safety_invariant`] / [`validate_trace`]).
///
/// # Errors
///
/// Budget exhaustion and cancellation propagate as typed [`SlError`]s.
///
/// # Panics
///
/// Panics if a bad index is out of range (callers validate input), or
/// if replay validation fails (an engine bug).
pub fn check_safety(
    kripke: &Kripke,
    bad: &[usize],
    budget: &Budget,
) -> Result<SafetyRun, SlError> {
    let n = kripke.len();
    for &b in bad {
        assert!(b < n, "bad state out of range");
    }
    let algebra = BitsetAlgebra::new(n);
    let init = Bitset::from_indices(n, &[kripke.initial()]);
    let safe = Bitset::from_indices(n, bad).complement();
    let pred = predecessors(kripke);
    let post = |_l: &BitsetAlgebra, x: &Bitset| {
        let mut out = Bitset::empty(n);
        for s in x.iter() {
            for &t in kripke.successors(s) {
                out.insert(t);
            }
        }
        out
    };
    let pre = |_l: &BitsetAlgebra, x: &Bitset| {
        let mut out = Bitset::empty(n);
        for s in x.iter() {
            for &t in &pred[s] {
                out.insert(t);
            }
        }
        out
    };
    let atoms = |_l: &BitsetAlgebra, x: &Bitset| {
        x.iter().next().map(|i| Bitset::from_indices(n, &[i]))
    };
    let problem = PdrProblem {
        lattice: &algebra,
        init,
        safe,
        post,
        pre,
        atoms,
    };
    let run = lt_pdr(&problem, budget)?;
    let verdict = match run.outcome {
        PdrOutcome::Safe { invariant } => SafetyVerdict::Safe { invariant },
        PdrOutcome::Unsafe { chain } => SafetyVerdict::Unsafe {
            trace: chain
                .iter()
                .map(|c| c.iter().next().expect("chain atoms are nonempty"))
                .collect(),
        },
    };
    let replay = match &verdict {
        SafetyVerdict::Safe { invariant } => {
            validate_safety_invariant(kripke, bad, invariant)
        }
        SafetyVerdict::Unsafe { trace } => validate_trace(kripke, bad, trace),
    };
    if !crate::engine::sabotage::relative_induction_broken() {
        assert!(
            replay.is_ok(),
            "PDR certificate failed concrete replay: {}",
            replay.unwrap_err()
        );
    }
    Ok(SafetyRun {
        verdict,
        stats: run.stats,
    })
}

/// Replays a Safe certificate: the invariant must contain the initial
/// state, be closed under every edge, and avoid every bad state.
///
/// # Errors
///
/// Names the first violation.
pub fn validate_safety_invariant(
    kripke: &Kripke,
    bad: &[usize],
    invariant: &Bitset,
) -> Result<(), String> {
    if invariant.universe() != kripke.len() {
        return Err("invariant universe mismatch".into());
    }
    if !invariant.contains(kripke.initial()) {
        return Err("invariant misses the initial state".into());
    }
    for s in invariant.iter() {
        for &t in kripke.successors(s) {
            if !invariant.contains(t) {
                return Err(format!("invariant not closed under edge {s} -> {t}"));
            }
        }
    }
    for &b in bad {
        if b < kripke.len() && invariant.contains(b) {
            return Err(format!("invariant contains bad state {b}"));
        }
    }
    Ok(())
}

/// Replays an Unsafe certificate: the trace must start at the initial
/// state, follow edges, and end in a bad state.
///
/// # Errors
///
/// Names the first violation.
pub fn validate_trace(kripke: &Kripke, bad: &[usize], trace: &[usize]) -> Result<(), String> {
    let Some(&first) = trace.first() else {
        return Err("empty trace".into());
    };
    if first != kripke.initial() {
        return Err(format!("trace starts at {first}, not the initial state"));
    }
    for window in trace.windows(2) {
        if window[0] >= kripke.len() || !kripke.successors(window[0]).contains(&window[1]) {
            return Err(format!("no edge {} -> {}", window[0], window[1]));
        }
    }
    let last = *trace.last().expect("nonempty");
    if !bad.contains(&last) {
        return Err(format!("trace ends at {last}, which is not bad"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    /// Chain 0 -> 1 -> 2 -> 2 with a fenced component 3 -> 3.
    fn fenced() -> Kripke {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        Kripke::new(
            sigma,
            vec![a, a, a, b],
            vec![vec![1], vec![2], vec![2], vec![3]],
            0,
        )
    }

    #[test]
    fn unreachable_bad_is_safe() {
        let k = fenced();
        let run = check_safety(&k, &[3], &Budget::unlimited()).unwrap();
        match run.verdict {
            SafetyVerdict::Safe { invariant } => {
                validate_safety_invariant(&k, &[3], &invariant).unwrap();
            }
            SafetyVerdict::Unsafe { .. } => panic!("state 3 is unreachable"),
        }
    }

    #[test]
    fn reachable_bad_yields_a_shortest_style_trace() {
        let k = fenced();
        let run = check_safety(&k, &[2], &Budget::unlimited()).unwrap();
        match run.verdict {
            SafetyVerdict::Unsafe { trace } => {
                validate_trace(&k, &[2], &trace).unwrap();
                assert_eq!(trace, vec![0, 1, 2]);
            }
            SafetyVerdict::Safe { .. } => panic!("state 2 is reachable"),
        }
    }

    #[test]
    fn bad_initial_state() {
        let k = fenced();
        let run = check_safety(&k, &[0, 3], &Budget::unlimited()).unwrap();
        match run.verdict {
            SafetyVerdict::Unsafe { trace } => assert_eq!(trace, vec![0]),
            SafetyVerdict::Safe { .. } => panic!("initial state is bad"),
        }
    }

    #[test]
    fn no_bad_states_is_trivially_safe() {
        let k = fenced();
        let run = check_safety(&k, &[], &Budget::unlimited()).unwrap();
        assert!(matches!(run.verdict, SafetyVerdict::Safe { .. }));
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let k = fenced();
        let err = check_safety(&k, &[2], &Budget::unlimited().with_steps(1)).unwrap_err();
        assert!(err.is_budget_exceeded(), "{err}");
    }
}
