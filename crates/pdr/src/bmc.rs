//! The bounded-model-checking reference: explicit breadth-first
//! reachability and lasso search.
//!
//! This is the independent cross-check the conformance oracle diffs
//! LT-PDR against. It shares no code with the engine — plain BFS over
//! successor lists, parent-pointer trace reconstruction, and a
//! cycle-through-bad search for the liveness side. On a finite
//! structure BFS to depth `n` is exact, so disagreements are always an
//! engine bug (or a sabotage drill).

use crate::kripke::SafetyVerdict;
use sl_lattice::Bitset;
use sl_trees::Kripke;

/// Exact reachability by BFS: Unsafe with a shortest trace to a bad
/// state, or Safe with the reachable set as the (always inductive)
/// invariant.
#[must_use]
pub fn bmc_safety(kripke: &Kripke, bad: &[usize]) -> SafetyVerdict {
    let n = kripke.len();
    let mut is_bad = vec![false; n];
    for &b in bad {
        is_bad[b] = true;
    }
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let start = kripke.initial();
    seen[start] = true;
    queue.push_back(start);
    let mut hit = if is_bad[start] { Some(start) } else { None };
    while hit.is_none() {
        let Some(s) = queue.pop_front() else {
            break;
        };
        for &t in kripke.successors(s) {
            if !seen[t] {
                seen[t] = true;
                parent[t] = Some(s);
                if is_bad[t] {
                    hit = Some(t);
                    break;
                }
                queue.push_back(t);
            }
        }
    }
    match hit {
        Some(mut cursor) => {
            let mut trace = vec![cursor];
            while let Some(p) = parent[cursor] {
                trace.push(p);
                cursor = p;
            }
            trace.reverse();
            SafetyVerdict::Unsafe { trace }
        }
        None => {
            let mut invariant = Bitset::empty(n);
            for (s, &reached) in seen.iter().enumerate() {
                if reached {
                    invariant.insert(s);
                }
            }
            SafetyVerdict::Safe { invariant }
        }
    }
}

/// Iterative-deepening BMC: the classic bounded-model-checking loop
/// that re-unrolls the structure from scratch at every bound
/// `d = 0, 1, 2, ..` (exactly as SAT-based BMC re-solves each depth),
/// stopping at the first bound that reaches a bad state or at the
/// fixpoint bound where the frontier empties (the reachability
/// diameter, the explicit-state completeness threshold). On safe
/// instances this costs `Θ(diameter²)` frontier work where a single
/// exact BFS costs `Θ(edges)` — the asymmetry property-directed
/// reachability exists to beat, and the baseline `e15_pdr` sweeps
/// against.
#[must_use]
pub fn bmc_safety_deepening(kripke: &Kripke, bad: &[usize]) -> SafetyVerdict {
    let n = kripke.len();
    let mut is_bad = vec![false; n];
    for &b in bad {
        is_bad[b] = true;
    }
    let start = kripke.initial();
    if is_bad[start] {
        return SafetyVerdict::Unsafe { trace: vec![start] };
    }
    for bound in 0.. {
        // A fresh depth-bounded exploration per bound: no incremental
        // state survives from the previous unrolling.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[start] = true;
        let mut frontier = vec![start];
        let mut depth = 0usize;
        while depth < bound && !frontier.is_empty() {
            let mut next = Vec::new();
            for &s in &frontier {
                for &t in kripke.successors(s) {
                    if seen[t] {
                        continue;
                    }
                    seen[t] = true;
                    parent[t] = Some(s);
                    if is_bad[t] {
                        let mut trace = vec![t];
                        let mut cursor = t;
                        while let Some(p) = parent[cursor] {
                            trace.push(p);
                            cursor = p;
                        }
                        trace.reverse();
                        return SafetyVerdict::Unsafe { trace };
                    }
                    next.push(t);
                }
            }
            depth += 1;
            frontier = next;
        }
        if frontier.is_empty() {
            // Fixpoint below the bound: the reachable set is complete
            // and bad-free.
            let mut invariant = Bitset::empty(n);
            for (s, &reached) in seen.iter().enumerate() {
                if reached {
                    invariant.insert(s);
                }
            }
            return SafetyVerdict::Safe { invariant };
        }
    }
    unreachable!("the deepening loop resolves by the reachability diameter")
}

/// The verdict of a liveness (`FG !bad` over all paths) check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// Every path eventually avoids bad states forever. `k` is the
    /// counter bound that proved it; the invariant lives on the
    /// counter-augmented product.
    Live {
        /// The winning k-liveness bound.
        k: usize,
        /// Inductive invariant over product states.
        invariant: Bitset,
    },
    /// Some path visits a bad state infinitely often, witnessed by a
    /// lasso: `stem` runs from the initial state to the loop entry
    /// (inclusive), `looping` continues from the entry's successor
    /// back around to the entry, and contains a bad state.
    Lasso {
        /// Initial state up to and including the loop entry.
        stem: Vec<usize>,
        /// Successor of the entry around the cycle, ending at the
        /// entry again.
        looping: Vec<usize>,
    },
}

/// Direct lasso search: `FG !bad` fails iff some reachable cycle
/// contains a bad state. Returns the lasso when one exists.
#[must_use]
pub fn bmc_lasso(kripke: &Kripke, bad: &[usize]) -> Option<(Vec<usize>, Vec<usize>)> {
    let reachable = kripke.reachable();
    let mut candidates: Vec<usize> = bad
        .iter()
        .copied()
        .filter(|&b| reachable[b])
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    for b in candidates {
        // A cycle through b: BFS from b's successors back to b.
        if let Some(looping) = path_bfs_from_successors(kripke, b, b) {
            let stem = path_bfs(kripke, kripke.initial(), b)
                .expect("b is reachable");
            return Some((stem, looping));
        }
    }
    None
}

/// The liveness reference verdict: a lasso through bad, or Live (with
/// a degenerate certificate — the reference carries no invariant, so
/// callers compare verdicts only).
#[must_use]
pub fn bmc_liveness(kripke: &Kripke, bad: &[usize]) -> LivenessVerdict {
    match bmc_lasso(kripke, bad) {
        Some((stem, looping)) => LivenessVerdict::Lasso { stem, looping },
        None => LivenessVerdict::Live {
            k: 0,
            invariant: Bitset::empty(0),
        },
    }
}

/// Shortest path `from -> .. -> to` (inclusive), by BFS.
fn path_bfs(kripke: &Kripke, from: usize, to: usize) -> Option<Vec<usize>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: Vec<Option<usize>> = vec![None; kripke.len()];
    let mut seen = vec![false; kripke.len()];
    seen[from] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(s) = queue.pop_front() {
        for &t in kripke.successors(s) {
            if !seen[t] {
                seen[t] = true;
                parent[t] = Some(s);
                if t == to {
                    let mut path = vec![to];
                    let mut cursor = to;
                    while let Some(p) = parent[cursor] {
                        path.push(p);
                        cursor = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(t);
            }
        }
    }
    None
}

/// Shortest nonempty path `from -> s1 -> .. -> to` excluding the start
/// (so a self-loop yields `[to]`).
fn path_bfs_from_successors(kripke: &Kripke, from: usize, to: usize) -> Option<Vec<usize>> {
    if kripke.successors(from).contains(&to) {
        return Some(vec![to]);
    }
    for &s in kripke.successors(from) {
        if let Some(path) = path_bfs(kripke, s, to) {
            // First successor with any path back; shortest-per-entry
            // is enough for a valid certificate.
            return Some(path);
        }
    }
    None
}

/// Replays a lasso certificate against the structure.
///
/// # Errors
///
/// Names the first violation.
pub fn validate_lasso(
    kripke: &Kripke,
    bad: &[usize],
    stem: &[usize],
    looping: &[usize],
) -> Result<(), String> {
    let Some(&first) = stem.first() else {
        return Err("empty lasso stem".into());
    };
    if first != kripke.initial() {
        return Err(format!("stem starts at {first}, not the initial state"));
    }
    for window in stem.windows(2) {
        if !kripke.successors(window[0]).contains(&window[1]) {
            return Err(format!("no stem edge {} -> {}", window[0], window[1]));
        }
    }
    let entry = *stem.last().expect("nonempty");
    let Some(&loop_head) = looping.first() else {
        return Err("empty lasso loop".into());
    };
    if !kripke.successors(entry).contains(&loop_head) {
        return Err(format!("no edge from loop entry {entry} -> {loop_head}"));
    }
    for window in looping.windows(2) {
        if !kripke.successors(window[0]).contains(&window[1]) {
            return Err(format!("no loop edge {} -> {}", window[0], window[1]));
        }
    }
    if *looping.last().expect("nonempty") != entry {
        return Err("loop does not return to its entry".into());
    }
    if !looping.iter().any(|s| bad.contains(s)) {
        return Err("loop contains no bad state".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    fn build(succ: Vec<Vec<usize>>, initial: usize) -> Kripke {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let labels = vec![a; succ.len()];
        Kripke::new(sigma, labels, succ, initial)
    }

    #[test]
    fn bfs_finds_shortest_trace() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3, 3 -> 3; bad = {3}.
        let k = build(vec![vec![1, 2], vec![3], vec![3], vec![3]], 0);
        match bmc_safety(&k, &[3]) {
            SafetyVerdict::Unsafe { trace } => assert_eq!(trace.len(), 3),
            SafetyVerdict::Safe { .. } => panic!("3 is reachable"),
        }
    }

    #[test]
    fn safe_invariant_is_the_reachable_set() {
        // 0 -> 1 -> 0, 2 -> 2 unreachable bad.
        let k = build(vec![vec![1], vec![0], vec![2]], 0);
        match bmc_safety(&k, &[2]) {
            SafetyVerdict::Safe { invariant } => {
                assert!(invariant.contains(0) && invariant.contains(1));
                assert!(!invariant.contains(2));
            }
            SafetyVerdict::Unsafe { .. } => panic!("2 is unreachable"),
        }
    }

    #[test]
    fn deepening_agrees_with_exact_bfs_on_random_structures() {
        use sl_support::SplitMix;
        let mut rng = SplitMix::new(77);
        for _ in 0..80 {
            let n = 1 + rng.below(9);
            let succ: Vec<Vec<usize>> = (0..n)
                .map(|_| {
                    let outs = 1 + rng.below(3);
                    (0..outs).map(|_| rng.below(n)).collect()
                })
                .collect();
            let bad: Vec<usize> = (0..n).filter(|_| rng.percent() < 30).collect();
            let k = build(succ, rng.below(n));
            let exact = bmc_safety(&k, &bad);
            let deepened = bmc_safety_deepening(&k, &bad);
            match (&exact, &deepened) {
                (SafetyVerdict::Safe { invariant: a }, SafetyVerdict::Safe { invariant: b }) => {
                    assert_eq!(a, b, "both invariants are the reachable set");
                }
                // Both traces are shortest (level-order exploration),
                // so the lengths must agree even if the paths differ.
                (SafetyVerdict::Unsafe { trace: a }, SafetyVerdict::Unsafe { trace: b }) => {
                    assert_eq!(a.len(), b.len(), "shortest trace lengths agree");
                }
                (a, b) => panic!("verdicts disagree: exact={a:?} deepening={b:?}"),
            }
        }
    }

    #[test]
    fn lasso_through_bad_cycle() {
        // 0 -> 1 -> 2 -> 1 with 2 bad: FG !bad fails.
        let k = build(vec![vec![1], vec![2], vec![1]], 0);
        let (stem, looping) = bmc_lasso(&k, &[2]).expect("bad cycle exists");
        validate_lasso(&k, &[2], &stem, &looping).unwrap();
    }

    #[test]
    fn transient_bad_has_no_lasso() {
        // 0 -> 1 -> 2 -> 2, bad = {1}: visited once, FG !bad holds.
        let k = build(vec![vec![1], vec![2], vec![2]], 0);
        assert!(bmc_lasso(&k, &[1]).is_none());
    }

    #[test]
    fn self_loop_bad_state() {
        let k = build(vec![vec![1], vec![1]], 0);
        let (stem, looping) = bmc_lasso(&k, &[1]).expect("1 loops on itself");
        assert_eq!(stem, vec![0, 1]);
        assert_eq!(looping, vec![1]);
        validate_lasso(&k, &[1], &stem, &looping).unwrap();
    }
}
