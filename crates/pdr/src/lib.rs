//! # sl-pdr
//!
//! Lattice-generic property-directed reachability (LT-PDR, after Kori
//! et al.'s "The Lattice-Theoretic Essence of Property Directed
//! Reachability Analysis") plus the k-liveness liveness-to-safety
//! reduction, instantiated on Bitset powerset lattices of
//! Kripke-structure states.
//!
//! * [`engine`] — the generic engine: frames as lattice elements,
//!   relative induction via meets and complements, an obligation queue
//!   with two lattice-theoretic generalization strategies, and
//!   machine-checked certificates (an inductive invariant on Safe, a
//!   replayable atom chain on Unsafe).
//! * [`kripke`] — the powerset instantiation deciding `AG !bad`, with
//!   concrete trace/invariant certificates replayed against the
//!   structure.
//! * [`liveness`] — the k-liveness sweep deciding `FG !bad` over all
//!   paths via [`sl_trees::counter_product`].
//! * [`bmc`] — the independent explicit-state BFS / lasso-search
//!   reference used by the conformance oracle.
//!
//! ```
//! use sl_omega::Alphabet;
//! use sl_pdr::{check_safety, SafetyVerdict};
//! use sl_support::Budget;
//! use sl_trees::Kripke;
//!
//! let sigma = Alphabet::ab();
//! let a = sigma.symbol("a").unwrap();
//! let b = sigma.symbol("b").unwrap();
//! // 0 -> 1 -> 0 with a fenced bad state 2.
//! let k = Kripke::new(sigma, vec![a, a, b], vec![vec![1], vec![0], vec![2]], 0);
//! let run = check_safety(&k, &[2], &Budget::unlimited()).unwrap();
//! assert!(matches!(run.verdict, SafetyVerdict::Safe { .. }));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bmc;
pub mod engine;
pub mod kripke;
pub mod liveness;

pub use bmc::{
    bmc_lasso, bmc_liveness, bmc_safety, bmc_safety_deepening, validate_lasso, LivenessVerdict,
};
pub use engine::{
    lt_pdr, validate_chain, validate_invariant, Atoms, PdrOutcome, PdrProblem, PdrRun, PdrStats,
};
pub use kripke::{
    check_safety, predecessors, validate_safety_invariant, validate_trace, SafetyRun,
    SafetyVerdict,
};
pub use liveness::{check_liveness, LivenessRun};
