//! The k-liveness / liveness-to-safety reduction.
//!
//! `FG !bad` over all paths holds iff there is a bound `k` such that
//! no path visits a bad state more than `k` times (k-liveness). Each
//! candidate `k` is a safety query on the counter-augmented product
//! ([`sl_trees::counter_product`]): the counter saturates at `k + 1`
//! and the saturated states are the product's bad states. The sweep
//! runs `k = 0, 1, ..` upward; a Safe product verdict proves liveness
//! with certificate `(k, product invariant)`, while a product
//! counterexample trace that revisits a state with a bad visit in
//! between yields a concrete lasso refutation. By the pigeonhole
//! principle the sweep resolves by `k = |bad|` at the latest: a trace
//! with `|bad| + 1` bad visits must revisit some bad state.

use crate::bmc::{validate_lasso, LivenessVerdict};
use crate::engine::PdrStats;
use crate::kripke::{check_safety, SafetyVerdict};
use sl_support::{Budget, SlError};
use sl_trees::{counter_product, Kripke};

/// A liveness verdict plus aggregated engine counters.
#[derive(Debug, Clone)]
pub struct LivenessRun {
    /// The validated verdict.
    pub verdict: LivenessVerdict,
    /// Engine counters summed over the whole k sweep.
    pub stats: PdrStats,
    /// The largest k the sweep reached (the winning bound on Live).
    pub k_reached: u64,
}

/// Decides `FG !bad` over all paths by the k-liveness sweep.
///
/// # Errors
///
/// Budget exhaustion and cancellation propagate as typed [`SlError`]s;
/// the budget spans the whole sweep, not one iteration.
///
/// # Panics
///
/// Panics if a bad index is out of range, or if a derived lasso fails
/// replay (an engine bug).
pub fn check_liveness(
    kripke: &Kripke,
    bad: &[usize],
    budget: &Budget,
) -> Result<LivenessRun, SlError> {
    for &b in bad {
        assert!(b < kripke.len(), "bad state out of range");
    }
    let mut stats = PdrStats::default();
    for k in 0..=bad.len() {
        let cap = k + 1;
        let product = counter_product(kripke, bad, cap);
        let run = check_safety(&product.kripke, &product.bad, budget)?;
        stats = stats.merged(run.stats);
        match run.verdict {
            SafetyVerdict::Safe { invariant } => {
                return Ok(LivenessRun {
                    verdict: LivenessVerdict::Live { k, invariant },
                    stats,
                    k_reached: k as u64,
                });
            }
            SafetyVerdict::Unsafe { trace } => {
                let original: Vec<usize> =
                    trace.iter().map(|&id| product.original(id).0).collect();
                if let Some((stem, looping)) = extract_lasso(&original, bad) {
                    validate_lasso(kripke, bad, &stem, &looping)
                        .unwrap_or_else(|e| panic!("k-liveness lasso failed replay: {e}"));
                    return Ok(LivenessRun {
                        verdict: LivenessVerdict::Lasso { stem, looping },
                        stats,
                        k_reached: k as u64,
                    });
                }
                // Not yet a lasso: the path merely visits bad k + 1
                // times. Raise the bound.
            }
        }
    }
    unreachable!("k-liveness sweep exceeded the pigeonhole bound |bad|")
}

/// Finds a revisited state with a bad visit strictly inside the window
/// and splits the path into (stem, loop).
fn extract_lasso(path: &[usize], bad: &[usize]) -> Option<(Vec<usize>, Vec<usize>)> {
    for i in 0..path.len() {
        for j in i + 1..path.len() {
            if path[i] == path[j] && path[i + 1..=j].iter().any(|s| bad.contains(s)) {
                return Some((path[..=i].to_vec(), path[i + 1..=j].to_vec()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    fn build(labels_bad: &[bool], succ: Vec<Vec<usize>>, initial: usize) -> Kripke {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let labels = labels_bad
            .iter()
            .map(|&is_bad| if is_bad { b } else { a })
            .collect();
        Kripke::new(sigma, labels, succ, initial)
    }

    #[test]
    fn transient_bad_is_live() {
        // 0 -> 1(bad) -> 2 -> 2: bad visited exactly once.
        let k = build(
            &[false, true, false],
            vec![vec![1], vec![2], vec![2]],
            0,
        );
        let run = check_liveness(&k, &[1], &Budget::unlimited()).unwrap();
        match run.verdict {
            LivenessVerdict::Live { k: bound, .. } => assert!(bound >= 1),
            LivenessVerdict::Lasso { .. } => panic!("bad is transient"),
        }
    }

    #[test]
    fn bad_cycle_is_a_lasso() {
        // 0 -> 1 -> 2(bad) -> 1: the cycle revisits bad forever.
        let k = build(&[false, false, true], vec![vec![1], vec![2], vec![1]], 0);
        let run = check_liveness(&k, &[2], &Budget::unlimited()).unwrap();
        match run.verdict {
            LivenessVerdict::Lasso { stem, looping } => {
                validate_lasso(&k, &[2], &stem, &looping).unwrap();
            }
            LivenessVerdict::Live { .. } => panic!("bad cycle exists"),
        }
    }

    #[test]
    fn no_bad_states_live_at_k_zero() {
        let k = build(&[false, false], vec![vec![1], vec![0]], 0);
        let run = check_liveness(&k, &[], &Budget::unlimited()).unwrap();
        assert!(matches!(run.verdict, LivenessVerdict::Live { k: 0, .. }));
        assert_eq!(run.k_reached, 0);
    }

    #[test]
    fn unreachable_bad_cycle_is_live() {
        // 0 -> 0; 1(bad) -> 1 unreachable.
        let k = build(&[false, true], vec![vec![0], vec![1]], 0);
        let run = check_liveness(&k, &[1], &Budget::unlimited()).unwrap();
        assert!(matches!(run.verdict, LivenessVerdict::Live { .. }));
    }

    #[test]
    fn agreement_with_direct_lasso_search_on_small_structures() {
        use crate::bmc::bmc_lasso;
        use sl_support::SplitMix;
        let mut rng = SplitMix::new(41);
        for _ in 0..60 {
            let n = 2 + rng.below(8);
            let succ: Vec<Vec<usize>> = (0..n)
                .map(|_| {
                    let outs = 1 + rng.below(2);
                    (0..outs).map(|_| rng.below(n)).collect()
                })
                .collect();
            let bad: Vec<usize> = (0..n).filter(|_| rng.percent() < 30).collect();
            let labels_bad: Vec<bool> = (0..n).map(|s| bad.contains(&s)).collect();
            let k = build(&labels_bad, succ, 0);
            let run = check_liveness(&k, &bad, &Budget::unlimited()).unwrap();
            let expected_live = bmc_lasso(&k, &bad).is_none();
            let got_live = matches!(run.verdict, LivenessVerdict::Live { .. });
            assert_eq!(got_live, expected_live, "disagreement on {k:?} bad {bad:?}");
        }
    }
}
