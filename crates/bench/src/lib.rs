//! # sl-bench
//!
//! Experiment harness reproducing the paper's tables, figures, and
//! theorem-level claims (see EXPERIMENTS.md at the workspace root for
//! the experiment index E1–E9 and the recorded paper-vs-measured
//! outcomes), plus Criterion performance benchmarks for the underlying
//! algorithms.
//!
//! Each experiment is a binary (`cargo run -p sl-bench --bin e1_rem_linear`
//! and so on) that prints the reproduced table and exits nonzero if any
//! claim fails to reproduce.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// Prints a rule line matching the width used by the experiment tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a degradation note for a fault-tolerant sweep — one line per
/// failed item plus the summary — and nothing at all for a clean sweep,
/// keeping fault-free experiment output byte-identical to the strict
/// sweeps the tables were recorded with.
pub fn note_degradation<R>(label: &str, report: &sl_support::SweepReport<R>) {
    if !report.degraded() {
        return;
    }
    println!("  [degraded] {label}: {}", report.summary());
    for index in report.failure_indices() {
        match &report.outcomes[index] {
            sl_support::ItemOutcome::Panicked(message) => {
                println!("             item {index} panicked: {message}");
            }
            sl_support::ItemOutcome::Failed(err) => {
                println!("             item {index} failed: {err}");
            }
            sl_support::ItemOutcome::Ok(_) => {}
        }
    }
}

/// Prints an experiment header.
pub fn header(id: &str, title: &str) {
    let line = format!("{id}: {title}");
    rule(line.len());
    println!("{line}");
    rule(line.len());
}

/// Tracks pass/fail across a table of claims and renders the outcome.
#[derive(Debug, Default)]
pub struct Scoreboard {
    passed: usize,
    failed: usize,
}

impl Scoreboard {
    /// New empty scoreboard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a claim with its expected/actual rendering.
    pub fn claim(&mut self, description: &str, ok: bool) {
        if ok {
            self.passed += 1;
            println!("  [ok]   {description}");
        } else {
            self.failed += 1;
            println!("  [FAIL] {description}");
        }
    }

    /// Number of failed claims.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.failed
    }

    /// Prints the summary and returns the process exit code.
    #[must_use]
    pub fn finish(self) -> std::process::ExitCode {
        println!();
        println!("claims: {} passed, {} failed", self.passed, self.failed);
        if self.failed == 0 {
            std::process::ExitCode::SUCCESS
        } else {
            std::process::ExitCode::FAILURE
        }
    }
}
