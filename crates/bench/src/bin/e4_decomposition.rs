//! E4 — Theorems 1/2/3: the decomposition on a corpus of modular
//! complemented lattices, exhaustively.
//!
//! For every lattice in the corpus and every closure operator on it
//! (all closures where enumerable, seeded random closures otherwise),
//! every element is decomposed as `cl.a /\ (a \/ b)` and the result is
//! verified; Lemmas 1–4 are checked along the way. The table reports
//! lattice sizes, closure counts, and decomposition counts.
//!
//! The sweep is embarrassingly parallel in the closure operator, so
//! each closure's (count, verdict) record is computed on a
//! `sl_support::par` worker and the records are folded in closure
//! order — the table is byte-identical for any `SL_THREADS`.
//!
//! Workers run panic-isolated ([`par::par_map_isolated`]): under a
//! fault drill (`SL_FAULT_RATE` > 0) a poisoned worker degrades to a
//! `[degraded]` note and survivor-only claims instead of aborting the
//! sweep; with faults disabled the output is byte-identical to the
//! strict sweep.

use sl_bench::{header, note_degradation, Scoreboard};
use sl_lattice::{
    decompose, decompose_pair_checked, enumerate_closures, generators, lemma4_holds,
    random_closure, verify_decomposition,
};
use sl_support::par;
use std::process::ExitCode;

fn main() -> ExitCode {
    header(
        "E4",
        "Decomposition theorems on modular complemented lattices",
    );
    let mut board = Scoreboard::new();
    println!(
        "{:<16} {:>6} {:>9} {:>14} {:>8}",
        "lattice", "size", "closures", "decompositions", "lemma4"
    );

    for (name, lattice) in generators::modular_complemented_corpus() {
        let closures = if lattice.len() <= 10 {
            enumerate_closures(&lattice)
        } else {
            (0..40).map(|seed| random_closure(&lattice, seed)).collect()
        };
        // One record per closure: (decompositions, all verified, lemma 4).
        let report = par::par_map_isolated(&closures, |cl| {
            let mut decompositions = 0usize;
            let mut all_ok = true;
            let mut lemma4_ok = true;
            for a in 0..lattice.len() {
                match decompose(&lattice, cl, a) {
                    Ok(d) => {
                        decompositions += 1;
                        if !verify_decomposition(&lattice, cl, cl, &a, &d) {
                            all_ok = false;
                        }
                    }
                    Err(_) => all_ok = false,
                }
                if !lemma4_holds(&lattice, cl, a) {
                    lemma4_ok = false;
                }
            }
            (decompositions, all_ok, lemma4_ok)
        });
        let decompositions: usize = report.oks().map(|(_, r)| r.0).sum();
        let all_ok = report.oks().all(|(_, r)| r.1);
        let lemma4_ok = report.oks().all(|(_, r)| r.2);
        println!(
            "{:<16} {:>6} {:>9} {:>14} {:>8}",
            name,
            lattice.len(),
            closures.len(),
            decompositions,
            if lemma4_ok { "ok" } else { "FAIL" }
        );
        note_degradation(&name, &report);
        board.claim(
            &format!("{name}: all {decompositions} decompositions verified"),
            all_ok && lemma4_ok,
        );
    }

    // Theorem 3 (two closures) on B3, exhaustively over ordered pairs —
    // parallel in the outer closure, folded in order.
    let lattice = generators::boolean(3);
    let closures = enumerate_closures(&lattice);
    let report = par::par_map_isolated(&closures, |cl1| {
        let mut pairs_tested = 0usize;
        let mut pairs_ok = true;
        for cl2 in &closures {
            if !cl1.pointwise_leq(&lattice, cl2) {
                continue;
            }
            for a in 0..lattice.len() {
                pairs_tested += 1;
                match decompose_pair_checked(&lattice, cl1, cl2, a) {
                    Ok(d) => {
                        if !verify_decomposition(&lattice, cl1, cl2, &a, &d) {
                            pairs_ok = false;
                        }
                    }
                    Err(_) => pairs_ok = false,
                }
            }
        }
        (pairs_tested, pairs_ok)
    });
    let pairs_tested: usize = report.oks().map(|(_, r)| r.0).sum();
    let pairs_ok = report.oks().all(|(_, r)| r.1);
    note_degradation("Theorem 3 on B3", &report);
    board.claim(
        &format!("Theorem 3 on B3: {pairs_tested} (cl1 <= cl2, element) cases verified"),
        pairs_ok,
    );
    board.finish()
}
