//! E8 — Section 4.4 / Theorem 9: Rabin tree automata and `rfcl`.
//!
//! Builds Büchi/Rabin tree automata for branching properties, computes
//! the `rfcl` closure via per-state emptiness games (index appearance
//! records → parity → Zielonka), cross-checks `L(rfcl B) = fcl(L(B))`
//! against the bounded tree-level oracle, and verifies the Theorem 9
//! decomposition identity tree by tree (liveness side as the decidable
//! predicate `t ∈ L(B) ∪ ¬L(rfcl B)` — see the substitution note in
//! DESIGN.md).

use sl_bench::{header, Scoreboard};
use sl_omega::Alphabet;
use sl_rabin::{accepts, decompose, is_empty, rfcl, RabinTreeAutomaton, RabinTreeBuilder};
use sl_trees::{enumerate_regular_trees, fcl_contains_bounded, parse_ctl, RegularTree};
use std::process::ExitCode;

/// AF b over binary trees.
fn af_b(sigma: &Alphabet) -> RabinTreeAutomaton {
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let mut builder = RabinTreeBuilder::new(sigma.clone(), 2);
    let wait = builder.add_state();
    let done = builder.add_state();
    builder.add_transition(wait, a, &[wait, wait]);
    builder.add_transition(wait, b, &[done, done]);
    builder.add_transition(done, a, &[done, done]);
    builder.add_transition(done, b, &[done, done]);
    builder.build_buchi(wait, &[done])
}

/// "Root is a" over binary trees (safety-shaped).
fn root_a(sigma: &Alphabet) -> RabinTreeAutomaton {
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let mut builder = RabinTreeBuilder::new(sigma.clone(), 2);
    let start = builder.add_state();
    let any = builder.add_state();
    builder.add_transition(start, a, &[any, any]);
    builder.add_transition(any, a, &[any, any]);
    builder.add_transition(any, b, &[any, any]);
    builder.build_buchi(start, &[any])
}

/// A genuine two-pair Rabin automaton over binary trees: every path
/// either eventually stays in `a` or eventually stays in `b`.
fn eventually_settles(sigma: &Alphabet) -> RabinTreeAutomaton {
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let mut builder = RabinTreeBuilder::new(sigma.clone(), 2);
    let in_a = builder.add_state();
    let in_b = builder.add_state();
    builder.add_transition(in_a, a, &[in_a, in_a]);
    builder.add_transition(in_a, b, &[in_b, in_b]);
    builder.add_transition(in_b, b, &[in_b, in_b]);
    builder.add_transition(in_b, a, &[in_a, in_a]);
    // Pair 1: settle in a (green in_a, red in_b); pair 2 dually.
    builder.build_rabin(in_a, &[(vec![in_a], vec![in_b]), (vec![in_b], vec![in_a])])
}

fn main() -> ExitCode {
    header("E8", "Rabin tree automata and the rfcl closure (Theorem 9)");
    let sigma = Alphabet::ab();
    let samples: Vec<RegularTree> = enumerate_regular_trees(&sigma, 2, 2);
    println!(
        "sample trees: {} (all 2-graph-node binary regular trees)\n",
        samples.len()
    );
    let mut board = Scoreboard::new();

    println!(
        "{:<20} {:>6} {:>7} {:>9} {:>10} {:>10}",
        "automaton", "states", "tuples", "empty?", "|L| (smp)", "|rfcl L|"
    );
    for (name, automaton) in [
        ("AF b (buchi)", af_b(&sigma)),
        ("root-a (safety)", root_a(&sigma)),
        ("settles (2-pair)", eventually_settles(&sigma)),
    ] {
        let closure = rfcl(&automaton);
        let in_l = samples.iter().filter(|t| accepts(&automaton, t)).count();
        let in_cl = samples.iter().filter(|t| accepts(&closure, t)).count();
        println!(
            "{:<20} {:>6} {:>7} {:>9} {:>10} {:>10}",
            name,
            automaton.num_states(),
            automaton.num_transitions(),
            is_empty(&automaton),
            in_l,
            in_cl
        );

        // Extensivity and idempotence on samples.
        let extensive = samples
            .iter()
            .all(|t| !accepts(&automaton, t) || accepts(&closure, t));
        let closure2 = rfcl(&closure);
        let idempotent = samples
            .iter()
            .all(|t| accepts(&closure, t) == accepts(&closure2, t));
        board.claim(&format!("{name}: rfcl extensive on samples"), extensive);
        board.claim(&format!("{name}: rfcl idempotent on samples"), idempotent);

        // Theorem 9 decomposition identity.
        let d = decompose(&automaton);
        board.claim(
            &format!("{name}: L(B) = L(B_safe) /\\ L(B_live) on all samples"),
            d.check_on(&samples).is_none(),
        );
    }

    // Cross-check rfcl against the tree-level fcl oracle for AF b.
    let automaton = af_b(&sigma);
    let closure = rfcl(&automaton);
    let af_b_ctl = parse_ctl(&sigma, "AF b").unwrap();
    let continuations = vec![
        RegularTree::constant(sigma.clone(), sigma.symbol("a").unwrap(), 2),
        RegularTree::constant(sigma.clone(), sigma.symbol("b").unwrap(), 2),
    ];
    let matches = samples.iter().all(|t| {
        accepts(&closure, t) == fcl_contains_bounded(t, &af_b_ctl, 2, &continuations, 2).is_ok()
    });
    board.claim(
        "L(rfcl B_AFb) = fcl(L(B_AFb)) vs bounded tree oracle",
        matches,
    );

    // And membership of the base automaton against CTL.
    let agrees = samples
        .iter()
        .all(|t| accepts(&automaton, t) == t.satisfies(&af_b_ctl));
    board.claim(
        "Rabin membership agrees with CTL model checking (AF b)",
        agrees,
    );
    board.finish()
}
