//! E2 — Figure 1: the pentagon N5 shows modularity is necessary.
//!
//! Reproduces the figure's claims: the lattice is not modular (with the
//! caption's witness instance), the closure `cl.a = b` is a valid
//! lattice closure, the only cl-liveness element is the top, and the
//! element `a` admits *no* decomposition into a cl-safety and a
//! cl-liveness element (Lemma 6) — found by exhaustive search.

use sl_bench::{header, Scoreboard};
use sl_lattice::{all_decompositions, figure1};
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E2", "Figure 1 - the modularity counterexample (N5)");
    let fig = figure1();
    let lattice = &fig.lattice;
    let names = ["0", "a", "b", "c", "1"];

    println!("Hasse diagram (cover pairs):");
    for (lo, hi) in lattice.poset().cover_pairs() {
        println!("  {} < {}", names[lo], names[hi]);
    }
    println!("closure table: cl.a = b, identity elsewhere");
    println!();

    let mut board = Scoreboard::new();
    board.claim("N5 is a lattice (constructed through validation)", true);
    board.claim("N5 is NOT modular", !lattice.is_modular());

    // The caption's instance: a <= b but a \/ (c /\ b) = a while
    // (a \/ c) /\ b = b.
    let (a, b, c) = (fig.a, fig.b, fig.c);
    board.claim(
        "caption instance: a \\/ (c /\\ b) = a",
        lattice.join(a, lattice.meet(c, b)) == a,
    );
    board.claim(
        "caption instance: (a \\/ c) /\\ b = b",
        lattice.meet(lattice.join(a, c), b) == b,
    );

    // Closure validity was established at construction; re-state.
    board.claim("cl is extensive, idempotent, monotone (validated)", true);
    board.claim(
        "the only cl-liveness element is 1",
        fig.closure.liveness_elements(lattice) == vec![lattice.top()],
    );

    let decomps = all_decompositions(lattice, &fig.closure, &fig.closure, fig.a);
    board.claim(
        &format!(
            "Lemma 6: element a has no safety/\\liveness decomposition (exhaustive: {} found)",
            decomps.len()
        ),
        decomps.is_empty(),
    );

    // Every other element decomposes, pinpointing the failure at a.
    let mut others_ok = true;
    for x in 0..lattice.len() {
        if x == fig.a {
            continue;
        }
        if all_decompositions(lattice, &fig.closure, &fig.closure, x).is_empty() {
            others_ok = false;
        }
    }
    board.claim("every element other than a decomposes", others_ok);
    board.finish()
}
