//! E15 (perf) — property-directed reachability vs bounded model
//! checking: the fenced-cycle scaling sweep.
//!
//! The family that separates the two engines is a large cycle
//! (diameter `Θ(n)`) whose only bad states sit in a small *fenced*
//! component no reachable state can enter. Iterative-deepening BMC
//! ([`sl_pdr::bmc_safety_deepening`] — the classic loop that re-unrolls
//! the structure from scratch at every bound, exactly as SAT-based BMC
//! re-solves each depth) must deepen to the reachability diameter
//! before it can conclude Safe, paying `Θ(diameter²)` frontier work.
//! LT-PDR blocks the one obligation the fence admits, generalizes it
//! to the whole backward cone of the bad set (four states, independent
//! of `n`), and converges in a constant number of frames — `Θ(n)`
//! total for the final linear certificate check. Measured per size
//! `n = 2^8 .. 2^12`:
//!
//! * `pdr/fenced/<n>` — `check_safety`, certificate validation
//!   included;
//! * `bmc/fenced/<n>` — `bmc_safety_deepening` on the same structure;
//! * `pdr/liveness/<n>` — the k-liveness sweep on a transient-bad
//!   variant (`FG !bad` holds at `k = 1`), showing the reduction rides
//!   the same engine at product-sized cost.
//!
//! Correctness gates come first: both engines must agree (Safe) at
//! every size with the PDR invariant replaying cleanly, and the
//! liveness verdict must be Live at `k = 1`. `BENCH_pdr.json` records
//! the medians; `scripts/verify.sh` gates PDR-beats-BMC on the
//! 12-bit point.

use sl_bench::{header, Scoreboard};
use sl_omega::Alphabet;
use sl_pdr::{
    bmc_safety_deepening, check_liveness, check_safety, validate_safety_invariant,
    LivenessVerdict, SafetyVerdict,
};
use sl_support::bench::{black_box, Bench};
use sl_support::Budget;
use sl_trees::Kripke;
use std::process::ExitCode;

/// Sweep sizes, as powers of two.
const BITS: [u32; 5] = [8, 9, 10, 11, 12];

/// The fenced-cycle family: states `0 .. n-4` form one big cycle
/// (every reachable state), states `n-4 .. n` a small cycle reachable
/// from nowhere else, with `n-1` bad. `AG !bad` holds; the backward
/// cone of the bad set is exactly the fenced component.
fn fenced(bits: u32) -> (Kripke, Vec<usize>) {
    let n = 1usize << bits;
    let m = n - 4;
    let sigma = Alphabet::ab();
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let mut succ: Vec<Vec<usize>> = (0..m).map(|i| vec![(i + 1) % m]).collect();
    for fence in 0..4 {
        succ.push(vec![m + (fence + 1) % 4]);
    }
    let labels: Vec<_> = (0..n).map(|s| if s == n - 1 { b } else { a }).collect();
    (Kripke::new(sigma, labels, succ, 0), vec![n - 1])
}

/// The transient-bad variant for the liveness point: the initial state
/// is bad but every path leaves it forever (the cycle runs over
/// `1 .. n-1` and never returns), so `FG !bad` holds at `k = 1`.
fn transient(bits: u32) -> (Kripke, Vec<usize>) {
    let n = 1usize << bits;
    let sigma = Alphabet::ab();
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let mut succ: Vec<Vec<usize>> = vec![vec![1]];
    for i in 1..n {
        succ.push(vec![if i + 1 < n { i + 1 } else { 1 }]);
    }
    let labels: Vec<_> = (0..n).map(|s| if s == 0 { b } else { a }).collect();
    (Kripke::new(sigma, labels, succ, 0), vec![0])
}

fn main() -> ExitCode {
    header(
        "E15",
        "PDR vs iterative-deepening BMC: the fenced-cycle scaling sweep",
    );
    let mut board = Scoreboard::new();

    // Correctness before clocks: agreement and certificate replay at
    // every size, liveness verdict at the largest.
    for &bits in &BITS {
        let (k, bad) = fenced(bits);
        let run = check_safety(&k, &bad, &Budget::unlimited()).expect("unbudgeted");
        let pdr_safe = match &run.verdict {
            SafetyVerdict::Safe { invariant } => {
                validate_safety_invariant(&k, &bad, invariant).is_ok()
            }
            SafetyVerdict::Unsafe { .. } => false,
        };
        board.claim(
            &format!("2^{bits}: PDR proves the fence safe with a replaying invariant"),
            pdr_safe,
        );
        board.claim(
            &format!("2^{bits}: deepening BMC agrees"),
            matches!(bmc_safety_deepening(&k, &bad), SafetyVerdict::Safe { .. }),
        );
    }
    {
        let (k, bad) = transient(BITS[BITS.len() - 1]);
        let run = check_liveness(&k, &bad, &Budget::unlimited()).expect("unbudgeted");
        board.claim(
            "liveness: transient bad is Live at k = 1",
            matches!(run.verdict, LivenessVerdict::Live { k: 1, .. }),
        );
    }

    // Measured passes.
    let mut bench = Bench::from_env();
    let mut medians = Vec::new();
    for &bits in &BITS {
        let n = 1usize << bits;
        let (k, bad) = fenced(bits);
        let pdr = bench.measure(&format!("pdr/fenced/{n}"), || {
            black_box(check_safety(&k, &bad, &Budget::unlimited()).expect("unbudgeted"));
        });
        let bmc = bench.measure(&format!("bmc/fenced/{n}"), || {
            black_box(bmc_safety_deepening(&k, &bad));
        });
        let (lk, lbad) = transient(bits);
        bench.measure(&format!("pdr/liveness/{n}"), || {
            black_box(check_liveness(&lk, &lbad, &Budget::unlimited()).expect("unbudgeted"));
        });
        medians.push((bits, pdr, bmc));
    }

    println!("\nfenced-cycle sweep (median):");
    for &(bits, pdr, bmc) in &medians {
        let speedup = bmc.as_secs_f64() / pdr.as_secs_f64().max(1e-12);
        println!(
            "  2^{bits:<2}: pdr {:>10.3} µs   bmc {:>12.3} µs   ({speedup:>7.1}x)",
            pdr.as_secs_f64() * 1e6,
            bmc.as_secs_f64() * 1e6,
        );
    }
    for &(bits, pdr, bmc) in &medians {
        if bits >= 12 {
            board.claim(
                &format!("2^{bits}: PDR beats iterative-deepening BMC"),
                pdr < bmc,
            );
        }
    }

    bench.finish("pdr");
    board.finish()
}
