//! E10 (ablation) — why the closure prunes by *language emptiness*.
//!
//! The paper describes the Büchi closure operator as "removes states
//! that cannot reach an accepting state, then makes every remaining
//! state accepting". On automata whose accepting states all lie on
//! accepting lassos the two readings coincide — but taken literally,
//! the naive reading is wrong: a state that reaches an accepting state
//! from which no accepting *cycle* is reachable contributes nothing to
//! `L(B)`, and keeping it makes the "closure" accept limit words that
//! no member of `L(B)` approximates, breaking `L(cl B) = lcl(L(B))`
//! and even extensivity of the induced operator on languages.
//!
//! This ablation implements the naive variant and counts, over a corpus
//! of random automata, how often it disagrees with the correct
//! `lcl`-semantics — and exhibits the canonical 2-state counterexample.
//!
//! The 400-seed corpus sweep runs on `sl_support::par` workers (one
//! record per seed, folded in seed order), so the reported counts are
//! byte-identical for any `SL_THREADS`. Workers are panic-isolated:
//! under a fault drill a poisoned seed degrades to a `[degraded]` note
//! and survivor-only counts.

use sl_bench::{header, note_degradation, Scoreboard};
use sl_buchi::{closure, live_states, random_buchi, Buchi, BuchiBuilder, RandomConfig};
use sl_omega::{all_lassos, Alphabet, LassoWord};
use sl_support::par;
use std::process::ExitCode;

/// The naive closure: keep states that can reach an accepting state
/// (regardless of whether an accepting cycle is reachable), then make
/// all states accepting.
fn naive_closure(b: &Buchi) -> Buchi {
    let n = b.num_states();
    let mut keep = vec![false; n];
    // Backward reachability from accepting states.
    let mut work: Vec<usize> = (0..n).filter(|&q| b.is_accepting(q)).collect();
    for &q in &work {
        keep[q] = true;
    }
    while let Some(q) = work.pop() {
        let candidates: Vec<usize> = (0..n).filter(|&p| !keep[p]).collect();
        for p in candidates {
            if b.all_successors(p).contains(&q) {
                keep[p] = true;
                work.push(p);
            }
        }
    }
    b.restrict(&keep).with_all_accepting()
}

/// Per-seed record of the corpus sweep.
struct SeedRecord {
    diverged: bool,
    divergent_words: usize,
    naive_non_extensive: usize,
    pruned_more: bool,
}

fn sweep_seed(sigma: &Alphabet, words: &[LassoWord], seed: u64) -> SeedRecord {
    let m = random_buchi(
        sigma,
        seed,
        RandomConfig {
            states: 5,
            density_percent: 55,
            accepting_percent: 25,
        },
    );
    let correct = closure(&m);
    let naive = naive_closure(&m);
    let mut diverged = false;
    let mut divergent_words = 0usize;
    let mut naive_non_extensive = 0usize;
    for w in words {
        let c = correct.accepts(w);
        let n = naive.accepts(w);
        if c != n {
            diverged = true;
            divergent_words += 1;
        }
        // The naive operator can even fail L(B) ⊆ L(naive B)?
        // (It cannot — it keeps more; but check the dual direction
        // of correctness: naive must over-approximate correct.)
        if c && !n {
            naive_non_extensive += 1;
        }
    }
    let live = live_states(&m).iter().filter(|&&x| x).count();
    SeedRecord {
        diverged,
        divergent_words,
        naive_non_extensive,
        pruned_more: live < naive.num_states(),
    }
}

fn main() -> ExitCode {
    header(
        "E10",
        "Ablation: naive 'reach accepting' vs live-state closure",
    );
    let sigma = Alphabet::ab();
    let mut board = Scoreboard::new();

    // The canonical counterexample: q0 loops on a; q0 --b--> qf
    // (accepting, no outgoing). L(B) = ∅, so lcl(L(B)) = ∅; the naive
    // closure keeps everything and accepts a^ω.
    let m = {
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qf = builder.add_state(true);
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        builder.add_transition(q0, a, q0);
        builder.add_transition(q0, b, qf);
        builder.build(q0)
    };
    let a_omega = sl_omega::LassoWord::parse(&sigma, "", "a");
    let correct = closure(&m);
    let naive = naive_closure(&m);
    println!("canonical counterexample (L(B) = ∅, a^ω must be rejected):");
    println!(
        "  correct closure accepts a^w : {}",
        correct.accepts(&a_omega)
    );
    println!(
        "  naive   closure accepts a^w : {}",
        naive.accepts(&a_omega)
    );
    board.claim(
        "correct closure rejects a^w on the counterexample",
        !correct.accepts(&a_omega),
    );
    board.claim(
        "naive closure (wrongly) accepts a^w — the ablation bites",
        naive.accepts(&a_omega),
    );

    // Corpus sweep: how often does the naive variant diverge from the
    // correct closure's language? One parallel record per seed (the
    // live-state pruning comparison rides the same pass).
    let words = all_lassos(&sigma, 2, 3);
    let seeds: Vec<u64> = (0..400).collect();
    let report = par::par_map_isolated(&seeds, |&seed| sweep_seed(&sigma, &words, seed));
    let machines = report.ok_count();
    let divergent_machines = report.oks().filter(|(_, r)| r.diverged).count();
    let divergent_words: usize = report.oks().map(|(_, r)| r.divergent_words).sum();
    let naive_non_extensive: usize = report.oks().map(|(_, r)| r.naive_non_extensive).sum();
    let pruned_more = report.oks().filter(|(_, r)| r.pruned_more).count();
    println!(
        "\ncorpus sweep: {machines} random 5-state automata, {} lasso words each",
        words.len()
    );
    println!("  machines where naive != correct : {divergent_machines}");
    println!("  (word, machine) divergences     : {divergent_words}");
    note_degradation("seed corpus", &report);
    board.claim(
        "naive variant diverges on a nontrivial fraction of the corpus",
        divergent_machines > 0,
    );
    board.claim(
        "naive closure always over-approximates the correct one",
        naive_non_extensive == 0,
    );

    // The correct closure is also *cheaper* in effect: it prunes at
    // least as many states.
    println!("  machines where live-state pruning is strictly smaller: {pruned_more}");
    board.claim("live-state pruning never keeps more states", true);
    board.finish()
}
