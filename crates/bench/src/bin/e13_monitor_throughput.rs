//! E13 (perf) — monitor throughput: the compiled dense-table safety
//! monitor vs the subset-construction `Monitor` vs an allocating
//! NFA-set reference stepper, plus the SoA fleet at session scale.
//!
//! Theorem 6 makes safety properties monitorable; this experiment makes
//! them monitorable *at volume*. The policy is a nondeterministic
//! "at most 31 b's" chain (every chain state carries a shadow copy, so
//! the set/subset steppers genuinely track multi-state frontiers), and
//! the trace is a long all-Ok prefix — the steady state a deployed
//! monitor lives in. Measured:
//!
//! * `monitor/nfa_set/safety` — the allocating NFA-set stepper (the
//!   no-preprocessing baseline a naive monitor implementation uses);
//! * `monitor/subset/safety` — `Monitor`, subset construction with
//!   `Vec<Vec<usize>>` rows;
//! * `monitor/compiled/safety` — `CompiledMonitor`, one flat-table
//!   load per step;
//! * `monitor/fleet/batch` — a 4096-session `MonitorFleet` stepped
//!   with `step_all`, per-session-step cost.
//!
//! Correctness gates come first: all three steppers must agree verdict
//! for verdict on the bench trace (violation and out-of-alphabet tails
//! included), and the fleet must agree with per-session stepping.
//! `BENCH_monitor.json` records the medians; `scripts/verify.sh` gates
//! the compiled-over-NFA ratio at ≥10x.

use sl_bench::{header, Scoreboard};
use sl_buchi::{closure, live_states, Buchi, BuchiBuilder, CompiledMonitor, Monitor, MonitorFleet, Verdict};
use sl_omega::{Alphabet, Symbol, Word};
use sl_support::bench::{black_box, Bench};
use std::process::ExitCode;

/// Chain length (maximum allowed `b` count is `CHAIN - 1`).
const CHAIN: usize = 32;
/// Symbols per measured pass.
const TRACE_LEN: usize = 10_000;
/// Fleet sessions for the batch measurement.
const FLEET: usize = 4096;

/// Shadow copies per chain state (frontier width for the set/subset
/// steppers).
const SHADOWS: usize = 3;

/// The bench policy: "at most 31 b's", nondeterministically widened.
/// Chain state `i` moves on `a` into itself plus [`SHADOWS`] shadow
/// states (which mirror its transitions), and advances on `b`. All
/// states accepting, every state live — closure-shaped, so the policy
/// is cl-safety and the compiled path is the one `sld` would take. The
/// shadows make the subset/set steppers carry 4-state frontiers, the
/// honest regime for a nondeterministic safety automaton.
fn policy(sigma: &Alphabet) -> Buchi {
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let mut builder = BuchiBuilder::new(sigma.clone());
    let chain: Vec<_> = (0..CHAIN).map(|_| builder.add_state(true)).collect();
    let shadow: Vec<Vec<_>> = (0..CHAIN)
        .map(|_| (0..SHADOWS).map(|_| builder.add_state(true)).collect())
        .collect();
    for i in 0..CHAIN {
        builder.add_transition(chain[i], a, chain[i]);
        for &s in &shadow[i] {
            builder.add_transition(chain[i], a, s);
            builder.add_transition(s, a, chain[i]);
            for &t in &shadow[i] {
                builder.add_transition(s, a, t);
            }
            if i + 1 < CHAIN {
                builder.add_transition(s, b, chain[i + 1]);
            }
        }
        if i + 1 < CHAIN {
            builder.add_transition(chain[i], b, chain[i + 1]);
        }
    }
    builder.build(chain[0])
}

/// The steady-state trace: mostly `a`, a `b` every 400 symbols (25
/// total — under the chain's limit, so the whole pass stays Ok).
fn trace(sigma: &Alphabet) -> Vec<Symbol> {
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    (0..TRACE_LEN)
        .map(|i| if i % 400 == 399 { b } else { a })
        .collect()
}

/// The no-preprocessing baseline: a nondeterministic set stepper over
/// the live states of the safety closure, allocating a fresh frontier
/// per step — the same reference the `compiled` conform oracle uses.
struct NfaSetStepper {
    cls: Buchi,
    live: Vec<bool>,
    current: Vec<usize>,
    unknown: bool,
}

impl NfaSetStepper {
    fn new(policy: &Buchi) -> Self {
        let cls = closure(policy);
        let live = live_states(&cls);
        let current = if cls.num_states() > 0 && live.get(cls.initial()) == Some(&true) {
            vec![cls.initial()]
        } else {
            Vec::new()
        };
        NfaSetStepper {
            cls,
            live,
            current,
            unknown: false,
        }
    }

    fn reset(&mut self) {
        self.unknown = false;
        self.current = if self.cls.num_states() > 0 && self.live.get(self.cls.initial()) == Some(&true) {
            vec![self.cls.initial()]
        } else {
            Vec::new()
        };
    }

    fn step(&mut self, sym: Symbol) -> Verdict {
        if self.current.is_empty() {
            return Verdict::Violation;
        }
        if self.unknown {
            return Verdict::Unknown;
        }
        if sym.index() >= self.cls.alphabet().len() {
            self.unknown = true;
            return Verdict::Unknown;
        }
        let mut next: Vec<usize> = self
            .current
            .iter()
            .flat_map(|&q| self.cls.successors(q, sym).iter().copied())
            .filter(|&q| self.live[q])
            .collect();
        next.sort_unstable();
        next.dedup();
        self.current = next;
        if self.current.is_empty() {
            Verdict::Violation
        } else {
            Verdict::Ok
        }
    }
}

fn main() -> ExitCode {
    header(
        "E13",
        "Monitor throughput: compiled dense table vs subset stepper vs NFA-set baseline",
    );
    let sigma = Alphabet::ab();
    let policy = policy(&sigma);
    let symbols = trace(&sigma);
    let mut board = Scoreboard::new();

    let mut nfa = NfaSetStepper::new(&policy);
    let mut subset = Monitor::new(&policy);
    let mut compiled = CompiledMonitor::new(&policy).expect("policy fits a u16 table");
    println!(
        "policy: {} NFA states -> {} subset-monitor states -> {} compiled states; trace: {} symbols",
        policy.num_states(),
        subset.num_states(),
        compiled.num_states(),
        symbols.len()
    );

    // Correctness before clocks: all three steppers, verdict for
    // verdict, over the bench trace plus a violating tail (33 more
    // b's) and an out-of-alphabet symbol.
    let mut probe: Vec<Symbol> = symbols.clone();
    probe.extend(std::iter::repeat(sigma.symbol("b").unwrap()).take(CHAIN + 1));
    probe.push(Symbol(u16::MAX));
    let mut agree = true;
    let mut saw_violation = false;
    for &sym in &probe {
        let (x, y, z) = (compiled.step(sym), subset.step(sym), nfa.step(sym));
        agree &= x == y && y == z;
        saw_violation |= x == Verdict::Violation;
    }
    board.claim(
        "compiled, subset, and NFA-set steppers agree on every verdict",
        agree,
    );
    board.claim(
        "the probe trace exercises the violation path",
        saw_violation,
    );

    // Fleet parity: step_all over the whole trace matches a lone
    // compiled monitor, for every session.
    let mut fleet = MonitorFleet::new(&compiled);
    for _ in 0..FLEET {
        fleet.spawn();
    }
    compiled.reset();
    for &sym in &symbols {
        fleet.step_all(sym);
        compiled.step(sym);
    }
    let (ok, violation, unknown) = fleet.tally();
    board.claim(
        "a 4096-session fleet pass matches the single-monitor verdict",
        compiled.verdict() == Verdict::Ok && (ok, violation, unknown) == (FLEET, 0, 0),
    );

    // Each measured pass consumes the whole trace through the
    // implementation's natural whole-trace entry point (a reset + step
    // loop for the baseline, `run` for the monitors).
    let word = Word::new(&symbols);
    let mut bench = Bench::from_env();
    let nfa_med = bench.measure("monitor/nfa_set/safety", || {
        nfa.reset();
        for &sym in &symbols {
            black_box(nfa.step(sym));
        }
    });
    let subset_med = bench.measure("monitor/subset/safety", || {
        black_box(subset.run(&word));
    });
    let compiled_med = bench.measure("monitor/compiled/safety", || {
        black_box(compiled.run(&word));
    });
    // The fleet pass steps every session once per symbol; report the
    // per-session-step cost over a shorter word so one call stays in
    // the same duration regime as the single-monitor passes.
    let fleet_word: Vec<Symbol> = symbols[..TRACE_LEN / 16].to_vec();
    let fleet_med = bench.measure("monitor/fleet/batch", || {
        for &sym in &fleet_word {
            fleet.step_all(sym);
        }
        black_box(fleet.tally());
    });

    let sps = |steps: usize, d: std::time::Duration| steps as f64 / d.as_secs_f64().max(1e-12);
    println!("\nthroughput (median):");
    println!("  nfa_set  : {:>13.0} steps/sec", sps(symbols.len(), nfa_med));
    println!("  subset   : {:>13.0} steps/sec", sps(symbols.len(), subset_med));
    println!("  compiled : {:>13.0} steps/sec", sps(symbols.len(), compiled_med));
    println!(
        "  fleet    : {:>13.0} session-steps/sec ({FLEET} sessions)",
        sps(FLEET * fleet_word.len(), fleet_med)
    );
    let vs_nfa = nfa_med.as_nanos() as f64 / compiled_med.as_nanos().max(1) as f64;
    let vs_subset = subset_med.as_nanos() as f64 / compiled_med.as_nanos().max(1) as f64;
    println!("compiled speedup: {vs_nfa:.1}x over nfa_set, {vs_subset:.1}x over subset");
    board.claim("compiled beats the NFA-set baseline by >= 10x", vs_nfa >= 10.0);
    board.claim("compiled beats the subset stepper (>1x median)", vs_subset > 1.0);
    bench.finish("monitor");
    board.finish()
}
