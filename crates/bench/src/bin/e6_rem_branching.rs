//! E6 — Section 4.3 example table: Rem's examples in branching time.
//!
//! Reproduces the q0–q6 claims with the paper's own witnesses plus
//! bounded exhaustive search over a universe of regular trees:
//!
//! * q0, q1, q2, q6 are universally safe (`q = fcl.q`);
//! * `fcl.q3a = q1` but `ncl.q3a ≠ q1` and `ncl.q3a ≠ q3a`;
//! * `ncl.q3b = fcl.q3b = q1`;
//! * `fcl.q4a = fcl.q5a = A_tot` while `ncl.q4a, ncl.q5a < A_tot`
//!   (absolute refutations via surviving paths);
//! * `ncl.q4b = ncl.q5b = A_tot`.

use sl_bench::{header, Scoreboard};
use sl_ltl::parse;
use sl_omega::Alphabet;
use sl_trees::{
    enumerate_regular_trees, fcl_contains_bounded, ncl_contains_bounded, ncl_refuted_by_path,
    q_examples, two_path_witness, RegularTree,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E6", "Rem's examples in branching time (paper Section 4.3)");
    let sigma = Alphabet::ab();
    let examples = q_examples(&sigma);
    let by_name = |n: &str| examples.iter().find(|e| e.name == n).unwrap();

    let mut universe: Vec<RegularTree> = enumerate_regular_trees(&sigma, 2, 1);
    universe.extend(enumerate_regular_trees(&sigma, 1, 2));
    universe.push(two_path_witness(&sigma));
    let continuations = vec![
        RegularTree::constant(sigma.clone(), sigma.symbol("a").unwrap(), 1),
        RegularTree::constant(sigma.clone(), sigma.symbol("b").unwrap(), 1),
        two_path_witness(&sigma),
    ];
    println!(
        "universe: {} regular trees; prefixes to depth 2; {} continuations\n",
        universe.len(),
        continuations.len()
    );

    let mut board = Scoreboard::new();

    // Universally safe examples.
    for name in ["q1", "q2", "q6"] {
        let q = by_name(name);
        let ok = universe.iter().all(|y| {
            y.satisfies(&q.formula)
                == fcl_contains_bounded(y, &q.formula, 2, &continuations, 1).is_ok()
        });
        board.claim(
            &format!("{name} universally safe (q = fcl.q on universe)"),
            ok,
        );
    }
    let q0 = by_name("q0");
    board.claim(
        "q0 = false: fcl.q0 = q0 (empty) on universe",
        universe
            .iter()
            .all(|y| fcl_contains_bounded(y, &q0.formula, 1, &continuations, 1).is_err()),
    );

    // q3a.
    let q3a = by_name("q3a");
    let q1 = by_name("q1");
    board.claim(
        "fcl.q3a = q1 on universe",
        universe.iter().all(|y| {
            fcl_contains_bounded(y, &q3a.formula, 2, &continuations, 1).is_ok()
                == y.satisfies(&q1.formula)
        }),
    );
    let witness = two_path_witness(&sigma);
    let q3a_path = parse(&sigma, "a & F !a").unwrap();
    board.claim(
        "ncl.q3a != q1: two-path witness in q1 but refuted from ncl.q3a (absolute)",
        witness.satisfies(&q1.formula) && ncl_refuted_by_path(&witness, 1, &[vec![1]], &q3a_path),
    );
    let a_seq = RegularTree::constant(sigma.clone(), sigma.symbol("a").unwrap(), 1);
    board.claim(
        "ncl.q3a != q3a: a^w in ncl.q3a \\ q3a (trees can be sequences)",
        !a_seq.satisfies(&q3a.formula)
            && ncl_contains_bounded(&a_seq, &q3a.formula, 2, &continuations, 1).is_ok(),
    );

    // q3b.
    let q3b = by_name("q3b");
    board.claim(
        "ncl.q3b = fcl.q3b = q1 on universe",
        universe.iter().all(|y| {
            let want = y.satisfies(&q1.formula);
            fcl_contains_bounded(y, &q3b.formula, 2, &continuations, 1).is_ok() == want
                && ncl_contains_bounded(y, &q3b.formula, 2, &continuations, 1).is_ok() == want
        }),
    );

    // q4 / q5.
    for (a_name, path_text, cut) in [("q4a", "F G !a", vec![1u32]), ("q5a", "G F a", vec![0u32])] {
        let q = by_name(a_name);
        board.claim(
            &format!("fcl.{a_name} = A_tot on universe"),
            universe
                .iter()
                .all(|y| fcl_contains_bounded(y, &q.formula, 2, &continuations, 1).is_ok()),
        );
        let path = parse(&sigma, path_text).unwrap();
        board.claim(
            &format!("ncl.{a_name} < A_tot: witness refuted absolutely"),
            ncl_refuted_by_path(&witness, 1, &[cut], &path),
        );
    }
    for b_name in ["q4b", "q5b"] {
        let q = by_name(b_name);
        board.claim(
            &format!("ncl.{b_name} = A_tot on universe"),
            universe
                .iter()
                .all(|y| ncl_contains_bounded(y, &q.formula, 2, &continuations, 1).is_ok()),
        );
    }

    // ncl <= fcl pointwise (the Theorem 3 hypothesis in branching time).
    let mut pointwise = true;
    for name in ["q3a", "q3b", "q4a", "q5a"] {
        let q = by_name(name);
        for y in &universe {
            let in_ncl = ncl_contains_bounded(y, &q.formula, 2, &continuations, 1).is_ok();
            let in_fcl = fcl_contains_bounded(y, &q.formula, 2, &continuations, 1).is_ok();
            if in_ncl && !in_fcl {
                pointwise = false;
            }
        }
    }
    board.claim("ncl.p <= fcl.p pointwise on universe", pointwise);
    board.finish()
}
