//! E12 (perf) — service throughput: the `sld` query engine under a
//! scripted load, cold vs warm result cache.
//!
//! The serving layer (`sl-service`) fronts the deciders with a
//! memoizing cache keyed by `(verb, structural hash)`: the first
//! `include` over a pair of automata pays for the antichain search, a
//! repeat of the same query is a table lookup. This experiment drives
//! the engine exactly the way `sld --stdin` does — JSON request lines
//! through [`Service::handle_line`] — over a seeded corpus ingested via
//! HOA (`define` → `from_hoa`), and measures:
//!
//! * `svc/define/hoa` — corpus ingest into a fresh daemon;
//! * `svc/include/cold` — the query script with the cache reset every
//!   iteration (every query recomputed);
//! * `svc/include/warm` — the same script against a primed cache
//!   (every query a hit);
//! * `svc/batch/fanout` — the script as one `batch` request through
//!   the panic-isolated parallel sweep, cache cold.
//!
//! Correctness gates come first: every scripted response must be `ok`,
//! and the warm responses must be byte-identical to the cold ones — the
//! cache is invisible except in the clock. `BENCH_svc.json` then
//! records the medians; `scripts/verify.sh` checks the cache-hit
//! speedup stays above 1.

use sl_bench::{header, Scoreboard};
use sl_buchi::{hoa::to_hoa, random_buchi, RandomConfig};
use sl_omega::Alphabet;
use sl_service::{Service, ServiceConfig};
use sl_support::bench::{black_box, Bench};
use sl_support::FaultPlan;
use std::process::ExitCode;

/// A fresh, quiet daemon: faults off (this is a clock, not a drill),
/// everything else at the defaults the real binary uses.
fn fresh_service() -> Service {
    Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        ..ServiceConfig::default()
    })
}

/// The define script: a seeded corpus shaped like E11's — small
/// candidates on the left of `⊆`, larger specifications on the right —
/// shipped to the daemon as HOA text, so ingest exercises `from_hoa`.
fn define_script(sigma: &Alphabet) -> Vec<String> {
    let left_cfg = RandomConfig {
        states: 4,
        density_percent: 55,
        accepting_percent: 40,
    };
    let right_cfg = RandomConfig {
        states: 8,
        density_percent: 55,
        accepting_percent: 10,
    };
    let mut lines = Vec::new();
    for seed in 0..6u64 {
        let m = random_buchi(sigma, seed, left_cfg);
        lines.push(define_line(&format!("cand{seed}"), &to_hoa(&m, "cand")));
    }
    for seed in 0..4u64 {
        let m = random_buchi(sigma, 271 + seed, right_cfg);
        lines.push(define_line(&format!("spec{seed}"), &to_hoa(&m, "spec")));
    }
    lines
}

fn define_line(name: &str, hoa: &str) -> String {
    let escaped: String = hoa
        .chars()
        .map(|c| match c {
            '"' => "\\\"".to_string(),
            '\\' => "\\\\".to_string(),
            '\n' => "\\n".to_string(),
            c => c.to_string(),
        })
        .collect();
    format!(r#"{{"verb":"define","name":"{name}","hoa":"{escaped}"}}"#)
}

/// The query script: 24 inclusion pairs over the corpus plus a
/// universality probe per specification — the daemon's hot path.
fn query_script() -> Vec<String> {
    let mut lines = Vec::new();
    for k in 0..24usize {
        let (i, j) = (k % 6, (k * 3 + 1) % 4);
        lines.push(format!(
            r#"{{"id":{k},"verb":"include","left":"cand{i}","right":"spec{j}"}}"#
        ));
    }
    for j in 0..4usize {
        lines.push(format!(
            r#"{{"id":"u{j}","verb":"universal","target":"spec{j}"}}"#
        ));
    }
    lines
}

/// The same queries folded into a single `batch` request, for the
/// parallel fan-out measurement.
fn batch_line() -> String {
    let items: Vec<String> = query_script()
        .iter()
        .map(|line| line.clone())
        .collect();
    format!(r#"{{"id":"fan","verb":"batch","requests":[{}]}}"#, items.join(","))
}

fn run_script(svc: &mut Service, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| svc.handle_line(line).line)
        .collect()
}

fn main() -> ExitCode {
    header(
        "E12",
        "Service throughput: scripted queries through the sld engine, cold vs warm cache",
    );
    let sigma = Alphabet::ab();
    let defines = define_script(&sigma);
    let queries = query_script();
    let batch = batch_line();
    let mut board = Scoreboard::new();

    // Correctness first: ingest the corpus, run the script cold, run it
    // again warm, and demand (a) every response ok, (b) the cache is
    // semantically invisible — warm answers byte-identical to cold.
    let mut svc = fresh_service();
    let define_replies = run_script(&mut svc, &defines);
    let cold_replies = run_script(&mut svc, &queries);
    let before = svc.cache_stats();
    let warm_replies = run_script(&mut svc, &queries);
    let after = svc.cache_stats();
    let all_ok = define_replies
        .iter()
        .chain(&cold_replies)
        .chain(&warm_replies)
        .all(|r| r.contains("\"ok\":true"));
    let warm_hits = after.hits - before.hits;
    let warm_misses = after.misses - before.misses;
    println!(
        "corpus: {} automata, {} scripted queries; warm pass: {warm_hits} hits / {warm_misses} misses",
        defines.len(),
        queries.len()
    );
    board.claim("every scripted response is ok", all_ok);
    board.claim(
        "cache is transparent: warm responses byte-identical to cold",
        warm_replies == cold_replies,
    );
    board.claim(
        "warm pass is 100% cache hits",
        warm_hits == queries.len() as u64 && warm_misses == 0,
    );
    let batch_reply = svc.handle_line(&batch).line;
    board.claim(
        "batch fan-out answers every item ok",
        batch_reply.contains("\"ok\":true") && !batch_reply.contains("\"error\""),
    );

    let mut bench = Bench::from_env();
    let define_med = bench.measure("svc/define/hoa", || {
        let mut svc = fresh_service();
        for line in &defines {
            black_box(svc.handle_line(line).quit);
        }
    });
    let cold = bench.measure("svc/include/cold", || {
        svc.reset_cache();
        for line in &queries {
            black_box(svc.handle_line(line).quit);
        }
    });
    // Prime once, then measure the pure-hit path.
    svc.reset_cache();
    run_script(&mut svc, &queries);
    let warm = bench.measure("svc/include/warm", || {
        for line in &queries {
            black_box(svc.handle_line(line).quit);
        }
    });
    let fanout = bench.measure("svc/batch/fanout", || {
        svc.reset_cache();
        black_box(svc.handle_line(&batch).quit);
    });

    let rps = |n: usize, d: std::time::Duration| n as f64 / d.as_secs_f64().max(1e-12);
    let speedup = cold.as_nanos() as f64 / warm.as_nanos().max(1) as f64;
    println!("\nthroughput (median):");
    println!(
        "  define/hoa   : {:>10.0} requests/sec",
        rps(defines.len(), define_med)
    );
    println!(
        "  include/cold : {:>10.0} requests/sec",
        rps(queries.len(), cold)
    );
    println!(
        "  include/warm : {:>10.0} requests/sec",
        rps(queries.len(), warm)
    );
    println!(
        "  batch/fanout : {:>10.0} requests/sec",
        rps(queries.len(), fanout)
    );
    println!("cache-hit speedup, warm over cold: {speedup:.1}x");
    board.claim("cache hits beat recomputation (>1x median)", speedup > 1.0);
    bench.finish("svc");
    board.finish()
}
