//! E12 (perf) — service throughput: the `sld` query engine under a
//! scripted load, cold vs warm result cache.
//!
//! The serving layer (`sl-service`) fronts the deciders with a
//! memoizing cache keyed by `(verb, structural hash)`: the first
//! `include` over a pair of automata pays for the antichain search, a
//! repeat of the same query is a table lookup. This experiment drives
//! the engine exactly the way `sld --stdin` does — JSON request lines
//! through [`Service::handle_line`] — over a seeded corpus ingested via
//! HOA (`define` → `from_hoa`), and measures:
//!
//! * `svc/define/hoa` — corpus ingest into a fresh daemon;
//! * `svc/include/cold` — the query script with the cache reset every
//!   iteration (every query recomputed);
//! * `svc/include/warm` — the same script against a primed cache
//!   (every query a hit);
//! * `svc/batch/fanout` — the script as one `batch` request through
//!   the panic-isolated parallel sweep, cache cold.
//!
//! Correctness gates come first: every scripted response must be `ok`,
//! and the warm responses must be byte-identical to the cold ones — the
//! cache is invisible except in the clock. `BENCH_svc.json` then
//! records the medians; `scripts/verify.sh` checks the cache-hit
//! speedup stays above 1.

use sl_bench::{header, Scoreboard};
use sl_buchi::{hoa::to_hoa, random_buchi, RandomConfig};
use sl_omega::Alphabet;
use sl_service::{serve_tcp, Service, ServiceConfig};
use sl_support::bench::{black_box, Bench};
use sl_support::FaultPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;

/// A fresh, quiet daemon: faults off (this is a clock, not a drill),
/// everything else at the defaults the real binary uses.
fn fresh_service() -> Service {
    Service::new(ServiceConfig {
        fault: FaultPlan::disabled(),
        ..ServiceConfig::default()
    })
}

/// The define script: a seeded corpus shaped like E11's — small
/// candidates on the left of `⊆`, larger specifications on the right —
/// shipped to the daemon as HOA text, so ingest exercises `from_hoa`.
fn define_script(sigma: &Alphabet) -> Vec<String> {
    let left_cfg = RandomConfig {
        states: 4,
        density_percent: 55,
        accepting_percent: 40,
    };
    let right_cfg = RandomConfig {
        states: 8,
        density_percent: 55,
        accepting_percent: 10,
    };
    let mut lines = Vec::new();
    for seed in 0..6u64 {
        let m = random_buchi(sigma, seed, left_cfg);
        lines.push(define_line(&format!("cand{seed}"), &to_hoa(&m, "cand")));
    }
    for seed in 0..4u64 {
        let m = random_buchi(sigma, 271 + seed, right_cfg);
        lines.push(define_line(&format!("spec{seed}"), &to_hoa(&m, "spec")));
    }
    lines
}

fn define_line(name: &str, hoa: &str) -> String {
    let escaped: String = hoa
        .chars()
        .map(|c| match c {
            '"' => "\\\"".to_string(),
            '\\' => "\\\\".to_string(),
            '\n' => "\\n".to_string(),
            c => c.to_string(),
        })
        .collect();
    format!(r#"{{"verb":"define","name":"{name}","hoa":"{escaped}"}}"#)
}

/// The query script: 24 inclusion pairs over the corpus plus a
/// universality probe per specification — the daemon's hot path.
fn query_script() -> Vec<String> {
    let mut lines = Vec::new();
    for k in 0..24usize {
        let (i, j) = (k % 6, (k * 3 + 1) % 4);
        lines.push(format!(
            r#"{{"id":{k},"verb":"include","left":"cand{i}","right":"spec{j}"}}"#
        ));
    }
    for j in 0..4usize {
        lines.push(format!(
            r#"{{"id":"u{j}","verb":"universal","target":"spec{j}"}}"#
        ));
    }
    lines
}

/// Heavy corpus for the multi-client saturation series: six 26-state
/// automata whose seeds were picked for expensive classification
/// (each `classify` pays complementation plus closure inclusion, a
/// few hundred µs to a few ms) — the shared compute that concurrent
/// clients must deduplicate through the cache and singleflight.
fn heavy_define_script(sigma: &Alphabet) -> Vec<String> {
    let cfg = RandomConfig {
        states: 26,
        density_percent: 55,
        accepting_percent: 20,
    };
    [39u64, 31, 12, 23, 7, 8]
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let m = random_buchi(sigma, seed, cfg);
            define_line(&format!("hvy{i}"), &to_hoa(&m, "hvy"))
        })
        .collect()
}

/// The per-client multi-client workload: a cold pass of heavy
/// classifications, a light mixed stretch of inclusions over the
/// shared corpus, then a warm repeat of the classifications — mixed
/// cached/uncached, the shape a fleet of monitoring clients produces.
fn mc_script() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..6usize {
        lines.push(format!(
            r#"{{"id":"c{i}","verb":"classify","target":"hvy{i}"}}"#
        ));
    }
    for k in 0..4usize {
        lines.push(format!(
            r#"{{"id":"i{k}","verb":"include","left":"cand{k}","right":"spec{}"}}"#,
            (k * 3 + 1) % 4
        ));
    }
    for i in 0..6usize {
        lines.push(format!(
            r#"{{"id":"w{i}","verb":"classify","target":"hvy{i}"}}"#
        ));
    }
    lines
}

/// The same queries folded into a single `batch` request, for the
/// parallel fan-out measurement.
fn batch_line() -> String {
    let items: Vec<String> = query_script()
        .iter()
        .map(|line| line.clone())
        .collect();
    format!(r#"{{"id":"fan","verb":"batch","requests":[{}]}}"#, items.join(","))
}

fn run_script(svc: &mut Service, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| svc.handle_line(line).line)
        .collect()
}

/// One multi-client saturation round: `clients` concurrent TCP
/// connections each play the mixed script (heavy cold
/// classifications whose computes the shared cache + singleflight
/// dedup across clients, light inclusions, then warm repeats) and
/// quit. The caches are reset first, so every round pays the same
/// cold compute no matter how many clients share it — which is
/// exactly the effect the scaling series measures.
fn mc_round(svc: &Service, addr: SocketAddr, clients: usize, queries: &[String]) {
    svc.reset_cache();
    // The complement cache survives a query-cache reset; clear it too
    // so every round's cold pass pays the same full compute.
    sl_buchi::reset_shared_complement_cache();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let _ = stream.set_nodelay(true);
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut reply = String::new();
                for line in queries {
                    stream.write_all(line.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    reply.clear();
                    reader.read_line(&mut reply).unwrap();
                    black_box(reply.len());
                }
                stream.write_all(b"{\"id\":\"bye\",\"verb\":\"quit\"}\n").unwrap();
                reply.clear();
                let _ = reader.read_line(&mut reply);
            });
        }
    });
}

fn main() -> ExitCode {
    header(
        "E12",
        "Service throughput: scripted queries through the sld engine, cold vs warm cache",
    );
    let sigma = Alphabet::ab();
    let defines = define_script(&sigma);
    let queries = query_script();
    let batch = batch_line();
    let mut board = Scoreboard::new();

    // Correctness first: ingest the corpus, run the script cold, run it
    // again warm, and demand (a) every response ok, (b) the cache is
    // semantically invisible — warm answers byte-identical to cold.
    let mut svc = fresh_service();
    let define_replies = run_script(&mut svc, &defines);
    let cold_replies = run_script(&mut svc, &queries);
    let before = svc.cache_stats();
    let warm_replies = run_script(&mut svc, &queries);
    let after = svc.cache_stats();
    let all_ok = define_replies
        .iter()
        .chain(&cold_replies)
        .chain(&warm_replies)
        .all(|r| r.contains("\"ok\":true"));
    let warm_hits = after.hits - before.hits;
    let warm_misses = after.misses - before.misses;
    println!(
        "corpus: {} automata, {} scripted queries; warm pass: {warm_hits} hits / {warm_misses} misses",
        defines.len(),
        queries.len()
    );
    board.claim("every scripted response is ok", all_ok);
    board.claim(
        "cache is transparent: warm responses byte-identical to cold",
        warm_replies == cold_replies,
    );
    board.claim(
        "warm pass is 100% cache hits",
        warm_hits == queries.len() as u64 && warm_misses == 0,
    );
    let batch_reply = svc.handle_line(&batch).line;
    board.claim(
        "batch fan-out answers every item ok",
        batch_reply.contains("\"ok\":true") && !batch_reply.contains("\"error\""),
    );

    let mut bench = Bench::from_env();
    let define_med = bench.measure("svc/define/hoa", || {
        let svc = fresh_service();
        for line in &defines {
            black_box(svc.handle_line(line).quit);
        }
    });
    let cold = bench.measure("svc/include/cold", || {
        svc.reset_cache();
        for line in &queries {
            black_box(svc.handle_line(line).quit);
        }
    });
    // Prime once, then measure the pure-hit path.
    svc.reset_cache();
    run_script(&mut svc, &queries);
    let warm = bench.measure("svc/include/warm", || {
        for line in &queries {
            black_box(svc.handle_line(line).quit);
        }
    });
    let fanout = bench.measure("svc/batch/fanout", || {
        svc.reset_cache();
        black_box(svc.handle_line(&batch).quit);
    });

    // Multi-client saturation over real TCP: one shared daemon, 1→8
    // concurrent connections playing identical mixed cold/warm
    // workloads. On a single core the scaling comes from the shared
    // sharded cache plus singleflight — n clients asking the same cold
    // question pay for ~one compute — so aggregate throughput must
    // grow with the client count. verify.sh gates ≥3x at 8 clients.
    let mc_svc = fresh_service();
    let mc_queries = mc_script();
    for line in defines.iter().chain(&heavy_define_script(&sigma)) {
        let reply = mc_svc.handle_line(line);
        assert!(reply.line.contains("\"ok\":true"), "mc ingest failed: {}", reply.line);
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let mut mc_medians: Vec<(usize, std::time::Duration)> = Vec::new();
    std::thread::scope(|scope| {
        let supervisor = scope.spawn(|| serve_tcp(&mc_svc, &listener));
        for &n in &[1usize, 2, 4, 8] {
            let med = bench.measure(&format!("svc/mc/clients{n}"), || {
                mc_round(&mc_svc, addr, n, &mc_queries);
            });
            mc_medians.push((n, med));
        }
        let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
        stream
            .write_all(b"{\"id\":\"drain\",\"verb\":\"shutdown\"}\n")
            .unwrap();
        let mut reply = String::new();
        let _ = BufReader::new(&stream).read_line(&mut reply);
        supervisor.join().expect("supervisor thread").expect("serve_tcp");
    });

    let rps = |n: usize, d: std::time::Duration| n as f64 / d.as_secs_f64().max(1e-12);
    let speedup = cold.as_nanos() as f64 / warm.as_nanos().max(1) as f64;
    println!("\nthroughput (median):");
    println!(
        "  define/hoa   : {:>10.0} requests/sec",
        rps(defines.len(), define_med)
    );
    println!(
        "  include/cold : {:>10.0} requests/sec",
        rps(queries.len(), cold)
    );
    println!(
        "  include/warm : {:>10.0} requests/sec",
        rps(queries.len(), warm)
    );
    println!(
        "  batch/fanout : {:>10.0} requests/sec",
        rps(queries.len(), fanout)
    );
    println!("cache-hit speedup, warm over cold: {speedup:.1}x");
    board.claim("cache hits beat recomputation (>1x median)", speedup > 1.0);

    // The scaling series: aggregate requests/sec for n clients is
    // n × (requests per client) / round time.
    let round_requests = mc_queries.len() + 1; // the script + quit
    println!("\nmulti-client saturation (TCP, shared daemon):");
    for &(n, med) in &mc_medians {
        println!(
            "  mc/clients{n} : {:>10.0} aggregate requests/sec",
            rps(n * round_requests, med)
        );
    }
    let t1 = mc_medians.first().map(|&(_, d)| d).unwrap_or_default();
    let t8 = mc_medians.last().map(|&(_, d)| d).unwrap_or_default();
    let scaling =
        (8.0 * t1.as_nanos() as f64) / (t8.as_nanos() as f64).max(1.0);
    println!("aggregate scaling, 8 clients over 1: {scaling:.1}x");
    board.claim(
        "8 concurrent clients deliver >=3x the aggregate throughput of 1",
        scaling >= 3.0,
    );
    bench.finish("svc");
    board.finish()
}
