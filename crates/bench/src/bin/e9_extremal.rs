//! E9 — Theorems 6 and 7: the decomposition is extremal.
//!
//! * Theorem 6 (machine closure): `cl1.a` is the strongest safety
//!   element usable in any decomposition of `a` — verified exhaustively
//!   on distributive and modular corpora, and instantiated on Büchi
//!   automata (the closure automaton is included in every safety
//!   property containing the language).
//! * Theorem 7: in a distributive lattice, `a ∨ b` (`b ∈ cmp(cl1.a)`)
//!   is the weakest second component — verified exhaustively; the
//!   canonical decomposition attains both extremes.
//!
//! Both the per-closure lattice sweep and the automata-level corpus
//! comparison run on `sl_support::par` workers, with records folded in
//! input order so the report is byte-identical for any `SL_THREADS`.
//! Workers are panic-isolated: under a fault drill a poisoned worker
//! degrades to a `[degraded]` note and survivor-only claims.

use sl_bench::{header, note_degradation, Scoreboard};
use sl_buchi::{closure, included_with_complement};
use sl_lattice::{
    decompose, enumerate_closures, generators, is_machine_closed, theorem6_strongest_safety,
    theorem7_weakest_liveness,
};
use sl_ltl::{is_safety_formula, parse, translate};
use sl_omega::Alphabet;
use sl_support::par;
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E9", "Extremal theorems 6 and 7 (machine closure)");
    let mut board = Scoreboard::new();

    println!("lattice level:");
    for (name, lattice) in generators::distributive_corpus() {
        if lattice.len() > 12 {
            println!("  {name:<20} skipped (closure enumeration too large)");
            continue;
        }
        // Theorem 6 needs no complements; Theorem 7 (and the canonical
        // decomposition) only applies where cl.a has a complement, so
        // those cases are counted separately. One parallel record per
        // closure operator.
        let closures = enumerate_closures(&lattice);
        let report = par::par_map_isolated(&closures, |cl| {
            let mut t6_cases = 0usize;
            let mut t7_cases = 0usize;
            let mut ok = true;
            for a in 0..lattice.len() {
                t6_cases += 1;
                let Ok(strongest) = theorem6_strongest_safety(&lattice, cl, cl, a) else {
                    ok = false;
                    continue;
                };
                if strongest != cl.apply(a) {
                    ok = false;
                }
                if lattice.complement(cl.apply(a)).is_none() {
                    continue; // Theorem 7 vacuous here
                }
                t7_cases += 1;
                let weakest = theorem7_weakest_liveness(&lattice, cl, cl, a);
                let d = decompose(&lattice, cl, a);
                match (weakest, d) {
                    (Ok(w), Ok(d)) => {
                        if d.safety != strongest || d.liveness != w {
                            ok = false;
                        }
                        if !is_machine_closed(&lattice, cl, a, d.safety, d.liveness) {
                            ok = false;
                        }
                    }
                    _ => ok = false,
                }
            }
            (t6_cases, t7_cases, ok)
        });
        let t6_cases: usize = report.oks().map(|(_, r)| r.0).sum();
        let t7_cases: usize = report.oks().map(|(_, r)| r.1).sum();
        let ok = report.oks().all(|(_, r)| r.2);
        println!("  {name:<20} Theorem 6: {t6_cases} cases, Theorem 7: {t7_cases} cases");
        note_degradation(&name, &report);
        board.claim(
            &format!("{name}: extremal theorems verified ({t6_cases}/{t7_cases} cases)"),
            ok,
        );
    }

    // Büchi instantiation of Theorem 6: cl(B) is below every safety
    // property of the corpus containing L(B) — one worker per property.
    println!("\nautomata level (Theorem 6 on the LTL corpus):");
    let sigma = Alphabet::ab();
    let corpus = [
        "a",
        "!a",
        "a & F !a",
        "F G !a",
        "G F a",
        "a U b",
        "b R a",
        "G (a -> X b)",
        "X a",
    ];
    let formulas: Vec<_> = corpus.iter().map(|t| parse(&sigma, t).unwrap()).collect();
    let report = par::par_map_isolated(&formulas, |f| {
        let m = translate(&sigma, f);
        let cl = closure(&m);
        let mut comparisons = 0usize;
        let mut ok = true;
        for g in &formulas {
            if !is_safety_formula(&sigma, g) {
                continue;
            }
            let not_g = translate(&sigma, &g.clone().not());
            if included_with_complement(&m, &not_g).holds() {
                comparisons += 1;
                if !included_with_complement(&cl, &not_g).holds() {
                    ok = false;
                }
            }
        }
        (comparisons, ok)
    });
    let comparisons: usize = report.oks().map(|(_, r)| r.0).sum();
    let ok = report.oks().all(|(_, r)| r.1);
    println!("  {comparisons} (property, safety-superset) comparisons");
    note_degradation("LTL corpus", &report);
    board.claim(
        "cl(B) below every corpus safety property containing L(B)",
        ok,
    );
    board.finish()
}
