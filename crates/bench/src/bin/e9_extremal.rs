//! E9 — Theorems 6 and 7: the decomposition is extremal.
//!
//! * Theorem 6 (machine closure): `cl1.a` is the strongest safety
//!   element usable in any decomposition of `a` — verified exhaustively
//!   on distributive and modular corpora, and instantiated on Büchi
//!   automata (the closure automaton is included in every safety
//!   property containing the language).
//! * Theorem 7: in a distributive lattice, `a ∨ b` (`b ∈ cmp(cl1.a)`)
//!   is the weakest second component — verified exhaustively; the
//!   canonical decomposition attains both extremes.

use sl_bench::{header, Scoreboard};
use sl_buchi::{closure, included_with_complement};
use sl_lattice::{
    decompose, enumerate_closures, generators, is_machine_closed, theorem6_strongest_safety,
    theorem7_weakest_liveness,
};
use sl_ltl::{is_safety_formula, parse, translate};
use sl_omega::Alphabet;
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E9", "Extremal theorems 6 and 7 (machine closure)");
    let mut board = Scoreboard::new();

    println!("lattice level:");
    for (name, lattice) in generators::distributive_corpus() {
        if lattice.len() > 12 {
            println!("  {name:<20} skipped (closure enumeration too large)");
            continue;
        }
        // Theorem 6 needs no complements; Theorem 7 (and the canonical
        // decomposition) only applies where cl.a has a complement, so
        // those cases are counted separately.
        let mut t6_cases = 0usize;
        let mut t7_cases = 0usize;
        let mut ok = true;
        for cl in enumerate_closures(&lattice) {
            for a in 0..lattice.len() {
                t6_cases += 1;
                let Ok(strongest) = theorem6_strongest_safety(&lattice, &cl, &cl, a) else {
                    ok = false;
                    continue;
                };
                if strongest != cl.apply(a) {
                    ok = false;
                }
                if lattice.complement(cl.apply(a)).is_none() {
                    continue; // Theorem 7 vacuous here
                }
                t7_cases += 1;
                let weakest = theorem7_weakest_liveness(&lattice, &cl, &cl, a);
                let d = decompose(&lattice, &cl, a);
                match (weakest, d) {
                    (Ok(w), Ok(d)) => {
                        if d.safety != strongest || d.liveness != w {
                            ok = false;
                        }
                        if !is_machine_closed(&lattice, &cl, a, d.safety, d.liveness) {
                            ok = false;
                        }
                    }
                    _ => ok = false,
                }
            }
        }
        println!("  {name:<20} Theorem 6: {t6_cases} cases, Theorem 7: {t7_cases} cases");
        board.claim(
            &format!("{name}: extremal theorems verified ({t6_cases}/{t7_cases} cases)"),
            ok,
        );
    }

    // Büchi instantiation of Theorem 6: cl(B) is below every safety
    // property of the corpus containing L(B).
    println!("\nautomata level (Theorem 6 on the LTL corpus):");
    let sigma = Alphabet::ab();
    let corpus = [
        "a",
        "!a",
        "a & F !a",
        "F G !a",
        "G F a",
        "a U b",
        "b R a",
        "G (a -> X b)",
        "X a",
    ];
    let formulas: Vec<_> = corpus.iter().map(|t| parse(&sigma, t).unwrap()).collect();
    let mut comparisons = 0usize;
    let mut ok = true;
    for f in &formulas {
        let m = translate(&sigma, f);
        let cl = closure(&m);
        for g in &formulas {
            if !is_safety_formula(&sigma, g) {
                continue;
            }
            let not_g = translate(&sigma, &g.clone().not());
            if included_with_complement(&m, &not_g).holds() {
                comparisons += 1;
                if !included_with_complement(&cl, &not_g).holds() {
                    ok = false;
                }
            }
        }
    }
    println!("  {comparisons} (property, safety-superset) comparisons");
    board.claim(
        "cl(B) below every corpus safety property containing L(B)",
        ok,
    );
    board.finish()
}
