//! E11 (perf) — inclusion engines head-to-head: antichain search vs
//! the uncached rank-based complement.
//!
//! The antichain engine (`sl_buchi::antichain`) decides
//! `L(A) ⊆ L(B)` by searching for a counterexample lasso directly over
//! word-graphs of `B`, pruning with antichain subsumption — it never
//! materializes `¬B`. The rank-based oracle pays for the full
//! Kupferman–Vardi complement before it can even start the emptiness
//! check. This experiment measures both over the same seeded corpus
//! (complements recomputed per query — the *uncached* path the antichain
//! engine replaces), checks verdict agreement, and emits
//! `BENCH_incl.json`, the repo's first measured perf-trajectory
//! artifact.
//!
//! Expected shape: the antichain engine wins by well over the claimed
//! 5× on the inclusion corpus (typically 10×+ in release builds), and
//! the gap widens with the spec's state count: the KV complement of a
//! 10-state spec runs to thousands of rank states while the antichain
//! frontier stays small after simulation-quotient preprocessing.

use sl_bench::{header, Scoreboard};
use sl_buchi::{
    complement, included_antichain, included_with_complement, is_empty, random_buchi,
    universal_antichain, Buchi, RandomConfig,
};
use sl_omega::Alphabet;
use sl_support::bench::{black_box, Bench};
use std::process::ExitCode;

/// The seeded corpus, shaped like the deciders' hot path (E5 and the
/// classify/decompose sweeps): a modest *candidate* automaton on the
/// left of `⊆`, a larger *specification* on the right. The right
/// operand is what the rank-based oracle must complement — sized so the
/// Kupferman–Vardi construction is expensive but never blows its
/// budget — while the left operand drives the antichain's element
/// count.
fn corpus(sigma: &Alphabet) -> (Vec<Buchi>, Vec<Buchi>) {
    let left_cfg = RandomConfig {
        states: 4,
        density_percent: 55,
        accepting_percent: 40,
    };
    let right_cfg = RandomConfig {
        states: 10,
        density_percent: 55,
        accepting_percent: 10,
    };
    let lefts = (0..8u64)
        .map(|seed| random_buchi(sigma, seed, left_cfg))
        .collect();
    let rights = (0..8u64)
        .map(|seed| random_buchi(sigma, 271 + seed, right_cfg))
        .collect();
    (lefts, rights)
}

fn main() -> ExitCode {
    header(
        "E11",
        "Inclusion engines: antichain search vs uncached rank-based complement",
    );
    let sigma = Alphabet::ab();
    let (lefts, rights) = corpus(&sigma);
    let pairs: Vec<(usize, usize)> = (0..16)
        .map(|k| (k % lefts.len(), (k * 3 + 1) % rights.len()))
        .collect();
    let mut board = Scoreboard::new();

    // Correctness first: both engines must return the same verdict on
    // every corpus query (inclusion over the pairs, universality over
    // the right operands) before any timing is worth reporting.
    let mut disagreements = 0usize;
    for &(i, j) in &pairs {
        let ac = included_antichain(&lefts[i], &rights[j]).expect("antichain budget");
        let not_b = complement(&rights[j]).expect("rank complement budget");
        let rk = included_with_complement(&lefts[i], &not_b);
        if ac.holds() != rk.holds() {
            disagreements += 1;
        }
    }
    for b in &rights {
        let ac = universal_antichain(b).expect("antichain budget").is_ok();
        let rk = is_empty(&complement(b).expect("rank complement budget"));
        if ac != rk {
            disagreements += 1;
        }
    }
    println!(
        "corpus: {} candidate x {} spec machines, {} inclusion pairs, {} universality queries",
        lefts.len(),
        rights.len(),
        pairs.len(),
        rights.len()
    );
    board.claim("engines agree on every corpus query", disagreements == 0);

    let mut bench = Bench::from_env();
    let ac_incl = bench.measure("incl/antichain/corpus", || {
        for &(i, j) in &pairs {
            black_box(
                included_antichain(&lefts[i], &rights[j])
                    .expect("antichain budget")
                    .holds(),
            );
        }
    });
    let rk_incl = bench.measure("incl/rank_uncached/corpus", || {
        for &(i, j) in &pairs {
            let not_b = complement(&rights[j]).expect("rank complement budget");
            black_box(included_with_complement(&lefts[i], &not_b).holds());
        }
    });
    let ac_univ = bench.measure("univ/antichain/corpus", || {
        for b in &rights {
            black_box(universal_antichain(b).expect("antichain budget").is_ok());
        }
    });
    let rk_univ = bench.measure("univ/rank_uncached/corpus", || {
        for b in &rights {
            black_box(is_empty(&complement(b).expect("rank complement budget")));
        }
    });

    let speedup = |rank: std::time::Duration, anti: std::time::Duration| {
        rank.as_nanos() as f64 / anti.as_nanos().max(1) as f64
    };
    let incl_speedup = speedup(rk_incl, ac_incl);
    let univ_speedup = speedup(rk_univ, ac_univ);
    println!("\nmedian speedup, antichain over uncached rank:");
    println!("  inclusion corpus   : {incl_speedup:.1}x");
    println!("  universality corpus: {univ_speedup:.1}x");
    board.claim(
        "antichain beats uncached rank by >=5x median (inclusion)",
        incl_speedup >= 5.0,
    );
    board.claim(
        "antichain never loses to rank by >2x on any suite",
        incl_speedup >= 0.5 && univ_speedup >= 0.5,
    );
    bench.finish("incl");
    board.finish()
}
