//! E5 — Section 2.4 / Alpern–Schneider 1987: the Büchi decomposition.
//!
//! For a corpus of LTL properties: build the tableau automaton, the
//! closure automaton `B_S`, and the liveness automaton
//! `B_L = B ∪ ¬B_S`; verify exactly that `L(B_S)` is safe, `L(B_L)` is
//! live, and `L(B) = L(B_S) ∩ L(B_L)` (inclusions via negated-formula
//! complements). The table reports automaton sizes — the quantitative
//! "shape" of the construction.

use sl_bench::{header, Scoreboard};
use sl_buchi::{included_with_complement, intersection, is_liveness, is_safety};
use sl_ltl::{decompose_formula, parse, translate};
use sl_omega::{all_lassos, Alphabet};
use std::process::ExitCode;

const CORPUS: &[&str] = &[
    "a",
    "!a",
    "a & F !a",
    "F G !a",
    "G F a",
    "a U b",
    "b R a",
    "G (a -> F b)",
    "G (a -> X b)",
    "F (a & X a)",
    "(F a) & (F b)",
    "a W b",
];

fn main() -> ExitCode {
    header(
        "E5",
        "Buchi decomposition B = B_S /\\ B_L (paper Section 2.4)",
    );
    let sigma = Alphabet::ab();
    let mut board = Scoreboard::new();
    println!(
        "{:<16} {:>4} {:>6} {:>6} {:>7} {:>6} {:>6}",
        "property", "|B|", "|B_S|", "|B_L|", "safe?", "live?", "meet="
    );
    let corpus_words = all_lassos(&sigma, 3, 3);
    for text in CORPUS {
        let f = parse(&sigma, text).unwrap();
        let d = decompose_formula(&sigma, &f);
        let safe = is_safety(&d.safety).unwrap_or(false);
        let live = is_liveness(&d.liveness).unwrap_or(false);

        // Exact identity via complement-free inclusions.
        let not_b = translate(&sigma, &f.clone().not());
        let sub = included_with_complement(&d.automaton, &d.not_safety).holds()
            && included_with_complement(&d.automaton, &d.not_liveness).holds();
        let meet = intersection(&d.safety, &d.liveness);
        let sup = included_with_complement(&meet, &not_b).holds();
        let sampled = corpus_words.iter().all(|w| d.identity_holds_on(w));
        let identity = sub && sup && sampled;

        println!(
            "{:<16} {:>4} {:>6} {:>6} {:>7} {:>6} {:>6}",
            text,
            d.automaton.num_states(),
            d.safety.num_states(),
            d.liveness.num_states(),
            if safe { "yes" } else { "NO" },
            if live { "yes" } else { "NO" },
            if identity { "ok" } else { "FAIL" }
        );
        board.claim(
            &format!("{text}: B_S safe, B_L live, L(B) = L(B_S) /\\ L(B_L) (exact)"),
            safe && live && identity,
        );
    }
    board.finish()
}
