//! E16 (perf) — the interned, quotient-first core at scale: lazy
//! on-the-fly inclusion vs the eager engine on padded automata, and
//! incremental quotient maintenance vs from-scratch recomputation
//! under a redefine workload.
//!
//! Three sweeps, one artifact (`BENCH_scale.json`):
//!
//! 1. **Random family** — an 8-state random live core drowned in
//!    10^3..10^5 dead states on both operands. The lazy engine
//!    ([`included_onthefly_with_cache`]) trims first, quotients the
//!    core (6 states), and runs the antichain search over live
//!    macro-states, so its cost is flat in the padding; the eager
//!    engine ([`included_antichain`]) refines direct simulation over
//!    the *raw* operands — every pass scans the full n×n candidate
//!    relation (dead rows never shrink), an `Ω(n³/64)` bill. Eager is
//!    sampled at 10^3 only; already at 10^4 a single eager call on
//!    this family runs ~10 minutes, which is the tentpole's point,
//!    not a measurement target.
//! 2. **Structured family** — a 2-state total core (accepting `A`,
//!    rejecting `B`, every symbol to both) whose refinement converges
//!    in one changing pass, padded asymmetrically (left `N`, right
//!    `N/10`). This is the family where the eager point at `N = 10^4`
//!    is *affordable enough to measure honestly*: one timed call
//!    ([`Bench::record_single`], minutes of refinement — warmup and
//!    sampling are off the table). The asymptote gate in verify.sh
//!    reads these records: lazy must win at 10^4 and the factor must
//!    grow from 10^3 to 10^4.
//! 3. **Redefine sweep** — a 1000-state chain of 200 five-state SCC
//!    blocks, edited eight times in the *source* block (the one no
//!    other SCC reaches). From-scratch recomputation pays the full
//!    simulation fixpoint per edit; the interned graph's
//!    [`InternedGraph::advance`] re-derives only the dirty SCC and
//!    must carry the other 199 blocks over unchanged.
//!
//! Every sweep asserts exactness (verdict agreement, bit-identical
//! quotients) before its timings count.

use sl_bench::{header, Scoreboard};
use sl_buchi::{
    included_antichain, included_onthefly_with_cache, random_buchi, scratch_quotient, Buchi,
    BuchiBuilder, InternedGraph, QuotientCache, RandomConfig,
};
use sl_omega::Alphabet;
use sl_support::bench::{black_box, Bench};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// A live core drowned in `padding` unreachable, successor-free
/// states — the same family as the memory-regression acceptance test
/// in `tests/interned_core.rs`, sized up for wall-clock measurement.
fn pad(core: &Buchi, padding: usize) -> Buchi {
    let sigma = core.alphabet().clone();
    let mut builder = BuchiBuilder::new(sigma.clone());
    let n = core.num_states();
    let ids: Vec<usize> = (0..n).map(|q| builder.add_state(core.is_accepting(q))).collect();
    for q in 0..n {
        for sym in sigma.symbols() {
            for &r in core.successors(q, sym) {
                builder.add_transition(ids[q], sym, ids[r]);
            }
        }
    }
    for _ in 0..padding {
        builder.add_state(false);
    }
    builder.build(ids[core.initial()])
}

/// The random core: 8 states, direct-simulation quotient 6 — small
/// enough that the identical-core antichain search stays far inside
/// the budget, large enough that the search is exercised.
fn random_core(sigma: &Alphabet) -> Buchi {
    random_buchi(
        sigma,
        21,
        RandomConfig {
            states: 8,
            density_percent: 120,
            accepting_percent: 40,
        },
    )
}

/// The structured core: accepting `A`, rejecting `B`, every symbol
/// from either to both. Simulation refines in one changing pass
/// (quotient 2), which is what keeps the eager 10^4 point measurable.
fn struct_core(sigma: &Alphabet) -> Buchi {
    let mut builder = BuchiBuilder::new(sigma.clone());
    let a = builder.add_state(true);
    let b = builder.add_state(false);
    for sym in sigma.symbols() {
        for &src in &[a, b] {
            builder.add_transition(src, sym, a);
            builder.add_transition(src, sym, b);
        }
    }
    builder.build(a)
}

/// A chain of `blocks` strongly connected 5-state cycles, each linked
/// to the next: `blocks` separate SCCs, so an edit in the source block
/// leaves every downstream block's simulation rows clean.
fn scc_chain(sigma: &Alphabet, blocks: usize, accepting_mask: u32) -> Buchi {
    const BLOCK: usize = 5;
    let mut builder = BuchiBuilder::new(sigma.clone());
    let a = sigma.symbols().next().expect("nonempty alphabet");
    let b = sigma.symbols().nth(1).expect("two-symbol alphabet");
    let mut ids = Vec::with_capacity(blocks * BLOCK);
    for block in 0..blocks {
        for i in 0..BLOCK {
            // The mask edits acceptance bits in the source block only.
            let accepting = if block == 0 {
                accepting_mask & (1 << i) != 0
            } else {
                (block + i) % 3 == 0
            };
            ids.push(builder.add_state(accepting));
        }
    }
    for block in 0..blocks {
        let base = block * BLOCK;
        for i in 0..BLOCK {
            builder.add_transition(ids[base + i], a, ids[base + (i + 1) % BLOCK]);
        }
        if block + 1 < blocks {
            builder.add_transition(ids[base], b, ids[base + BLOCK]);
        } else {
            builder.add_transition(ids[base], b, ids[base]);
        }
    }
    builder.build(ids[0])
}

fn lazy_holds(a: &Buchi, b: &Buchi) -> bool {
    // A fresh cache per call: the measurement covers the full
    // trim + quotient + search pipeline, not a cache hit.
    included_onthefly_with_cache(&QuotientCache::new(), a, b)
        .expect("lazy antichain budget")
        .holds()
}

fn main() -> ExitCode {
    header(
        "E16",
        "Interned core at scale: lazy vs eager inclusion, incremental vs scratch quotients",
    );
    let sigma = Alphabet::ab();
    let mut board = Scoreboard::new();
    let mut bench = Bench::from_env();
    let ratio = |num: Duration, den: Duration| num.as_nanos() as f64 / den.as_nanos().max(1) as f64;

    // -- Random family ------------------------------------------------
    // Identical cores on both sides (padding differs by one state):
    // the inclusion HOLDS, so neither engine exits early on a
    // counterexample.
    let rcore = random_core(&sigma);
    let rand_pairs: Vec<(usize, Buchi, Buchi)> = [1_000usize, 10_000, 100_000]
        .into_iter()
        .map(|n| (n, pad(&rcore, n), pad(&rcore, n + 1)))
        .collect();
    let (_, ra1k, rb1k) = &rand_pairs[0];
    board.claim(
        "random family: lazy and eager agree (HOLDS) at 10^3",
        lazy_holds(ra1k, rb1k) && included_antichain(ra1k, rb1k).expect("eager budget").holds(),
    );
    let mut rand_lazy = Vec::new();
    for (n, a, b) in &rand_pairs {
        rand_lazy.push(bench.measure(&format!("incl/lazy/rand/{n}"), || {
            black_box(lazy_holds(a, b));
        }));
    }
    let rand_eager_1k = bench.measure("incl/eager/rand/1000", || {
        black_box(included_antichain(ra1k, rb1k).expect("eager budget").holds());
    });
    board.claim(
        "random family: lazy at 10^5 raw states beats eager at 10^3",
        rand_lazy[2] < rand_eager_1k,
    );

    // -- Structured family --------------------------------------------
    let score = struct_core(&sigma);
    let (sa1k, sb1k) = (pad(&score, 1_000), pad(&score, 100));
    let (sa10k, sb10k) = (pad(&score, 10_000), pad(&score, 1_000));
    board.claim(
        "structured family: lazy and eager agree (HOLDS) at 10^3",
        lazy_holds(&sa1k, &sb1k) && included_antichain(&sa1k, &sb1k).expect("eager budget").holds(),
    );
    let struct_lazy_1k = bench.measure("incl/lazy/struct/1000", || {
        black_box(lazy_holds(&sa1k, &sb1k));
    });
    let struct_lazy_10k = bench.measure("incl/lazy/struct/10000", || {
        black_box(lazy_holds(&sa10k, &sb10k));
    });
    let struct_eager_1k = bench.measure("incl/eager/struct/1000", || {
        black_box(included_antichain(&sa1k, &sb1k).expect("eager budget").holds());
    });
    // The one eager call at 10^4 — minutes of refinement over the raw
    // candidate relation, so warmup + sampling is off the table.
    let start = Instant::now();
    let eager_10k_verdict = included_antichain(&sa10k, &sb10k)
        .expect("eager budget at 10^4")
        .holds();
    let struct_eager_10k = start.elapsed();
    bench.record_single("incl/eager/struct/10000", struct_eager_10k);
    board.claim(
        "structured family: lazy and eager agree (HOLDS) at 10^4",
        lazy_holds(&sa10k, &sb10k) && eager_10k_verdict,
    );

    let speedup_1k = ratio(struct_eager_1k, struct_lazy_1k);
    let speedup_10k = ratio(struct_eager_10k, struct_lazy_10k);
    println!("\nlazy-over-eager speedup (structured family, left-padded):");
    println!("  10^3 raw states: {speedup_1k:.0}x");
    println!("  10^4 raw states: {speedup_10k:.0}x (eager timed once: {struct_eager_10k:.1?})");
    println!("  (random family at 10^5 is lazy-only: a single eager call there");
    println!("   runs tens of minutes — the bill the interned core retires)");
    board.claim(
        "on-the-fly beats eager at the 10^4-state query",
        struct_lazy_10k < struct_eager_10k,
    );
    board.claim(
        "the lazy advantage grows with size (>=2x from 10^3 to 10^4)",
        speedup_10k >= 2.0 * speedup_1k,
    );

    // -- Redefine sweep -----------------------------------------------
    // Eight acceptance edits in the source block of a 200-block chain.
    let versions: Vec<Buchi> = (0..9u32)
        .map(|i| scc_chain(&sigma, 200, 0b10101 ^ i))
        .collect();
    // Exactness first: every advance must land bit-identically on the
    // from-scratch quotient, with the downstream blocks carried clean.
    let mut graph = InternedGraph::new();
    graph.quotient(&versions[0]);
    let mut exact = true;
    let mut clean_total = 0u64;
    for w in versions.windows(2) {
        let report = graph.advance(&w[0], &w[1]);
        clean_total += report.clean_sccs as u64;
        let node = graph.node(&w[1]).expect("advance interns the new version");
        exact &= *node.quotient() == scratch_quotient(&w[1]);
    }
    board.claim("every advance is bit-identical to a scratch quotient", exact);
    board.claim(
        "edits in the source block carry downstream SCCs over clean",
        clean_total > 0,
    );

    let scratch = bench.measure("redefine/scratch/chain1000", || {
        for next in &versions[1..] {
            black_box(scratch_quotient(next).num_states());
        }
    });
    let incremental = bench.measure("redefine/incremental/chain1000", || {
        let mut graph = InternedGraph::new();
        graph.quotient(&versions[0]);
        for w in versions.windows(2) {
            black_box(graph.advance(&w[0], &w[1]).dirty_sccs);
        }
    });
    let redefine_speedup = ratio(scratch, incremental);
    println!("\nredefine chain (8 edits, 1000-state chain of 200 SCC blocks):");
    println!("  scratch     : {scratch:?}");
    println!("  incremental : {incremental:?} ({redefine_speedup:.1}x)");
    board.claim(
        "incremental redefines beat from-scratch recomputation",
        incremental < scratch,
    );

    bench.finish("scale");
    board.finish()
}
