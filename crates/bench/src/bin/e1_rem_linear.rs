//! E1 — Section 2.3 example table: Rem's linear-time properties.
//!
//! Reproduces the paper's classification of p0–p6 (safety / liveness /
//! neither), the closure identities `lcl.p3 = p1` and
//! `lcl.p4 = lcl.p5 = Σ^ω`, and cross-checks every automaton against
//! the semantic oracle on a lasso corpus.

use sl_bench::{header, Scoreboard};
use sl_buchi::{closure, equivalent, universal, Classification};
use sl_ltl::{classify_formula, rem_examples, translate};
use sl_omega::{all_lassos, rem, Alphabet, LinearProperty};
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E1", "Rem's linear-time examples (paper Section 2.3)");
    let sigma = Alphabet::ab();
    let examples = rem_examples(&sigma);
    let expected = [
        ("p0", Classification::Safety, "safety (empty property)"),
        ("p1", Classification::Safety, "safety"),
        ("p2", Classification::Safety, "safety"),
        ("p3", Classification::Neither, "neither (closure is p1)"),
        (
            "p4",
            Classification::Liveness,
            "liveness (closure is Sigma^w)",
        ),
        (
            "p5",
            Classification::Liveness,
            "liveness (closure is Sigma^w)",
        ),
        ("p6", Classification::Both, "both (Sigma^w)"),
    ];

    let mut board = Scoreboard::new();
    println!(
        "{:<4} {:<12} {:<28} {:<10} {:<10}",
        "name", "LTL", "informal", "paper", "measured"
    );
    for (example, (name, want, note)) in examples.iter().zip(expected) {
        let got = classify_formula(&sigma, &example.formula);
        println!(
            "{:<4} {:<12} {:<28} {:<10} {:<10}",
            name,
            example.formula.display(&sigma),
            &example.informal[..example.informal.len().min(28)],
            note.split(' ').next().unwrap_or(""),
            got
        );
        board.claim(&format!("{name} classified as {want}"), got == want);
    }

    // Closure identities.
    let automaton = |i: usize| translate(&sigma, &examples[i].formula);
    board.claim(
        "lcl.p3 = p1",
        equivalent(&closure(&automaton(3)), &automaton(1))
            .map(|r| r.is_ok())
            .unwrap_or(false),
    );
    for i in [4, 5] {
        board.claim(
            &format!("lcl.p{i} = Sigma^w"),
            universal(&closure(&automaton(i)))
                .map(|r| r.is_ok())
                .unwrap_or(false),
        );
    }

    // Semantic cross-check on the lasso corpus.
    let oracles = rem::all(&sigma);
    let corpus = all_lassos(&sigma, 3, 3);
    let mut agreement = true;
    for (example, oracle) in examples.iter().zip(&oracles) {
        let m = translate(&sigma, &example.formula);
        for w in &corpus {
            if m.accepts(w) != oracle.contains(w) {
                agreement = false;
            }
        }
    }
    board.claim(
        &format!(
            "automata agree with semantic oracles on {} lasso words",
            corpus.len()
        ),
        agreement,
    );
    board.finish()
}
