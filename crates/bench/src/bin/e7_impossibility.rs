//! E7 — Theorem 5 and Theorem 4: the impossible fourth combination.
//!
//! Theorem 4 gives three feasible safety/liveness combinations in
//! branching time (ES∧EL, US∧UL, ES∧UL); Theorem 5 rules out the
//! fourth (US∧EL) whenever `fcl.a = A_tot` but `ncl.a < A_tot` — the
//! CTL property `AF a` being the paper's example. This experiment:
//!
//! 1. verifies Theorem 5 exhaustively at the lattice level (all corpus
//!    lattices, all closure pairs `cl1 <= cl2`), and
//! 2. verifies the `AF a` hypotheses concretely over regular trees
//!    (bounded `fcl` universality, absolute `ncl` refutation).

use sl_bench::{header, Scoreboard};
use sl_lattice::{enumerate_closures, generators, no_decomposition_exists, theorem5_applies};
use sl_ltl::parse;
use sl_omega::Alphabet;
use sl_trees::{
    enumerate_regular_trees, fcl_contains_bounded, ncl_refuted_by_path, parse_ctl, RegularTree,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E7", "Theorem 5 - the impossible fourth combination");
    let mut board = Scoreboard::new();

    // Lattice level, exhaustive.
    println!("lattice level (exhaustive over closure pairs):");
    for (name, lattice) in generators::modular_complemented_corpus() {
        if lattice.len() > 8 {
            continue;
        }
        let closures = enumerate_closures(&lattice);
        let mut applicable = 0usize;
        let mut confirmed = true;
        for cl1 in &closures {
            for cl2 in &closures {
                if !cl1.pointwise_leq(&lattice, cl2) {
                    continue;
                }
                for a in 0..lattice.len() {
                    if theorem5_applies(&lattice, cl1, cl2, a) {
                        applicable += 1;
                        if !no_decomposition_exists(&lattice, cl2, cl1, a) {
                            confirmed = false;
                        }
                    }
                }
            }
        }
        println!("  {name:<16} applicable cases: {applicable}");
        board.claim(
            &format!("{name}: all {applicable} Theorem-5 cases have no decomposition"),
            confirmed,
        );
    }

    // Branching-time instance: AF a.
    println!("\nbranching level (AF a):");
    let sigma = Alphabet::ab();
    let af_a = parse_ctl(&sigma, "AF a").unwrap();
    let mut universe: Vec<RegularTree> = enumerate_regular_trees(&sigma, 2, 1);
    universe.extend(enumerate_regular_trees(&sigma, 1, 2));
    let continuations = vec![
        RegularTree::constant(sigma.clone(), sigma.symbol("a").unwrap(), 1),
        RegularTree::constant(sigma.clone(), sigma.symbol("b").unwrap(), 1),
    ];
    board.claim(
        "hypothesis fcl(AF a) = A_tot on universe",
        universe
            .iter()
            .all(|y| fcl_contains_bounded(y, &af_a, 2, &continuations, 1).is_ok()),
    );
    // ncl(AF a) < A_tot: the all-b-path witness refuted absolutely.
    let a = sigma.symbol("a").unwrap();
    let b = sigma.symbol("b").unwrap();
    let witness = RegularTree::new(
        sigma.clone(),
        vec![b, b, a],
        vec![vec![1, 2], vec![1], vec![2]],
        0,
    );
    let f_a = parse(&sigma, "F a").unwrap();
    board.claim(
        "hypothesis ncl(AF a) < A_tot: all-b-path witness refuted absolutely",
        ncl_refuted_by_path(&witness, 1, &[vec![1]], &f_a),
    );
    println!(
        "  => by Theorem 5, AF a has no decomposition into a universally safe\n     and an existentially live property (the lattice-level check above\n     is the exhaustive form of that conclusion)."
    );
    board.finish()
}
