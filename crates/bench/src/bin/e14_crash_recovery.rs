//! E14 (perf) — crash recovery: write-ahead journal replay vs
//! snapshot-assisted recovery across snapshot intervals.
//!
//! The durability layer journals every state-mutating request ahead of
//! dispatch and periodically folds the journal into an atomic
//! snapshot. Recovery cost is therefore a dial: with no snapshots the
//! daemon replays the whole journal; with an interval of `e` it loads
//! one snapshot and replays at most `e` records. This experiment
//! populates identical daemon state under three intervals, crashes the
//! daemon cold (drop, no drain), and measures full recovery
//! (`Service::with_persistence`) per interval. Measured:
//!
//! * `persist/recover/journal_only` — interval 0: pure journal replay;
//! * `persist/recover/snap64`      — interval 64;
//! * `persist/recover/snap512`     — interval 512.
//!
//! Correctness gates come first: every recovered daemon must answer a
//! probe suffix byte-identically to an uninterrupted twin, and the
//! snapshot configurations must replay strictly fewer journal records
//! than the journal-only one. `BENCH_persist.json` records the
//! medians; `scripts/verify.sh` gates on this artifact.

use sl_bench::{header, Scoreboard};
use sl_service::{Json, PersistConfig, Service, ServiceConfig};
use sl_support::bench::{black_box, Bench};
use sl_support::{FaultPlan, SplitMix};
use std::path::PathBuf;
use std::process::ExitCode;

/// Requests in the populated session (journaled ones dominate).
const SESSION: usize = 1200;

fn config() -> ServiceConfig {
    ServiceConfig {
        fault: FaultPlan::disabled(),
        threads: 1,
        ..ServiceConfig::default()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sl-e14-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The seeded session: three HOA-defined policies, then a stream of
/// `monitor-step`s (each one a journal record) over eight concurrent
/// monitor sessions, with occasional redefinitions and decompositions.
fn session(seed: u64) -> Vec<String> {
    let sigma = sl_omega::Alphabet::ab();
    let mut rng = SplitMix::new(seed);
    let mut lines = Vec::with_capacity(SESSION);
    let names = ["p0", "p1", "p2"];
    let define = |rng: &mut SplitMix, name: &str| {
        let b = sl_buchi::random_buchi(
            &sigma,
            rng.next_u64(),
            sl_buchi::RandomConfig {
                states: 1 + rng.below(4),
                density_percent: 60,
                accepting_percent: 50,
            },
        );
        let hoa = sl_buchi::hoa::to_hoa(&b, name)
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        format!("{{\"verb\":\"define\",\"name\":\"{name}\",\"hoa\":\"{hoa}\"}}")
    };
    for name in names {
        lines.push(define(&mut rng, name));
    }
    while lines.len() < SESSION {
        match rng.below(16) {
            0 => {
                let name = names[rng.below(names.len())];
                lines.push(define(&mut rng, name));
            }
            1 => lines.push(format!(
                "{{\"verb\":\"decompose\",\"target\":\"{}\"}}",
                names[rng.below(names.len())]
            )),
            _ => {
                let symbols: Vec<&str> = (0..1 + rng.below(3))
                    .map(|_| if rng.flip() { "\"a\"" } else { "\"b\"" })
                    .collect();
                lines.push(format!(
                    "{{\"verb\":\"monitor-step\",\"monitor\":\"m{}\",\"target\":\"{}\",\"symbols\":[{}]}}",
                    rng.below(8),
                    names[rng.below(names.len())],
                    symbols.join(",")
                ));
            }
        }
    }
    lines
}

/// Queries the recovered daemon must answer exactly like the twin.
fn probe() -> Vec<String> {
    let mut p: Vec<String> = ["p0", "p1", "p2"]
        .iter()
        .map(|n| format!("{{\"verb\":\"classify\",\"target\":\"{n}\"}}"))
        .collect();
    for m in 0..8 {
        p.push(format!(
            "{{\"verb\":\"monitor-step\",\"monitor\":\"m{m}\",\"target\":\"p0\",\"symbols\":[\"a\",\"b\"]}}"
        ));
    }
    p
}

/// Journal records the last recovery replayed, per the daemon's own
/// `stats` report.
fn replayed_records(svc: &mut Service) -> u64 {
    let stats = svc.handle_line(r#"{"verb":"stats"}"#).line;
    sl_service::json::parse(&stats)
        .ok()
        .and_then(|doc| {
            doc.get("result")?
                .get("persist")?
                .get("replayed_records")
                .and_then(Json::as_u64)
        })
        .expect("persistent stats carry replayed_records")
}

fn main() -> ExitCode {
    header(
        "E14",
        "Crash recovery: journal replay vs snapshot-assisted recovery",
    );
    let lines = session(2003);
    let probe = probe();
    let mut board = Scoreboard::new();

    // The uninterrupted twin's probe answers are the contract.
    let twin = Service::new(config());
    for line in &lines {
        twin.handle_line(line);
    }
    let want: Vec<String> = probe.iter().map(|l| twin.handle_line(l).line).collect();

    // Populate one directory per snapshot interval, then crash cold.
    let intervals: [(u64, &str); 3] = [(0, "journal_only"), (64, "snap64"), (512, "snap512")];
    let mut dirs = Vec::new();
    for &(every, tag) in &intervals {
        let dir = scratch(tag);
        let pc = PersistConfig {
            dir: dir.clone(),
            snapshot_every: every,
        };
        let svc = Service::with_persistence(config(), &pc).expect("populate");
        for line in &lines {
            svc.handle_line(line);
        }
        drop(svc); // crash: journal (+ snapshots), no drain
        dirs.push((every, tag, dir));
    }

    // Correctness before clocks: every recovered daemon answers the
    // probe byte-identically, and snapshots actually bound the replay.
    let mut replayed = Vec::new();
    for (every, tag, dir) in &dirs {
        let pc = PersistConfig {
            dir: dir.clone(),
            snapshot_every: *every,
        };
        let mut svc = Service::with_persistence(config(), &pc).expect("recover");
        let n = replayed_records(&mut svc);
        let got: Vec<String> = probe.iter().map(|l| svc.handle_line(l).line).collect();
        board.claim(
            &format!("{tag}: recovered daemon answers the probe like the twin"),
            got == want,
        );
        println!("  {tag:<12}: replayed {n} journal records");
        replayed.push(n);
    }
    board.claim(
        "snap64 replays fewer records than journal_only",
        replayed[1] < replayed[0],
    );
    board.claim(
        "snap512 replays fewer records than journal_only",
        replayed[2] < replayed[0],
    );
    board.claim("journal_only replays every journaled request", replayed[0] > 900);

    // Measured passes: a full recovery per call. Recovery does not
    // mutate a clean directory, so repeated recoveries are identical
    // work — exactly what the medians should capture.
    let mut bench = Bench::from_env();
    let mut medians = Vec::new();
    for (every, tag, dir) in &dirs {
        let pc = PersistConfig {
            dir: dir.clone(),
            snapshot_every: *every,
        };
        let med = bench.measure(&format!("persist/recover/{tag}"), || {
            black_box(Service::with_persistence(config(), &pc).expect("recover"));
        });
        medians.push(med);
    }

    println!("\nrecovery (median):");
    for ((_, tag, _), med) in dirs.iter().zip(&medians) {
        println!("  {tag:<12}: {:>9.3} ms", med.as_secs_f64() * 1e3);
    }
    let rps = replayed[0] as f64 / medians[0].as_secs_f64().max(1e-12);
    println!("journal replay rate: {rps:.0} records/sec");
    board.claim(
        "snapshot-assisted recovery (snap64) is no slower than full replay",
        medians[1] <= medians[0],
    );

    for (_, _, dir) in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    bench.finish("persist");
    board.finish()
}
