//! E3 — Figure 2: modular-but-not-distributive shows Theorem 7's
//! distributivity hypothesis is necessary.
//!
//! Reproduces the figure's claims on M3 (bottom relabeled `a`): the
//! lattice is modular but not distributive (with the caption's
//! instance); for the closure mapping `a` to `s`: `s` is a safety
//! element, `a = s /\ z`, `b ∈ cmp(cl.a)`, yet `z <= a \/ b` fails —
//! while the Theorem 2 decomposition itself (needing only modularity)
//! still goes through.

use sl_bench::{header, Scoreboard};
use sl_lattice::{decompose, figure2, verify_decomposition};
use std::process::ExitCode;

fn main() -> ExitCode {
    header("E3", "Figure 2 - the distributivity counterexample (M3)");
    let fig = figure2();
    let lattice = &fig.lattice;
    let names = ["a", "s", "b", "z", "1"];

    println!("Hasse diagram (cover pairs):");
    for (lo, hi) in lattice.poset().cover_pairs() {
        println!("  {} < {}", names[lo], names[hi]);
    }
    println!("closure: a -> s (forcing b, z -> 1 by monotonicity)");
    println!();

    let mut board = Scoreboard::new();
    board.claim("lattice is modular", lattice.is_modular());
    board.claim("lattice is NOT distributive", !lattice.is_distributive());
    // Caption instance: s /\ (b \/ z) = s but (s /\ b) \/ (s /\ z) = a.
    board.claim(
        "caption instance: s /\\ (b \\/ z) = s",
        lattice.meet(fig.s, lattice.join(fig.b, fig.z)) == fig.s,
    );
    board.claim(
        "caption instance: (s /\\ b) \\/ (s /\\ z) = a",
        lattice.join(lattice.meet(fig.s, fig.b), lattice.meet(fig.s, fig.z)) == fig.a,
    );

    board.claim("s is a cl-safety element", fig.closure.is_safety(fig.s));
    board.claim("a = s /\\ z", lattice.meet(fig.s, fig.z) == fig.a);
    board.claim(
        "b is a complement of cl.a = s",
        lattice
            .complements(fig.closure.apply(fig.a))
            .contains(&fig.b),
    );
    board.claim(
        "Theorem 7 conclusion FAILS: z <= a \\/ b does not hold",
        !lattice.leq(fig.z, lattice.join(fig.a, fig.b)),
    );

    // Theorem 2 survives (modularity suffices for the decomposition).
    let ok = decompose(lattice, &fig.closure, fig.a)
        .map(|d| verify_decomposition(lattice, &fig.closure, &fig.closure, &fig.a, &d))
        .unwrap_or(false);
    board.claim(
        "Theorem 2 decomposition of a still valid (modularity suffices)",
        ok,
    );
    board.finish()
}
