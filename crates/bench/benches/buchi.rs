//! Wall-clock benchmarks for the Büchi layer: the closure operator, the
//! two complementation constructions, and the full decomposition.

use sl_buchi::{closure, complement, complement_safety, decompose, random_buchi, RandomConfig};
use sl_omega::Alphabet;
use sl_support::bench::{black_box, Bench};

fn machines(states: usize) -> Vec<sl_buchi::Buchi> {
    let sigma = Alphabet::ab();
    (0..8)
        .map(|seed| {
            random_buchi(
                &sigma,
                seed,
                RandomConfig {
                    states,
                    ..RandomConfig::default()
                },
            )
        })
        .collect()
}

fn main() {
    let mut bench = Bench::from_env();

    for states in [4usize, 8, 16, 32] {
        let ms = machines(states);
        bench.measure(&format!("buchi/closure/{states}"), || {
            for m in &ms {
                black_box(closure(m));
            }
        });
    }

    for states in [4usize, 8, 12] {
        let closures: Vec<_> = machines(states).iter().map(closure).collect();
        bench.measure(&format!("buchi/complement_safety/{states}"), || {
            for m in &closures {
                black_box(complement_safety(m));
            }
        });
    }

    for states in [2usize, 3, 4] {
        let ms = machines(states);
        bench.measure(&format!("buchi/complement_rank/{states}"), || {
            for m in &ms {
                let _ = black_box(complement(m));
            }
        });
    }

    for states in [4usize, 8, 12] {
        let ms = machines(states);
        bench.measure(&format!("buchi/decompose/{states}"), || {
            for m in &ms {
                black_box(decompose(m));
            }
        });
    }
    bench.finish("buchi");
}
