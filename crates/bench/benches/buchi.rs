//! Criterion benchmarks for the Büchi layer: the closure operator, the
//! two complementation constructions, and the full decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl_buchi::{closure, complement, complement_safety, decompose, random_buchi, RandomConfig};
use sl_omega::Alphabet;
use std::hint::black_box;

fn machines(states: usize) -> Vec<sl_buchi::Buchi> {
    let sigma = Alphabet::ab();
    (0..8)
        .map(|seed| {
            random_buchi(
                &sigma,
                seed,
                RandomConfig {
                    states,
                    ..RandomConfig::default()
                },
            )
        })
        .collect()
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("buchi/closure");
    for states in [4usize, 8, 16, 32] {
        let ms = machines(states);
        group.bench_with_input(BenchmarkId::from_parameter(states), &ms, |b, ms| {
            b.iter(|| {
                for m in ms {
                    black_box(closure(m));
                }
            })
        });
    }
    group.finish();
}

fn bench_safety_complement(c: &mut Criterion) {
    let mut group = c.benchmark_group("buchi/complement_safety");
    for states in [4usize, 8, 12] {
        let closures: Vec<_> = machines(states).iter().map(closure).collect();
        group.bench_with_input(BenchmarkId::from_parameter(states), &closures, |b, cs| {
            b.iter(|| {
                for m in cs {
                    black_box(complement_safety(m));
                }
            })
        });
    }
    group.finish();
}

fn bench_rank_complement(c: &mut Criterion) {
    let mut group = c.benchmark_group("buchi/complement_rank");
    group.sample_size(10);
    for states in [2usize, 3, 4] {
        let ms = machines(states);
        group.bench_with_input(BenchmarkId::from_parameter(states), &ms, |b, ms| {
            b.iter(|| {
                for m in ms {
                    let _ = black_box(complement(m));
                }
            })
        });
    }
    group.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("buchi/decompose");
    for states in [4usize, 8, 12] {
        let ms = machines(states);
        group.bench_with_input(BenchmarkId::from_parameter(states), &ms, |b, ms| {
            b.iter(|| {
                for m in ms {
                    black_box(decompose(m));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_closure,
    bench_safety_complement,
    bench_rank_complement,
    bench_decompose
);
criterion_main!(benches);
