//! Wall-clock benchmarks for the game layer: Zielonka on random parity
//! games and the IAR reduction for Rabin games.

use sl_games::{solve, solve_rabin, ParityGame, Player, RabinGame};
use sl_support::bench::{black_box, Bench};

fn random_parity(n: usize, seed: u64) -> ParityGame {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let owner: Vec<Player> = (0..n)
        .map(|_| {
            if next() % 2 == 0 {
                Player::Even
            } else {
                Player::Odd
            }
        })
        .collect();
    let priority: Vec<u32> = (0..n).map(|_| (next() % 6) as u32).collect();
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let mut outs: Vec<usize> = (0..(1 + next() % 3)).map(|_| next() % n).collect();
            outs.sort_unstable();
            outs.dedup();
            outs
        })
        .collect();
    ParityGame::new(owner, priority, succ)
}

fn main() {
    let mut bench = Bench::from_env();

    for n in [8usize, 32, 128, 512] {
        let games: Vec<ParityGame> = (0..4).map(|s| random_parity(n, s)).collect();
        bench.measure(&format!("games/zielonka/{n}"), || {
            for g in &games {
                black_box(solve(g));
            }
        });
    }

    for (n, pairs) in [(6usize, 1usize), (6, 2), (6, 3), (10, 2)] {
        // Build a Rabin game with `pairs` random pairs over a random
        // arena.
        let base = random_parity(n, 99);
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let rabin = RabinGame {
            owner: (0..n).map(|v| base.owner(v)).collect(),
            succ: (0..n).map(|v| base.successors(v).to_vec()).collect(),
            pairs: (0..pairs)
                .map(|_| {
                    let green: Vec<bool> = (0..n).map(|_| next() % 3 == 0).collect();
                    let red: Vec<bool> = (0..n).map(|_| next() % 4 == 0).collect();
                    (green, red)
                })
                .collect(),
        };
        bench.measure(&format!("games/rabin_iar/n{n}_k{pairs}"), || {
            black_box(solve_rabin(&rabin));
        });
    }
    bench.finish("games");
}
