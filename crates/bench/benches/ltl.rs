//! Wall-clock benchmarks for the LTL layer: lasso evaluation and the
//! tableau translation on the experiment corpus.

use sl_ltl::{eval, parse, translate};
use sl_omega::{all_lassos, Alphabet};
use sl_support::bench::{black_box, Bench};

const CORPUS: &[&str] = &[
    "a & F !a",
    "F G !a",
    "G F a",
    "G (a -> F b)",
    "(F a) & (F b)",
    "a W b",
];

fn main() {
    let mut bench = Bench::from_env();
    let sigma = Alphabet::ab();
    let words = all_lassos(&sigma, 3, 3);

    for text in CORPUS {
        let f = parse(&sigma, text).unwrap();
        bench.measure(&format!("ltl/eval/{text}"), || {
            for w in &words {
                black_box(eval(&f, w));
            }
        });
    }

    for text in CORPUS {
        let f = parse(&sigma, text).unwrap();
        bench.measure(&format!("ltl/translate/{text}"), || {
            black_box(translate(&sigma, &f));
        });
    }
    bench.finish("ltl");
}
