//! Criterion benchmarks for the LTL layer: lasso evaluation and the
//! tableau translation on the experiment corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl_ltl::{eval, parse, translate};
use sl_omega::{all_lassos, Alphabet};
use std::hint::black_box;

const CORPUS: &[&str] = &[
    "a & F !a",
    "F G !a",
    "G F a",
    "G (a -> F b)",
    "(F a) & (F b)",
    "a W b",
];

fn bench_eval(c: &mut Criterion) {
    let sigma = Alphabet::ab();
    let words = all_lassos(&sigma, 3, 3);
    let mut group = c.benchmark_group("ltl/eval");
    for text in CORPUS {
        let f = parse(&sigma, text).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(text), &f, |b, f| {
            b.iter(|| {
                for w in &words {
                    black_box(eval(f, w));
                }
            })
        });
    }
    group.finish();
}

fn bench_translate(c: &mut Criterion) {
    let sigma = Alphabet::ab();
    let mut group = c.benchmark_group("ltl/translate");
    for text in CORPUS {
        let f = parse(&sigma, text).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(text), &f, |b, f| {
            b.iter(|| black_box(translate(&sigma, f)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval, bench_translate);
criterion_main!(benches);
