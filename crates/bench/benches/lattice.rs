//! Wall-clock benchmarks for the lattice core: law checking, closure
//! construction, and the decomposition, as lattice size grows.

use sl_lattice::{decompose, generators, random_closure, Closure};
use sl_support::bench::{black_box, Bench};

fn main() {
    let mut bench = Bench::from_env();

    for atoms in [2usize, 3, 4, 5] {
        let lattice = generators::boolean(atoms);
        bench.measure(&format!("lattice/laws/is_distributive_B{atoms}"), || {
            black_box(lattice.is_distributive());
        });
        bench.measure(&format!("lattice/laws/is_modular_B{atoms}"), || {
            black_box(lattice.is_modular());
        });
    }

    for atoms in [3usize, 4, 5, 6] {
        let lattice = generators::boolean(atoms);
        // Fixpoints: the upper half-interval [atom0, top].
        let base: Vec<usize> = (0..lattice.len()).filter(|x| x & 1 == 1).collect();
        bench.measure(&format!("lattice/closure/from_fixpoints_B{atoms}"), || {
            black_box(Closure::from_fixpoints(&lattice, &base).unwrap());
        });
    }

    for atoms in [3usize, 4, 5, 6] {
        let lattice = generators::boolean(atoms);
        let cl = random_closure(&lattice, 42);
        bench.measure(&format!("lattice/decompose/all_elements_B{atoms}"), || {
            for a in 0..lattice.len() {
                black_box(decompose(&lattice, &cl, a).unwrap());
            }
        });
    }
    bench.finish("lattice");
}
