//! Criterion benchmarks for the lattice core: law checking, closure
//! construction, and the decomposition, as lattice size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sl_lattice::{decompose, generators, random_closure, Closure};
use std::hint::black_box;

fn bench_law_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice/laws");
    for atoms in [2usize, 3, 4, 5] {
        let lattice = generators::boolean(atoms);
        group.bench_with_input(
            BenchmarkId::new("is_distributive_B", atoms),
            &lattice,
            |b, l| b.iter(|| black_box(l.is_distributive())),
        );
        group.bench_with_input(BenchmarkId::new("is_modular_B", atoms), &lattice, |b, l| {
            b.iter(|| black_box(l.is_modular()))
        });
    }
    group.finish();
}

fn bench_closure_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice/closure");
    for atoms in [3usize, 4, 5, 6] {
        let lattice = generators::boolean(atoms);
        // Fixpoints: the upper half-interval [atom0, top].
        let base: Vec<usize> = (0..lattice.len()).filter(|x| x & 1 == 1).collect();
        group.bench_with_input(
            BenchmarkId::new("from_fixpoints_B", atoms),
            &(&lattice, base),
            |b, (l, base)| b.iter(|| black_box(Closure::from_fixpoints(l, base).unwrap())),
        );
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice/decompose");
    for atoms in [3usize, 4, 5, 6] {
        let lattice = generators::boolean(atoms);
        let cl = random_closure(&lattice, 42);
        group.bench_with_input(
            BenchmarkId::new("all_elements_B", atoms),
            &(&lattice, cl),
            |b, (l, cl)| {
                b.iter(|| {
                    for a in 0..l.len() {
                        black_box(decompose(l, cl, a).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_law_checks,
    bench_closure_construction,
    bench_decomposition
);
criterion_main!(benches);
