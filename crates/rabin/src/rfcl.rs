//! The finite-depth closure `rfcl` on Rabin tree automata and the
//! Theorem 9 decomposition.
//!
//! Section 4.4: if `L(B) = ∅` then `rfcl.B = B`; otherwise restrict to
//! the states `q` with `L(B(q)) ≠ ∅` and replace the acceptance with
//! the trivial condition generated from `(Q', ∅)` (every run accepts).
//! The paper (citing its reference \[14\]) shows `L(rfcl.B) = fcl(L(B))`.
//!
//! **Substitution note (DESIGN.md §3.2):** Theorem 9's liveness side is
//! `B_live` with `L(B_live) = L(B) ∪ ¬L(rfcl.B)`, whose construction
//! as an *automaton* requires Rabin tree-automaton complementation
//! (Rabin's theorem) — out of scope. We realize the liveness side as
//! the decidable per-tree predicate `t ∈ L(B) ∨ t ∉ L(rfcl.B)`
//! ([`Decomposition::liveness_contains`]), which suffices to verify the
//! decomposition identity tree by tree.

use crate::automaton::RabinTreeAutomaton;
use crate::games::{accepts, is_empty, nonempty_states};
use sl_trees::RegularTree;

/// The finite-depth closure of a Rabin tree automaton.
#[must_use]
pub fn rfcl(automaton: &RabinTreeAutomaton) -> RabinTreeAutomaton {
    if is_empty(automaton) {
        return automaton.clone();
    }
    let keep = nonempty_states(automaton);
    automaton.restrict_and_trivialize(&keep)
}

/// Whether `L(B)` is an (existentially/universally, per the trivialized
/// condition) *safe* tree language: `L(rfcl.B) ⊆ L(B)` checked on the
/// given sample trees (the reverse inclusion always holds).
/// Returns the first counterexample tree index, if any.
#[must_use]
pub fn safety_counterexample(
    automaton: &RabinTreeAutomaton,
    samples: &[RegularTree],
) -> Option<usize> {
    let closure = rfcl(automaton);
    samples
        .iter()
        .position(|t| accepts(&closure, t) && !accepts(automaton, t))
}

/// The Theorem 9 decomposition: a safety automaton plus the liveness
/// side as a decidable predicate.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The original automaton.
    pub automaton: RabinTreeAutomaton,
    /// `B_safe = rfcl(B)`; `L(B_safe) = fcl(L(B))`.
    pub safe: RabinTreeAutomaton,
}

/// Decomposes per Theorem 9 (with the complementation substitution).
#[must_use]
pub fn decompose(automaton: &RabinTreeAutomaton) -> Decomposition {
    Decomposition {
        automaton: automaton.clone(),
        safe: rfcl(automaton),
    }
}

impl Decomposition {
    /// Membership in the liveness side `L(B) ∪ ¬L(rfcl.B)`.
    #[must_use]
    pub fn liveness_contains(&self, tree: &RegularTree) -> bool {
        accepts(&self.automaton, tree) || !accepts(&self.safe, tree)
    }

    /// Membership in the safety side.
    #[must_use]
    pub fn safety_contains(&self, tree: &RegularTree) -> bool {
        accepts(&self.safe, tree)
    }

    /// Verifies the decomposition identity
    /// `L(B) = L(B_safe) ∩ L(B_live)` on the given trees; returns the
    /// first violating index.
    #[must_use]
    pub fn check_on(&self, samples: &[RegularTree]) -> Option<usize> {
        samples.iter().position(|t| {
            accepts(&self.automaton, t) != (self.safety_contains(t) && self.liveness_contains(t))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::RabinTreeBuilder;
    use sl_omega::Alphabet;
    use sl_trees::{enumerate_regular_trees, RegularTree};

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// AF b over binary trees (Büchi condition).
    fn af_b_binary() -> RabinTreeAutomaton {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let bb = s.symbol("b").unwrap();
        let mut b = RabinTreeBuilder::new(s, 2);
        let wait = b.add_state();
        let done = b.add_state();
        b.add_transition(wait, a, &[wait, wait]);
        b.add_transition(wait, bb, &[done, done]);
        b.add_transition(done, a, &[done, done]);
        b.add_transition(done, bb, &[done, done]);
        b.build_buchi(wait, &[done])
    }

    /// "Root is a" over binary trees — a safety-shaped language.
    fn root_a_binary() -> RabinTreeAutomaton {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let bb = s.symbol("b").unwrap();
        let mut b = RabinTreeBuilder::new(s, 2);
        let start = b.add_state();
        let any = b.add_state();
        b.add_transition(start, a, &[any, any]);
        b.add_transition(any, a, &[any, any]);
        b.add_transition(any, bb, &[any, any]);
        b.build_buchi(start, &[any])
    }

    fn samples() -> Vec<RegularTree> {
        let s = sigma();
        let mut trees = enumerate_regular_trees(&s, 2, 2);
        // A binary version of the paper's two-path witness: root a,
        // left subtree all-a, right subtree all-b.
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        trees.push(RegularTree::new(
            s.clone(),
            vec![a, a, b],
            vec![vec![1, 2], vec![1, 1], vec![2, 2]],
            0,
        ));
        trees
    }

    #[test]
    fn rfcl_of_empty_is_identity() {
        let s = sigma();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        let m = b.build_buchi(q0, &[q0]);
        assert!(is_empty(&m));
        assert_eq!(rfcl(&m), m);
    }

    #[test]
    fn rfcl_is_extensive_on_samples() {
        let m = af_b_binary();
        let c = rfcl(&m);
        for t in samples() {
            if accepts(&m, &t) {
                assert!(accepts(&c, &t), "extensivity failed on {t:?}");
            }
        }
    }

    #[test]
    fn rfcl_is_idempotent_on_samples() {
        let m = af_b_binary();
        let c = rfcl(&m);
        let cc = rfcl(&c);
        for t in samples() {
            assert_eq!(accepts(&c, &t), accepts(&cc, &t), "{t:?}");
        }
    }

    #[test]
    fn rfcl_of_af_b_is_universal_on_samples() {
        // fcl(AF b) = A_tot: every finite truncation extends with b's.
        let m = af_b_binary();
        let c = rfcl(&m);
        for t in samples() {
            assert!(accepts(&c, &t), "closure should accept {t:?}");
        }
    }

    #[test]
    fn rfcl_matches_bounded_fcl_oracle() {
        // Cross-check L(rfcl B) against the bounded fcl checker from
        // sl-trees, for the AF b property (whose CTL form we know).
        let s = sigma();
        let m = af_b_binary();
        let c = rfcl(&m);
        let af_b = sl_trees::parse_ctl(&s, "AF b").unwrap();
        let continuations = vec![
            RegularTree::constant(s.clone(), s.symbol("a").unwrap(), 2),
            RegularTree::constant(s.clone(), s.symbol("b").unwrap(), 2),
        ];
        for t in samples() {
            let in_closure = accepts(&c, &t);
            let oracle = sl_trees::fcl_contains_bounded(&t, &af_b, 2, &continuations, 2).is_ok();
            assert_eq!(in_closure, oracle, "{t:?}");
        }
    }

    #[test]
    fn safety_language_is_its_own_closure() {
        let m = root_a_binary();
        assert_eq!(safety_counterexample(&m, &samples()), None);
    }

    #[test]
    fn liveness_language_is_not_safe() {
        let m = af_b_binary();
        // rfcl(AF b) accepts everything, but AF b itself does not:
        // safety fails with a counterexample.
        assert!(safety_counterexample(&m, &samples()).is_some());
    }

    #[test]
    fn theorem9_decomposition_on_samples() {
        for m in [af_b_binary(), root_a_binary()] {
            let d = decompose(&m);
            assert_eq!(d.check_on(&samples()), None);
        }
    }

    #[test]
    fn liveness_side_is_dense_on_samples() {
        // Every sample tree is in fcl of the liveness side — here we
        // check the weaker, decidable statement that the liveness side
        // contains every tree OUTSIDE the closure and every tree in
        // L(B).
        let m = af_b_binary();
        let d = decompose(&m);
        for t in samples() {
            if accepts(&m, &t) || !d.safety_contains(&t) {
                assert!(d.liveness_contains(&t));
            }
        }
    }
}
