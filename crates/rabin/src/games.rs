//! Acceptance and emptiness games for Rabin tree automata.
//!
//! * **Membership** of a regular tree: the automaton (player Even)
//!   proposes transition tuples; the pathfinder (player Odd) picks
//!   directions. The tree is accepted iff Even wins the Rabin game from
//!   the root — every Odd-chosen path then satisfies the Rabin
//!   condition, which is exactly the run-acceptance of Section 4.4.
//! * **Emptiness**: the same game where Even also picks the input
//!   symbol. Even wins iff some (regular, by finite-memory determinacy)
//!   tree is accepted.
//!
//! Both games are solved through `sl-games` (index appearance records →
//! parity → Zielonka).

use crate::automaton::RabinTreeAutomaton;
use sl_games::{solve_rabin, Player, RabinGame};
use sl_trees::RegularTree;

/// Whether the automaton accepts the regular tree.
///
/// # Panics
///
/// Panics if the alphabets differ or some tree node's branching width
/// differs from the automaton's arity.
#[must_use]
pub fn accepts(automaton: &RabinTreeAutomaton, tree: &RegularTree) -> bool {
    assert_eq!(automaton.alphabet(), tree.alphabet(), "alphabet mismatch");
    for v in 0..tree.num_graph_nodes() {
        assert_eq!(
            tree.children(v).len(),
            automaton.arity(),
            "tree branching must match automaton arity"
        );
    }
    let nq = automaton.num_states();
    let nv = tree.num_graph_nodes();
    let k = automaton.arity();

    // Vertices:
    //   Eve vertex (v, q): id = v * nq + q              -- pick a tuple
    //   Adam vertex per (v, q, tuple index): appended    -- pick a branch
    //   sink: Eve-trap (no tuple available): last vertex
    let eve = |v: usize, q: usize| v * nq + q;
    let mut owner = vec![Player::Even; nv * nq];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nv * nq];
    let mut state_of: Vec<Option<usize>> = vec![None; nv * nq];
    for v in 0..nv {
        for q in 0..nq {
            state_of[eve(v, q)] = Some(q);
        }
    }
    // Materialize Adam vertices.
    for v in 0..nv {
        let sym = tree.label_at_node(v);
        for q in 0..nq {
            for tuple in automaton.transitions(q, sym) {
                let adam = owner.len();
                owner.push(Player::Odd);
                state_of.push(None);
                let mut dirs = Vec::with_capacity(k);
                for (d, &qnext) in tuple.iter().enumerate() {
                    dirs.push(eve(tree.children(v)[d], qnext));
                }
                succ.push(dirs);
                succ[eve(v, q)].push(adam);
            }
        }
    }
    // Eve vertices with no tuple go to a losing sink.
    let sink = owner.len();
    owner.push(Player::Even);
    state_of.push(None);
    succ.push(vec![sink]);
    for outs in succ.iter_mut().take(nv * nq) {
        if outs.is_empty() {
            outs.push(sink);
        }
    }
    // Rabin pairs lifted to the arena: flags live on Eve state vertices;
    // Adam vertices and the sink are neutral (the sink never satisfies
    // any pair, so Eve loses there, as intended).
    let pairs: Vec<(Vec<bool>, Vec<bool>)> = automaton
        .pairs()
        .iter()
        .map(|(green, red)| {
            let g: Vec<bool> = state_of
                .iter()
                .map(|s| s.is_some_and(|q| green[q]))
                .collect();
            let r: Vec<bool> = state_of.iter().map(|s| s.is_some_and(|q| red[q])).collect();
            (g, r)
        })
        .collect();
    let game = RabinGame { owner, succ, pairs };
    let solution = solve_rabin(&game);
    solution.winner[eve(tree.root(), automaton.initial())] == Player::Even
}

/// Per-state emptiness: `result[q]` iff `L(B(q)) ≠ ∅`.
#[must_use]
pub fn nonempty_states(automaton: &RabinTreeAutomaton) -> Vec<bool> {
    let nq = automaton.num_states();
    // Vertices: Eve (q): pick symbol + tuple; Adam per (q, sym, tuple).
    let mut owner = vec![Player::Even; nq];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nq];
    let mut state_of: Vec<Option<usize>> = (0..nq).map(Some).collect();
    for q in 0..nq {
        for sym in automaton.alphabet().symbols() {
            for tuple in automaton.transitions(q, sym) {
                let adam = owner.len();
                owner.push(Player::Odd);
                state_of.push(None);
                succ.push(tuple.clone());
                succ[q].push(adam);
            }
        }
    }
    let sink = owner.len();
    owner.push(Player::Even);
    state_of.push(None);
    succ.push(vec![sink]);
    for outs in succ.iter_mut().take(nq) {
        if outs.is_empty() {
            outs.push(sink);
        }
    }
    let pairs: Vec<(Vec<bool>, Vec<bool>)> = automaton
        .pairs()
        .iter()
        .map(|(green, red)| {
            let g: Vec<bool> = state_of
                .iter()
                .map(|s| s.is_some_and(|q| green[q]))
                .collect();
            let r: Vec<bool> = state_of.iter().map(|s| s.is_some_and(|q| red[q])).collect();
            (g, r)
        })
        .collect();
    let game = RabinGame { owner, succ, pairs };
    let solution = solve_rabin(&game);
    (0..nq)
        .map(|q| solution.winner[q] == Player::Even)
        .collect()
}

/// Whether `L(B) = ∅`.
#[must_use]
pub fn is_empty(automaton: &RabinTreeAutomaton) -> bool {
    !nonempty_states(automaton)[automaton.initial()]
}

/// Extension trait making the label of a graph node accessible by node
/// id (the `RegularTree` API exposes labels by path; games need them by
/// graph node).
trait LabelAtNode {
    fn label_at_node(&self, v: usize) -> sl_omega::Symbol;
}

impl LabelAtNode for RegularTree {
    fn label_at_node(&self, v: usize) -> sl_omega::Symbol {
        self.label(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::RabinTreeBuilder;
    use sl_omega::Alphabet;
    use sl_trees::RegularTree;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// Automaton over unary trees accepting exactly the all-a sequence.
    fn all_a_unary() -> RabinTreeAutomaton {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        b.add_transition(q0, a, &[q0]);
        b.build_buchi(q0, &[q0])
    }

    /// Binary-tree automaton accepting trees where every path eventually
    /// hits a `b` (AF b): state w = waiting (green only after b).
    fn af_b_binary() -> RabinTreeAutomaton {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let bb = s.symbol("b").unwrap();
        let mut b = RabinTreeBuilder::new(s, 2);
        let wait = b.add_state();
        let done = b.add_state();
        b.add_transition(wait, a, &[wait, wait]);
        b.add_transition(wait, bb, &[done, done]);
        b.add_transition(done, a, &[done, done]);
        b.add_transition(done, bb, &[done, done]);
        b.build_buchi(wait, &[done])
    }

    fn const_tree(name: &str, width: usize) -> RegularTree {
        let s = sigma();
        RegularTree::constant(s.clone(), s.symbol(name).unwrap(), width)
    }

    #[test]
    fn unary_membership() {
        let m = all_a_unary();
        assert!(accepts(&m, &const_tree("a", 1)));
        assert!(!accepts(&m, &const_tree("b", 1)));
    }

    #[test]
    fn af_b_membership() {
        let s = sigma();
        let m = af_b_binary();
        // Constant-b: accepted immediately.
        assert!(accepts(&m, &const_tree("b", 2)));
        // Constant-a: the all-a paths never reach `done`; rejected.
        assert!(!accepts(&m, &const_tree("a", 2)));
        // Root a, both children constant-b: accepted.
        let a = s.symbol("a").unwrap();
        let bb = s.symbol("b").unwrap();
        let t = RegularTree::new(s.clone(), vec![a, bb], vec![vec![1, 1], vec![1, 1]], 0);
        assert!(accepts(&m, &t));
        // Root a, one branch all-a: rejected (the all-a path dodges b).
        let t = RegularTree::new(
            s.clone(),
            vec![a, a, bb],
            vec![vec![1, 2], vec![1, 1], vec![2, 2]],
            0,
        );
        assert!(!accepts(&m, &t));
    }

    #[test]
    fn membership_matches_ctl_oracle() {
        // Differential: AF b automaton vs the CTL checker, on all
        // 2-node binary regular trees.
        let s = sigma();
        let m = af_b_binary();
        let af_b = sl_trees::parse_ctl(&s, "AF b").unwrap();
        for t in sl_trees::enumerate_regular_trees(&s, 2, 2) {
            assert_eq!(accepts(&m, &t), t.satisfies(&af_b), "mismatch on {t:?}");
        }
    }

    #[test]
    fn emptiness_basic() {
        let m = all_a_unary();
        assert!(!is_empty(&m));
        // An automaton with no transitions is empty.
        let s = sigma();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        let m = b.build_buchi(q0, &[q0]);
        assert!(is_empty(&m));
    }

    #[test]
    fn emptiness_needs_green_cycle() {
        // Transitions exist but the only loop never meets the green set.
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.add_transition(q0, a, &[q0]);
        let m = b.build_buchi(q0, &[q1]);
        assert!(is_empty(&m));
    }

    #[test]
    fn red_states_can_empty_a_language() {
        // Single loop through a red state: Rabin condition fails.
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        b.add_transition(q0, a, &[q0]);
        let m = b.build_rabin(q0, &[(vec![q0], vec![q0])]);
        assert!(is_empty(&m));
    }

    #[test]
    fn per_state_emptiness() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        let dead = b.add_state();
        b.add_transition(q0, a, &[q0]);
        // `dead` has no transitions at all.
        let m = b.build_buchi(q0, &[q0]);
        assert_eq!(nonempty_states(&m), vec![true, false]);
        let _ = dead;
    }

    #[test]
    #[should_panic(expected = "branching must match")]
    fn arity_mismatch_rejected() {
        let m = af_b_binary();
        let _ = accepts(&m, &const_tree("a", 1));
    }
}
