//! Tests for the parity (Rabin-chain) acceptance on tree automata,
//! cross-checked against Büchi encodings and word-level semantics on
//! lasso-embedded sequence trees.

#![cfg(test)]

use crate::automaton::{RabinTreeAutomaton, RabinTreeBuilder};
use crate::games::{accepts, is_empty};
use sl_omega::Alphabet;
use sl_trees::RegularTree;

fn sigma() -> Alphabet {
    Alphabet::ab()
}

/// A deterministic unary parity automaton whose run mirrors the input
/// word: state `qa` after reading `a`, state `qb` after reading `b`,
/// with the given priorities. On the sequence tree of a lasso word, the
/// unique run's acceptance is the parity of the word's tail.
fn unary_tracker(pa: u32, pb: u32, p0: u32) -> RabinTreeAutomaton {
    let s = sigma();
    let a = s.symbol("a").unwrap();
    let b = s.symbol("b").unwrap();
    let mut builder = RabinTreeBuilder::new(s, 1);
    let q0 = builder.add_state();
    let qa = builder.add_state();
    let qb = builder.add_state();
    for from in [q0, qa, qb] {
        builder.add_transition(from, a, &[qa]);
        builder.add_transition(from, b, &[qb]);
    }
    builder.build_parity(q0, &[p0, pa, pb])
}

#[test]
fn parity_on_sequences_matches_word_semantics() {
    // Priorities: seeing `a` emits 2 (good), seeing `b` emits 1 (bad):
    // accept iff `a` occurs infinitely often — GF a.
    let s = sigma();
    let m = unary_tracker(2, 1, 0);
    for w in sl_omega::all_lassos(&s, 2, 3) {
        let tree = RegularTree::from_lasso(&w, s.clone(), 1);
        let a = s.symbol("a").unwrap();
        assert_eq!(accepts(&m, &tree), w.infinitely_often(a), "{w}");
    }
}

#[test]
fn parity_dual_accepts_fg() {
    // Priorities: a -> 1, b -> 2: accept iff b infinitely often.
    let s = sigma();
    let m = unary_tracker(1, 2, 0);
    for w in sl_omega::all_lassos(&s, 2, 3) {
        let tree = RegularTree::from_lasso(&w, s.clone(), 1);
        let b = s.symbol("b").unwrap();
        assert_eq!(accepts(&m, &tree), w.infinitely_often(b), "{w}");
    }
}

#[test]
fn buchi_condition_as_parity() {
    // priorities 2 on accepting, 1 on others == Büchi. Differential on
    // the AF b automaton shape.
    let s = sigma();
    let a = s.symbol("a").unwrap();
    let bb = s.symbol("b").unwrap();
    let build = |parity: bool| {
        let mut builder = RabinTreeBuilder::new(s.clone(), 2);
        let wait = builder.add_state();
        let done = builder.add_state();
        builder.add_transition(wait, a, &[wait, wait]);
        builder.add_transition(wait, bb, &[done, done]);
        builder.add_transition(done, a, &[done, done]);
        builder.add_transition(done, bb, &[done, done]);
        if parity {
            builder.build_parity(wait, &[1, 2])
        } else {
            builder.build_buchi(wait, &[done])
        }
    };
    let via_parity = build(true);
    let via_buchi = build(false);
    for t in sl_trees::enumerate_regular_trees(&s, 2, 2) {
        assert_eq!(accepts(&via_parity, &t), accepts(&via_buchi, &t), "{t:?}");
    }
}

#[test]
fn odd_only_parity_is_empty() {
    let s = sigma();
    let a = s.symbol("a").unwrap();
    let mut builder = RabinTreeBuilder::new(s, 1);
    let q0 = builder.add_state();
    builder.add_transition(q0, a, &[q0]);
    let m = builder.build_parity(q0, &[1]);
    assert!(is_empty(&m));
}

#[test]
fn max_parity_dominates() {
    // Two states alternating with priorities 1 and 2: max inf = 2, even
    // — the alternating word is accepted; priorities 2 and 3: max inf
    // = 3 — rejected.
    let s = sigma();
    let a = s.symbol("a").unwrap();
    let b = s.symbol("b").unwrap();
    let build = |p: [u32; 2]| {
        let mut builder = RabinTreeBuilder::new(s.clone(), 1);
        let q0 = builder.add_state();
        let q1 = builder.add_state();
        builder.add_transition(q0, a, &[q1]);
        builder.add_transition(q1, b, &[q0]);
        builder.build_parity(q0, &p)
    };
    let ab_tree = RegularTree::from_lasso(&sl_omega::LassoWord::parse(&s, "", "a b"), s.clone(), 1);
    assert!(accepts(&build([1, 2]), &ab_tree));
    assert!(!accepts(&build([2, 3]), &ab_tree));
}
