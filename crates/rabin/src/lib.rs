//! # sl-rabin
//!
//! Rabin tree automata on k-ary infinite trees (paper, Section 4.4):
//! game-based membership of regular trees and emptiness (through
//! `sl-games`' index-appearance-record reduction and Zielonka), the
//! finite-depth closure `rfcl`, and the Theorem 9 safety/liveness
//! decomposition.
//!
//! The one deliberate substitution (documented in DESIGN.md): Rabin
//! tree-automaton *complementation* is Rabin's theorem and out of
//! scope, so the decomposition's liveness side is realized as a
//! decidable per-tree predicate `t ∈ L(B) ∪ ¬L(rfcl.B)` instead of an
//! explicit automaton.
//!
//! ```
//! use sl_omega::Alphabet;
//! use sl_rabin::{accepts, RabinTreeBuilder};
//! use sl_trees::RegularTree;
//!
//! // Unary-tree automaton accepting exactly a^ω.
//! let sigma = Alphabet::ab();
//! let a = sigma.symbol("a").unwrap();
//! let mut builder = RabinTreeBuilder::new(sigma.clone(), 1);
//! let q0 = builder.add_state();
//! builder.add_transition(q0, a, &[q0]);
//! let automaton = builder.build_buchi(q0, &[q0]);
//!
//! let all_a = RegularTree::constant(sigma.clone(), a, 1);
//! assert!(accepts(&automaton, &all_a));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod automaton;
pub mod games;
#[cfg(test)]
mod parity_tests;
pub mod rfcl;

pub use automaton::{RabinTreeAutomaton, RabinTreeBuilder, StateId};
pub use games::{accepts, is_empty, nonempty_states};
pub use rfcl::{decompose, rfcl, safety_counterexample, Decomposition};
