//! Rabin tree automata on k-ary infinite trees (paper, Section 4.4).
//!
//! A Rabin tree automaton is `(Σ, Q, q0, δ, Φ)` with
//! `δ : Q × Σ → P(Q^k)` and `Φ` a list of `(green, red)` pairs; a run
//! is accepting iff along every infinite path some pair has its green
//! set visited infinitely often and its red set only finitely often.
//! Büchi tree automata are the one-pair special case `(F, ∅)`.

use sl_omega::{Alphabet, Symbol};

/// A state of a tree automaton.
pub type StateId = usize;

/// A Rabin tree automaton over `k`-ary trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RabinTreeAutomaton {
    alphabet: Alphabet,
    arity: usize,
    initial: StateId,
    /// `delta[state][symbol]` is the list of transition tuples, each of
    /// length `arity`.
    delta: Vec<Vec<Vec<Vec<StateId>>>>,
    /// The pairs `(green, red)` as per-state membership flags.
    pairs: Vec<(Vec<bool>, Vec<bool>)>,
}

/// Builder for [`RabinTreeAutomaton`].
#[derive(Debug, Clone)]
pub struct RabinTreeBuilder {
    alphabet: Alphabet,
    arity: usize,
    states: usize,
    delta: Vec<Vec<Vec<Vec<StateId>>>>,
}

impl RabinTreeBuilder {
    /// Starts a builder for `k`-ary tree automata.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    #[must_use]
    pub fn new(alphabet: Alphabet, arity: usize) -> Self {
        assert!(arity > 0, "arity must be positive");
        RabinTreeBuilder {
            alphabet,
            arity,
            states: 0,
            delta: Vec::new(),
        }
    }

    /// Adds a state.
    pub fn add_state(&mut self) -> StateId {
        self.states += 1;
        self.delta.push(vec![Vec::new(); self.alphabet.len()]);
        self.states - 1
    }

    /// Adds a transition tuple: in state `from` reading `sym`, send
    /// `tuple[d]` into direction `d`.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range or the tuple length differs from
    /// the arity.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, tuple: &[StateId]) {
        assert!(from < self.states, "from-state out of range");
        assert_eq!(tuple.len(), self.arity, "tuple length must equal arity");
        for &q in tuple {
            assert!(q < self.states, "tuple state out of range");
        }
        assert!(sym.index() < self.alphabet.len(), "symbol out of range");
        let tuples = &mut self.delta[from][sym.index()];
        let tuple = tuple.to_vec();
        if !tuples.contains(&tuple) {
            tuples.push(tuple);
        }
    }

    /// Finishes with a Rabin condition given as `(green, red)` state
    /// lists.
    ///
    /// # Panics
    ///
    /// Panics if `initial` or any pair state is out of range.
    #[must_use]
    pub fn build_rabin(
        self,
        initial: StateId,
        pairs: &[(Vec<StateId>, Vec<StateId>)],
    ) -> RabinTreeAutomaton {
        assert!(initial < self.states, "initial out of range");
        let mut flag_pairs = Vec::new();
        for (green, red) in pairs {
            let mut gflags = vec![false; self.states];
            let mut rflags = vec![false; self.states];
            for &q in green {
                assert!(q < self.states, "green state out of range");
                gflags[q] = true;
            }
            for &q in red {
                assert!(q < self.states, "red state out of range");
                rflags[q] = true;
            }
            flag_pairs.push((gflags, rflags));
        }
        RabinTreeAutomaton {
            alphabet: self.alphabet,
            arity: self.arity,
            initial,
            delta: self.delta,
            pairs: flag_pairs,
        }
    }

    /// Finishes with a Büchi condition: the single pair `(accepting, ∅)`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` or an accepting state is out of range.
    #[must_use]
    pub fn build_buchi(self, initial: StateId, accepting: &[StateId]) -> RabinTreeAutomaton {
        let pairs = vec![(accepting.to_vec(), Vec::new())];
        self.build_rabin(initial, &pairs)
    }

    /// Finishes with a max-parity condition (a run path is accepting iff
    /// the maximal priority occurring infinitely often on it is even),
    /// encoded as the Rabin chain: one pair per even priority `d` with
    /// `green = {pr = d}` and `red = {pr > d}`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range or `priorities` has the wrong
    /// length.
    #[must_use]
    pub fn build_parity(self, initial: StateId, priorities: &[u32]) -> RabinTreeAutomaton {
        assert_eq!(
            priorities.len(),
            self.states,
            "priority list must cover all states"
        );
        let top = priorities.iter().copied().max().unwrap_or(0);
        let mut pairs = Vec::new();
        for d in (0..=top).filter(|d| d % 2 == 0) {
            let green: Vec<StateId> = (0..self.states).filter(|&q| priorities[q] == d).collect();
            let red: Vec<StateId> = (0..self.states).filter(|&q| priorities[q] > d).collect();
            pairs.push((green, red));
        }
        self.build_rabin(initial, &pairs)
    }
}

impl RabinTreeAutomaton {
    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The tree arity `k`.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.delta.len()
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The transition tuples for `(state, symbol)`.
    #[must_use]
    pub fn transitions(&self, state: StateId, sym: Symbol) -> &[Vec<StateId>] {
        &self.delta[state][sym.index()]
    }

    /// The Rabin pairs as per-state flags.
    #[must_use]
    pub fn pairs(&self) -> &[(Vec<bool>, Vec<bool>)] {
        &self.pairs
    }

    /// Total number of transition tuples.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.delta
            .iter()
            .map(|row| row.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// The automaton `B(q)` — same structure rooted at `q` (Section 4.4
    /// notation).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn rooted_at(&self, q: StateId) -> RabinTreeAutomaton {
        assert!(q < self.num_states(), "state out of range");
        let mut out = self.clone();
        out.initial = q;
        out
    }

    /// Restricts to the states where `keep` holds (dropping transitions
    /// touching removed states) and replaces the acceptance with the
    /// trivial condition `{(Q', ∅)}` — the second half of the `rfcl`
    /// construction. State ids are preserved (removed states keep their
    /// slots but lose all transitions and flags).
    ///
    /// # Panics
    ///
    /// Panics if the mask size mismatches.
    #[must_use]
    pub fn restrict_and_trivialize(&self, keep: &[bool]) -> RabinTreeAutomaton {
        assert_eq!(keep.len(), self.num_states(), "mask size mismatch");
        let mut delta = self.delta.clone();
        for (q, row) in delta.iter_mut().enumerate() {
            for tuples in row.iter_mut() {
                if !keep[q] {
                    tuples.clear();
                } else {
                    tuples.retain(|tuple| tuple.iter().all(|&t| keep[t]));
                }
            }
        }
        let green: Vec<bool> = keep.to_vec();
        let red = vec![false; self.num_states()];
        RabinTreeAutomaton {
            alphabet: self.alphabet.clone(),
            arity: self.arity,
            initial: self.initial,
            delta,
            pairs: vec![(green, red)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn builder_roundtrip() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 2);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.add_transition(q0, a, &[q1, q1]);
        b.add_transition(q1, a, &[q1, q1]);
        let m = b.build_buchi(q0, &[q1]);
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.arity(), 2);
        assert_eq!(m.initial(), 0);
        assert_eq!(m.transitions(q0, a), &[vec![1, 1]]);
        assert_eq!(m.pairs().len(), 1);
        assert!(m.pairs()[0].0[1]);
        assert!(!m.pairs()[0].0[0]);
        assert_eq!(m.num_transitions(), 2);
    }

    #[test]
    fn duplicate_tuples_ignored() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        b.add_transition(q0, a, &[q0]);
        b.add_transition(q0, a, &[q0]);
        let m = b.build_buchi(q0, &[q0]);
        assert_eq!(m.num_transitions(), 1);
    }

    #[test]
    fn rooted_at_changes_initial() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.add_transition(q0, a, &[q1]);
        b.add_transition(q1, a, &[q1]);
        let m = b.build_buchi(q0, &[q1]);
        assert_eq!(m.rooted_at(1).initial(), 1);
    }

    #[test]
    fn restrict_and_trivialize_prunes() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.add_transition(q0, a, &[q0]);
        b.add_transition(q0, a, &[q1]);
        b.add_transition(q1, a, &[q1]);
        let m = b.build_buchi(q0, &[q0]);
        let r = m.restrict_and_trivialize(&[true, false]);
        // Tuples into q1 are gone; q1 itself has none left.
        assert_eq!(r.transitions(0, a), &[vec![0]]);
        assert!(r.transitions(1, a).is_empty());
        // Trivial condition: green everywhere kept, no red.
        assert!(r.pairs()[0].0[0]);
        assert!(!r.pairs()[0].0[1]);
        assert!(r.pairs()[0].1.iter().all(|&x| !x));
    }

    #[test]
    #[should_panic(expected = "tuple length must equal arity")]
    fn arity_mismatch_rejected() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = RabinTreeBuilder::new(s, 2);
        let q0 = b.add_state();
        b.add_transition(q0, a, &[q0]);
    }
}
