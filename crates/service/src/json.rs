//! Hand-rolled JSON: a value type, a recursive-descent parser, and a
//! deterministic renderer.
//!
//! The workspace builds fully offline with no registry dependencies
//! (`tests/no_registry_deps.rs`), so the daemon's wire format is
//! implemented here rather than pulled from serde. Two properties the
//! protocol layer leans on:
//!
//! * **Insertion-ordered objects** — [`Json::Obj`] is a `Vec` of pairs,
//!   not a map, so a rendered response's key order is exactly the order
//!   the handler pushed keys. Golden-transcript tests diff responses
//!   byte-for-byte; a hash map would shuffle them.
//! * **Bounded recursion** — [`parse`] caps nesting depth at
//!   [`MAX_DEPTH`], so a hostile `[[[[...` line cannot blow the daemon's
//!   stack (the framing layer already caps line length).

use std::fmt::Write as _;

/// Maximum nesting depth [`parse`] accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order (see module docs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload widened to `u64`, if nonnegative.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value as compact JSON (no whitespace), with object
    /// keys in insertion order — deterministic for transcript diffing.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/Infinity; degrade to null rather
                    // than emit an unparsable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte {:?} at byte {}", b as char, *pos)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if !fractional {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn read_hex4(bytes: &[u8], start: usize) -> Result<u32, String> {
    let hex = bytes
        .get(start..start + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let hex = std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape".to_string())?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = read_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // A high surrogate followed by an escaped low
                        // surrogate is one astral-plane scalar (JSON
                        // strings are UTF-16 on the wire). Lone or
                        // mismatched surrogates degrade to U+FFFD; the
                        // protocol never emits them.
                        let scalar = if (0xD800..0xDC00).contains(&code)
                            && bytes.get(*pos + 1) == Some(&b'\\')
                            && bytes.get(*pos + 2) == Some(&b'u')
                        {
                            match read_hex4(bytes, *pos + 3) {
                                Ok(low) if (0xDC00..0xE000).contains(&low) => {
                                    *pos += 6;
                                    0x1_0000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                }
                                _ => code,
                            }
                        } else {
                            code
                        };
                        out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. The input is a &str, so the
                // byte stream is valid UTF-8 by construction.
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input is valid utf-8");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_representative_document() {
        let text = r#"{"verb":"define","name":"x","n":3,"neg":-7,"rate":0.5,"ok":true,"none":null,"arr":[1,"two",[]],"esc":"a\"b\\c\ndA"}"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("verb").and_then(Json::as_str), Some("define"));
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("neg"), Some(&Json::Int(-7)));
        assert_eq!(doc.get("rate"), Some(&Json::Float(0.5)));
        assert_eq!(doc.get("esc").and_then(Json::as_str), Some("a\"b\\c\ndA"));
        // Render → reparse is identity (render is canonical, so the
        // rendered text differs from the input only in escapes).
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn key_order_is_preserved_in_render() {
        let doc = Json::obj(vec![
            ("zebra", Json::Int(1)),
            ("alpha", Json::Int(2)),
            ("mid", Json::Bool(false)),
        ]);
        assert_eq!(doc.render(), r#"{"zebra":1,"alpha":2,"mid":false}"#);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "{\"a\":1} extra",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut text = String::new();
        for _ in 0..(MAX_DEPTH + 2) {
            text.push('[');
        }
        for _ in 0..(MAX_DEPTH + 2) {
            text.push(']');
        }
        let err = parse(&text).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_one_scalar() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1f600}".to_string())
        );
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap(),
            Json::Str("\u{1f600}".to_string())
        );
        // Lone or mismatched surrogates degrade to U+FFFD without
        // corrupting the surrounding text.
        assert_eq!(
            parse("\"a\\ud83db\"").unwrap(),
            Json::Str("a\u{fffd}b".to_string())
        );
        assert_eq!(
            parse("\"\\ude00\"").unwrap(),
            Json::Str("\u{fffd}".to_string())
        );
        assert_eq!(
            parse("\"\\ud83d\\ud83d\"").unwrap(),
            Json::Str("\u{fffd}\u{fffd}".to_string())
        );
    }

    #[test]
    fn control_characters_render_escaped() {
        let doc = Json::Str("a\u{1}b".to_string());
        assert_eq!(doc.render(), "\"a\\u0001b\"");
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }
}
