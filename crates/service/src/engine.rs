//! The service core: verb dispatch over a registry, memoizing query
//! cache, per-request budgets, batch fan-out, and fault drills.
//!
//! # Concurrency model
//!
//! A [`Service`] is a cheap cloneable handle over one shared daemon
//! core, so any number of connection threads can serve requests
//! against the same state. What is shared and how (see DESIGN S10 for
//! the full protocol):
//!
//! * the **registry** sits behind an `RwLock` — queries take read
//!   locks and run concurrently, `define`/`decompose` take the write
//!   lock only for the insert itself;
//! * the **query cache** and the rank engine's complement cache are
//!   sharded into striped locks keyed by structural hash (see
//!   [`crate::cache`]); an in-flight table additionally deduplicates
//!   concurrent computes of the same cold query — the first claimant
//!   computes, everyone else waits on a condvar and re-probes;
//! * **monitor sessions and compiled fleets** share one mutex (they
//!   are one namespace daemon-wide, so a snapshot taken by any
//!   connection captures every session);
//! * counters are atomics; engine totals aggregate under their own
//!   mutex.
//!
//! Mutating verbs (`define`, `decompose`, `monitor-step`) serialize
//! through the **mutation lock** — the persist slot's mutex — so the
//! journal's append order *is* dispatch order and crash recovery
//! replays exactly the interleaving that was served. Lock order is
//! persist → registry → sessions → cache shard → engine totals;
//! `stats` takes its locks one at a time and never nests them.
//!
//! `shutdown` drains under the mutation lock: it flips the stopped
//! flag, flushes the journal, writes a final snapshot, and every
//! later request — including one that was already waiting on the
//! mutation lock — gets a typed `shutting_down` rejection. `quit`
//! ends only the issuing connection.
//!
//! # Determinism contract
//!
//! For a fixed request script served over a *single* connection (and
//! the default antichain engine), the response byte stream is
//! identical at any `SL_THREADS` — the golden transcripts in
//! `tests/service_protocol.rs` and the verify.sh `service` stage hold
//! the daemon to this. The load-bearing choices:
//!
//! * requests — and the items of a `batch` — are assigned fault-site
//!   indices sequentially at intake, so whether `sl.service.request`
//!   fires never depends on scheduling;
//! * batch items probe the cache sequentially in item order, misses
//!   are computed in parallel, and results are committed sequentially
//!   in item order — cache counters and contents end up
//!   schedule-independent;
//! * engine counters ([`EngineStats`]) are measured per query *on the
//!   worker thread that ran it* and the deltas are summed in item
//!   order. Antichain counters are a pure function of the query, so
//!   the totals reported by `stats` are deterministic under the
//!   default engine. (The rank engine's complement cache is shared
//!   process-wide, so its hit/miss split depends on what else is
//!   running — transcripts that pin `SL_INCL_ENGINE=rank` should not
//!   diff a `stats` response.)
//!
//! With multiple connections, the guarantee each client keeps is
//! *transcript independence*: for sessions that touch disjoint names
//! and skip `stats`, the response stream is byte-for-byte what a solo
//! run of the same script would have produced, no matter how many
//! other clients are connected (`tests/concurrency.rs` pins this).
//!
//! # Fault tolerance
//!
//! The whole of dispatch runs inside a panic-isolation boundary: a
//! panicking request — organic, in any verb, or injected via the
//! `par.worker` drill site — degrades to a typed `panic` error
//! response; the daemon, its registry, and its cache survive. (Batch
//! items additionally carry their own per-item boundary so one
//! poisoned item cannot take down its siblings.) Because the daemon
//! outlives panics, every lock acquisition absorbs mutex poisoning —
//! each critical section leaves its structure valid. The
//! `sl.service.request` site makes request intake itself drillable
//! under `SL_FAULT_RATE`.

use crate::cache::{QueryCache, QueryCacheStats, QueryKey, QueryKind};
use crate::json::Json;
use crate::persist::{Persist, PersistConfig, PersistError, SessionSnap};
use crate::proto::{
    err_value, kind_of, ok_value, request_from_value, BudgetSpec, ProtoError, Request, Verb,
};
use crate::registry::Registry;
use sl_buchi::{
    classify, closure, decompose, engine_stats, equivalent, equivalent_budgeted,
    equivalent_onthefly_budgeted_with_cache, equivalent_onthefly_with_cache, hoa, incl_engine,
    included, included_budgeted, included_onthefly_budgeted_with_cache,
    included_onthefly_with_cache, is_safety, shared_complement_cache_stats, universal,
    universal_onthefly_with_cache, Buchi, Classification, CompiledMonitor, EngineStats,
    InclEngine, Inclusion, Monitor, MonitorFleet, QuotientCache, Verdict,
};
use sl_omega::Alphabet;
use sl_pdr::{check_liveness, check_safety, LivenessVerdict, SafetyVerdict};
use sl_support::par::{try_par_map_with, ItemOutcome};
use sl_support::{fault, par, Budget, FaultPlan, SlError};
use sl_trees::Kripke;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

/// The fault-injection site charged once per request (batch items
/// included), indexed by intake order.
pub const REQUEST_FAULT_SITE: &str = "sl.service.request";

/// Construction-time knobs for a [`Service`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Fault plan for the `sl.service.request` site. Defaults to the
    /// process-wide plan (`SL_FAULT_SEED`/`SL_FAULT_RATE`); tests pin
    /// explicit plans so golden transcripts stay clean under the
    /// environment drill.
    pub fault: FaultPlan,
    /// Worker count for batch fan-out. Defaults to
    /// `sl_support::par::thread_count()` (the `SL_THREADS` knob).
    pub threads: usize,
    /// Byte cap for one request line (oversized lines are rejected
    /// with a typed error, never buffered whole).
    pub max_line: usize,
    /// Result-cache capacity (cap-and-clear past it).
    pub cache_cap: usize,
    /// Bounded intake: the most items one `batch` may carry. Larger
    /// batches are shed with a typed `overloaded` rejection instead of
    /// letting one client grow the daemon's queue without bound.
    pub max_batch: usize,
    /// Bounded admission: the most concurrent connections the TCP
    /// supervisor serves. Connections beyond the cap get one typed
    /// `overloaded` rejection line and are closed (the `--max-conns`
    /// flag).
    pub max_conns: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            fault: *fault::global(),
            threads: par::thread_count(),
            max_line: 1 << 20,
            cache_cap: 256,
            max_batch: 1024,
            max_conns: 64,
        }
    }
}

/// A monitor session: the policy automaton's alphabet (for symbol
/// lookup), the automaton itself (snapshots serialize it per session,
/// so sessions that outlive a redefinition of their target name stay
/// bound to the automaton they actually watch), and where the stepped
/// state lives.
#[derive(Debug)]
struct MonitorSession {
    target: String,
    source: Arc<Buchi>,
    alphabet: Alphabet,
    backend: SessionBackend,
}

/// Where a session's monitor state lives. Safety-classified targets
/// compile once into a shared dense table and the session is one `u16`
/// slot in that table's [`MonitorFleet`] — the batched SoA hot path.
/// Everything else (not cl-safety, table too big) keeps a private
/// subset-construction [`Monitor`]; both backends are verdict-identical
/// by construction (the `compiled` conform oracle holds them to it).
#[derive(Debug)]
enum SessionBackend {
    /// Index into [`Sessions::fleets`] plus this session's slot.
    Compiled { fleet: usize, slot: usize },
    /// Private NFA-path monitor (the general fallback).
    Nfa(Monitor),
}

/// One compiled table shared by every session monitoring the same
/// registered automaton. Keyed by `Arc` identity: redefining a name
/// makes a new `Arc`, so stale sessions keep their original table.
#[derive(Debug)]
struct FleetEntry {
    source: Arc<Buchi>,
    fleet: MonitorFleet,
}

/// The monitor-session half of the daemon state: one namespace shared
/// by every connection (so a snapshot captures all sessions), guarded
/// by one mutex because fleets and the sessions indexing into them
/// must move together.
#[derive(Debug, Default)]
struct Sessions {
    monitors: HashMap<String, MonitorSession>,
    fleets: Vec<FleetEntry>,
}

impl Sessions {
    /// Picks a session backend for a target: safety-classified targets
    /// compile into a shared dense-table fleet (reusing the table when
    /// other sessions already watch the same `Arc`); anything else —
    /// not cl-safety, safety check over budget, or a table past the
    /// `u16` cap — falls back to a private NFA-path [`Monitor`].
    ///
    /// The safety check deliberately bypasses the query cache and the
    /// engine totals: `monitor-step` has never touched either, and
    /// keeping it that way preserves every existing golden `stats`
    /// transcript byte-for-byte.
    fn make_backend(&mut self, target: &Arc<Buchi>) -> SessionBackend {
        if matches!(is_safety(target), Ok(true)) {
            if let Some(i) = self
                .fleets
                .iter()
                .position(|entry| Arc::ptr_eq(&entry.source, target))
            {
                let slot = self.fleets[i].fleet.spawn();
                return SessionBackend::Compiled { fleet: i, slot };
            }
            if let Ok(compiled) = CompiledMonitor::new(target) {
                let mut fleet = MonitorFleet::new(&compiled);
                let slot = fleet.spawn();
                self.fleets.push(FleetEntry {
                    source: Arc::clone(target),
                    fleet,
                });
                return SessionBackend::Compiled {
                    fleet: self.fleets.len() - 1,
                    slot,
                };
            }
        }
        SessionBackend::Nfa(Monitor::new(target))
    }
}

/// One handled line's outcome.
#[derive(Debug)]
pub struct Reply {
    /// The response line (no trailing newline).
    pub line: String,
    /// Whether this request ends the issuing session: `true` for
    /// `quit` (connection-local) and `shutdown` (which additionally
    /// drains the whole daemon — the serving loop tells them apart by
    /// [`Service::is_stopped`]).
    pub quit: bool,
}

/// All verbs, in the fixed order the `stats` response reports them.
const STATS_VERBS: [Verb; 12] = [
    Verb::Define,
    Verb::Classify,
    Verb::Decompose,
    Verb::Include,
    Verb::Equivalent,
    Verb::Universal,
    Verb::MonitorStep,
    Verb::Check,
    Verb::Stats,
    Verb::Batch,
    Verb::Shutdown,
    Verb::Quit,
];

/// The verbs the write-ahead journal records: exactly those whose
/// successful dispatch mutates durable state (`decompose` registers
/// the two decomposition parts, so it mutates the registry too).
fn is_journaled(verb: Verb) -> bool {
    matches!(verb, Verb::Define | Verb::Decompose | Verb::MonitorStep)
}

/// The `check` verb's half of the daemon state: LT-PDR engine counters
/// (atomics, summed over every computed check) plus its own memo
/// table. `check` operands are inline Kripke structures, not
/// registered automata, so the query cache's `Arc<Buchi>`-shaped
/// entries cannot hold them; this cache is keyed by a 64-bit hash of
/// the request's canonical text with a stored-text equality check
/// (hash collisions recompute, never corrupt) and the same
/// cap-and-clear policy as every other cache in the workspace.
#[derive(Debug, Default)]
struct CheckState {
    cache: Mutex<CheckCache>,
    /// Frames opened across all computed checks.
    frames: AtomicU64,
    /// Proof obligations discharged.
    obligations: AtomicU64,
    /// Generalizations that strictly strengthened a blocking cube.
    generalizations: AtomicU64,
    /// Sum of the k-liveness bounds the sweeps settled at.
    k_reached: AtomicU64,
}

#[derive(Debug, Default)]
struct CheckCache {
    map: HashMap<u64, (String, Json)>,
    hits: u64,
    misses: u64,
    clears: u64,
    collisions: u64,
}

/// The durability attachment: the journal/snapshot manager plus the
/// replay guard (recovery feeds journaled lines back through dispatch,
/// and those must not be re-journaled).
#[derive(Debug)]
struct PersistState {
    persist: Persist,
    replaying: bool,
    notes: Vec<String>,
}

/// Request/error/session tallies, all atomics so any connection can
/// bump them without a lock.
#[derive(Debug)]
struct Counters {
    verb_counts: [AtomicU64; STATS_VERBS.len()],
    errors: AtomicU64,
    io_errors: AtomicU64,
    /// Sessions ever started (monotone; the `connections` gauge).
    connections: AtomicU64,
    /// Sessions currently being served.
    active_sessions: AtomicU64,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            verb_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
        }
    }
}

/// The daemon core every [`Service`] handle points at.
#[derive(Debug)]
struct Shared {
    config: ServiceConfig,
    registry: RwLock<Registry>,
    sessions: Mutex<Sessions>,
    cache: QueryCache,
    check: CheckState,
    counters: Counters,
    engine_totals: Mutex<EngineStats>,
    /// Per-daemon interned-quotient cache: `define`/`redefine` advance
    /// it incrementally, the on-the-fly inclusion engine reads it.
    /// Private to this service (not the process-global cache) so the
    /// `stats` counters are deterministic under concurrent tests. Its
    /// shard mutexes are leaf locks — never taken while holding the
    /// registry, session, or cache locks.
    quotient: QuotientCache,
    next_request_index: AtomicU64,
    /// The mutation lock: journaled verbs append and dispatch under
    /// it, so journal order is dispatch order (`None` when the
    /// service is not persistent — the lock still serializes
    /// mutators).
    persist: Mutex<Option<PersistState>>,
    /// Set by `shutdown` under the mutation lock; every later request
    /// is refused with `shutting_down`.
    stopped: AtomicBool,
    /// In-flight compute dedup: cache keys currently being computed.
    /// A probe miss claims its key here or waits for the claimant.
    pending: Mutex<HashSet<QueryKey>>,
    pending_done: Condvar,
}

/// The daemon state: registry, monitor sessions, cache, counters —
/// a cloneable handle, one per connection thread.
#[derive(Debug, Clone)]
pub struct Service {
    shared: Arc<Shared>,
}

/// A resolved, cacheable query: what to compute and on what.
struct QueryJob {
    kind: QueryKind,
    left: Arc<Buchi>,
    right: Option<Arc<Buchi>>,
    budget: Option<BudgetSpec>,
}

/// Absorbs mutex poisoning: the daemon survives panics (dispatch is a
/// catch_unwind boundary), so a lock a panicking thread abandoned
/// still guards structurally valid state.
fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

impl Service {
    /// A service with the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            shared: Arc::new(Shared {
                cache: QueryCache::new(config.cache_cap),
                check: CheckState::default(),
                quotient: QuotientCache::with_fault(config.fault),
                config,
                registry: RwLock::new(Registry::new()),
                sessions: Mutex::new(Sessions::default()),
                counters: Counters::default(),
                engine_totals: Mutex::new(EngineStats::default()),
                next_request_index: AtomicU64::new(0),
                persist: Mutex::new(None),
                stopped: AtomicBool::new(false),
                pending: Mutex::new(HashSet::new()),
                pending_done: Condvar::new(),
            }),
        }
    }

    /// A service with default (environment-derived) configuration.
    #[must_use]
    pub fn from_env() -> Self {
        Service::new(ServiceConfig::default())
    }

    /// A durable service: recovers the newest loadable snapshot plus
    /// the journal tail from `persist.dir` (an empty or missing
    /// directory starts clean), then journals every state-mutating
    /// request ahead of dispatch and snapshots every
    /// `persist.snapshot_every` records. Recovery diagnostics are
    /// collected for [`Service::take_recovery_notes`].
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the directory is unusable, a journal
    /// holds a damaged complete record, or a checksum-valid snapshot
    /// decodes to state the engine rejects. Damaged snapshots fall
    /// back to older ones; a truncated journal tail is dropped with a
    /// note, not an error.
    pub fn with_persistence(
        config: ServiceConfig,
        persist: &PersistConfig,
    ) -> Result<Self, PersistError> {
        let started = std::time::Instant::now();
        let (persist, recovered) = Persist::open(persist)?;
        let service = Service::new(config);
        *service.lock_persist() = Some(PersistState {
            persist,
            replaying: true,
            notes: recovered.notes,
        });
        if let Some(snapshot) = &recovered.snapshot {
            service.restore_snapshot(snapshot)?;
        }
        let mut replayed = 0u64;
        for line in &recovered.tail {
            service.replay_line(line);
            replayed += 1;
        }
        let mut guard = service.lock_persist();
        let state = guard.as_mut().expect("attached above");
        state.replaying = false;
        state
            .persist
            .note_recovery(started.elapsed().as_millis() as u64, replayed);
        drop(guard);
        Ok(service)
    }

    // ---- lock helpers (poison-absorbing, in lock order) ------------

    fn lock_persist(&self) -> MutexGuard<'_, Option<PersistState>> {
        relock(self.shared.persist.lock())
    }

    fn read_registry(&self) -> std::sync::RwLockReadGuard<'_, Registry> {
        relock(self.shared.registry.read())
    }

    fn write_registry(&self) -> std::sync::RwLockWriteGuard<'_, Registry> {
        relock(self.shared.registry.write())
    }

    fn lock_sessions(&self) -> MutexGuard<'_, Sessions> {
        relock(self.shared.sessions.lock())
    }

    /// Folds a per-query engine delta into the daemon totals. The
    /// complement- and quotient-cache halves are dropped: those caches
    /// are shared beyond the query (process-wide and daemon-wide
    /// respectively), so `stats` reports them live instead of summing
    /// deltas that other threads' activity would skew.
    fn absorb_engine(&self, delta: &EngineStats) {
        let mut antichain_only = *delta;
        antichain_only.complement_cache = Default::default();
        antichain_only.quotient_cache = Default::default();
        relock(self.shared.engine_totals.lock()).absorb(&antichain_only);
    }

    // ---- lifecycle and session accounting --------------------------

    /// Whether this service journals and snapshots its state.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.lock_persist().is_some()
    }

    /// Whether `shutdown` has drained the daemon (every further
    /// request gets a typed `shutting_down` rejection).
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::SeqCst)
    }

    /// The configured concurrent-connection cap.
    #[must_use]
    pub fn max_conns(&self) -> usize {
        self.shared.config.max_conns
    }

    /// Sessions currently being served (the `active_sessions` gauge).
    #[must_use]
    pub fn active_sessions(&self) -> u64 {
        self.shared.counters.active_sessions.load(Ordering::SeqCst)
    }

    /// Counts a session in (serving loops bracket every session with
    /// [`Service::begin_session`]/[`Service::end_session`]).
    pub(crate) fn begin_session(&self) {
        self.shared.counters.connections.fetch_add(1, Ordering::SeqCst);
        self.shared
            .counters
            .active_sessions
            .fetch_add(1, Ordering::SeqCst);
    }

    /// Counts a session out.
    pub(crate) fn end_session(&self) {
        self.shared
            .counters
            .active_sessions
            .fetch_sub(1, Ordering::SeqCst);
    }

    /// Renders (and counts) the one-line `overloaded` rejection the
    /// TCP supervisor writes to connections beyond `max_conns`.
    pub(crate) fn overloaded_reply(&self) -> String {
        let error = ProtoError::new(
            "overloaded",
            format!(
                "the daemon is at its connection cap ({}); retry later",
                self.shared.config.max_conns
            ),
        );
        self.error_reply(None, &error).line
    }

    /// Drains recovery diagnostics (`[recovered]`-prefixed lines) for
    /// the caller to log; empty on a clean start.
    pub fn take_recovery_notes(&self) -> Vec<String> {
        match self.lock_persist().as_mut() {
            Some(state) => std::mem::take(&mut state.notes),
            None => Vec::new(),
        }
    }

    /// Counts one dropped-connection (or otherwise failed) transport
    /// I/O error; surfaced by `stats` as `io_errors`.
    pub fn note_io_error(&self) {
        self.shared.counters.io_errors.fetch_add(1, Ordering::SeqCst);
    }

    /// Flushes the journal to stable storage and writes a final
    /// snapshot — the graceful half of shutdown, also used by the
    /// listener-close path. Returns `true` when a snapshot was
    /// written (`false` for a non-persistent service).
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the snapshot or sync fails; the journal
    /// is still complete, so recovery remains possible.
    pub fn drain(&self) -> Result<bool, PersistError> {
        let mut persist = self.lock_persist();
        self.drain_with(&mut persist)
    }

    /// The drain body, for callers already holding the mutation lock.
    fn drain_with(&self, persist: &mut Option<PersistState>) -> Result<bool, PersistError> {
        if persist.is_none() {
            return Ok(false);
        }
        let (registry, sessions) = self.snapshot_state();
        let state = persist.as_mut().expect("checked above");
        state.persist.sync()?;
        state.persist.write_snapshot(registry, sessions)?;
        Ok(true)
    }

    /// The configured line cap (the framing layer enforces it).
    #[must_use]
    pub fn max_line(&self) -> usize {
        self.shared.config.max_line
    }

    /// Cache counters (bench reporting).
    #[must_use]
    pub fn cache_stats(&self) -> QueryCacheStats {
        self.shared.cache.stats()
    }

    /// Empties the result cache and zeroes its counters (bench
    /// cold/warm isolation).
    pub fn reset_cache(&self) {
        self.shared.cache.reset();
    }

    // ---- the request path ------------------------------------------

    /// Handles one request line, producing exactly one response line.
    pub fn handle_line(&self, line: &str) -> Reply {
        let doc = match crate::json::parse(line) {
            Ok(doc) => doc,
            Err(message) => {
                return self.error_reply(None, &ProtoError::new("parse", message));
            }
        };
        let id = doc.get("id").cloned();
        let request = match request_from_value(doc) {
            Ok(request) => request,
            Err(error) => return self.error_reply(id.as_ref(), &error),
        };
        if self.is_stopped() {
            return self.error_reply(id.as_ref(), &shutting_down());
        }
        self.count_verb(request.verb);
        let index = self.take_index();
        if let Err(err) = self
            .shared
            .config
            .fault
            .inject_error(REQUEST_FAULT_SITE, index)
        {
            let error = ProtoError::new(kind_of(&err), err.to_string());
            return self.error_reply(id.as_ref(), &error);
        }
        if request.verb == Verb::Quit {
            // Connection-local: the serving loop ends this session and
            // the daemon keeps serving everyone else.
            return Reply {
                line: ok_value(id.as_ref(), Json::obj(vec![("bye", Json::Bool(true))])).render(),
                quit: true,
            };
        }
        if request.verb == Verb::Shutdown {
            return self.do_shutdown(id.as_ref());
        }
        if is_journaled(request.verb) {
            // The mutation lock: write-ahead append and dispatch form
            // one critical section, so the journal's total order is
            // exactly the order mutations were applied — recovery
            // replays the served interleaving even when it came from
            // many connections.
            let mut persist = self.lock_persist();
            if self.is_stopped() {
                // `shutdown` won the lock while this request waited:
                // the final snapshot is already on disk.
                return self.error_reply(id.as_ref(), &shutting_down());
            }
            if let Some(state) = persist.as_mut() {
                if !state.replaying {
                    if let Err(e) = state.persist.append(line) {
                        let error =
                            ProtoError::new("persist", format!("journal write failed: {e}"));
                        return self.error_reply(id.as_ref(), &error);
                    }
                }
            }
            let reply = self.dispatch_isolated(&request, id.as_ref());
            self.maybe_snapshot(&mut persist);
            reply
        } else {
            self.dispatch_isolated(&request, id.as_ref())
        }
    }

    /// `shutdown`: drain the whole daemon. Taking the mutation lock
    /// first means no journaled verb is mid-dispatch when the stopped
    /// flag flips, so the final snapshot captures a complete state.
    fn do_shutdown(&self, id: Option<&Json>) -> Reply {
        let mut persist = self.lock_persist();
        self.shared.stopped.store(true, Ordering::SeqCst);
        let snapshotted = match self.drain_with(&mut persist) {
            Ok(wrote) => wrote,
            Err(e) => {
                eprintln!("sld: shutdown snapshot failed: {e}");
                false
            }
        };
        drop(persist);
        let body = Json::obj(vec![
            ("bye", Json::Bool(true)),
            ("drained", Json::Bool(true)),
            ("snapshotted", Json::Bool(snapshotted)),
        ]);
        Reply {
            line: ok_value(id, body).render(),
            quit: true,
        }
    }

    /// Dispatch inside the panic boundary: every verb — not just the
    /// query kernel — degrades to a typed `panic` error, keeping the
    /// protocol contract that every failure is a response.
    fn dispatch_isolated(&self, request: &Request, id: Option<&Json>) -> Reply {
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(request))) {
            Ok(Ok(result)) => Reply {
                line: ok_value(id, result).render(),
                quit: false,
            },
            Ok(Err(error)) => self.error_reply(id, &error),
            Err(payload) => {
                let error = ProtoError::new("panic", panic_message(payload.as_ref()));
                self.error_reply(id, &error)
            }
        }
    }

    /// Feeds one recovered journal line back through dispatch. Replay
    /// skips the fault-injection gate — the journal records requests
    /// that were already accepted — but keeps the verb counters and
    /// index stream moving so a recovered daemon's bookkeeping stays
    /// plausible. Outcomes are discarded: a line that failed when
    /// first served fails identically here, which is the point.
    fn replay_line(&self, line: &str) {
        let Ok(doc) = crate::json::parse(line) else { return };
        let Ok(request) = request_from_value(doc) else { return };
        if !is_journaled(request.verb) {
            return;
        }
        self.count_verb(request.verb);
        let _ = self.take_index();
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(&request))) {
            Ok(Ok(_)) => {}
            Ok(Err(_)) | Err(_) => {
                self.shared.counters.errors.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Writes an automatic snapshot when the journal has accumulated
    /// `snapshot_every` records. A failed snapshot is a diagnostic,
    /// not a request failure: the journal already holds everything.
    fn maybe_snapshot(&self, persist: &mut Option<PersistState>) {
        let due = match persist {
            Some(state) => !state.replaying && state.persist.should_snapshot(),
            None => false,
        };
        if due {
            let (registry, sessions) = self.snapshot_state();
            let state = persist.as_mut().expect("checked above");
            if let Err(e) = state.persist.write_snapshot(registry, sessions) {
                eprintln!("sld: snapshot failed: {e}");
            }
        }
    }

    /// Serializes the durable state: sorted registry bindings (HOA is
    /// an exact codec — `from_hoa(to_hoa(b)) == b`) and sorted monitor
    /// sessions with their raw backend state. Called with the mutation
    /// lock held, so no mutator is mid-flight; queries may interleave
    /// freely (they never touch durable state).
    fn snapshot_state(&self) -> (Vec<(String, String)>, Vec<SessionSnap>) {
        let mut registry: Vec<(String, String)> = self
            .read_registry()
            .iter()
            .map(|(name, automaton)| (name.to_string(), hoa::to_hoa(automaton, name)))
            .collect();
        registry.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let guard = self.lock_sessions();
        let mut sessions: Vec<SessionSnap> = guard
            .monitors
            .iter()
            .map(|(name, session)| {
                let state = match &session.backend {
                    SessionBackend::Compiled { fleet, slot } => {
                        u64::from(guard.fleets[*fleet].fleet.save_state(*slot))
                    }
                    SessionBackend::Nfa(monitor) => monitor.save_state(),
                };
                SessionSnap {
                    name: name.clone(),
                    target: session.target.clone(),
                    hoa: hoa::to_hoa(&session.source, &session.target),
                    state,
                }
            })
            .collect();
        drop(guard);
        sessions.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        (registry, sessions)
    }

    /// Rebuilds registry and sessions from a snapshot. Automata are
    /// reparsed from their HOA text (deduplicated by text, so sessions
    /// watching the same automaton share one compiled fleet, as they
    /// would have live); the deterministic monitor constructions make
    /// the saved raw state indices valid against the rebuilt tables.
    fn restore_snapshot(&self, snapshot: &crate::persist::Snapshot) -> Result<(), PersistError> {
        let bad = |detail: String| PersistError::State { detail };
        let mut by_hoa: HashMap<&str, Arc<Buchi>> = HashMap::new();
        let mut registry = self.write_registry();
        for (name, text) in &snapshot.registry {
            let automaton = hoa::from_hoa(text)
                .map_err(|e| bad(format!("registry entry `{name}`: {e}")))?;
            let stored = registry.insert(name, automaton);
            by_hoa.entry(text.as_str()).or_insert(stored);
        }
        drop(registry);
        let mut sessions = self.lock_sessions();
        for snap in &snapshot.sessions {
            let source = match by_hoa.get(snap.hoa.as_str()) {
                Some(arc) => Arc::clone(arc),
                None => {
                    let automaton = hoa::from_hoa(&snap.hoa)
                        .map_err(|e| bad(format!("session `{}`: {e}", snap.name)))?;
                    let arc = Arc::new(automaton);
                    by_hoa.insert(snap.hoa.as_str(), Arc::clone(&arc));
                    arc
                }
            };
            let mut backend = sessions.make_backend(&source);
            let loaded = match &mut backend {
                SessionBackend::Compiled { fleet, slot } => match u16::try_from(snap.state) {
                    Ok(raw) => sessions.fleets[*fleet].fleet.load_state(*slot, raw),
                    Err(_) => false,
                },
                SessionBackend::Nfa(monitor) => monitor.load_state(snap.state),
            };
            if !loaded {
                return Err(bad(format!(
                    "session `{}` state {} is out of range for its monitor",
                    snap.name, snap.state
                )));
            }
            sessions.monitors.insert(
                snap.name.clone(),
                MonitorSession {
                    target: snap.target.clone(),
                    alphabet: source.alphabet().clone(),
                    source,
                    backend,
                },
            );
        }
        Ok(())
    }

    fn error_reply(&self, id: Option<&Json>, error: &ProtoError) -> Reply {
        self.shared.counters.errors.fetch_add(1, Ordering::SeqCst);
        Reply {
            line: err_value(id, error).render(),
            quit: false,
        }
    }

    fn take_index(&self) -> u64 {
        self.shared.next_request_index.fetch_add(1, Ordering::SeqCst)
    }

    fn count_verb(&self, verb: Verb) {
        let slot = STATS_VERBS
            .iter()
            .position(|&v| v == verb)
            .expect("every verb has a stats slot");
        self.shared.counters.verb_counts[slot].fetch_add(1, Ordering::SeqCst);
    }

    fn dispatch(&self, request: &Request) -> Result<Json, ProtoError> {
        match request.verb {
            Verb::Define => self.do_define(request),
            Verb::Classify | Verb::Include | Verb::Equivalent | Verb::Universal => {
                let job = self.resolve_query(request)?;
                self.run_query(&job)
            }
            Verb::Decompose => self.do_decompose(request),
            Verb::MonitorStep => self.do_monitor_step(request),
            Verb::Check => self.do_check(request),
            Verb::Stats => Ok(self.do_stats()),
            Verb::Batch => self.do_batch(request),
            Verb::Shutdown | Verb::Quit => {
                unreachable!("shutdown and quit are handled before dispatch")
            }
        }
    }

    // ---- define ---------------------------------------------------

    fn do_define(&self, request: &Request) -> Result<Json, ProtoError> {
        let name = require_str(&request.body, "name")?;
        let budget = request.budget.map(BudgetSpec::to_budget);
        let (automaton, source) = if let Some(formula) = request.body.get("ltl") {
            let formula = formula
                .as_str()
                .ok_or_else(|| ProtoError::new("parse", "`ltl` must be a string"))?;
            let names = alphabet_operand(&request.body)?;
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let sigma = Alphabet::new(&name_refs);
            let parsed = sl_ltl::parse(&sigma, formula)
                .map_err(|e| ProtoError::new("invalid_input", e.to_string()))?;
            let automaton = match &budget {
                Some(budget) => sl_ltl::translate_with_budget(&sigma, &parsed, budget)
                    .map_err(|e| ProtoError::new(kind_of(&e), e.to_string()))?,
                None => sl_ltl::translate(&sigma, &parsed),
            };
            (automaton, "ltl")
        } else if let Some(text) = request.body.get("hoa") {
            let text = text
                .as_str()
                .ok_or_else(|| ProtoError::new("parse", "`hoa` must be a string"))?;
            let automaton =
                hoa::from_hoa(text).map_err(|e| ProtoError::new(kind_of(&e), e.to_string()))?;
            (automaton, "hoa")
        } else {
            return Err(ProtoError::new(
                "invalid_input",
                "define needs `ltl` (with `alphabet`) or `hoa`",
            ));
        };
        // Advance the interned quotient before publishing the binding:
        // a redefine seeds the simulation refinement from the previous
        // version's rows (clean SCCs carry over, only dirty ones are
        // re-derived), a fresh define warms the cache from scratch.
        // Mutating verbs serialize under the persist lock, so reading
        // the old binding here is not racy, and journal replay during
        // recovery re-warms the cache deterministically.
        let previous = self.read_registry().get(name).cloned();
        match &previous {
            Some(old) => {
                self.shared.quotient.advance(old, &automaton);
            }
            None => {
                let _ = self.shared.quotient.quotient(&automaton);
            }
        }
        let stored = self.write_registry().insert(name, automaton);
        Ok(Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("source", Json::Str(source.to_string())),
            ("states", Json::Int(stored.num_states() as i64)),
            ("transitions", Json::Int(stored.num_transitions() as i64)),
        ]))
    }

    // ---- the cacheable query verbs --------------------------------

    fn resolve_query(&self, request: &Request) -> Result<QueryJob, ProtoError> {
        let (kind, left_key, right_key) = match request.verb {
            Verb::Classify => (QueryKind::Classify, "target", None),
            Verb::Universal => (QueryKind::Universal, "target", None),
            Verb::Include => (QueryKind::Include, "left", Some("right")),
            Verb::Equivalent => (QueryKind::Equivalent, "left", Some("right")),
            _ => unreachable!("resolve_query is only called for query verbs"),
        };
        let registry = self.read_registry();
        let left = resolve_in(&registry, &request.body, left_key)?;
        let right = match right_key {
            Some(key) => Some(resolve_in(&registry, &request.body, key)?),
            None => None,
        };
        drop(registry);
        if let Some(right) = &right {
            if left.alphabet() != right.alphabet() {
                return Err(ProtoError::new(
                    "invalid_input",
                    "operands have different alphabets",
                ));
            }
        }
        Ok(QueryJob {
            kind,
            left,
            right,
            budget: request.budget,
        })
    }

    /// Probes the cache, computes on miss (inside a panic boundary,
    /// with engine counters attributed), stores successful results.
    ///
    /// Concurrent cold queries for the same key are **deduplicated**:
    /// the first connection to claim the key computes it; every other
    /// connection waits on the condvar and re-probes, so n clients
    /// asking the same cold question cost one compute, not n. Failed
    /// computes release the claim without storing — each waiter then
    /// claims and retries for itself (a budget-limited failure must
    /// not shadow a retry with a larger budget).
    fn run_query(&self, job: &QueryJob) -> Result<Json, ProtoError> {
        let key = QueryCache::key(job.kind, &job.left, job.right.as_deref());
        loop {
            if let Some(result) = self
                .shared
                .cache
                .probe(job.kind, &job.left, job.right.as_ref())
            {
                return Ok(result);
            }
            let mut pending = relock(self.shared.pending.lock());
            if pending.insert(key) {
                break;
            }
            let guard = relock(self.shared.pending_done.wait(pending));
            drop(guard);
        }
        let (outcome, delta) = compute_isolated(job, &self.shared.quotient);
        self.absorb_engine(&delta);
        if let Ok(result) = &outcome {
            self.shared.cache.store(
                job.kind,
                Arc::clone(&job.left),
                job.right.clone(),
                result.clone(),
            );
        }
        let mut pending = relock(self.shared.pending.lock());
        pending.remove(&key);
        drop(pending);
        self.shared.pending_done.notify_all();
        outcome
    }

    // ---- decompose ------------------------------------------------

    fn do_decompose(&self, request: &Request) -> Result<Json, ProtoError> {
        let name = require_str(&request.body, "target")?.to_string();
        let target = resolve_in(&self.read_registry(), &request.body, "target")?;
        let before = engine_stats();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let d = decompose(&target);
            let check = d.check_sampled(&target, 2, 2);
            (d, check)
        }));
        self.absorb_engine(&engine_stats().delta_since(&before));
        let (d, check) = outcome.map_err(|payload| {
            ProtoError::new("panic", panic_message(payload.as_ref()))
        })?;
        let safety_name = format!("{name}.safety");
        let liveness_name = format!("{name}.liveness");
        let mut registry = self.write_registry();
        let safety = registry.insert(&safety_name, d.safety);
        let liveness = registry.insert(&liveness_name, d.liveness);
        drop(registry);
        Ok(Json::obj(vec![
            ("target", Json::Str(name.to_string())),
            (
                "safety",
                Json::obj(vec![
                    ("name", Json::Str(safety_name)),
                    ("states", Json::Int(safety.num_states() as i64)),
                ]),
            ),
            (
                "liveness",
                Json::obj(vec![
                    ("name", Json::Str(liveness_name)),
                    ("states", Json::Int(liveness.num_states() as i64)),
                ]),
            ),
            (
                "check_sampled",
                match check {
                    None => Json::Str("ok".to_string()),
                    Some(w) => Json::Str(format!(
                        "mismatch at {}",
                        w.display(target.alphabet())
                    )),
                },
            ),
        ]))
    }

    // ---- monitor-step ---------------------------------------------

    fn do_monitor_step(&self, request: &Request) -> Result<Json, ProtoError> {
        let session_name = require_str(&request.body, "monitor")?;
        // Lock order: registry (read) before sessions — the read lock
        // is only consulted when the step creates a session, but
        // taking it up front keeps the order unconditional.
        let registry = self.read_registry();
        let mut guard = self.lock_sessions();
        if !guard.monitors.contains_key(session_name) {
            let target_name = require_str(&request.body, "target").map_err(|_| {
                ProtoError::new(
                    "invalid_input",
                    format!("monitor session `{session_name}` does not exist; creating one needs `target`"),
                )
            })?;
            let target = resolve_in(&registry, &request.body, "target")?;
            let backend = guard.make_backend(&target);
            guard.monitors.insert(
                session_name.to_string(),
                MonitorSession {
                    target: target_name.to_string(),
                    alphabet: target.alphabet().clone(),
                    source: target,
                    backend,
                },
            );
        }
        drop(registry);
        // Split borrow: the session entry and the fleet table are
        // disjoint fields, and the compiled backend needs both.
        let Sessions { monitors, fleets } = &mut *guard;
        let session = monitors.get_mut(session_name).expect("inserted above");
        if let Some(requested) = request.body.get("target").and_then(Json::as_str) {
            if requested != session.target {
                return Err(ProtoError::new(
                    "invalid_input",
                    format!(
                        "monitor session `{session_name}` watches `{}`, not `{requested}`",
                        session.target
                    ),
                ));
            }
        }
        let symbols = match request.body.get("symbols") {
            None => &[][..],
            Some(v) => v
                .as_arr()
                .ok_or_else(|| ProtoError::new("parse", "`symbols` must be an array of strings"))?,
        };
        // Resolve every symbol and charge the whole batch before the
        // monitor is touched: a malformed entry or an exhausted budget
        // rejects the request with the session state unchanged, so a
        // client retry cannot double-step a silently consumed prefix.
        let mut syms = Vec::with_capacity(symbols.len());
        for symbol in symbols {
            let name = symbol
                .as_str()
                .ok_or_else(|| ProtoError::new("parse", "`symbols` must be an array of strings"))?;
            // Out-of-alphabet names map to an out-of-range Symbol: the
            // monitor degrades to sticky Unknown, exactly as it does
            // for untrusted binary traces.
            syms.push(
                session
                    .alphabet
                    .symbol(name)
                    .unwrap_or(sl_omega::Symbol(u16::MAX)),
            );
        }
        if let Some(budget) = request.budget.map(BudgetSpec::to_budget) {
            budget
                .meter("service.monitor")
                .charge(syms.len() as u64)
                .map_err(|e| ProtoError::new(kind_of(&e), e.to_string()))?;
        }
        let reset = request.body.get("reset").and_then(Json::as_bool) == Some(true);
        let mut verdicts = Vec::with_capacity(syms.len());
        let final_verdict = match &mut session.backend {
            SessionBackend::Compiled { fleet, slot } => {
                let fleet = &mut fleets[*fleet].fleet;
                if reset {
                    fleet.reset(*slot);
                }
                for sym in syms {
                    verdicts.push(Json::Str(verdict_name(fleet.step(*slot, sym)).to_string()));
                }
                fleet.verdict(*slot)
            }
            SessionBackend::Nfa(monitor) => {
                if reset {
                    monitor.reset();
                }
                for sym in syms {
                    verdicts.push(Json::Str(verdict_name(monitor.step(sym)).to_string()));
                }
                monitor.verdict()
            }
        };
        Ok(Json::obj(vec![
            ("monitor", Json::Str(session_name.to_string())),
            ("target", Json::Str(session.target.clone())),
            ("verdicts", Json::Arr(verdicts)),
            ("verdict", Json::Str(verdict_name(final_verdict).to_string())),
        ]))
    }

    // ---- check (LT-PDR over an inline Kripke structure) -----------

    /// `check`: decide `AG !bad` (mode `safety`) or `FG !bad` over all
    /// paths (mode `liveness`, via the k-liveness reduction) on a
    /// Kripke structure carried inline by the request. A pure query:
    /// not journaled, cached by a structural hash of the canonicalized
    /// model, panic-isolated like every other verb.
    fn do_check(&self, request: &Request) -> Result<Json, ProtoError> {
        let liveness = match require_str(&request.body, "mode")? {
            "safety" => false,
            "liveness" => true,
            other => {
                return Err(ProtoError::new(
                    "invalid_input",
                    format!("check mode must be `safety` or `liveness`, not `{other}`"),
                ))
            }
        };
        let (kripke, bad, canon) = parse_check_model(&request.body, liveness)?;
        let key = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            canon.hash(&mut hasher);
            hasher.finish()
        };
        {
            let mut cache = relock(self.shared.check.cache.lock());
            match cache.map.get(&key) {
                Some((stored, result)) if *stored == canon => {
                    let result = result.clone();
                    cache.hits += 1;
                    return Ok(result);
                }
                Some(_) => {
                    cache.collisions += 1;
                    cache.misses += 1;
                }
                None => cache.misses += 1,
            }
        }
        let budget = request
            .budget
            .map_or_else(Budget::unlimited, BudgetSpec::to_budget);
        let result = if liveness {
            let run = check_liveness(&kripke, &bad, &budget)
                .map_err(|e| ProtoError::new(kind_of(&e), e.to_string()))?;
            self.absorb_check(&run.stats, run.k_reached);
            match run.verdict {
                LivenessVerdict::Live { k, invariant } => Json::obj(vec![
                    ("mode", Json::Str("liveness".to_string())),
                    ("verdict", Json::Str("live".to_string())),
                    ("k", Json::Int(k as i64)),
                    ("invariant", states_json(invariant.iter())),
                ]),
                LivenessVerdict::Lasso { stem, looping } => Json::obj(vec![
                    ("mode", Json::Str("liveness".to_string())),
                    ("verdict", Json::Str("lasso".to_string())),
                    ("stem", states_json(stem.into_iter())),
                    ("loop", states_json(looping.into_iter())),
                ]),
            }
        } else {
            let run = check_safety(&kripke, &bad, &budget)
                .map_err(|e| ProtoError::new(kind_of(&e), e.to_string()))?;
            self.absorb_check(&run.stats, 0);
            match run.verdict {
                SafetyVerdict::Safe { invariant } => Json::obj(vec![
                    ("mode", Json::Str("safety".to_string())),
                    ("verdict", Json::Str("safe".to_string())),
                    ("invariant", states_json(invariant.iter())),
                ]),
                SafetyVerdict::Unsafe { trace } => Json::obj(vec![
                    ("mode", Json::Str("safety".to_string())),
                    ("verdict", Json::Str("unsafe".to_string())),
                    ("trace", states_json(trace.into_iter())),
                ]),
            }
        };
        let mut cache = relock(self.shared.check.cache.lock());
        if !cache.map.contains_key(&key) && cache.map.len() >= self.shared.config.cache_cap {
            cache.map.clear();
            cache.clears += 1;
        }
        cache.map.insert(key, (canon, result.clone()));
        drop(cache);
        Ok(result)
    }

    /// Folds one computed check's engine counters into the daemon
    /// totals (cache hits skip this, as they skip the compute).
    fn absorb_check(&self, stats: &sl_pdr::PdrStats, k_reached: u64) {
        let check = &self.shared.check;
        check.frames.fetch_add(stats.frames, Ordering::SeqCst);
        check.obligations.fetch_add(stats.obligations, Ordering::SeqCst);
        check
            .generalizations
            .fetch_add(stats.generalizations, Ordering::SeqCst);
        check.k_reached.fetch_add(k_reached, Ordering::SeqCst);
    }

    // ---- stats ----------------------------------------------------

    /// Renders the `stats` snapshot. Every lock here is taken and
    /// released on its own — `stats` never holds two at once, so it
    /// can never participate in a lock-order cycle with a mutator.
    /// Under concurrency the snapshot is a consistent-enough read:
    /// each counter is exact, cross-counter relations may be mid-
    /// request.
    fn do_stats(&self) -> Json {
        let mut requests: Vec<(String, Json)> = STATS_VERBS
            .iter()
            .zip(self.shared.counters.verb_counts.iter())
            .map(|(verb, count)| {
                (
                    verb.wire_name().to_string(),
                    Json::Int(count.load(Ordering::SeqCst) as i64),
                )
            })
            .collect();
        let total: u64 = self
            .shared
            .counters
            .verb_counts
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .sum();
        requests.push(("total".to_string(), Json::Int(total as i64)));
        let automata = self.read_registry().len();
        let monitors = self.lock_sessions().monitors.len();
        let cache = self.shared.cache.stats();
        let shards: Vec<Json> = self
            .shared
            .cache
            .shard_stats()
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("hits", Json::Int(s.hits as i64)),
                    ("misses", Json::Int(s.misses as i64)),
                    ("entries", Json::Int(s.entries as i64)),
                    ("clears", Json::Int(s.clears as i64)),
                    ("collisions", Json::Int(s.collisions as i64)),
                ])
            })
            .collect();
        let complement = shared_complement_cache_stats();
        let antichain = relock(self.shared.engine_totals.lock()).antichain;
        let quotient = self.shared.quotient.stats();
        let counters = &self.shared.counters;
        let mut doc = vec![
            ("requests", Json::Obj(requests)),
            (
                "errors",
                Json::Int(counters.errors.load(Ordering::SeqCst) as i64),
            ),
            (
                "io_errors",
                Json::Int(counters.io_errors.load(Ordering::SeqCst) as i64),
            ),
            (
                "connections",
                Json::Int(counters.connections.load(Ordering::SeqCst) as i64),
            ),
            (
                "active_sessions",
                Json::Int(counters.active_sessions.load(Ordering::SeqCst) as i64),
            ),
            (
                "registry",
                Json::obj(vec![
                    ("automata", Json::Int(automata as i64)),
                    ("monitors", Json::Int(monitors as i64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(cache.hits as i64)),
                    ("misses", Json::Int(cache.misses as i64)),
                    ("entries", Json::Int(cache.entries as i64)),
                    ("clears", Json::Int(cache.clears as i64)),
                    ("collisions", Json::Int(cache.collisions as i64)),
                    ("shards", Json::Arr(shards)),
                ]),
            ),
            (
                "engine",
                Json::obj(vec![
                    (
                        "complement_cache",
                        Json::obj(vec![
                            ("hits", Json::Int(complement.hits as i64)),
                            ("misses", Json::Int(complement.misses as i64)),
                            ("entries", Json::Int(complement.entries as i64)),
                            (
                                "invalidations",
                                Json::Int(complement.invalidations as i64),
                            ),
                            ("collisions", Json::Int(complement.collisions as i64)),
                        ]),
                    ),
                    (
                        "antichain",
                        Json::obj(vec![
                            ("searches", Json::Int(antichain.searches as i64)),
                            (
                                "insert_attempts",
                                Json::Int(antichain.insert_attempts as i64),
                            ),
                            (
                                "subsumption_scans",
                                Json::Int(antichain.subsumption_scans as i64),
                            ),
                            (
                                "counterexamples",
                                Json::Int(antichain.counterexamples as i64),
                            ),
                            (
                                "peak_macro_states",
                                Json::Int(antichain.peak_macro_states as i64),
                            ),
                            (
                                "final_antichain",
                                Json::Int(antichain.final_antichain as i64),
                            ),
                        ]),
                    ),
                    (
                        "quotient_cache",
                        Json::obj(vec![
                            ("hits", Json::Int(quotient.hits as i64)),
                            ("misses", Json::Int(quotient.misses as i64)),
                            ("entries", Json::Int(quotient.entries as i64)),
                            (
                                "invalidations",
                                Json::Int(quotient.invalidations as i64),
                            ),
                            ("collisions", Json::Int(quotient.collisions as i64)),
                            ("advances", Json::Int(quotient.advances as i64)),
                            ("dirty_sccs", Json::Int(quotient.dirty_sccs as i64)),
                            ("clean_sccs", Json::Int(quotient.clean_sccs as i64)),
                        ]),
                    ),
                ]),
            ),
        ];
        let check = &self.shared.check;
        let (c_hits, c_misses, c_entries, c_clears, c_collisions) = {
            let cache = relock(check.cache.lock());
            (
                cache.hits,
                cache.misses,
                cache.map.len(),
                cache.clears,
                cache.collisions,
            )
        };
        doc.push((
            "check",
            Json::obj(vec![
                (
                    "frames",
                    Json::Int(check.frames.load(Ordering::SeqCst) as i64),
                ),
                (
                    "obligations",
                    Json::Int(check.obligations.load(Ordering::SeqCst) as i64),
                ),
                (
                    "generalizations",
                    Json::Int(check.generalizations.load(Ordering::SeqCst) as i64),
                ),
                (
                    "k_reached",
                    Json::Int(check.k_reached.load(Ordering::SeqCst) as i64),
                ),
                (
                    "cache",
                    Json::obj(vec![
                        ("hits", Json::Int(c_hits as i64)),
                        ("misses", Json::Int(c_misses as i64)),
                        ("entries", Json::Int(c_entries as i64)),
                        ("clears", Json::Int(c_clears as i64)),
                        ("collisions", Json::Int(c_collisions as i64)),
                    ]),
                ),
            ]),
        ));
        let persist = self.lock_persist();
        if let Some(state) = persist.as_ref() {
            let p = *state.persist.stats();
            doc.push((
                "persist",
                Json::obj(vec![
                    ("journal_bytes", Json::Int(p.journal_bytes as i64)),
                    (
                        "records_since_snapshot",
                        Json::Int(p.records_since_snapshot as i64),
                    ),
                    ("snapshots_taken", Json::Int(p.snapshots_taken as i64)),
                    (
                        "snapshots_discarded",
                        Json::Int(p.snapshots_discarded as i64),
                    ),
                    ("last_recovery_ms", Json::Int(p.last_recovery_ms as i64)),
                    ("replayed_records", Json::Int(p.replayed_records as i64)),
                ]),
            ));
        }
        drop(persist);
        Json::obj(doc)
    }

    // ---- batch ----------------------------------------------------

    /// Fans the items of a `batch` through the panic-isolated sweep:
    /// sequential intake (fault indices, verb counts, cache probes),
    /// parallel compute of the misses, sequential commit in item
    /// order. One poisoned item degrades to its own typed error.
    /// Batch items bypass the in-flight dedup table — the sequential
    /// probe already deduplicates within the batch, and the counters
    /// it produces are pinned by golden transcripts.
    fn do_batch(&self, request: &Request) -> Result<Json, ProtoError> {
        let items = request
            .body
            .get("requests")
            .and_then(Json::as_arr)
            .ok_or_else(|| ProtoError::new("parse", "batch needs a `requests` array"))?
            .to_vec();
        // Bounded intake: shed oversized batches before any per-item
        // bookkeeping, so an overloaded rejection has no side effects
        // a retry would double-count.
        if items.len() > self.shared.config.max_batch {
            return Err(ProtoError::new(
                "overloaded",
                format!(
                    "batch carries {} requests; the daemon accepts at most {} per batch — \
                     split the batch and retry",
                    items.len(),
                    self.shared.config.max_batch
                ),
            ));
        }
        let default_budget = request.budget;

        // Per-item slot: either an already-final response value or a
        // job index into the parallel compute list.
        enum Slot {
            Done(Json),
            Job { id: Option<Json>, job_index: usize },
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(items.len());
        let mut jobs: Vec<QueryJob> = Vec::new();

        for item in items {
            let id = item.get("id").cloned();
            let prepared = request_from_value(item).and_then(|mut sub| {
                self.count_verb(sub.verb);
                let index = self.take_index();
                self.shared
                    .config
                    .fault
                    .inject_error(REQUEST_FAULT_SITE, index)
                    .map_err(|e| ProtoError::new(kind_of(&e), e.to_string()))?;
                match sub.verb {
                    Verb::Classify | Verb::Include | Verb::Equivalent | Verb::Universal => {
                        if sub.budget.is_none() {
                            sub.budget = default_budget;
                        }
                        self.resolve_query(&sub)
                    }
                    other => Err(ProtoError::new(
                        "unsupported",
                        format!(
                            "`{}` cannot run inside a batch (only classify, include, \
                             equivalent, universal)",
                            other.wire_name()
                        ),
                    )),
                }
            });
            match prepared {
                Err(error) => {
                    self.shared.counters.errors.fetch_add(1, Ordering::SeqCst);
                    slots.push(Slot::Done(err_value(id.as_ref(), &error)));
                }
                Ok(job) => {
                    // Sequential probe keeps hit/miss counters (and the
                    // set of computed jobs) schedule-independent.
                    match self
                        .shared
                        .cache
                        .probe(job.kind, &job.left, job.right.as_ref())
                    {
                        Some(result) => slots.push(Slot::Done(ok_value(id.as_ref(), result))),
                        None => {
                            slots.push(Slot::Job {
                                id,
                                job_index: jobs.len(),
                            });
                            jobs.push(job);
                        }
                    }
                }
            }
        }

        // The worker already isolates panics and types its errors, so
        // its closure is infallible; the sweep's own boundary still
        // catches the `par.worker` drill site's injected panics.
        let report = try_par_map_with(self.shared.config.threads, &jobs, |job| {
            Ok(compute_isolated(job, &self.shared.quotient))
        });

        let mut results = Vec::with_capacity(slots.len());
        let mut outcomes = report.outcomes.into_iter();
        for slot in slots {
            match slot {
                Slot::Done(value) => results.push(value),
                Slot::Job { id, job_index } => {
                    let outcome = outcomes.next().expect("one outcome per job");
                    let job = &jobs[job_index];
                    match outcome {
                        ItemOutcome::Ok((Ok(result), delta)) => {
                            self.absorb_engine(&delta);
                            self.shared.cache.store(
                                job.kind,
                                Arc::clone(&job.left),
                                job.right.clone(),
                                result.clone(),
                            );
                            results.push(ok_value(id.as_ref(), result));
                        }
                        ItemOutcome::Ok((Err(error), delta)) => {
                            self.absorb_engine(&delta);
                            self.shared.counters.errors.fetch_add(1, Ordering::SeqCst);
                            results.push(err_value(id.as_ref(), &error));
                        }
                        ItemOutcome::Failed(err) => {
                            self.shared.counters.errors.fetch_add(1, Ordering::SeqCst);
                            let error = ProtoError::new(kind_of(&err), err.to_string());
                            results.push(err_value(id.as_ref(), &error));
                        }
                        ItemOutcome::Panicked(message) => {
                            self.shared.counters.errors.fetch_add(1, Ordering::SeqCst);
                            let error = ProtoError::new("panic", message);
                            results.push(err_value(id.as_ref(), &error));
                        }
                    }
                }
            }
        }
        Ok(Json::obj(vec![("results", Json::Arr(results))]))
    }
}

// ---- the pure compute kernel (shared by inline and batch paths) ----

/// Computes one query inside a panic boundary, measuring the engine
/// counters it spent on this thread. Returns the typed outcome plus
/// the counter delta — the caller decides how to fold both in.
fn compute_isolated(
    job: &QueryJob,
    quotient: &QuotientCache,
) -> (Result<Json, ProtoError>, EngineStats) {
    let before = engine_stats();
    let outcome = catch_unwind(AssertUnwindSafe(|| compute_query(job, quotient)));
    let delta = engine_stats().delta_since(&before);
    let outcome = match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(err)) => Err(ProtoError::new(kind_of(&err), err.to_string())),
        Err(payload) => Err(ProtoError::new("panic", panic_message(payload.as_ref()))),
    };
    (outcome, delta)
}

/// The verb semantics proper. Unbudgeted requests go through the plain
/// engine entry points (no extra fault sites, so fault drills only
/// fire where a budgeted path opted in); budgeted requests use the
/// budgeted twins. When the selected engine is the default on-the-fly
/// one, `include`/`equivalent`/`universal` route through the
/// `_with_cache` twins against the daemon's [`QuotientCache`], so
/// repeated queries over the same operands reuse interned quotients
/// instead of recomputing the simulation per query.
fn compute_query(job: &QueryJob, quotient: &QuotientCache) -> Result<Json, SlError> {
    let budget = job.budget.map(BudgetSpec::to_budget);
    let onthefly = incl_engine() == InclEngine::OnTheFly;
    match job.kind {
        QueryKind::Classify => {
            let b = job.left.as_ref();
            let class = match &budget {
                None => classify(b)?,
                Some(budget) => {
                    let cl = closure(b);
                    let safe = included_budgeted(&cl, b, budget)?.holds();
                    let live = included_budgeted(
                        &Buchi::universal(b.alphabet().clone()),
                        &cl,
                        budget,
                    )?
                    .holds();
                    match (safe, live) {
                        (true, true) => Classification::Both,
                        (true, false) => Classification::Safety,
                        (false, true) => Classification::Liveness,
                        (false, false) => Classification::Neither,
                    }
                }
            };
            Ok(Json::obj(vec![(
                "class",
                Json::Str(class_name(class).to_string()),
            )]))
        }
        QueryKind::Include => {
            let (a, b) = (job.left.as_ref(), job.right.as_ref().expect("binary").as_ref());
            let inclusion = match &budget {
                None if onthefly => included_onthefly_with_cache(quotient, a, b)?,
                None => included(a, b)?,
                Some(budget) if onthefly => {
                    included_onthefly_budgeted_with_cache(quotient, a, b, budget)?
                }
                Some(budget) => included_budgeted(a, b, budget)?,
            };
            Ok(match inclusion {
                Inclusion::Holds => Json::obj(vec![("holds", Json::Bool(true))]),
                Inclusion::CounterExample(w) => Json::obj(vec![
                    ("holds", Json::Bool(false)),
                    ("counterexample", Json::Str(w.display(a.alphabet()))),
                ]),
            })
        }
        QueryKind::Equivalent => {
            let (a, b) = (job.left.as_ref(), job.right.as_ref().expect("binary").as_ref());
            let verdict = match &budget {
                None if onthefly => equivalent_onthefly_with_cache(quotient, a, b)?,
                None => equivalent(a, b)?,
                Some(budget) if onthefly => {
                    equivalent_onthefly_budgeted_with_cache(quotient, a, b, budget)?
                }
                Some(budget) => equivalent_budgeted(a, b, budget)?,
            };
            Ok(match verdict {
                Ok(()) => Json::obj(vec![("equivalent", Json::Bool(true))]),
                Err(w) => Json::obj(vec![
                    ("equivalent", Json::Bool(false)),
                    ("separator", Json::Str(w.display(a.alphabet()))),
                ]),
            })
        }
        QueryKind::Universal => {
            let b = job.left.as_ref();
            let verdict = match &budget {
                None if onthefly => universal_onthefly_with_cache(quotient, b)?,
                None => universal(b)?,
                Some(budget) => {
                    let all = Buchi::universal(b.alphabet().clone());
                    let inclusion = if onthefly {
                        included_onthefly_budgeted_with_cache(quotient, &all, b, budget)?
                    } else {
                        included_budgeted(&all, b, budget)?
                    };
                    match inclusion {
                        Inclusion::Holds => Ok(()),
                        Inclusion::CounterExample(w) => Err(w),
                    }
                }
            };
            Ok(match verdict {
                Ok(()) => Json::obj(vec![("universal", Json::Bool(true))]),
                Err(w) => Json::obj(vec![
                    ("universal", Json::Bool(false)),
                    ("rejected", Json::Str(w.display(b.alphabet()))),
                ]),
            })
        }
    }
}

// ---- check model parsing ------------------------------------------

/// The largest inline model `check` accepts. A typed rejection, not a
/// resource race: one request must never make the daemon allocate
/// unboundedly before any budget is consulted.
const CHECK_MAX_STATES: usize = 4096;

/// The k-liveness sweep builds counter products of up to
/// `n * (|bad| + 2)` states; cap the largest product a liveness check
/// may construct.
const CHECK_MAX_PRODUCT: usize = 1 << 20;

/// Parses and validates the `check` operands into a Kripke structure
/// (labels derived from badness: bad states read `b`, others `a`), the
/// sorted deduplicated bad set, and the canonical text the result
/// cache keys on. Every malformed shape is a typed rejection — the
/// request crosses a trust boundary, and `Kripke::new` panics on the
/// invariants it checks.
fn parse_check_model(
    body: &Json,
    liveness: bool,
) -> Result<(Kripke, Vec<usize>, String), ProtoError> {
    let model = match body.get("model") {
        Some(model @ Json::Obj(_)) => model,
        _ => {
            return Err(ProtoError::new(
                "parse",
                "check needs a `model` object with `succ` and `initial`",
            ))
        }
    };
    let succ_json = model.get("succ").and_then(Json::as_arr).ok_or_else(|| {
        ProtoError::new("parse", "model needs a `succ` array of arrays of state indices")
    })?;
    let n = succ_json.len();
    if n == 0 {
        return Err(ProtoError::new(
            "invalid_input",
            "model must have at least one state",
        ));
    }
    if n > CHECK_MAX_STATES {
        return Err(ProtoError::new(
            "invalid_input",
            format!("model has {n} states; check accepts at most {CHECK_MAX_STATES}"),
        ));
    }
    let mut succ: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (s, outs) in succ_json.iter().enumerate() {
        let outs = outs.as_arr().ok_or_else(|| {
            ProtoError::new("parse", format!("succ[{s}] must be an array of state indices"))
        })?;
        if outs.is_empty() {
            return Err(ProtoError::new(
                "invalid_input",
                format!("state {s} has no successor; the transition relation must be total"),
            ));
        }
        let row: Vec<usize> = outs
            .iter()
            .map(|t| state_index(t, n))
            .collect::<Result<_, _>>()?;
        succ.push(row);
    }
    let initial = match model.get("initial") {
        Some(v) => state_index(v, n)?,
        None => {
            return Err(ProtoError::new(
                "parse",
                "model needs an `initial` state index",
            ))
        }
    };
    let mut bad: Vec<usize> = match body.get("bad") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| ProtoError::new("parse", "`bad` must be an array of state indices"))?
            .iter()
            .map(|b| state_index(b, n))
            .collect::<Result<_, _>>()?,
    };
    bad.sort_unstable();
    bad.dedup();
    if liveness && n.saturating_mul(bad.len() + 2) > CHECK_MAX_PRODUCT {
        return Err(ProtoError::new(
            "invalid_input",
            format!(
                "liveness check would build a counter product of up to {} states \
                 (limit {CHECK_MAX_PRODUCT}); shrink the model or the bad set",
                n * (bad.len() + 2)
            ),
        ));
    }
    let canon = Json::obj(vec![
        (
            "mode",
            Json::Str(if liveness { "liveness" } else { "safety" }.to_string()),
        ),
        ("initial", Json::Int(initial as i64)),
        ("bad", states_json(bad.iter().copied())),
        (
            "succ",
            Json::Arr(
                succ.iter()
                    .map(|row| states_json(row.iter().copied()))
                    .collect(),
            ),
        ),
    ])
    .render();
    let sigma = Alphabet::ab();
    let a = sigma.symbol("a").expect("ab alphabet");
    let b = sigma.symbol("b").expect("ab alphabet");
    let labels = (0..n)
        .map(|s| if bad.binary_search(&s).is_ok() { b } else { a })
        .collect();
    Ok((Kripke::new(sigma, labels, succ, initial), bad, canon))
}

/// One state index operand: a nonnegative integer below `n`.
fn state_index(v: &Json, n: usize) -> Result<usize, ProtoError> {
    let index = v
        .as_u64()
        .and_then(|i| usize::try_from(i).ok())
        .ok_or_else(|| ProtoError::new("parse", "state indices must be nonnegative integers"))?;
    if index >= n {
        return Err(ProtoError::new(
            "invalid_input",
            format!("state index {index} is out of range for a {n}-state model"),
        ));
    }
    Ok(index)
}

/// Renders a state-index sequence as a JSON array.
fn states_json<I: IntoIterator<Item = usize>>(states: I) -> Json {
    Json::Arr(states.into_iter().map(|s| Json::Int(s as i64)).collect())
}

// ---- small helpers ------------------------------------------------

fn shutting_down() -> ProtoError {
    ProtoError::new(
        "shutting_down",
        "the daemon has drained and accepts no further requests",
    )
}

/// Name lookup against an already-held registry guard (taking the
/// read lock inside would self-deadlock a thread that holds it).
fn resolve_in(registry: &Registry, body: &Json, key: &str) -> Result<Arc<Buchi>, ProtoError> {
    let name = require_str(body, key)?;
    registry
        .get(name)
        .cloned()
        .ok_or_else(|| ProtoError::new("unknown_object", format!("`{name}` is not defined")))
}

fn require_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ProtoError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("parse", format!("request needs a string `{key}`")))
}

fn alphabet_operand(body: &Json) -> Result<Vec<String>, ProtoError> {
    let items = body
        .get("alphabet")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            ProtoError::new("parse", "define from `ltl` needs an `alphabet` array of strings")
        })?;
    if items.is_empty() {
        return Err(ProtoError::new("invalid_input", "alphabet must be nonempty"));
    }
    // `Alphabet::new` asserts these invariants; the request crosses a
    // trust boundary, so they must be typed rejections here, not
    // daemon-killing panics.
    if items.len() > usize::from(u16::MAX) {
        return Err(ProtoError::new(
            "invalid_input",
            format!(
                "alphabet has {} entries; at most {} are supported",
                items.len(),
                u16::MAX
            ),
        ));
    }
    let names: Vec<String> = items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| ProtoError::new("parse", "alphabet entries must be strings"))
        })
        .collect::<Result<_, _>>()?;
    let mut seen = HashSet::new();
    for name in &names {
        if !seen.insert(name.as_str()) {
            return Err(ProtoError::new(
                "invalid_input",
                format!("alphabet repeats `{name}`"),
            ));
        }
    }
    Ok(names)
}

fn class_name(class: Classification) -> &'static str {
    match class {
        Classification::Safety => "safety",
        Classification::Liveness => "liveness",
        Classification::Both => "both",
        Classification::Neither => "neither",
    }
}

fn verdict_name(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Ok => "ok",
        Verdict::Violation => "violation",
        Verdict::Unknown => "unknown",
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
