//! The wire protocol: request shape, response rendering, line framing.
//!
//! One request per line, one response per line, always in request
//! order. A request is a JSON object:
//!
//! ```json
//! {"id":1,"verb":"include","left":"spec","right":"impl","budget":{"steps":50000}}
//! ```
//!
//! `id` is optional and echoed verbatim (clients use it to correlate
//! pipelined requests); `verb` selects the operation; the remaining
//! keys are the verb's operands. `budget` caps the work a request may
//! spend (`steps`, `ms`, or both) via [`sl_support::Budget`].
//!
//! Responses are `{"id":...,"ok":true,"result":{...}}` on success and
//! `{"id":...,"ok":false,"error":{"kind":"...","message":"..."}}` on
//! failure — every failure is a typed response, never a dead daemon.
//! Error kinds mirror the [`SlError`] taxonomy (`budget_exceeded`,
//! `cancelled`, `fault_injected`, `invalid_input`, `domain`) plus the
//! protocol-level `parse`, `unknown_verb`, `unknown_object`,
//! `oversized_frame`, `unsupported`, `panic`, and the lifecycle and
//! durability kinds `overloaded` (bounded intake shed the request),
//! `shutting_down` (the daemon has drained), and `persist` (the
//! write-ahead journal refused a mutating request).

use crate::json::{self, Json};
use sl_support::{Budget, SlError};
use std::io::BufRead;
use std::time::Duration;

/// The operations the daemon serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Register an automaton (from LTL or HOA) under a name.
    Define,
    /// Safety/liveness trichotomy of a defined object.
    Classify,
    /// Theorem 2 decomposition `B = B_S ∩ B_L`, registering both parts.
    Decompose,
    /// Language inclusion between two defined objects.
    Include,
    /// Language equivalence between two defined objects.
    Equivalent,
    /// Universality of a defined object.
    Universal,
    /// Feed symbols to an incremental monitor session.
    MonitorStep,
    /// LT-PDR model checking of an inline Kripke structure:
    /// `AG !bad` (safety) or `FG !bad` (liveness via k-liveness).
    Check,
    /// Daemon counters: per-verb totals, cache and engine stats.
    Stats,
    /// Fan a list of query requests through the parallel sweep.
    Batch,
    /// Drain in-flight work, flush the journal, snapshot, and exit.
    Shutdown,
    /// End the session without the durability ceremony.
    Quit,
}

impl Verb {
    /// Parses the wire name of a verb.
    #[must_use]
    pub fn from_wire(name: &str) -> Option<Verb> {
        Some(match name {
            "define" => Verb::Define,
            "classify" => Verb::Classify,
            "decompose" => Verb::Decompose,
            "include" => Verb::Include,
            "equivalent" => Verb::Equivalent,
            "universal" => Verb::Universal,
            "monitor-step" => Verb::MonitorStep,
            "check" => Verb::Check,
            "stats" => Verb::Stats,
            "batch" => Verb::Batch,
            "shutdown" => Verb::Shutdown,
            "quit" => Verb::Quit,
            _ => return None,
        })
    }

    /// The wire name (inverse of [`Verb::from_wire`]).
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Verb::Define => "define",
            Verb::Classify => "classify",
            Verb::Decompose => "decompose",
            Verb::Include => "include",
            Verb::Equivalent => "equivalent",
            Verb::Universal => "universal",
            Verb::MonitorStep => "monitor-step",
            Verb::Check => "check",
            Verb::Stats => "stats",
            Verb::Batch => "batch",
            Verb::Shutdown => "shutdown",
            Verb::Quit => "quit",
        }
    }
}

/// A parsed request: id (echoed), verb, operand object, and budget.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim in the response; `None` renders as `null`.
    pub id: Option<Json>,
    /// The operation.
    pub verb: Verb,
    /// The whole request object (operands are looked up by key).
    pub body: Json,
    /// Per-request work cap; `None` means unlimited.
    pub budget: Option<BudgetSpec>,
}

/// The `budget` operand: step and/or wall-clock caps.
#[derive(Debug, Clone, Copy)]
pub struct BudgetSpec {
    /// Maximum engine steps (insertion attempts, monitor steps, ...).
    pub steps: Option<u64>,
    /// Wall-clock deadline in milliseconds from request start.
    pub ms: Option<u64>,
}

impl BudgetSpec {
    /// The [`Budget`] this spec denotes, minted at call time (the
    /// deadline clock starts now).
    #[must_use]
    pub fn to_budget(self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(steps) = self.steps {
            budget = budget.with_steps(steps);
        }
        if let Some(ms) = self.ms {
            budget = budget.with_deadline_in(Duration::from_millis(ms));
        }
        budget
    }
}

/// A protocol-level rejection: the typed `error.kind` plus a message.
#[derive(Debug, Clone)]
pub struct ProtoError {
    /// Wire value of `error.kind`.
    pub kind: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl ProtoError {
    /// Builds an error with the given kind.
    #[must_use]
    pub fn new(kind: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            kind,
            message: message.into(),
        }
    }
}

/// Maps an engine error to its wire `error.kind` (by the root cause,
/// so context wrapping does not change the kind).
#[must_use]
pub fn kind_of(err: &SlError) -> &'static str {
    match err.root() {
        SlError::BudgetExceeded { .. } => "budget_exceeded",
        SlError::Cancelled { .. } => "cancelled",
        SlError::FaultInjected { .. } => "fault_injected",
        SlError::InvalidInput(_) => "invalid_input",
        SlError::Domain { .. } | SlError::Context { .. } => "domain",
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`ProtoError`] with kind `parse` (not JSON / not an object / bad
/// budget) or `unknown_verb`.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = json::parse(line).map_err(|e| ProtoError::new("parse", e))?;
    request_from_value(doc)
}

/// Builds a [`Request`] from an already-parsed value (used both for
/// top-level lines and for the items of a `batch`).
///
/// # Errors
///
/// As for [`parse_request`].
pub fn request_from_value(doc: Json) -> Result<Request, ProtoError> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtoError::new("parse", "request must be a JSON object"));
    }
    let id = doc.get("id").cloned();
    let verb_name = doc
        .get("verb")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("parse", "request needs a string `verb`"))?;
    let verb = Verb::from_wire(verb_name).ok_or_else(|| {
        ProtoError::new(
            "unknown_verb",
            format!(
                "`{verb_name}` is not a verb (accepted: define, classify, decompose, include, \
                 equivalent, universal, monitor-step, check, stats, batch, shutdown, quit)"
            ),
        )
    })?;
    let budget = match doc.get("budget") {
        None | Some(Json::Null) => None,
        Some(spec @ Json::Obj(_)) => {
            let steps = match spec.get("steps") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ProtoError::new("parse", "budget.steps must be a nonnegative integer")
                })?),
            };
            let ms = match spec.get("ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ProtoError::new("parse", "budget.ms must be a nonnegative integer")
                })?),
            };
            Some(BudgetSpec { steps, ms })
        }
        Some(_) => {
            return Err(ProtoError::new(
                "parse",
                "budget must be an object with `steps` and/or `ms`",
            ))
        }
    };
    Ok(Request {
        id,
        verb,
        body: doc,
        budget,
    })
}

/// A success response as a [`Json`] value (batch items embed these).
#[must_use]
pub fn ok_value(id: Option<&Json>, result: Json) -> Json {
    Json::obj(vec![
        ("id", id.cloned().unwrap_or(Json::Null)),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
}

/// An error response as a [`Json`] value (batch items embed these).
#[must_use]
pub fn err_value(id: Option<&Json>, error: &ProtoError) -> Json {
    Json::obj(vec![
        ("id", id.cloned().unwrap_or(Json::Null)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::Str(error.kind.to_string())),
                ("message", Json::Str(error.message.clone())),
            ]),
        ),
    ])
}

/// Renders a success response line (no trailing newline).
#[must_use]
pub fn ok_response(id: Option<&Json>, result: Json) -> String {
    ok_value(id, result).render()
}

/// Renders an error response line (no trailing newline).
#[must_use]
pub fn err_response(id: Option<&Json>, error: &ProtoError) -> String {
    err_value(id, error).render()
}

/// One framing step's outcome.
#[derive(Debug)]
pub enum Frame {
    /// A complete line (without the trailing newline / carriage return).
    Line(String),
    /// A line longer than the cap; the oversized bytes were discarded
    /// up to and including the next newline, so framing stays aligned.
    Oversized,
    /// End of stream.
    Eof,
}

/// Reads one newline-delimited frame, capping the bytes buffered for a
/// single line at `max_line`. An over-long line is drained (so the
/// *next* frame starts cleanly at the following newline) and reported
/// as [`Frame::Oversized`] instead of ballooning memory.
///
/// # Errors
///
/// Propagates I/O errors from the underlying reader.
pub fn read_frame<R: BufRead>(reader: &mut R, max_line: usize) -> std::io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A non-empty partial line counts as a final frame.
            return Ok(if oversized {
                Frame::Oversized
            } else if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(finish_line(line))
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if !oversized && line.len() + nl <= max_line {
                    line.extend_from_slice(&chunk[..nl]);
                } else {
                    oversized = true;
                }
                reader.consume(nl + 1);
                return Ok(if oversized {
                    Frame::Oversized
                } else {
                    Frame::Line(finish_line(line))
                });
            }
            None => {
                let len = chunk.len();
                if !oversized && line.len() + len <= max_line {
                    line.extend_from_slice(chunk);
                } else {
                    oversized = true;
                    line.clear();
                }
                reader.consume(len);
            }
        }
    }
}

fn finish_line(mut bytes: Vec<u8>) -> String {
    if bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn requests_parse_with_id_budget_and_verb() {
        let req =
            parse_request(r#"{"id":7,"verb":"include","left":"a","right":"b","budget":{"steps":10}}"#)
                .unwrap();
        assert_eq!(req.id, Some(Json::Int(7)));
        assert_eq!(req.verb, Verb::Include);
        assert_eq!(req.body.get("left").and_then(Json::as_str), Some("a"));
        assert_eq!(req.budget.unwrap().steps, Some(10));

        let err = parse_request(r#"{"verb":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.kind, "unknown_verb");
        assert!(err.message.contains("frobnicate"));

        let err = parse_request("[1,2]").unwrap_err();
        assert_eq!(err.kind, "parse");
    }

    #[test]
    fn every_verb_round_trips_its_wire_name() {
        for verb in [
            Verb::Define,
            Verb::Classify,
            Verb::Decompose,
            Verb::Include,
            Verb::Equivalent,
            Verb::Universal,
            Verb::MonitorStep,
            Verb::Check,
            Verb::Stats,
            Verb::Batch,
            Verb::Shutdown,
            Verb::Quit,
        ] {
            assert_eq!(Verb::from_wire(verb.wire_name()), Some(verb));
        }
    }

    #[test]
    fn framing_caps_line_length_and_resynchronizes() {
        let input = format!("short\n{}\nafter\n", "x".repeat(100));
        let mut reader = Cursor::new(input.into_bytes());
        match read_frame(&mut reader, 16).unwrap() {
            Frame::Line(l) => assert_eq!(l, "short"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut reader, 16).unwrap(), Frame::Oversized));
        match read_frame(&mut reader, 16).unwrap() {
            Frame::Line(l) => assert_eq!(l, "after"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut reader, 16).unwrap(), Frame::Eof));
    }

    #[test]
    fn framing_strips_carriage_returns_and_handles_final_partial_line() {
        let mut reader = Cursor::new(b"a\r\nb".to_vec());
        match read_frame(&mut reader, 16).unwrap() {
            Frame::Line(l) => assert_eq!(l, "a"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut reader, 16).unwrap() {
            Frame::Line(l) => assert_eq!(l, "b"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut reader, 16).unwrap(), Frame::Eof));
    }
}
