//! Durability for the daemon: a write-ahead journal of state-mutating
//! requests plus atomic, checksummed snapshots with generation-based
//! compaction. Zero dependencies — framing, checksums, and the
//! snapshot codec are all hand-rolled here.
//!
//! # On-disk layout
//!
//! A persistence directory holds *epochs*. Epoch `g` is the pair
//! `snap-<g>.slsnap` (the state as of the epoch's start; epoch 0 has
//! no snapshot — it starts empty) and `journal-<g>.slj` (the
//! state-mutating request lines accepted since). Taking a snapshot
//! rotates to epoch `g+1` and prunes everything before epoch `g`, so
//! at most two epochs exist at a time: the current one and one full
//! fallback in case the newest snapshot is damaged.
//!
//! A journal file is the 8-byte magic `SLJRNL1\n` followed by records:
//!
//! ```text
//! [len: u32 LE] [seq: u64 LE] [fnv64(seq ‖ payload): u64 LE] [payload]
//! ```
//!
//! `payload` is the raw request line, journaled *before* dispatch.
//! The reader distinguishes the two corruption shapes a crash can and
//! cannot produce: a record extending past end-of-file is the normal
//! signature of dying mid-append and is dropped with a `[recovered]`
//! note; a *complete* record whose checksum fails means the file was
//! damaged after the fact and is rejected with a typed diagnostic
//! naming the byte offset.
//!
//! A snapshot file is the magic `SLSNAP1\n`, a `u64` payload length, a
//! `u64` FNV-1a checksum, and a JSON payload. It is written to a
//! temporary name, `fsync`ed, and renamed into place (with a directory
//! `fsync` after), so a crash leaves either the old set of snapshots
//! or the old set plus one complete new snapshot — never a torn one.
//! Recovery walks snapshots newest-first and falls back on corruption.

use crate::json::{self, Json};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First 8 bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"SLJRNL1\n";
/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SLSNAP1\n";
/// Per-record header: length (4) + sequence (8) + checksum (8).
const RECORD_HEADER: usize = 20;
/// Hard cap on one record's payload — far above the daemon's own line
/// cap, so hitting it means the length field itself is garbage.
const MAX_RECORD: usize = 1 << 24;

/// FNV-1a 64 over the record sequence number and payload.
#[must_use]
fn fnv64(seq: u64, payload: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in seq.to_le_bytes().iter().chain(payload) {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why persistence failed.
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io {
        /// The file (or directory) the operation touched.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A complete record or snapshot failed validation — damage a
    /// crash cannot produce, so it is rejected, not repaired.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// Byte offset of the damaged record or header.
        offset: u64,
        /// What failed to validate.
        detail: String,
    },
    /// A checksum-valid snapshot decoded to a state the engine refuses
    /// to adopt (e.g. a session state index out of range).
    State {
        /// What the engine rejected.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, detail } => {
                write!(f, "i/o error at {}: {detail}", path.display())
            }
            PersistError::Corrupt { path, offset, detail } => {
                write!(f, "corrupt {} at byte {offset}: {detail}", path.display())
            }
            PersistError::State { detail } => write!(f, "snapshot rejected: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(path: &Path, e: &std::io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// Construction-time knobs for the durability layer.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// The persistence directory (created if missing).
    pub dir: PathBuf,
    /// Journal records between automatic snapshots; `0` disables
    /// automatic snapshots (the journal still grows, and `shutdown` /
    /// drain still snapshot).
    pub snapshot_every: u64,
}

/// Counters the `stats` verb surfaces (all monotone within a process
/// except `journal_bytes` / `records_since_snapshot`, which reset on
/// rotation).
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistStats {
    /// Bytes in the current journal file (magic included).
    pub journal_bytes: u64,
    /// Records appended to the current journal since its snapshot.
    pub records_since_snapshot: u64,
    /// Snapshots written by this process.
    pub snapshots_taken: u64,
    /// Snapshots found damaged and skipped during recovery.
    pub snapshots_discarded: u64,
    /// Wall-clock duration of the last startup recovery, milliseconds.
    pub last_recovery_ms: u64,
    /// Journal records replayed by the last startup recovery.
    pub replayed_records: u64,
}

/// One monitor session's durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnap {
    /// The session name (the `monitor` operand).
    pub name: String,
    /// The target name the session was created against.
    pub target: String,
    /// The session's own automaton as HOA text — per session, not a
    /// registry lookup, so sessions that outlived a redefinition of
    /// their target name restore against the automaton they actually
    /// watch.
    pub hoa: String,
    /// The raw monitor state (backend-specific encoding; sentinels
    /// included). Stored as a decimal string on the wire because the
    /// NFA backend's sentinels do not fit a JSON `i64`.
    pub state: u64,
}

/// Everything a daemon needs to resume: the registry and every monitor
/// session, plus the journal sequence number the state reflects.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The next journal sequence number at snapshot time: records with
    /// `seq >=` this are newer than the snapshot and must be replayed.
    pub seq: u64,
    /// `(name, HOA text)` bindings, sorted by name.
    pub registry: Vec<(String, String)>,
    /// Monitor sessions, sorted by session name.
    pub sessions: Vec<SessionSnap>,
}

impl Snapshot {
    fn to_json(&self) -> Json {
        let registry = self
            .registry
            .iter()
            .map(|(name, hoa)| {
                Json::obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("hoa", Json::Str(hoa.clone())),
                ])
            })
            .collect();
        let sessions = self
            .sessions
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::Str(s.name.clone())),
                    ("target", Json::Str(s.target.clone())),
                    ("hoa", Json::Str(s.hoa.clone())),
                    ("state", Json::Str(s.state.to_string())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("seq", Json::Int(self.seq as i64)),
            ("registry", Json::Arr(registry)),
            ("sessions", Json::Arr(sessions)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Snapshot, String> {
        let seq = doc
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or("snapshot needs a nonnegative integer `seq`")?;
        let text = |item: &Json, key: &str| -> Result<String, String> {
            item.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("snapshot entry needs a string `{key}`"))
        };
        let mut registry = Vec::new();
        for item in doc
            .get("registry")
            .and_then(Json::as_arr)
            .ok_or("snapshot needs a `registry` array")?
        {
            registry.push((text(item, "name")?, text(item, "hoa")?));
        }
        let mut sessions = Vec::new();
        for item in doc
            .get("sessions")
            .and_then(Json::as_arr)
            .ok_or("snapshot needs a `sessions` array")?
        {
            let state = text(item, "state")?
                .parse::<u64>()
                .map_err(|_| "session `state` must be a decimal u64".to_string())?;
            sessions.push(SessionSnap {
                name: text(item, "name")?,
                target: text(item, "target")?,
                hoa: text(item, "hoa")?,
                state,
            });
        }
        Ok(Snapshot {
            seq,
            registry,
            sessions,
        })
    }
}

/// What startup recovery reconstructed from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest loadable snapshot, if any.
    pub snapshot: Option<Snapshot>,
    /// Journal lines newer than the snapshot, in append order — the
    /// engine replays these through normal dispatch.
    pub tail: Vec<String>,
    /// Human-readable recovery diagnostics (truncated tails dropped,
    /// damaged snapshots skipped). Lines start with `[recovered]`.
    pub notes: Vec<String>,
}

/// One parsed journal file.
struct JournalScan {
    /// `(seq, line)` for every complete, checksum-valid record.
    records: Vec<(u64, String)>,
    /// Offset of a truncated tail, if the file ends mid-record.
    truncated_at: Option<u64>,
    /// Bytes of valid content (magic + complete records) — the length
    /// to truncate to before appending.
    valid_len: u64,
}

fn read_journal(path: &Path) -> Result<JournalScan, PersistError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
    if bytes.is_empty() {
        // A crash between `create` and the magic write: clean start.
        return Ok(JournalScan {
            records: Vec::new(),
            truncated_at: None,
            valid_len: 0,
        });
    }
    if bytes.len() < JOURNAL_MAGIC.len() {
        return Ok(JournalScan {
            records: Vec::new(),
            truncated_at: Some(0),
            valid_len: 0,
        });
    }
    if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(PersistError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            detail: "bad journal magic".to_string(),
        });
    }
    let mut records = Vec::new();
    let mut off = JOURNAL_MAGIC.len();
    while off < bytes.len() {
        if bytes.len() - off < RECORD_HEADER {
            return Ok(JournalScan {
                records,
                truncated_at: Some(off as u64),
                valid_len: off as u64,
            });
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                offset: off as u64,
                detail: format!("record length {len} exceeds the {MAX_RECORD}-byte cap"),
            });
        }
        let seq = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
        let hash = u64::from_le_bytes(bytes[off + 12..off + 20].try_into().expect("8 bytes"));
        if bytes.len() - off - RECORD_HEADER < len {
            return Ok(JournalScan {
                records,
                truncated_at: Some(off as u64),
                valid_len: off as u64,
            });
        }
        let payload = &bytes[off + RECORD_HEADER..off + RECORD_HEADER + len];
        if fnv64(seq, payload) != hash {
            return Err(PersistError::Corrupt {
                path: path.to_path_buf(),
                offset: off as u64,
                detail: format!("checksum mismatch in record seq {seq}"),
            });
        }
        let line = std::str::from_utf8(payload).map_err(|_| PersistError::Corrupt {
            path: path.to_path_buf(),
            offset: off as u64,
            detail: format!("record seq {seq} is not valid UTF-8"),
        })?;
        records.push((seq, line.to_string()));
        off += RECORD_HEADER + len;
    }
    Ok(JournalScan {
        records,
        truncated_at: None,
        valid_len: off as u64,
    })
}

fn load_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let corrupt = |offset: u64, detail: String| PersistError::Corrupt {
        path: path.to_path_buf(),
        offset,
        detail,
    };
    let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
    if bytes.len() < SNAPSHOT_MAGIC.len() + 16 {
        return Err(corrupt(0, "snapshot shorter than its header".to_string()));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt(0, "bad snapshot magic".to_string()));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let hash = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let body = &bytes[24..];
    if body.len() != len {
        return Err(corrupt(
            24,
            format!("payload is {} bytes, header says {len}", body.len()),
        ));
    }
    if fnv64(0, body) != hash {
        return Err(corrupt(24, "snapshot checksum mismatch".to_string()));
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| corrupt(24, "snapshot payload is not valid UTF-8".to_string()))?;
    let doc = json::parse(text).map_err(|e| corrupt(24, format!("snapshot JSON: {e}")))?;
    Snapshot::from_json(&doc).map_err(|e| corrupt(24, e))
}

fn epoch_of(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    let handle = File::open(dir).map_err(|e| io_err(dir, &e))?;
    handle.sync_all().map_err(|e| io_err(dir, &e))
}

/// The journal writer plus snapshot/compaction bookkeeping for one
/// persistence directory. Built by [`Persist::open`], which also
/// performs recovery.
#[derive(Debug)]
pub struct Persist {
    dir: PathBuf,
    snapshot_every: u64,
    /// Current epoch: records append to `journal-<epoch>.slj`.
    epoch: u64,
    /// Next record sequence number.
    seq: u64,
    journal: File,
    journal_path: PathBuf,
    stats: PersistStats,
}

impl Persist {
    /// Opens (creating if needed) a persistence directory, recovering
    /// whatever durable state it holds: the newest loadable snapshot
    /// (older ones are fallbacks when the newest is damaged) plus the
    /// journal tail to replay. Truncated journal tails — the normal
    /// signature of a crash mid-append — are dropped with a
    /// `[recovered]` note; a damaged *complete* record is an error.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures;
    /// [`PersistError::Corrupt`] when a journal holds a complete record
    /// that fails validation (bad magic, oversized length field,
    /// checksum mismatch — the diagnostic names the byte offset).
    pub fn open(config: &PersistConfig) -> Result<(Persist, Recovered), PersistError> {
        fs::create_dir_all(&config.dir).map_err(|e| io_err(&config.dir, &e))?;
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        let mut journals: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&config.dir).map_err(|e| io_err(&config.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&config.dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(g) = epoch_of(name, "snap-", ".slsnap") {
                snaps.push((g, entry.path()));
            } else if let Some(g) = epoch_of(name, "journal-", ".slj") {
                journals.push((g, entry.path()));
            }
        }
        snaps.sort_unstable_by_key(|(g, _)| *g);
        journals.sort_unstable_by_key(|(g, _)| *g);

        let mut recovered = Recovered::default();
        let mut discarded = 0u64;
        let mut snap_epoch = 0u64;
        for (g, path) in snaps.iter().rev() {
            match load_snapshot(path) {
                Ok(snap) => {
                    recovered.snapshot = Some(snap);
                    snap_epoch = *g;
                    break;
                }
                Err(e) => {
                    discarded += 1;
                    recovered
                        .notes
                        .push(format!("[recovered] snapshot discarded: {e}"));
                }
            }
        }

        // Replay journals from the chosen snapshot's epoch onward, in
        // epoch order, keeping only records newer than the snapshot
        // (and strictly increasing — overlap across a fallback is
        // filtered by sequence number, not by file).
        let mut next_seq = recovered.snapshot.as_ref().map_or(0, |s| s.seq);
        let mut epoch = snap_epoch;
        let mut valid_len: u64 = 0;
        let mut tail_records_in_current = 0u64;
        let mut have_journal = false;
        for (g, path) in journals.iter().filter(|(g, _)| *g >= snap_epoch) {
            let scan = read_journal(path)?;
            if let Some(off) = scan.truncated_at {
                recovered.notes.push(format!(
                    "[recovered] journal {}: truncated tail at byte {off} dropped ({} complete records kept)",
                    path.display(),
                    scan.records.len()
                ));
            }
            tail_records_in_current = 0;
            for (seq, line) in scan.records {
                if seq >= next_seq {
                    next_seq = seq + 1;
                    recovered.tail.push(line);
                    tail_records_in_current += 1;
                }
            }
            epoch = *g;
            valid_len = scan.valid_len;
            have_journal = true;
        }

        let journal_path = config.dir.join(format!("journal-{epoch}.slj"));
        let journal = if have_journal {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&journal_path)
                .map_err(|e| io_err(&journal_path, &e))?;
            if valid_len < JOURNAL_MAGIC.len() as u64 {
                f.set_len(0).map_err(|e| io_err(&journal_path, &e))?;
                f.write_all(JOURNAL_MAGIC)
                    .map_err(|e| io_err(&journal_path, &e))?;
                valid_len = JOURNAL_MAGIC.len() as u64;
            } else {
                f.set_len(valid_len).map_err(|e| io_err(&journal_path, &e))?;
                f.seek(SeekFrom::End(0)).map_err(|e| io_err(&journal_path, &e))?;
            }
            f
        } else {
            let mut f = File::create(&journal_path).map_err(|e| io_err(&journal_path, &e))?;
            f.write_all(JOURNAL_MAGIC)
                .map_err(|e| io_err(&journal_path, &e))?;
            valid_len = JOURNAL_MAGIC.len() as u64;
            f
        };

        let persist = Persist {
            dir: config.dir.clone(),
            snapshot_every: config.snapshot_every,
            epoch,
            seq: next_seq,
            journal,
            journal_path,
            stats: PersistStats {
                journal_bytes: valid_len,
                records_since_snapshot: tail_records_in_current,
                snapshots_discarded: discarded,
                ..PersistStats::default()
            },
        };
        Ok((persist, recovered))
    }

    /// Appends one request line to the journal (write-ahead: call this
    /// *before* dispatching the request it records).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the write fails — the caller should
    /// reject the request rather than mutate undurable state.
    pub fn append(&mut self, line: &str) -> Result<(), PersistError> {
        let payload = line.as_bytes();
        if payload.len() > MAX_RECORD {
            return Err(PersistError::Io {
                path: self.journal_path.clone(),
                detail: format!("record of {} bytes exceeds the journal cap", payload.len()),
            });
        }
        let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&fnv64(self.seq, payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.journal
            .write_all(&buf)
            .map_err(|e| io_err(&self.journal_path, &e))?;
        self.seq += 1;
        self.stats.journal_bytes += buf.len() as u64;
        self.stats.records_since_snapshot += 1;
        Ok(())
    }

    /// Whether enough records have accumulated for an automatic
    /// snapshot.
    #[must_use]
    pub fn should_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.stats.records_since_snapshot >= self.snapshot_every
    }

    /// Writes a snapshot of the given state atomically (temp file,
    /// `fsync`, rename, directory `fsync`), rotates to a fresh journal
    /// epoch, and prunes every epoch before the previous one (the
    /// previous epoch is kept whole as the corruption fallback).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on any filesystem failure; the journal is
    /// still intact, so the caller may continue without the snapshot.
    pub fn write_snapshot(
        &mut self,
        registry: Vec<(String, String)>,
        sessions: Vec<SessionSnap>,
    ) -> Result<(), PersistError> {
        let snap = Snapshot {
            seq: self.seq,
            registry,
            sessions,
        };
        let next = self.epoch + 1;
        let payload = snap.to_json().render().into_bytes();
        let final_path = self.dir.join(format!("snap-{next}.slsnap"));
        let tmp_path = self.dir.join(format!(".snap-{next}.tmp"));
        {
            let mut f = File::create(&tmp_path).map_err(|e| io_err(&tmp_path, &e))?;
            f.write_all(SNAPSHOT_MAGIC).map_err(|e| io_err(&tmp_path, &e))?;
            f.write_all(&(payload.len() as u64).to_le_bytes())
                .map_err(|e| io_err(&tmp_path, &e))?;
            f.write_all(&fnv64(0, &payload).to_le_bytes())
                .map_err(|e| io_err(&tmp_path, &e))?;
            f.write_all(&payload).map_err(|e| io_err(&tmp_path, &e))?;
            f.sync_all().map_err(|e| io_err(&tmp_path, &e))?;
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, &e))?;
        // Durable journal-so-far, then the fresh epoch's journal.
        self.journal
            .sync_all()
            .map_err(|e| io_err(&self.journal_path, &e))?;
        let journal_path = self.dir.join(format!("journal-{next}.slj"));
        let mut journal = File::create(&journal_path).map_err(|e| io_err(&journal_path, &e))?;
        journal
            .write_all(JOURNAL_MAGIC)
            .map_err(|e| io_err(&journal_path, &e))?;
        journal.sync_all().map_err(|e| io_err(&journal_path, &e))?;
        sync_dir(&self.dir)?;
        self.journal = journal;
        self.journal_path = journal_path;
        self.epoch = next;
        self.stats.snapshots_taken += 1;
        self.stats.records_since_snapshot = 0;
        self.stats.journal_bytes = JOURNAL_MAGIC.len() as u64;
        self.prune(next.saturating_sub(1));
        Ok(())
    }

    /// Removes epoch files older than `keep_from`. Best-effort: a
    /// file that refuses to die only wastes disk, never correctness.
    fn prune(&self, keep_from: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let epoch = epoch_of(name, "snap-", ".slsnap")
                .or_else(|| epoch_of(name, "journal-", ".slj"));
            if let Some(g) = epoch {
                if g < keep_from {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    /// Forces the journal to stable storage (the per-record `write`
    /// already survives a process kill; this also survives power loss).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the sync fails.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.journal
            .sync_all()
            .map_err(|e| io_err(&self.journal_path, &e))
    }

    /// Records the duration and replay size of a completed startup
    /// recovery (the engine owns the clock — replay runs through it).
    pub fn note_recovery(&mut self, ms: u64, replayed: u64) {
        self.stats.last_recovery_ms = ms;
        self.stats.replayed_records = replayed;
    }

    /// The counters the `stats` verb reports.
    #[must_use]
    pub fn stats(&self) -> &PersistStats {
        &self.stats
    }

    /// The next record sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sl-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> PersistConfig {
        PersistConfig {
            dir: dir.to_path_buf(),
            snapshot_every: 0,
        }
    }

    #[test]
    fn journal_records_round_trip() {
        let dir = temp_dir("roundtrip");
        let (mut p, rec) = Persist::open(&config(&dir)).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.tail.is_empty());
        assert!(rec.notes.is_empty(), "{:?}", rec.notes);
        p.append("{\"verb\":\"define\"}").unwrap();
        p.append("{\"verb\":\"monitor-step\"}").unwrap();
        drop(p);
        let (p, rec) = Persist::open(&config(&dir)).unwrap();
        assert_eq!(
            rec.tail,
            vec!["{\"verb\":\"define\"}", "{\"verb\":\"monitor-step\"}"]
        );
        assert_eq!(p.seq(), 2);
        assert!(rec.notes.is_empty(), "{:?}", rec.notes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_with_a_recovered_note() {
        let dir = temp_dir("truncate");
        let (mut p, _) = Persist::open(&config(&dir)).unwrap();
        p.append("first line").unwrap();
        p.append("second line").unwrap();
        drop(p);
        let journal = dir.join("journal-0.slj");
        let len = fs::metadata(&journal).unwrap().len();
        let f = OpenOptions::new().write(true).open(&journal).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (mut p, rec) = Persist::open(&config(&dir)).unwrap();
        assert_eq!(rec.tail, vec!["first line"], "the torn record is dropped");
        assert_eq!(rec.notes.len(), 1);
        assert!(rec.notes[0].starts_with("[recovered]"), "{}", rec.notes[0]);
        // The truncated bytes are gone: appending after recovery keeps
        // the journal parseable.
        p.append("third line").unwrap();
        drop(p);
        let (_, rec) = Persist::open(&config(&dir)).unwrap();
        assert_eq!(rec.tail, vec!["first line", "third line"]);
        assert!(rec.notes.is_empty(), "{:?}", rec.notes);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_mismatch_is_rejected_naming_the_byte_offset() {
        let dir = temp_dir("corrupt");
        let (mut p, _) = Persist::open(&config(&dir)).unwrap();
        p.append("aaaa").unwrap();
        p.append("bbbb").unwrap();
        drop(p);
        let journal = dir.join("journal-0.slj");
        let mut bytes = fs::read(&journal).unwrap();
        // Flip one payload byte of the FIRST record: a complete record
        // with a bad checksum, which a crash cannot produce.
        let first_payload = JOURNAL_MAGIC.len() + RECORD_HEADER;
        bytes[first_payload] ^= 0xff;
        fs::write(&journal, &bytes).unwrap();
        let err = Persist::open(&config(&dir)).unwrap_err();
        match err {
            PersistError::Corrupt { offset, ref detail, .. } => {
                assert_eq!(offset, JOURNAL_MAGIC.len() as u64);
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        assert!(err.to_string().contains("at byte 8"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_journals_start_clean() {
        let dir = temp_dir("clean");
        // Missing directory entirely.
        let (p, rec) = Persist::open(&config(&dir)).unwrap();
        assert!(rec.snapshot.is_none() && rec.tail.is_empty() && rec.notes.is_empty());
        drop(p);
        // Zero-length journal (crash between create and magic write).
        fs::write(dir.join("journal-0.slj"), b"").unwrap();
        let (mut p, rec) = Persist::open(&config(&dir)).unwrap();
        assert!(rec.snapshot.is_none() && rec.tail.is_empty() && rec.notes.is_empty());
        p.append("x").unwrap();
        drop(p);
        let (_, rec) = Persist::open(&config(&dir)).unwrap();
        assert_eq!(rec.tail, vec!["x"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotation_compacts_and_newest_corruption_falls_back() {
        let dir = temp_dir("rotate");
        let (mut p, _) = Persist::open(&config(&dir)).unwrap();
        p.append("old record").unwrap();
        p.write_snapshot(
            vec![("a".to_string(), "HOA-a".to_string())],
            vec![SessionSnap {
                name: "m".to_string(),
                target: "a".to_string(),
                hoa: "HOA-a".to_string(),
                state: u64::MAX,
            }],
        )
        .unwrap();
        p.append("new record").unwrap();
        drop(p);
        // The snapshot absorbed the old record: only the tail replays.
        let (p, rec) = Persist::open(&config(&dir)).unwrap();
        let snap = rec.snapshot.as_ref().unwrap();
        assert_eq!(snap.registry, vec![("a".to_string(), "HOA-a".to_string())]);
        assert_eq!(snap.sessions[0].state, u64::MAX);
        assert_eq!(rec.tail, vec!["new record"]);
        drop(p);
        // Damage the newest snapshot: recovery falls back to replaying
        // the previous epoch's journal from scratch, with a note.
        let snap_path = dir.join("snap-1.slsnap");
        let mut bytes = fs::read(&snap_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&snap_path, &bytes).unwrap();
        let (p, rec) = Persist::open(&config(&dir)).unwrap();
        assert!(rec.snapshot.is_none(), "no older snapshot exists");
        assert_eq!(rec.tail, vec!["old record", "new record"]);
        assert_eq!(p.stats().snapshots_discarded, 1);
        assert!(rec.notes.iter().any(|n| n.contains("snapshot discarded")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_rotation_keeps_one_fallback_epoch() {
        let dir = temp_dir("fallback");
        let (mut p, _) = Persist::open(&config(&dir)).unwrap();
        p.append("r0").unwrap();
        p.write_snapshot(vec![("s1".to_string(), "h".to_string())], Vec::new())
            .unwrap();
        p.append("r1").unwrap();
        p.write_snapshot(vec![("s2".to_string(), "h".to_string())], Vec::new())
            .unwrap();
        p.append("r2").unwrap();
        drop(p);
        // Epoch 0 is pruned; epochs 1 and 2 remain.
        assert!(!dir.join("journal-0.slj").exists());
        assert!(dir.join("snap-1.slsnap").exists());
        assert!(dir.join("journal-1.slj").exists());
        assert!(dir.join("snap-2.slsnap").exists());
        // Newest snapshot damaged: epoch 1 carries the recovery.
        fs::write(dir.join("snap-2.slsnap"), b"garbage").unwrap();
        let (_, rec) = Persist::open(&config(&dir)).unwrap();
        let snap = rec.snapshot.as_ref().unwrap();
        assert_eq!(snap.registry[0].0, "s1");
        assert_eq!(rec.tail, vec!["r1", "r2"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let snap = Snapshot {
            seq: 42,
            registry: vec![("n".to_string(), "hoa text\nwith lines".to_string())],
            sessions: vec![SessionSnap {
                name: "m1".to_string(),
                target: "n".to_string(),
                hoa: "hoa".to_string(),
                state: u64::MAX - 1,
            }],
        };
        let doc = snap.to_json();
        let back = Snapshot::from_json(&json::parse(&doc.render()).unwrap()).unwrap();
        assert_eq!(back.seq, snap.seq);
        assert_eq!(back.registry, snap.registry);
        assert_eq!(back.sessions, snap.sessions);
    }
}
