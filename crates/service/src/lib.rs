//! `sl-service`: the serving layer — a long-running safety/liveness
//! query daemon (`sld`) speaking newline-delimited JSON over stdin or
//! TCP.
//!
//! The safety/liveness literature this workspace reproduces frames its
//! results operationally: monitors consume growing prefixes, verifiers
//! ask decomposition and inclusion queries on demand. This crate turns
//! the toolkit's engines into exactly that deployment shape:
//!
//! * **`define`** — register an LTL formula (`sl-ltl::parse` +
//!   translation) or a HOA automaton (`sl-buchi::hoa::from_hoa`) under
//!   a name;
//! * **`classify` / `decompose`** — the paper's trichotomy and the
//!   Theorem 2 decomposition `B = B_S ∩ B_L`;
//! * **`include` / `equivalent` / `universal`** — the antichain
//!   inclusion engine (or rank-based, per `SL_INCL_ENGINE`);
//! * **`monitor-step`** — incremental [`sl_buchi::Monitor`] sessions
//!   with sticky `Unknown`;
//! * **`batch`** — fan query verbs through the panic-isolated parallel
//!   sweep: one poisoned request degrades to a typed error response,
//!   never a dead daemon;
//! * **`stats`** — per-verb counters, result-cache effectiveness,
//!   transport `io_errors`, persistence metrics, and the engines'
//!   [`sl_buchi::EngineStats`];
//! * **`shutdown`** — the graceful drain: flush the write-ahead
//!   journal, snapshot, refuse further requests, close every
//!   connection (`quit`, by contrast, ends only the issuing
//!   connection).
//!
//! The daemon serves **concurrent connections**: [`Service`] is a
//! cloneable handle over one shared core (registry behind an RwLock,
//! query cache and complement cache sharded into striped locks,
//! journaled verbs serialized through the mutation lock), and
//! [`serve_tcp`] runs one scoped thread per accepted connection,
//! bounded by `max_conns` with a typed `overloaded` rejection beyond
//! the cap. Each client's transcript stays byte-identical to a solo
//! run of the same script (for sessions over disjoint names) no
//! matter how many other clients are connected.
//!
//! A daemon built with [`Service::with_persistence`] is crash-safe:
//! the [`persist`] module journals every state-mutating request ahead
//! of dispatch and snapshots the registry plus all monitor sessions
//! atomically, so a restart recovers byte-identical behaviour (the
//! `crash` conformance oracle and `tests/crash_recovery.rs` hold it to
//! that, killing the daemon at every record boundary).
//!
//! Every request may carry a `budget` (`steps`/`ms`) mapped onto
//! [`sl_support::Budget`]; query results are memoized keyed by
//! `(verb, structural_hash)` with the same cap-and-clear policy as the
//! complement cache; the `sl.service.request` fault site makes intake
//! drillable under `SL_FAULT_RATE`. The JSON layer is hand-rolled
//! ([`json`]) — the workspace stays registry-dependency-free.
//!
//! ```
//! use sl_service::{Service, ServiceConfig};
//! use sl_support::FaultPlan;
//!
//! let svc = Service::new(ServiceConfig {
//!     fault: FaultPlan::disabled(),
//!     threads: 1,
//!     ..ServiceConfig::default()
//! });
//! let reply = svc.handle_line(
//!     r#"{"id":1,"verb":"define","name":"gfa","ltl":"G F a","alphabet":["a","b"]}"#,
//! );
//! assert!(reply.line.contains("\"ok\":true"));
//! let reply = svc.handle_line(r#"{"id":2,"verb":"classify","target":"gfa"}"#);
//! assert!(reply.line.contains("\"class\":\"liveness\""));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod engine;
pub mod json;
pub mod persist;
pub mod proto;
pub mod registry;
pub mod server;

pub use cache::{QueryCache, QueryCacheStats, QueryKind};
pub use engine::{Reply, Service, ServiceConfig, REQUEST_FAULT_SITE};
pub use json::Json;
pub use persist::{
    Persist, PersistConfig, PersistError, PersistStats, Recovered, SessionSnap, Snapshot,
};
pub use proto::{
    err_response, ok_response, parse_request, read_frame, BudgetSpec, Frame, ProtoError, Request,
    Verb,
};
pub use registry::Registry;
pub use server::{serve, serve_connection, serve_stdin, serve_tcp, SessionSummary};
