//! `sld` — the safety/liveness query daemon.
//!
//! ```text
//! sld [--stdin]        serve newline-delimited JSON on stdin/stdout (default)
//! sld --tcp ADDR       serve TCP connections sequentially on ADDR
//! ```
//!
//! stdout carries protocol lines only (golden transcripts diff it
//! byte-for-byte); the banner and diagnostics go to stderr. Knobs via
//! environment: `SL_THREADS` (batch fan-out width), `SL_INCL_ENGINE`
//! (antichain/rank), `SL_FAULT_SEED`/`SL_FAULT_RATE` (seeded fault
//! drill of the `sl.service.request` site and the engines' sites).

use sl_service::{serve_stdin, serve_tcp, Service};
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut service = Service::from_env();
    match args.first().map(String::as_str) {
        None | Some("--stdin") => {
            eprintln!("sld: serving stdin (quit or EOF ends the session)");
            match serve_stdin(&mut service) {
                Ok(summary) => {
                    eprintln!(
                        "sld: session over ({} responses, {})",
                        summary.responses,
                        if summary.quit { "quit" } else { "eof" }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("sld: i/o error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--tcp") => {
            let Some(addr) = args.get(1) else {
                eprintln!("sld: --tcp needs an address (e.g. 127.0.0.1:7333)");
                return ExitCode::FAILURE;
            };
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("sld: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("sld: serving {addr} (a quit request shuts the daemon down)");
            match serve_tcp(&mut service, &listener) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("sld: accept error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--help" | "-h") => {
            eprintln!("usage: sld [--stdin | --tcp ADDR]");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("sld: unknown argument `{other}` (usage: sld [--stdin | --tcp ADDR])");
            ExitCode::FAILURE
        }
    }
}
