//! `sld` — the safety/liveness query daemon.
//!
//! ```text
//! sld [--stdin]              serve newline-delimited JSON on stdin/stdout (default)
//! sld --tcp ADDR             serve concurrent TCP connections on ADDR
//! sld --max-conns N          concurrent-connection cap for --tcp (default 64)
//! sld --persist DIR [...]    journal + snapshot state under DIR (crash-safe)
//! ```
//!
//! Under `--tcp` every connection is served on its own thread against
//! the shared daemon state; `quit` ends the issuing connection only,
//! `shutdown` drains the whole daemon (flush, final snapshot, refuse
//! further work, close every connection).
//!
//! stdout carries protocol lines only (golden transcripts diff it
//! byte-for-byte); the banner and diagnostics go to stderr. Knobs via
//! environment: `SL_THREADS` (batch fan-out width), `SL_INCL_ENGINE`
//! (antichain/rank), `SL_FAULT_SEED`/`SL_FAULT_RATE` (seeded fault
//! drill of the `sl.service.request` site and the engines' sites),
//! `SL_SNAPSHOT_EVERY` (journal records between automatic snapshots
//! under `--persist`; default 256, 0 disables automatic snapshots).

use sl_service::{serve_stdin, serve_tcp, PersistConfig, Service, ServiceConfig};
use std::net::TcpListener;
use std::process::ExitCode;

const USAGE: &str = "usage: sld [--stdin | --tcp ADDR] [--max-conns N] [--persist DIR]";

enum Mode {
    Stdin,
    Tcp(String),
}

/// Flushes, snapshots, and reports the drain on the way out. The
/// shutdown verb already drained if the session ended that way; a
/// second drain is a cheap no-op rotation, and an EOF-terminated
/// session gets its only drain here.
fn drain_at_exit(service: &Service) {
    if !service.is_persistent() {
        return;
    }
    match service.drain() {
        Ok(_) => eprintln!("sld: state flushed and snapshotted"),
        Err(e) => eprintln!("sld: drain failed: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Stdin;
    let mut persist_dir: Option<String> = None;
    let mut max_conns: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stdin" => mode = Mode::Stdin,
            "--tcp" => {
                let Some(addr) = args.get(i + 1) else {
                    eprintln!("sld: --tcp needs an address (e.g. 127.0.0.1:7333)");
                    return ExitCode::FAILURE;
                };
                mode = Mode::Tcp(addr.clone());
                i += 1;
            }
            "--max-conns" => {
                let parsed = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
                let Some(cap) = parsed.filter(|&cap| cap > 0) else {
                    eprintln!("sld: --max-conns needs a positive integer");
                    return ExitCode::FAILURE;
                };
                max_conns = Some(cap);
                i += 1;
            }
            "--persist" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("sld: --persist needs a directory");
                    return ExitCode::FAILURE;
                };
                persist_dir = Some(dir.clone());
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sld: unknown argument `{other}` ({USAGE})");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let mut config = ServiceConfig::default();
    if let Some(cap) = max_conns {
        config.max_conns = cap;
    }
    let service = match &persist_dir {
        None => Service::new(config),
        Some(dir) => {
            let snapshot_every = std::env::var("SL_SNAPSHOT_EVERY")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(256);
            let persist = PersistConfig {
                dir: dir.into(),
                snapshot_every,
            };
            match Service::with_persistence(config, &persist) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("sld: cannot recover state from {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    for note in service.take_recovery_notes() {
        eprintln!("sld: {note}");
    }

    match mode {
        Mode::Stdin => {
            eprintln!("sld: serving stdin (quit or EOF ends the session)");
            match serve_stdin(&service) {
                Ok(summary) => {
                    drain_at_exit(&service);
                    eprintln!(
                        "sld: session over ({} responses, {})",
                        summary.responses,
                        if summary.quit { "quit" } else { "eof" }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    drain_at_exit(&service);
                    eprintln!("sld: i/o error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Tcp(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("sld: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // The resolved address matters when the caller bound port
            // 0; tests parse it off this line to find the daemon.
            let bound = listener
                .local_addr()
                .map_or(addr.clone(), |a| a.to_string());
            eprintln!(
                "sld: serving {bound} (max {} connections; quit ends one connection, \
                 shutdown drains the daemon)",
                service.max_conns()
            );
            match serve_tcp(&service, &listener) {
                Ok(()) => {
                    drain_at_exit(&service);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    drain_at_exit(&service);
                    eprintln!("sld: accept error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
