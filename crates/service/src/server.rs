//! The serving loop: frames lines off a reader, hands them to the
//! [`Service`], writes one response line each, flushes, and stops on
//! `quit` or EOF. Transport-agnostic — stdin/stdout and TCP both go
//! through [`serve`].

use crate::engine::{Reply, Service};
use crate::proto::{err_response, read_frame, Frame, ProtoError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// What a finished session did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Frames that produced a response (oversized frames included;
    /// blank lines are skipped silently and not counted).
    pub responses: u64,
    /// Whether the session ended on `quit` (vs EOF).
    pub quit: bool,
}

/// Serves one session: newline-delimited requests from `reader`,
/// newline-terminated responses to `writer` (flushed per line, so
/// pipelined clients never deadlock on buffering).
///
/// # Errors
///
/// Propagates I/O errors; protocol errors become typed responses.
pub fn serve<R: BufRead, W: Write>(
    service: &mut Service,
    reader: &mut R,
    writer: &mut W,
) -> std::io::Result<SessionSummary> {
    let mut summary = SessionSummary::default();
    let max_line = service.max_line();
    loop {
        let reply = match read_frame(reader, max_line)? {
            Frame::Eof => break,
            Frame::Oversized => {
                let error = ProtoError::new(
                    "oversized_frame",
                    format!("request line exceeds {max_line} bytes"),
                );
                Reply {
                    line: err_response(None, &error),
                    quit: false,
                }
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                service.handle_line(&line)
            }
        };
        writer.write_all(reply.line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        summary.responses += 1;
        if reply.quit {
            summary.quit = true;
            break;
        }
    }
    Ok(summary)
}

/// Serves stdin → stdout until `quit` or EOF.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn serve_stdin(service: &mut Service) -> std::io::Result<SessionSummary> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(service, &mut stdin.lock(), &mut stdout.lock())
}

/// Serves one connection's session, absorbing (and counting) its I/O
/// errors: a mid-session disconnect is a client problem, and the only
/// daemon-side trace it leaves is the `io_errors` counter `stats`
/// reports. Returns the summary accumulated before the failure.
pub fn serve_connection<R: BufRead, W: Write>(
    service: &mut Service,
    reader: &mut R,
    writer: &mut W,
) -> SessionSummary {
    match serve(service, reader, writer) {
        Ok(summary) => summary,
        Err(_) => {
            service.note_io_error();
            SessionSummary::default()
        }
    }
}

/// Serves TCP connections sequentially (one session at a time — the
/// registry and cache are session-shared daemon state, and sequential
/// accept keeps responses deterministic). A `quit` or `shutdown` from
/// any client shuts the daemon down; a client disconnect is counted
/// (`stats` reports it as `io_errors`) and the daemon moves on to the
/// next `accept`.
///
/// # Errors
///
/// Propagates `accept` errors; per-connection I/O errors end that
/// connection only.
pub fn serve_tcp(service: &mut Service, listener: &TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        if serve_connection(service, &mut reader, &mut writer).quit {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;
    use sl_support::FaultPlan;
    use std::io::Cursor;

    fn quiet_service() -> Service {
        Service::new(ServiceConfig {
            fault: FaultPlan::disabled(),
            threads: 1,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn session_answers_each_line_and_stops_on_quit() {
        let mut service = quiet_service();
        let script = concat!(
            "\n",
            "{\"id\":1,\"verb\":\"stats\"}\n",
            "{\"id\":2,\"verb\":\"quit\"}\n",
            "{\"id\":3,\"verb\":\"stats\"}\n",
        );
        let mut output = Vec::new();
        let summary = serve(&mut service, &mut Cursor::new(script), &mut output).unwrap();
        assert_eq!(summary, SessionSummary { responses: 2, quit: true });
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"bye\":true"), "{}", lines[1]);
    }

    #[test]
    fn oversized_lines_get_a_typed_rejection_and_framing_recovers() {
        let mut service = Service::new(ServiceConfig {
            fault: FaultPlan::disabled(),
            threads: 1,
            max_line: 64,
            ..ServiceConfig::default()
        });
        let script = format!(
            "{{\"id\":1,\"verb\":\"stats\",\"pad\":\"{}\"}}\n{{\"id\":2,\"verb\":\"stats\"}}\n",
            "x".repeat(200)
        );
        let mut output = Vec::new();
        let summary = serve(&mut service, &mut Cursor::new(script), &mut output).unwrap();
        assert_eq!(summary.responses, 2);
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"oversized_frame\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":2,\"ok\":true"), "{}", lines[1]);
    }
}
