//! The serving loops: frame lines off a reader, hand them to the
//! [`Service`], write one response line each, and stop on `quit`,
//! `shutdown`, or EOF.
//!
//! Transport-agnostic sessions go through [`serve`]; [`serve_tcp`] is
//! the concurrent connection supervisor — one scoped thread per
//! accepted connection (bounded by `max_conns`, with a typed
//! `overloaded` rejection beyond the cap), every connection serving
//! against a clone of the same [`Service`] handle. `quit` ends only
//! the issuing connection; `shutdown` drains the daemon: the stopped
//! flag refuses further requests everywhere, live sockets are shut
//! down so idle clients observe EOF, and the supervisor returns once
//! every connection thread has finished.

use crate::engine::{Reply, Service};
use crate::proto::{err_response, read_frame, Frame, ProtoError};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Mutex;

/// What a finished session did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Frames that produced a response (oversized frames included;
    /// blank lines are skipped silently and not counted).
    pub responses: u64,
    /// Whether the session ended on `quit`/`shutdown` (vs EOF).
    pub quit: bool,
}

/// Decrements the active-session gauge however the session ends
/// (clean return, I/O error, or a panic unwinding through the serve
/// loop).
struct SessionGuard<'a>(&'a Service);

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.0.end_session();
    }
}

/// Serves one session: newline-delimited requests from `reader`,
/// newline-terminated responses to `writer` — one write and one flush
/// per response (a one-line protocol must not sit in a buffer, and
/// must not pay two syscalls a line either). Brackets the session in
/// the `connections`/`active_sessions` gauges.
///
/// # Errors
///
/// Propagates I/O errors; protocol errors become typed responses.
pub fn serve<R: BufRead, W: Write>(
    service: &Service,
    reader: &mut R,
    writer: &mut W,
) -> std::io::Result<SessionSummary> {
    service.begin_session();
    let _guard = SessionGuard(service);
    let mut summary = SessionSummary::default();
    let max_line = service.max_line();
    loop {
        let reply = match read_frame(reader, max_line)? {
            Frame::Eof => break,
            Frame::Oversized => {
                let error = ProtoError::new(
                    "oversized_frame",
                    format!("request line exceeds {max_line} bytes"),
                );
                Reply {
                    line: err_response(None, &error),
                    quit: false,
                }
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                service.handle_line(&line)
            }
        };
        let mut line = reply.line;
        line.push('\n');
        writer.write_all(line.as_bytes())?;
        writer.flush()?;
        summary.responses += 1;
        if reply.quit {
            summary.quit = true;
            break;
        }
    }
    Ok(summary)
}

/// Serves stdin → stdout until `quit` or EOF. Single-session by
/// nature: here `quit` and `shutdown` both end the process's only
/// connection (the `sld` binary drains durable state on the way out).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn serve_stdin(service: &Service) -> std::io::Result<SessionSummary> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(service, &mut stdin.lock(), &mut stdout.lock())
}

/// Serves one connection's session, absorbing (and counting) its I/O
/// errors: a mid-session disconnect is a client problem, and the only
/// daemon-side trace it leaves is the `io_errors` counter `stats`
/// reports. Returns the summary accumulated before the failure.
pub fn serve_connection<R: BufRead, W: Write>(
    service: &Service,
    reader: &mut R,
    writer: &mut W,
) -> SessionSummary {
    match serve(service, reader, writer) {
        Ok(summary) => summary,
        Err(_) => {
            service.note_io_error();
            SessionSummary::default()
        }
    }
}

/// The connection supervisor: accepts TCP connections and serves each
/// on its own scoped thread against a clone of the shared [`Service`]
/// handle, so N clients make progress concurrently over the shared
/// registry and sharded caches.
///
/// * Accepted sockets get `TCP_NODELAY` — a one-line-request/
///   one-line-response protocol must not eat Nagle's delay.
/// * Admission is bounded by `max_conns`: a connection beyond the cap
///   gets one typed `overloaded` response line and is closed.
/// * `quit` ends the issuing connection; the supervisor keeps
///   accepting.
/// * `shutdown` drains the daemon: the handling thread wakes the
///   (blocking) acceptor with a loopback connection and shuts down
///   every live socket, so idle clients observe EOF instead of
///   hanging the drain; the supervisor then joins all connection
///   threads and returns.
///
/// # Errors
///
/// Propagates fatal `accept` errors; per-connection I/O errors end
/// that connection only (counted as `io_errors`).
pub fn serve_tcp(service: &Service, listener: &TcpListener) -> std::io::Result<()> {
    // Live sockets, for the drain broadcast. Dead entries are pruned
    // opportunistically whenever a connection ends.
    let conns: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
    let local = listener.local_addr().ok();
    std::thread::scope(|scope| {
        let mut accept_error = None;
        for stream in listener.incoming() {
            if service.is_stopped() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            };
            let _ = stream.set_nodelay(true);
            if service.active_sessions() >= service.max_conns() as u64 {
                let mut line = service.overloaded_reply();
                line.push('\n');
                let mut writer = &stream;
                let _ = writer.write_all(line.as_bytes());
                continue; // dropping the socket closes it
            }
            if let Ok(registered) = stream.try_clone() {
                let mut conns = conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                conns.retain(|c| c.peer_addr().is_ok());
                conns.push(registered);
            }
            let conns = &conns;
            scope.spawn(move || {
                let peer = stream.peer_addr();
                let mut writer = BufWriter::new(match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => {
                        service.note_io_error();
                        return;
                    }
                });
                let mut reader = BufReader::new(stream);
                serve_connection(service, &mut reader, &mut writer);
                let mut conns = conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Ok(peer) = peer {
                    conns.retain(|c| c.peer_addr().map(|a| a != peer).unwrap_or(false));
                }
                if service.is_stopped() {
                    // Drain broadcast: shut every live socket (their
                    // serve loops see EOF and exit), then wake the
                    // acceptor blocked in `accept` with a loopback
                    // connection so it observes the stopped flag.
                    for conn in conns.iter() {
                        let _ = conn.shutdown(Shutdown::Both);
                    }
                    drop(conns);
                    if let Some(addr) = local {
                        let _ = TcpStream::connect(addr);
                    }
                }
            });
        }
        // Final broadcast: a connection admitted in the races around
        // the stopped flag still gets its socket shut here, so the
        // scope join cannot hang on a client that never disconnects.
        let guard = conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for conn in guard.iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        drop(guard);
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;
    use sl_support::FaultPlan;
    use std::io::Cursor;

    fn quiet_service() -> Service {
        Service::new(ServiceConfig {
            fault: FaultPlan::disabled(),
            threads: 1,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn session_answers_each_line_and_stops_on_quit() {
        let service = quiet_service();
        let script = concat!(
            "\n",
            "{\"id\":1,\"verb\":\"stats\"}\n",
            "{\"id\":2,\"verb\":\"quit\"}\n",
            "{\"id\":3,\"verb\":\"stats\"}\n",
        );
        let mut output = Vec::new();
        let summary = serve(&service, &mut Cursor::new(script), &mut output).unwrap();
        assert_eq!(summary, SessionSummary { responses: 2, quit: true });
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"bye\":true"), "{}", lines[1]);
    }

    #[test]
    fn quit_is_connection_local_but_shutdown_stops_the_daemon() {
        let service = quiet_service();
        let mut out = Vec::new();
        let summary = serve(
            &service,
            &mut Cursor::new("{\"id\":1,\"verb\":\"quit\"}\n"),
            &mut out,
        )
        .unwrap();
        assert!(summary.quit);
        assert!(!service.is_stopped(), "quit must not drain the daemon");
        // A later session on the same daemon still works...
        let mut out = Vec::new();
        serve(
            &service,
            &mut Cursor::new("{\"id\":2,\"verb\":\"shutdown\"}\n"),
            &mut out,
        )
        .unwrap();
        assert!(service.is_stopped(), "shutdown drains the daemon");
        // ...and after the drain every request is refused.
        let mut out = Vec::new();
        serve(
            &service,
            &mut Cursor::new("{\"id\":3,\"verb\":\"stats\"}\n"),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"shutting_down\""), "{text}");
    }

    #[test]
    fn oversized_lines_get_a_typed_rejection_and_framing_recovers() {
        let service = Service::new(ServiceConfig {
            fault: FaultPlan::disabled(),
            threads: 1,
            max_line: 64,
            ..ServiceConfig::default()
        });
        let script = format!(
            "{{\"id\":1,\"verb\":\"stats\",\"pad\":\"{}\"}}\n{{\"id\":2,\"verb\":\"stats\"}}\n",
            "x".repeat(200)
        );
        let mut output = Vec::new();
        let summary = serve(&service, &mut Cursor::new(script), &mut output).unwrap();
        assert_eq!(summary.responses, 2);
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"oversized_frame\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":2,\"ok\":true"), "{}", lines[1]);
    }
}
