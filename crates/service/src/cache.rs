//! Memoization of query results, keyed by `(verb, structural_hash)`.
//!
//! The same policy as `sl-buchi`'s complement cache: a bounded map
//! that is *cleared* (not evicted entry-by-entry) when it would exceed
//! its cap — O(1) worst-case bookkeeping, bounded memory on unbounded
//! corpora — and a stored-operand equality check that turns 64-bit
//! hash collisions into cache misses instead of wrong answers.
//!
//! Only successful results are cached: a query that failed on a small
//! budget must be recomputed when the client retries with a larger
//! one, and fault-injected failures must not poison later sessions.
//! Hits are served without consulting the request budget — a cached
//! answer costs nothing, which is the point of the cache.

use crate::json::Json;
use sl_buchi::Buchi;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache-key verb tags. Only pure query verbs are cacheable: `define`
/// and `decompose` mutate the registry, `monitor-step` is stateful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `classify` (unary).
    Classify,
    /// `include` (binary, ordered).
    Include,
    /// `equivalent` (binary, ordered — the separator's direction
    /// depends on operand order, so no normalization).
    Equivalent,
    /// `universal` (unary).
    Universal,
}

#[derive(Debug)]
struct Entry {
    left: Arc<Buchi>,
    right: Option<Arc<Buchi>>,
    result: Json,
}

/// Counters describing how the cache has been used (levels and
/// monotone counts; `entries` is a gauge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Results currently stored.
    pub entries: usize,
    /// Times the map hit its cap and was cleared wholesale.
    pub clears: u64,
    /// Lookups whose hash matched a stored entry for different
    /// operands; recomputed uncached, costing time but never
    /// correctness.
    pub collisions: u64,
}

/// The bounded query-result cache.
#[derive(Debug)]
pub struct QueryCache {
    map: HashMap<(QueryKind, u64, u64), Entry>,
    cap: usize,
    hits: u64,
    misses: u64,
    clears: u64,
    collisions: u64,
}

impl QueryCache {
    /// An empty cache holding at most `cap` results.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        QueryCache {
            map: HashMap::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
            clears: 0,
            collisions: 0,
        }
    }

    fn key(kind: QueryKind, left: &Buchi, right: Option<&Buchi>) -> (QueryKind, u64, u64) {
        (
            kind,
            left.structural_hash(),
            right.map_or(0, Buchi::structural_hash),
        )
    }

    /// Looks up a result, verifying the stored operands are *equal* to
    /// the probe's (hash collisions count as misses, tallied
    /// separately). Updates the hit/miss counters.
    pub fn probe(
        &mut self,
        kind: QueryKind,
        left: &Arc<Buchi>,
        right: Option<&Arc<Buchi>>,
    ) -> Option<Json> {
        match self.map.get(&Self::key(kind, left, right.map(Arc::as_ref))) {
            Some(entry) => {
                let same = entry.left.as_ref() == left.as_ref()
                    && match (&entry.right, right) {
                        (None, None) => true,
                        (Some(stored), Some(probe)) => stored.as_ref() == probe.as_ref(),
                        _ => false,
                    };
                if same {
                    self.hits += 1;
                    Some(entry.result.clone())
                } else {
                    self.collisions += 1;
                    self.misses += 1;
                    None
                }
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a computed result, clearing the whole map first if it is
    /// at capacity (cap-and-clear, as the complement cache does).
    pub fn store(
        &mut self,
        kind: QueryKind,
        left: Arc<Buchi>,
        right: Option<Arc<Buchi>>,
        result: Json,
    ) {
        let key = Self::key(kind, &left, right.as_deref());
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            self.map.clear();
            self.clears += 1;
        }
        self.map.insert(key, Entry { left, right, result });
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            clears: self.clears,
            collisions: self.collisions,
        }
    }

    /// Empties the cache and zeroes the counters (bench isolation).
    pub fn reset(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
        self.clears = 0;
        self.collisions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    fn arc(b: Buchi) -> Arc<Buchi> {
        Arc::new(b)
    }

    #[test]
    fn probe_miss_store_hit() {
        let mut cache = QueryCache::new(8);
        let u = arc(Buchi::universal(Alphabet::ab()));
        assert!(cache.probe(QueryKind::Universal, &u, None).is_none());
        cache.store(QueryKind::Universal, Arc::clone(&u), None, Json::Bool(true));
        assert_eq!(cache.probe(QueryKind::Universal, &u, None), Some(Json::Bool(true)));
        // Same operand under a different verb tag is a distinct key.
        assert!(cache.probe(QueryKind::Classify, &u, None).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn cap_and_clear_bounds_the_map() {
        let mut cache = QueryCache::new(2);
        let sigma = Alphabet::ab();
        let automata: Vec<Arc<Buchi>> = (0..3)
            .map(|seed| {
                arc(sl_buchi::random_buchi(
                    &sigma,
                    seed,
                    sl_buchi::RandomConfig::default(),
                ))
            })
            .collect();
        for (i, b) in automata.iter().enumerate() {
            cache.store(QueryKind::Classify, Arc::clone(b), None, Json::Int(i as i64));
        }
        let stats = cache.stats();
        assert_eq!(stats.clears, 1);
        // The third insert cleared the first two: only it survives.
        assert_eq!(stats.entries, 1);
        assert!(cache.probe(QueryKind::Classify, &automata[2], None).is_some());
        assert!(cache.probe(QueryKind::Classify, &automata[0], None).is_none());
    }
}
