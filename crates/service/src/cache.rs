//! Memoization of query results, keyed by `(verb, structural_hash)`.
//!
//! The same policy as `sl-buchi`'s complement cache: a bounded map
//! that is *cleared* (not evicted entry-by-entry) when it would exceed
//! its cap — O(1) worst-case bookkeeping, bounded memory on unbounded
//! corpora — and a stored-operand equality check that turns 64-bit
//! hash collisions into cache misses instead of wrong answers.
//!
//! Since the daemon serves connections concurrently, the map is
//! **sharded into striped locks** keyed by the left operand's
//! structural hash: every session shares one result pool (a cold query
//! computed for one client is a warm hit for every other), while
//! probes for distinct automata proceed on distinct stripes without
//! contending. All methods take `&self`; a shard's lock is held only
//! for the probe or store itself, never across a compute.
//!
//! Only successful results are cached: a query that failed on a small
//! budget must be recomputed when the client retries with a larger
//! one, and fault-injected failures must not poison later sessions.
//! Hits are served without consulting the request budget — a cached
//! answer costs nothing, which is the point of the cache.

use crate::json::Json;
use sl_buchi::Buchi;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default stripe count for [`QueryCache::new`]. Shard selection is
/// `left.structural_hash() % shards`, so repeat queries land on (and
/// serialize through) one stripe while distinct operands parallelize.
pub const QUERY_CACHE_SHARDS: usize = 8;

/// Cache-key verb tags. Only pure query verbs are cacheable: `define`
/// and `decompose` mutate the registry, `monitor-step` is stateful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `classify` (unary).
    Classify,
    /// `include` (binary, ordered).
    Include,
    /// `equivalent` (binary, ordered — the separator's direction
    /// depends on operand order, so no normalization).
    Equivalent,
    /// `universal` (unary).
    Universal,
}

/// The full cache key: verb tag plus the operands' structural hashes
/// (0 for an absent right operand). Shared with the engine's in-flight
/// compute deduplication, which tracks pending computes by this key.
pub(crate) type QueryKey = (QueryKind, u64, u64);

#[derive(Debug)]
struct Entry {
    left: Arc<Buchi>,
    right: Option<Arc<Buchi>>,
    result: Json,
}

/// Counters describing how the cache has been used (levels and
/// monotone counts; `entries` is a gauge). For a sharded cache this is
/// the roll-up; [`QueryCache::shard_stats`] has the per-stripe split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Results currently stored.
    pub entries: usize,
    /// Times a shard hit its cap and was cleared wholesale.
    pub clears: u64,
    /// Lookups whose hash matched a stored entry for different
    /// operands; recomputed uncached, costing time but never
    /// correctness.
    pub collisions: u64,
}

/// One stripe: a bounded map plus its counters, guarded by one lock.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<QueryKey, Entry>,
    hits: u64,
    misses: u64,
    clears: u64,
    collisions: u64,
}

impl Shard {
    fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            clears: self.clears,
            collisions: self.collisions,
        }
    }
}

/// The bounded, sharded query-result cache.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry cap (the construction cap split evenly).
    shard_cap: usize,
}

impl QueryCache {
    /// An empty cache holding at most `cap` results across
    /// [`QUERY_CACHE_SHARDS`] stripes.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self::with_shards(cap, QUERY_CACHE_SHARDS)
    }

    /// An empty cache with an explicit stripe count (tests pin 1 shard
    /// to observe the cap-and-clear policy exactly).
    #[must_use]
    pub fn with_shards(cap: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        QueryCache {
            shard_cap: (cap / shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    pub(crate) fn key(kind: QueryKind, left: &Buchi, right: Option<&Buchi>) -> QueryKey {
        (
            kind,
            left.structural_hash(),
            right.map_or(0, Buchi::structural_hash),
        )
    }

    /// The stripe responsible for `key`, locked. Poisoning is absorbed:
    /// the cache is semantically transparent, so state abandoned by a
    /// panicking thread is still a valid memo table.
    fn shard(&self, key: &QueryKey) -> MutexGuard<'_, Shard> {
        let index = (key.1 % self.shards.len() as u64) as usize;
        self.shards[index].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a result, verifying the stored operands are *equal* to
    /// the probe's (hash collisions count as misses, tallied
    /// separately). Updates the hit/miss counters.
    pub fn probe(
        &self,
        kind: QueryKind,
        left: &Arc<Buchi>,
        right: Option<&Arc<Buchi>>,
    ) -> Option<Json> {
        let key = Self::key(kind, left, right.map(Arc::as_ref));
        let mut shard = self.shard(&key);
        match shard.map.get(&key) {
            Some(entry) => {
                let same = entry.left.as_ref() == left.as_ref()
                    && match (&entry.right, right) {
                        (None, None) => true,
                        (Some(stored), Some(probe)) => stored.as_ref() == probe.as_ref(),
                        _ => false,
                    };
                if same {
                    let result = entry.result.clone();
                    shard.hits += 1;
                    Some(result)
                } else {
                    shard.collisions += 1;
                    shard.misses += 1;
                    None
                }
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Stores a computed result, clearing the whole stripe first if it
    /// is at capacity (cap-and-clear, as the complement cache does).
    pub fn store(
        &self,
        kind: QueryKind,
        left: Arc<Buchi>,
        right: Option<Arc<Buchi>>,
        result: Json,
    ) {
        let key = Self::key(kind, &left, right.as_deref());
        let mut shard = self.shard(&key);
        if !shard.map.contains_key(&key) && shard.map.len() >= self.shard_cap {
            shard.map.clear();
            shard.clears += 1;
        }
        shard.map.insert(key, Entry { left, right, result });
    }

    /// A roll-up of the counters across every stripe.
    #[must_use]
    pub fn stats(&self) -> QueryCacheStats {
        let mut total = QueryCacheStats::default();
        for stats in self.shard_stats() {
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.clears += stats.clears;
            total.collisions += stats.collisions;
        }
        total
    }

    /// Per-stripe counters, in shard order — `stats` surfaces these so
    /// a workload thrashing one stripe is visible without a profiler.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<QueryCacheStats> {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(PoisonError::into_inner).stats())
            .collect()
    }

    /// Empties the cache and zeroes the counters (bench isolation).
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            *shard = Shard::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    fn arc(b: Buchi) -> Arc<Buchi> {
        Arc::new(b)
    }

    #[test]
    fn probe_miss_store_hit() {
        let cache = QueryCache::new(8);
        let u = arc(Buchi::universal(Alphabet::ab()));
        assert!(cache.probe(QueryKind::Universal, &u, None).is_none());
        cache.store(QueryKind::Universal, Arc::clone(&u), None, Json::Bool(true));
        assert_eq!(cache.probe(QueryKind::Universal, &u, None), Some(Json::Bool(true)));
        // Same operand under a different verb tag is a distinct key.
        assert!(cache.probe(QueryKind::Classify, &u, None).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn cap_and_clear_bounds_the_map() {
        // One shard pins the clear policy exactly: the sharded default
        // would spread the three operands across stripes.
        let cache = QueryCache::with_shards(2, 1);
        let sigma = Alphabet::ab();
        let automata: Vec<Arc<Buchi>> = (0..3)
            .map(|seed| {
                arc(sl_buchi::random_buchi(
                    &sigma,
                    seed,
                    sl_buchi::RandomConfig::default(),
                ))
            })
            .collect();
        for (i, b) in automata.iter().enumerate() {
            cache.store(QueryKind::Classify, Arc::clone(b), None, Json::Int(i as i64));
        }
        let stats = cache.stats();
        assert_eq!(stats.clears, 1);
        // The third insert cleared the first two: only it survives.
        assert_eq!(stats.entries, 1);
        assert!(cache.probe(QueryKind::Classify, &automata[2], None).is_some());
        assert!(cache.probe(QueryKind::Classify, &automata[0], None).is_none());
    }

    #[test]
    fn rollup_sums_per_shard_counters() {
        let cache = QueryCache::new(64);
        let sigma = Alphabet::ab();
        for seed in 0..16 {
            let b = arc(sl_buchi::random_buchi(
                &sigma,
                seed,
                sl_buchi::RandomConfig::default(),
            ));
            assert!(cache.probe(QueryKind::Classify, &b, None).is_none());
            cache.store(QueryKind::Classify, Arc::clone(&b), None, Json::Int(seed as i64));
            assert!(cache.probe(QueryKind::Classify, &b, None).is_some());
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), QUERY_CACHE_SHARDS);
        let rollup = cache.stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), rollup.hits);
        assert_eq!(per_shard.iter().map(|s| s.misses).sum::<u64>(), rollup.misses);
        assert_eq!(per_shard.iter().map(|s| s.entries).sum::<usize>(), rollup.entries);
        assert_eq!((rollup.hits, rollup.misses, rollup.entries), (16, 16, 16));
        // 16 distinct random automata should not all pile onto one
        // stripe — the hash actually spreads.
        assert!(
            per_shard.iter().filter(|s| s.entries > 0).count() > 1,
            "{per_shard:?}"
        );
    }

    #[test]
    fn concurrent_probes_and_stores_stay_consistent() {
        let cache = QueryCache::new(256);
        let sigma = Alphabet::ab();
        let automata: Vec<Arc<Buchi>> = (0..8)
            .map(|seed| {
                arc(sl_buchi::random_buchi(
                    &sigma,
                    seed,
                    sl_buchi::RandomConfig::default(),
                ))
            })
            .collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                let automata = &automata;
                scope.spawn(move || {
                    for round in 0..50 {
                        let b = &automata[(t + round) % automata.len()];
                        match cache.probe(QueryKind::Universal, b, None) {
                            Some(result) => {
                                assert_eq!(result, Json::Int(b.num_states() as i64))
                            }
                            None => cache.store(
                                QueryKind::Universal,
                                Arc::clone(b),
                                None,
                                Json::Int(b.num_states() as i64),
                            ),
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.entries <= automata.len());
    }
}
