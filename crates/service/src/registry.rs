//! The named-object registry: `define` binds a name to an automaton,
//! every query verb resolves operands here.
//!
//! Automata are stored behind [`Arc`] so batch fan-out can hand clones
//! to sweep workers without copying transition tables, and so the
//! query cache can retain operands for its collision equality check
//! after a name is redefined.

use sl_buchi::Buchi;
use std::collections::HashMap;
use std::sync::Arc;

/// Name → automaton bindings. Redefinition replaces the binding (the
/// old automaton lives on in any cache entries that captured it).
#[derive(Debug, Default)]
pub struct Registry {
    map: HashMap<String, Arc<Buchi>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Binds `name` to `b`, replacing any previous binding.
    pub fn insert(&mut self, name: &str, b: Buchi) -> Arc<Buchi> {
        let b = Arc::new(b);
        self.map.insert(name.to_string(), Arc::clone(&b));
        b
    }

    /// The automaton bound to `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Arc<Buchi>> {
        self.map.get(name)
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no names are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All bindings, in no particular order (snapshot serialization
    /// sorts by name itself to keep snapshot bytes deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Buchi>)> {
        self.map.iter().map(|(name, b)| (name.as_str(), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sl_omega::Alphabet;

    #[test]
    fn insert_get_and_redefine() {
        let mut reg = Registry::new();
        assert!(reg.is_empty());
        let sigma = Alphabet::ab();
        let first = reg.insert("u", Buchi::universal(sigma.clone()));
        assert_eq!(reg.len(), 1);
        assert!(Arc::ptr_eq(reg.get("u").unwrap(), &first));
        // Redefinition replaces the binding but does not disturb older
        // Arcs still held elsewhere (e.g. by the query cache).
        let second = reg.insert("u", Buchi::universal(sigma));
        assert_eq!(reg.len(), 1);
        assert!(Arc::ptr_eq(reg.get("u").unwrap(), &second));
        assert!(!Arc::ptr_eq(&first, &second));
        assert!(reg.get("missing").is_none());
    }
}
