//! The concurrent crash drill against the real binary: SIGKILL a
//! persistent `sld --tcp` daemon while several live connections are
//! mid-flight, and hold it to the tentpole guarantees —
//!
//! 1. every client's received response stream is a byte-prefix of a
//!    solo twin running the same script (concurrency and the kill
//!    never change *what* a client was told, only how far it got);
//! 2. the interleaved multi-client journal the kill leaves behind
//!    recovers (a torn tail is a crash signature, not corruption);
//! 3. every mutation a client saw acknowledged survives recovery (the
//!    write-ahead append hits the file before the response line does).

use sl_service::{PersistConfig, Service, ServiceConfig};
use sl_support::FaultPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sl-cc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quiet() -> ServiceConfig {
    ServiceConfig {
        fault: FaultPlan::disabled(),
        threads: 1,
        ..ServiceConfig::default()
    }
}

/// Client `j`'s script: one namespaced define, then a long run of
/// journaled monitor-steps (every line a journal record, so the kill
/// always lands between or inside records of several interleaved
/// sessions).
fn client_script(j: usize) -> Vec<String> {
    let ns = format!("c{j}_");
    let mut lines = vec![format!(
        "{{\"id\":1,\"verb\":\"define\",\"name\":\"{ns}p0\",\"ltl\":\"G a\",\"alphabet\":[\"a\",\"b\"]}}"
    )];
    for i in 0..60usize {
        let sym = if (i + j) % 5 == 4 { "b" } else { "a" };
        lines.push(format!(
            "{{\"id\":{},\"verb\":\"monitor-step\",\"monitor\":\"{ns}m0\",\"target\":\"{ns}p0\",\"symbols\":[\"{sym}\"]}}",
            i + 2
        ));
    }
    lines
}

#[test]
fn sigkill_with_three_live_connections_recovers_every_acknowledged_mutation() {
    let dir = temp_dir("sigkill");
    let mut child = Command::new(env!("CARGO_BIN_EXE_sld"))
        .args(["--tcp", "127.0.0.1:0", "--persist"])
        .arg(&dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn sld");
    // The banner carries the resolved address (the daemon bound port 0).
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).unwrap() == 0 {
            panic!("daemon exited before printing its banner");
        }
        if let Some(rest) = line.strip_prefix("sld: serving ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stderr so the daemon can never block on the pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut stderr, &mut sink);
    });

    // One reply counter per client: the kill waits until *every*
    // connection is past its define and several steps deep.
    let progress: Arc<Vec<AtomicU64>> =
        Arc::new((0..CLIENTS).map(|_| AtomicU64::new(0)).collect());
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|j| {
                let progress = Arc::clone(&progress);
                let addr = addr.clone();
                scope.spawn(move || {
                    let stream = TcpStream::connect(&addr).expect("connect");
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut received = Vec::new();
                    for line in client_script(j) {
                        if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
                            break;
                        }
                        let mut reply = String::new();
                        match reader.read_line(&mut reply) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        if !reply.ends_with('\n') {
                            break; // the kill tore this response mid-write
                        }
                        received.push(reply.trim_end().to_string());
                        progress[j].fetch_add(1, Ordering::SeqCst);
                    }
                    received
                })
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(60);
        while progress.iter().any(|p| p.load(Ordering::SeqCst) < 4) {
            if Instant::now() > deadline {
                let _ = child.kill();
                panic!("clients never reached the kill threshold");
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        child.kill().expect("SIGKILL the daemon");
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    child.wait().unwrap();

    // (1) Byte-prefix independence: each transcript against its twin.
    for (j, transcript) in transcripts.iter().enumerate() {
        assert!(transcript.len() >= 4, "client {j} stalled before the kill");
        let twin = Service::new(quiet());
        let expected: Vec<String> = client_script(j)
            .iter()
            .map(|l| twin.handle_line(l).line)
            .collect();
        assert!(transcript.len() <= expected.len());
        for (i, got) in transcript.iter().enumerate() {
            assert_eq!(
                got, &expected[i],
                "client {j}: reply {i} differs from the solo twin"
            );
        }
    }

    // (2) The interleaved journal recovers; a torn final record at
    // most costs an *unacknowledged* request.
    let recovered = Service::with_persistence(
        quiet(),
        &PersistConfig {
            dir: dir.clone(),
            snapshot_every: 0,
        },
    )
    .expect("multi-client journal left by SIGKILL must recover");

    // (3) Acknowledged mutations survived: every client saw its define
    // and at least three monitor-steps answered, so the recovered
    // daemon knows each name and each monitor session.
    for j in 0..CLIENTS {
        let classify = recovered
            .handle_line(&format!(
                "{{\"id\":90,\"verb\":\"classify\",\"target\":\"c{j}_p0\"}}"
            ))
            .line;
        assert!(
            classify.contains("\"class\":\"safety\""),
            "client {j}'s acknowledged define lost in recovery: {classify}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
