//! Durability and lifecycle integration tests: crash recovery, the
//! graceful shutdown drain, bounded intake, transport error counting,
//! and the persistence metrics surfaced by `stats`.

use sl_service::{
    serve_connection, serve_tcp, Json, PersistConfig, PersistError, Service, ServiceConfig,
};
use sl_support::FaultPlan;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sl-persist-it-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quiet() -> ServiceConfig {
    ServiceConfig {
        fault: FaultPlan::disabled(),
        threads: 1,
        ..ServiceConfig::default()
    }
}

fn open(dir: &PathBuf, snapshot_every: u64) -> Service {
    Service::with_persistence(
        quiet(),
        &PersistConfig {
            dir: dir.clone(),
            snapshot_every,
        },
    )
    .expect("open persistent service")
}

const DEFINE_GA: &str = r#"{"id":1,"verb":"define","name":"p0","ltl":"G a","alphabet":["a","b"]}"#;

#[test]
fn restart_resumes_monitor_sessions_with_sticky_verdicts() {
    let dir = temp_dir("sticky");
    // The twin sees the whole session uninterrupted.
    let lines = [
        DEFINE_GA,
        r#"{"id":2,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["a","a"]}"#,
        r#"{"id":3,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["b"]}"#,
        r#"{"id":4,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["a"]}"#,
    ];
    let twin = Service::new(quiet());
    let twin_replies: Vec<String> = lines.iter().map(|l| twin.handle_line(l).line).collect();
    assert!(twin_replies[2].contains("violation"), "{}", twin_replies[2]);
    assert!(twin_replies[3].contains("violation"), "sticky: {}", twin_replies[3]);

    // Crash after the violation landed in the journal; the restarted
    // daemon must keep the verdict sticky without re-seeing line 3.
    let svc = open(&dir, 0);
    for line in &lines[..3] {
        svc.handle_line(line);
    }
    drop(svc);
    let svc = open(&dir, 0);
    assert_eq!(svc.handle_line(lines[3]).line, twin_replies[3]);
    // A second restart keeps it sticky still.
    drop(svc);
    let svc = open(&dir, 0);
    assert_eq!(svc.handle_line(lines[3]).line, twin_replies[3]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_between_define_and_first_monitor_step_matches_a_fresh_daemon() {
    // The define fails at dispatch (unbalanced formula) but is
    // journaled anyway — the journal records accepted *requests*, not
    // successes. After a crash, the recovered daemon must give the
    // first monitor-step exactly the typed error a fresh daemon gives.
    let bad_define = r#"{"id":1,"verb":"define","name":"p0","ltl":"G (","alphabet":["a","b"]}"#;
    let step = r#"{"id":2,"verb":"monitor-step","monitor":"m0","target":"p0","symbols":["a"]}"#;

    let fresh = Service::new(quiet());
    let fresh_define = fresh.handle_line(bad_define).line;
    assert!(fresh_define.contains("\"ok\":false"), "{fresh_define}");
    let fresh_step = fresh.handle_line(step).line;

    let dir = temp_dir("baddefine");
    let svc = open(&dir, 0);
    assert_eq!(svc.handle_line(bad_define).line, fresh_define);
    drop(svc); // crash before any monitor-step
    let recovered = open(&dir, 0);
    assert_eq!(recovered.handle_line(step).line, fresh_step);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_snapshots_and_refuses_further_work() {
    let dir = temp_dir("shutdown");
    let svc = open(&dir, 0);
    assert!(svc.handle_line(DEFINE_GA).line.contains("\"ok\":true"));
    let reply = svc.handle_line(r#"{"id":2,"verb":"shutdown"}"#);
    assert!(reply.quit, "shutdown ends the session");
    assert!(reply.line.contains("\"bye\":true"), "{}", reply.line);
    assert!(reply.line.contains("\"drained\":true"), "{}", reply.line);
    assert!(reply.line.contains("\"snapshotted\":true"), "{}", reply.line);
    // The drained daemon sheds anything that still arrives.
    let late = svc.handle_line(r#"{"id":3,"verb":"classify","target":"p0"}"#);
    assert!(late.line.contains("\"shutting_down\""), "{}", late.line);
    drop(svc);
    // Clean shutdown means the snapshot carries everything: recovery
    // replays zero journal records.
    let svc = open(&dir, 0);
    let stats = svc.handle_line(r#"{"id":4,"verb":"stats"}"#).line;
    let doc = sl_service::json::parse(&stats).unwrap();
    let persist = doc.get("result").and_then(|r| r.get("persist")).expect("persist metrics");
    assert_eq!(persist.get("replayed_records").and_then(Json::as_u64), Some(0), "{stats}");
    assert!(
        svc.handle_line(r#"{"id":5,"verb":"classify","target":"p0"}"#)
            .line
            .contains("\"class\""),
        "the definition survived via the snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_batches_are_shed_with_a_typed_overloaded_error() {
    let svc = Service::new(ServiceConfig {
        max_batch: 2,
        ..quiet()
    });
    let ok = svc.handle_line(
        r#"{"id":1,"verb":"batch","requests":[{"verb":"classify","target":"g"},{"verb":"classify","target":"g"}]}"#,
    );
    assert!(ok.line.contains("\"results\""), "{}", ok.line);
    let over = svc.handle_line(
        r#"{"id":2,"verb":"batch","requests":[{"verb":"classify","target":"g"},{"verb":"classify","target":"g"},{"verb":"classify","target":"g"}]}"#,
    );
    assert!(over.line.contains("\"overloaded\""), "{}", over.line);
    assert!(over.line.contains("split the batch"), "{}", over.line);
}

#[test]
fn corrupt_mid_journal_record_is_a_typed_recovery_error() {
    let dir = temp_dir("corrupt");
    let svc = open(&dir, 0);
    svc.handle_line(DEFINE_GA);
    drop(svc);
    // Flip a payload byte inside the only record: the checksum breaks,
    // and unlike a truncated tail this is damage, not a crash
    // signature — recovery must refuse with the byte offset.
    let journal = dir.join("journal-0.slj");
    let mut bytes = std::fs::read(&journal).unwrap();
    let mid = 8 + 20 + 5; // magic + header + a few payload bytes
    bytes[mid] ^= 0x40;
    std::fs::write(&journal, &bytes).unwrap();
    let err = Service::with_persistence(
        quiet(),
        &PersistConfig {
            dir: dir.clone(),
            snapshot_every: 0,
        },
    )
    .err()
    .expect("corrupt journal must not recover silently");
    match &err {
        PersistError::Corrupt { offset, .. } => assert_eq!(*offset, 8, "{err}"),
        other => panic!("expected Corrupt, got {other}"),
    }
    assert!(err.to_string().contains("at byte 8"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn io_errors_are_counted_and_reported_by_stats() {
    struct FailingReader;
    impl Read for FailingReader {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer reset"))
        }
    }
    let mut svc = Service::new(quiet());
    let mut reader = std::io::BufReader::new(FailingReader);
    let mut sink = Vec::new();
    let summary = serve_connection(&mut svc, &mut reader, &mut sink);
    assert!(!summary.quit, "an I/O error is not a quit");
    let stats = svc.handle_line(r#"{"id":1,"verb":"stats"}"#).line;
    let doc = sl_service::json::parse(&stats).unwrap();
    assert_eq!(
        doc.get("result").and_then(|r| r.get("io_errors")).and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
}

#[test]
fn mid_session_disconnect_leaves_the_daemon_serving_the_next_connection() {
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut svc = Service::new(quiet());
        serve_tcp(&mut svc, &listener).unwrap();
    });
    // Connection 1: send a define, read its reply, then vanish without
    // a quit — mid-session as far as the daemon is concerned.
    {
        let mut c1 = TcpStream::connect(addr).unwrap();
        c1.write_all(DEFINE_GA.as_bytes()).unwrap();
        c1.write_all(b"\n").unwrap();
        let mut reply = [0u8; 1];
        c1.read_exact(&mut reply).unwrap(); // daemon answered; now drop
    }
    // Connection 2: the daemon is still there, with connection 1's
    // state (the registry is daemon-shared). `shutdown` — not `quit`,
    // which is connection-local now — ends the daemon for the join.
    let mut c2 = TcpStream::connect(addr).unwrap();
    c2.write_all(
        b"{\"id\":2,\"verb\":\"classify\",\"target\":\"p0\"}\n{\"id\":3,\"verb\":\"shutdown\"}\n",
    )
    .unwrap();
    let mut replies = String::new();
    c2.read_to_string(&mut replies).unwrap();
    assert!(replies.contains("\"class\":\"safety\""), "{replies}");
    assert!(replies.contains("\"bye\":true"), "{replies}");
    server.join().unwrap();
}

#[test]
fn stats_reports_persistence_metrics() {
    let dir = temp_dir("metrics");
    let svc = open(&dir, 2);
    svc.handle_line(DEFINE_GA);
    let stats = svc.handle_line(r#"{"id":2,"verb":"stats"}"#).line;
    let doc = sl_service::json::parse(&stats).unwrap();
    let persist = doc
        .get("result")
        .and_then(|r| r.get("persist"))
        .expect("persist metrics present for a durable daemon");
    for key in [
        "journal_bytes",
        "records_since_snapshot",
        "snapshots_taken",
        "snapshots_discarded",
        "last_recovery_ms",
        "replayed_records",
    ] {
        assert!(persist.get(key).and_then(Json::as_u64).is_some(), "missing {key}: {stats}");
    }
    assert_eq!(persist.get("records_since_snapshot").and_then(Json::as_u64), Some(1));
    // A transient daemon reports no persist block at all.
    let transient = Service::new(quiet());
    let stats = transient.handle_line(r#"{"id":1,"verb":"stats"}"#).line;
    assert!(!stats.contains("\"persist\""), "{stats}");
    let _ = std::fs::remove_dir_all(&dir);
}
