//! Interned finite alphabets.
//!
//! The paper fixes "a nonempty set of symbols Σ" (Section 2.1). An
//! [`Alphabet`] interns symbol names once and hands out copyable
//! [`Symbol`] indices, so words and automata store `u16`s instead of
//! strings.

use std::fmt;

/// An index into an [`Alphabet`].
///
/// Symbols are meaningful only relative to the alphabet that created
/// them; mixing symbols across alphabets of different sizes is caught by
/// the bounds assertions in this crate's containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u16);

impl Symbol {
    /// The index as a usize, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite, nonempty alphabet with interned symbol names.
///
/// # Examples
///
/// ```
/// use sl_omega::Alphabet;
///
/// let sigma = Alphabet::new(&["a", "b"]);
/// let a = sigma.symbol("a").unwrap();
/// assert_eq!(sigma.name(a), "a");
/// assert_eq!(sigma.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Interns the given symbol names, in order.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty (the paper requires Σ nonempty), has
    /// more than `u16::MAX` entries, or contains duplicates.
    #[must_use]
    pub fn new(names: &[&str]) -> Self {
        assert!(!names.is_empty(), "alphabet must be nonempty");
        assert!(names.len() <= u16::MAX as usize, "alphabet too large");
        let names: Vec<String> = names.iter().map(|s| (*s).to_string()).collect();
        for (i, name) in names.iter().enumerate() {
            assert!(!names[..i].contains(name), "duplicate symbol name {name:?}");
        }
        Alphabet { names }
    }

    /// A two-symbol alphabet `{a, b}` — the alphabet of all the paper's
    /// examples (Section 2.3 needs only "a" and "differs from a").
    #[must_use]
    pub fn ab() -> Self {
        Alphabet::new(&["a", "b"])
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a symbol by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Symbol(i as u16))
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is out of range for this alphabet.
    #[must_use]
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Iterates over all symbols.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(|i| Symbol(i as u16))
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_roundtrip() {
        let sigma = Alphabet::new(&["x", "y", "z"]);
        for name in ["x", "y", "z"] {
            let sym = sigma.symbol(name).unwrap();
            assert_eq!(sigma.name(sym), name);
        }
        assert_eq!(sigma.symbol("w"), None);
    }

    #[test]
    fn symbols_iterates_in_order() {
        let sigma = Alphabet::ab();
        let syms: Vec<Symbol> = sigma.symbols().collect();
        assert_eq!(syms, vec![Symbol(0), Symbol(1)]);
    }

    #[test]
    #[should_panic(expected = "alphabet must be nonempty")]
    fn empty_alphabet_panics() {
        let _ = Alphabet::new(&[]);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol name")]
    fn duplicate_name_panics() {
        let _ = Alphabet::new(&["a", "a"]);
    }

    #[test]
    fn display_lists_names() {
        assert_eq!(Alphabet::ab().to_string(), "{a, b}");
    }
}
