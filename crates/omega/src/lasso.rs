//! Ultimately periodic ω-words ("lasso words") in canonical form.
//!
//! The paper's linear-time framework works over `Σ^ω`, which is
//! uncountable; the finitely-representable skeleton of `Σ^ω` is the set
//! of ultimately periodic words `u · v^ω`. These suffice to separate any
//! two ω-regular languages (two distinct ω-regular languages always
//! differ on a lasso word), so all the sampling-based cross-checks in
//! this workspace quantify over [`LassoWord`]s.
//!
//! [`LassoWord`] maintains a *canonical* representation — the cycle is
//! primitive (not a proper power) and the stem is as short as possible —
//! so structural equality and hashing coincide with equality of the
//! denoted infinite words.

use crate::alphabet::{Alphabet, Symbol};
use crate::word::{all_words, Word};
use std::fmt;

/// An ultimately periodic ω-word `stem · cycle^ω` in canonical form.
///
/// # Examples
///
/// ```
/// use sl_omega::{Alphabet, LassoWord};
///
/// let sigma = Alphabet::ab();
/// // a (ba)^ω and (ab)^ω denote the same infinite word ...
/// let w1 = LassoWord::parse(&sigma, "a", "b a");
/// let w2 = LassoWord::parse(&sigma, "", "a b");
/// // ... and normalization makes them structurally equal.
/// assert_eq!(w1, w2);
/// assert_eq!(w1.at(0), sigma.symbol("a").unwrap());
/// assert_eq!(w1.at(1), sigma.symbol("b").unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LassoWord {
    stem: Vec<Symbol>,
    cycle: Vec<Symbol>,
}

/// Returns the primitive root length of `w`: the smallest `d` dividing
/// `w.len()` such that `w` is `w[..d]` repeated.
fn primitive_root_len(w: &[Symbol]) -> usize {
    let n = w.len();
    'candidate: for d in 1..=n {
        if !n.is_multiple_of(d) {
            continue;
        }
        for i in d..n {
            if w[i] != w[i - d] {
                continue 'candidate;
            }
        }
        return d;
    }
    n
}

impl LassoWord {
    /// Builds the ω-word `stem · cycle^ω`, normalizing to canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is empty (an ω-word needs an infinite tail).
    #[must_use]
    pub fn new(stem: &Word, cycle: &Word) -> Self {
        assert!(!cycle.is_empty(), "lasso cycle must be nonempty");
        let mut stem: Vec<Symbol> = stem.as_slice().to_vec();
        let root = primitive_root_len(cycle.as_slice());
        let mut cycle: Vec<Symbol> = cycle.as_slice()[..root].to_vec();
        // Absorb the stem's tail into the cycle: u·s (w·s)^ω = u (s·w)^ω.
        while let Some(&last) = stem.last() {
            if last != *cycle.last().expect("cycle nonempty") {
                break;
            }
            stem.pop();
            cycle.rotate_right(1);
        }
        LassoWord { stem, cycle }
    }

    /// The purely periodic word `cycle^ω`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is empty.
    #[must_use]
    pub fn periodic(cycle: &Word) -> Self {
        LassoWord::new(&Word::empty(), cycle)
    }

    /// The constant word `sym^ω`.
    #[must_use]
    pub fn constant(sym: Symbol) -> Self {
        LassoWord {
            stem: Vec::new(),
            cycle: vec![sym],
        }
    }

    /// Parses stem and cycle from space-separated symbol names.
    ///
    /// # Panics
    ///
    /// Panics on unknown symbols or an empty cycle.
    #[must_use]
    pub fn parse(alphabet: &Alphabet, stem: &str, cycle: &str) -> Self {
        LassoWord::new(&Word::parse(alphabet, stem), &Word::parse(alphabet, cycle))
    }

    /// The canonical stem (possibly empty).
    #[must_use]
    pub fn stem(&self) -> Word {
        Word::new(&self.stem)
    }

    /// The canonical (primitive) cycle.
    #[must_use]
    pub fn cycle(&self) -> Word {
        Word::new(&self.cycle)
    }

    /// Length of the canonical stem.
    #[must_use]
    pub fn stem_len(&self) -> usize {
        self.stem.len()
    }

    /// Length of the canonical cycle (the eventual period).
    #[must_use]
    pub fn period(&self) -> usize {
        self.cycle.len()
    }

    /// The symbol at position `i` (the paper's `t.i`); total since the
    /// word is infinite.
    #[must_use]
    pub fn at(&self, i: usize) -> Symbol {
        if i < self.stem.len() {
            self.stem[i]
        } else {
            self.cycle[(i - self.stem.len()) % self.cycle.len()]
        }
    }

    /// The first symbol — what Rem's properties p1/p2 inspect.
    #[must_use]
    pub fn first(&self) -> Symbol {
        self.at(0)
    }

    /// The suffix ω-word starting at position `k`.
    #[must_use]
    pub fn suffix(&self, k: usize) -> LassoWord {
        if k <= self.stem.len() {
            LassoWord::new(&Word::new(&self.stem[k..]), &Word::new(&self.cycle))
        } else {
            let shift = (k - self.stem.len()) % self.cycle.len();
            let mut cycle = self.cycle.clone();
            cycle.rotate_left(shift);
            LassoWord::new(&Word::empty(), &Word::new(&cycle))
        }
    }

    /// The finite prefix of length `n` (the finite prefixes `x ⊏ t` that
    /// the closure `lcl` quantifies over).
    #[must_use]
    pub fn prefix(&self, n: usize) -> Word {
        (0..n).map(|i| self.at(i)).collect()
    }

    /// Prepends a finite word: `w · self`.
    #[must_use]
    pub fn prepend(&self, w: &Word) -> LassoWord {
        LassoWord::new(&w.concat(&self.stem()), &self.cycle())
    }

    /// Positions `0..bound` where each distinct "phase" of the word
    /// occurs: every suffix of the word equals the suffix at one of these
    /// positions. `bound = stem_len + period`.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.stem.len() + self.cycle.len()
    }

    /// The successor phase of `i` within `0..phase_count()`: `i + 1`,
    /// wrapping from the last phase back to the start of the cycle.
    /// Evaluators (LTL, automata products) walk phases with this.
    #[must_use]
    pub fn next_phase(&self, i: usize) -> usize {
        if i + 1 < self.phase_count() {
            i + 1
        } else {
            self.stem.len()
        }
    }

    /// Whether the symbol `sym` occurs infinitely often (i.e. occurs in
    /// the cycle) — the shape of Rem's p5 (`GF a`).
    #[must_use]
    pub fn infinitely_often(&self, sym: Symbol) -> bool {
        self.cycle.contains(&sym)
    }

    /// Whether the symbol `sym` occurs only finitely often — Rem's p4
    /// (`FG ¬a` asks this of `a`).
    #[must_use]
    pub fn finitely_often(&self, sym: Symbol) -> bool {
        !self.infinitely_often(sym)
    }

    /// Whether `sym` occurs anywhere in the word.
    #[must_use]
    pub fn contains(&self, sym: Symbol) -> bool {
        self.stem.contains(&sym) || self.cycle.contains(&sym)
    }

    /// Renders the word as `stem (cycle)^ω` with alphabet names.
    #[must_use]
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let stem = self.stem().display(alphabet);
        let cycle = self.cycle().display(alphabet);
        if stem.is_empty() {
            format!("({cycle})^w")
        } else {
            format!("{stem} ({cycle})^w")
        }
    }
}

impl fmt::Display for LassoWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})^w", self.stem(), self.cycle())
    }
}

/// Enumerates all distinct lasso words with stem length at most
/// `max_stem` and cycle length at most `max_cycle`, deduplicated via the
/// canonical form. This is the standard sample space for cross-checking
/// ω-language identities.
#[must_use]
pub fn all_lassos(alphabet: &Alphabet, max_stem: usize, max_cycle: usize) -> Vec<LassoWord> {
    assert!(max_cycle >= 1, "need cycles of length at least 1");
    let stems = all_words(alphabet, max_stem);
    let cycles: Vec<Word> = all_words(alphabet, max_cycle)
        .into_iter()
        .filter(|w| !w.is_empty())
        .collect();
    let mut out: Vec<LassoWord> = Vec::new();
    for stem in &stems {
        for cycle in &cycles {
            let lasso = LassoWord::new(stem, cycle);
            if !out.contains(&lasso) {
                out.push(lasso);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn primitive_root_detection() {
        let s = sigma();
        let abab = Word::parse(&s, "a b a b");
        assert_eq!(primitive_root_len(abab.as_slice()), 2);
        let aaa = Word::parse(&s, "a a a");
        assert_eq!(primitive_root_len(aaa.as_slice()), 1);
        let aab = Word::parse(&s, "a a b");
        assert_eq!(primitive_root_len(aab.as_slice()), 3);
    }

    #[test]
    fn normalization_identifies_equal_words() {
        let s = sigma();
        // a (ba)^ω = (ab)^ω.
        assert_eq!(
            LassoWord::parse(&s, "a", "b a"),
            LassoWord::parse(&s, "", "a b")
        );
        // ab (ab)^ω = (ab)^ω.
        assert_eq!(
            LassoWord::parse(&s, "a b", "a b"),
            LassoWord::parse(&s, "", "a b")
        );
        // a (aa)^ω = (a)^ω.
        assert_eq!(
            LassoWord::parse(&s, "a", "a a"),
            LassoWord::parse(&s, "", "a")
        );
        // b a^ω stays distinct from a^ω.
        assert_ne!(
            LassoWord::parse(&s, "b", "a"),
            LassoWord::parse(&s, "", "a")
        );
    }

    #[test]
    fn normalization_agrees_with_unrolling() {
        // Two lassos are equal iff their long unrollings agree; check the
        // canonical form against that ground truth over a small space.
        let s = sigma();
        let lassos = all_lassos(&s, 2, 2);
        for x in &lassos {
            for y in &lassos {
                let same_unroll = x.prefix(24) == y.prefix(24);
                assert_eq!(same_unroll, x == y, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn at_walks_stem_then_cycle() {
        let s = sigma();
        let w = LassoWord::parse(&s, "b b", "a b");
        let names: Vec<&str> = (0..6).map(|i| s.name(w.at(i))).collect();
        assert_eq!(names, vec!["b", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn suffix_within_stem_and_cycle() {
        let s = sigma();
        let w = LassoWord::parse(&s, "b b", "a b");
        assert_eq!(w.suffix(1), LassoWord::parse(&s, "b", "a b"));
        assert_eq!(w.suffix(2), LassoWord::parse(&s, "", "a b"));
        // Suffix inside the cycle rotates it.
        assert_eq!(w.suffix(3), LassoWord::parse(&s, "", "b a"));
        assert_eq!(w.suffix(5), LassoWord::parse(&s, "", "b a"));
        // suffix(k) then at(i) equals at(k + i).
        for k in 0..8 {
            let suf = w.suffix(k);
            for i in 0..8 {
                assert_eq!(suf.at(i), w.at(k + i));
            }
        }
    }

    #[test]
    fn prefix_and_prepend() {
        let s = sigma();
        let w = LassoWord::parse(&s, "", "a b");
        assert_eq!(w.prefix(3), Word::parse(&s, "a b a"));
        let v = w.prepend(&Word::parse(&s, "b"));
        assert_eq!(v, LassoWord::parse(&s, "b", "a b"));
    }

    #[test]
    fn phase_arithmetic() {
        let s = sigma();
        let w = LassoWord::parse(&s, "b", "a b");
        // Canonical: stem "b"? last of stem 'b' == last of cycle 'b':
        // absorbed -> stem "", cycle "b a". phase_count = 2.
        assert_eq!(w.stem_len(), 0);
        assert_eq!(w.phase_count(), 2);
        assert_eq!(w.next_phase(0), 1);
        assert_eq!(w.next_phase(1), 0);
    }

    #[test]
    fn occurrence_predicates() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let w = LassoWord::parse(&s, "a", "b");
        assert!(w.contains(a) && w.contains(b));
        assert!(w.finitely_often(a));
        assert!(w.infinitely_often(b));
        assert_eq!(s.name(w.first()), "a");
    }

    #[test]
    fn constant_word() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let w = LassoWord::constant(a);
        assert_eq!(w, LassoWord::parse(&s, "", "a"));
        assert!(w.infinitely_often(a));
    }

    #[test]
    fn all_lassos_distinct_and_complete() {
        let s = sigma();
        let lassos = all_lassos(&s, 1, 2);
        // All pairwise distinct by construction.
        for (i, x) in lassos.iter().enumerate() {
            for y in &lassos[i + 1..] {
                assert_ne!(x, y);
            }
        }
        // Contains the obvious ones.
        assert!(lassos.contains(&LassoWord::parse(&s, "", "a")));
        assert!(lassos.contains(&LassoWord::parse(&s, "", "a b")));
        assert!(lassos.contains(&LassoWord::parse(&s, "b", "a")));
    }

    #[test]
    #[should_panic(expected = "lasso cycle must be nonempty")]
    fn empty_cycle_panics() {
        let s = sigma();
        let _ = LassoWord::new(&Word::parse(&s, "a"), &Word::empty());
    }

    #[test]
    fn display_formats() {
        let s = sigma();
        assert_eq!(LassoWord::parse(&s, "", "a").display(&s), "(a)^w");
        assert_eq!(LassoWord::parse(&s, "b", "a").display(&s), "b (a)^w");
    }
}
