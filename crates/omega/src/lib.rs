//! # sl-omega
//!
//! The linear-time substrate for the safety/liveness workspace: finite
//! alphabets, finite words with the prefix order, and ultimately periodic
//! ω-words ("lasso words") in canonical form — the finitely-representable
//! skeleton of `Σ^ω` from Section 2 of Manolios & Trefler's
//! *A Lattice-Theoretic Characterization of Safety and Liveness*
//! (PODC 2003).
//!
//! Lasso words matter because two distinct ω-regular languages always
//! differ on one, so identities like the decomposition theorem
//! `L(B) = L(B_S) ∩ L(B_L)` can be cross-checked by quantifying over
//! [`all_lassos`].
//!
//! ```
//! use sl_omega::{Alphabet, LassoWord, Word};
//!
//! let sigma = Alphabet::ab();
//! let w = LassoWord::parse(&sigma, "b", "a b"); // b (ab)^ω
//! assert_eq!(w.prefix(4), Word::parse(&sigma, "b a b a"));
//! assert!(w.infinitely_often(sigma.symbol("a").unwrap()));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alphabet;
pub mod lasso;
pub mod prop;
pub mod word;

pub use alphabet::{Alphabet, Symbol};
pub use lasso::{all_lassos, LassoWord};
pub use prop::{agree_on_lassos, and, not, or, rem, LinearProperty, SemanticProperty};
pub use word::{all_words, Word};
