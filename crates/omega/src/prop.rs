//! Semantic linear-time properties and Rem's examples.
//!
//! A [`LinearProperty`] is a set of ω-words, represented intensionally by
//! a membership predicate on lasso words. These are the ground-truth
//! oracles against which the automata-theoretic machinery in `sl-buchi`
//! is cross-checked: for ω-regular properties, agreement on all lasso
//! words implies equality of the languages.
//!
//! [`rem`] packages the seven example properties from the paper's
//! Section 2.3 (due to Martin Rem), which the experiment harness
//! classifies as safety / liveness / neither.

use crate::alphabet::{Alphabet, Symbol};
use crate::lasso::{all_lassos, LassoWord};

/// A linear-time property: a set of ω-words, queried through membership
/// of ultimately periodic words.
pub trait LinearProperty {
    /// Whether the lasso word belongs to the property.
    fn contains(&self, word: &LassoWord) -> bool;

    /// A short human-readable name.
    fn name(&self) -> &str;
}

impl<P: LinearProperty + ?Sized> LinearProperty for Box<P> {
    fn contains(&self, word: &LassoWord) -> bool {
        (**self).contains(word)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: LinearProperty + ?Sized> LinearProperty for &P {
    fn contains(&self, word: &LassoWord) -> bool {
        (**self).contains(word)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A property defined by a closure, with a name.
pub struct SemanticProperty<F> {
    name: String,
    predicate: F,
}

impl<F: Fn(&LassoWord) -> bool> SemanticProperty<F> {
    /// Wraps a predicate as a named property.
    pub fn new(name: impl Into<String>, predicate: F) -> Self {
        SemanticProperty {
            name: name.into(),
            predicate,
        }
    }
}

impl<F: Fn(&LassoWord) -> bool> LinearProperty for SemanticProperty<F> {
    fn contains(&self, word: &LassoWord) -> bool {
        (self.predicate)(word)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The complement of a property.
pub struct NotProperty<P>(pub P, String);

/// The intersection of two properties.
pub struct AndProperty<P, Q>(pub P, pub Q, String);

/// The union of two properties.
pub struct OrProperty<P, Q>(pub P, pub Q, String);

/// Negates a property.
pub fn not<P: LinearProperty>(p: P) -> NotProperty<P> {
    let name = format!("!({})", p.name());
    NotProperty(p, name)
}

/// Intersects two properties.
pub fn and<P: LinearProperty, Q: LinearProperty>(p: P, q: Q) -> AndProperty<P, Q> {
    let name = format!("({}) & ({})", p.name(), q.name());
    AndProperty(p, q, name)
}

/// Unions two properties.
pub fn or<P: LinearProperty, Q: LinearProperty>(p: P, q: Q) -> OrProperty<P, Q> {
    let name = format!("({}) | ({})", p.name(), q.name());
    OrProperty(p, q, name)
}

impl<P: LinearProperty> LinearProperty for NotProperty<P> {
    fn contains(&self, word: &LassoWord) -> bool {
        !self.0.contains(word)
    }
    fn name(&self) -> &str {
        &self.1
    }
}

impl<P: LinearProperty, Q: LinearProperty> LinearProperty for AndProperty<P, Q> {
    fn contains(&self, word: &LassoWord) -> bool {
        self.0.contains(word) && self.1.contains(word)
    }
    fn name(&self) -> &str {
        &self.2
    }
}

impl<P: LinearProperty, Q: LinearProperty> LinearProperty for OrProperty<P, Q> {
    fn contains(&self, word: &LassoWord) -> bool {
        self.0.contains(word) || self.1.contains(word)
    }
    fn name(&self) -> &str {
        &self.2
    }
}

/// Whether two properties agree on every lasso word with stem length at
/// most `max_stem` and cycle length at most `max_cycle`. For ω-regular
/// properties this decides equality once the bounds exceed the automata
/// sizes involved.
pub fn agree_on_lassos<P: LinearProperty + ?Sized, Q: LinearProperty + ?Sized>(
    alphabet: &Alphabet,
    p: &P,
    q: &Q,
    max_stem: usize,
    max_cycle: usize,
) -> Result<(), LassoWord> {
    for w in all_lassos(alphabet, max_stem, max_cycle) {
        if p.contains(&w) != q.contains(&w) {
            return Err(w);
        }
    }
    Ok(())
}

/// Martin Rem's seven example properties (paper Section 2.3) as semantic
/// oracles over the alphabet `{a, b}` (where `b` stands in for "any
/// symbol different from a").
pub mod rem {
    use super::*;

    /// A boxed property, the convenient form for heterogeneous lists.
    pub type BoxedProperty = Box<dyn LinearProperty>;

    fn a(alphabet: &Alphabet) -> Symbol {
        alphabet.symbol("a").expect("alphabet must contain 'a'")
    }

    /// p0: `false` — the empty property ∅.
    #[must_use]
    pub fn p0(_alphabet: &Alphabet) -> BoxedProperty {
        Box::new(SemanticProperty::new("p0: false", |_| false))
    }

    /// p1: the first symbol of `t` is `a`.
    #[must_use]
    pub fn p1(alphabet: &Alphabet) -> BoxedProperty {
        let a = a(alphabet);
        Box::new(SemanticProperty::new("p1: a", move |w: &LassoWord| {
            w.first() == a
        }))
    }

    /// p2: the first symbol of `t` differs from `a`.
    #[must_use]
    pub fn p2(alphabet: &Alphabet) -> BoxedProperty {
        let a = a(alphabet);
        Box::new(SemanticProperty::new("p2: !a", move |w: &LassoWord| {
            w.first() != a
        }))
    }

    /// p3: the first symbol is `a` and `t` contains a symbol that differs
    /// from `a` (LTL: `a ∧ F ¬a`).
    #[must_use]
    pub fn p3(alphabet: &Alphabet) -> BoxedProperty {
        let a = a(alphabet);
        Box::new(SemanticProperty::new(
            "p3: a & F !a",
            move |w: &LassoWord| {
                let has_non_a = (0..w.phase_count()).any(|i| w.at(i) != a);
                w.first() == a && has_non_a
            },
        ))
    }

    /// p4: the number of `a`s in `t` is finite (LTL: `FG ¬a`).
    #[must_use]
    pub fn p4(alphabet: &Alphabet) -> BoxedProperty {
        let a = a(alphabet);
        Box::new(SemanticProperty::new("p4: FG !a", move |w: &LassoWord| {
            w.finitely_often(a)
        }))
    }

    /// p5: the number of `a`s in `t` is infinite (LTL: `GF a`).
    #[must_use]
    pub fn p5(alphabet: &Alphabet) -> BoxedProperty {
        let a = a(alphabet);
        Box::new(SemanticProperty::new("p5: GF a", move |w: &LassoWord| {
            w.infinitely_often(a)
        }))
    }

    /// p6: `true` — the full property `Σ^ω`.
    #[must_use]
    pub fn p6(_alphabet: &Alphabet) -> BoxedProperty {
        Box::new(SemanticProperty::new("p6: true", |_| true))
    }

    /// All seven properties in order, for table-driven experiments.
    #[must_use]
    pub fn all(alphabet: &Alphabet) -> Vec<BoxedProperty> {
        vec![
            p0(alphabet),
            p1(alphabet),
            p2(alphabet),
            p3(alphabet),
            p4(alphabet),
            p5(alphabet),
            p6(alphabet),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn rem_p1_p2_partition_nonfirst() {
        let s = sigma();
        let p1 = rem::p1(&s);
        let p2 = rem::p2(&s);
        for w in all_lassos(&s, 2, 2) {
            assert_ne!(p1.contains(&w), p2.contains(&w));
        }
    }

    #[test]
    fn rem_p3_examples() {
        let s = sigma();
        let p3 = rem::p3(&s);
        assert!(p3.contains(&LassoWord::parse(&s, "a", "b")));
        assert!(p3.contains(&LassoWord::parse(&s, "a b", "a")));
        assert!(!p3.contains(&LassoWord::parse(&s, "", "a"))); // never leaves a
        assert!(!p3.contains(&LassoWord::parse(&s, "b", "a"))); // starts with b
    }

    #[test]
    fn rem_p4_p5_partition() {
        let s = sigma();
        let p4 = rem::p4(&s);
        let p5 = rem::p5(&s);
        for w in all_lassos(&s, 2, 3) {
            assert_ne!(p4.contains(&w), p5.contains(&w), "{w}");
        }
        assert!(p4.contains(&LassoWord::parse(&s, "a a a", "b")));
        assert!(p5.contains(&LassoWord::parse(&s, "b b", "a b")));
    }

    #[test]
    fn combinators() {
        let s = sigma();
        let p1 = rem::p1(&s);
        let p5 = rem::p5(&s);
        let both = and(p1, p5);
        assert!(both.contains(&LassoWord::parse(&s, "", "a")));
        assert!(!both.contains(&LassoWord::parse(&s, "b", "a")));
        assert_eq!(both.name(), "(p1: a) & (p5: GF a)");

        let neither = not(or(rem::p1(&s), rem::p5(&s)));
        assert!(neither.contains(&LassoWord::parse(&s, "b", "b")));
        assert!(!neither.contains(&LassoWord::parse(&s, "", "a")));
    }

    #[test]
    fn agree_on_lassos_finds_differences() {
        let s = sigma();
        // p4 and p0 differ, e.g. on b^ω.
        let diff = agree_on_lassos(&s, &*rem::p4(&s), &*rem::p0(&s), 1, 1);
        assert!(diff.is_err());
        // p6 agrees with !p0.
        let p6 = rem::p6(&s);
        let not_p0 = not(rem::p0(&s));
        agree_on_lassos(&s, &*p6, &not_p0, 2, 2).unwrap();
    }

    #[test]
    fn de_morgan_on_samples() {
        let s = sigma();
        let lhs = not(and(rem::p1(&s), rem::p5(&s)));
        let rhs = or(not(rem::p1(&s)), not(rem::p5(&s)));
        agree_on_lassos(&s, &lhs, &rhs, 2, 2).unwrap();
    }

    #[test]
    fn all_returns_seven() {
        let s = sigma();
        let props = rem::all(&s);
        assert_eq!(props.len(), 7);
        assert_eq!(props[0].name(), "p0: false");
        assert_eq!(props[6].name(), "p6: true");
    }
}
