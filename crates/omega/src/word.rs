//! Finite words over an alphabet, with the prefix order of Section 2.1.

use crate::alphabet::{Alphabet, Symbol};
use std::fmt;

/// A finite word: a sequence of symbols.
///
/// Implements the paper's prefix relations: `s ⊑ t` ([`Word::is_prefix_of`])
/// and the proper variant `s ⊏ t`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word {
    symbols: Vec<Symbol>,
}

impl Word {
    /// The empty word.
    #[must_use]
    pub fn empty() -> Self {
        Word::default()
    }

    /// A word from a slice of symbols.
    #[must_use]
    pub fn new(symbols: &[Symbol]) -> Self {
        Word {
            symbols: symbols.to_vec(),
        }
    }

    /// Parses a word from symbol names separated by spaces (or an empty
    /// string for the empty word).
    ///
    /// # Panics
    ///
    /// Panics if a name is not in the alphabet.
    #[must_use]
    pub fn parse(alphabet: &Alphabet, text: &str) -> Self {
        let symbols = text
            .split_whitespace()
            .map(|name| {
                alphabet
                    .symbol(name)
                    .unwrap_or_else(|| panic!("unknown symbol {name:?}"))
            })
            .collect();
        Word { symbols }
    }

    /// Length of the word (the paper's `|s|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the word is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol at position `i` (the paper's `s.i`).
    #[must_use]
    pub fn at(&self, i: usize) -> Option<Symbol> {
        self.symbols.get(i).copied()
    }

    /// The symbols as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Appends a symbol, returning a new word.
    #[must_use]
    pub fn push(&self, sym: Symbol) -> Word {
        let mut symbols = self.symbols.clone();
        symbols.push(sym);
        Word { symbols }
    }

    /// Concatenation.
    #[must_use]
    pub fn concat(&self, other: &Word) -> Word {
        let mut symbols = self.symbols.clone();
        symbols.extend_from_slice(&other.symbols);
        Word { symbols }
    }

    /// The prefix relation `self ⊑ other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &Word) -> bool {
        other.symbols.starts_with(&self.symbols)
    }

    /// The proper prefix relation `self ⊏ other`.
    #[must_use]
    pub fn is_proper_prefix_of(&self, other: &Word) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// All prefixes, from empty to the word itself.
    #[must_use]
    pub fn prefixes(&self) -> Vec<Word> {
        (0..=self.len())
            .map(|k| Word::new(&self.symbols[..k]))
            .collect()
    }

    /// Renders the word with names from the alphabet, space-separated.
    #[must_use]
    pub fn display(&self, alphabet: &Alphabet) -> String {
        self.symbols
            .iter()
            .map(|&s| alphabet.name(s))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl FromIterator<Symbol> for Word {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        Word {
            symbols: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Without an alphabet we render the raw indices.
        let parts: Vec<String> = self.symbols.iter().map(|s| s.0.to_string()).collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

/// Enumerates all words over the alphabet with length at most `max_len`,
/// in length-lexicographic order. There are
/// `(k^(max_len+1) - 1) / (k - 1)` of them for `k` symbols.
#[must_use]
pub fn all_words(alphabet: &Alphabet, max_len: usize) -> Vec<Word> {
    let mut out = vec![Word::empty()];
    let mut frontier = vec![Word::empty()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for sym in alphabet.symbols() {
                let extended = w.push(sym);
                out.push(extended.clone());
                next.push(extended);
            }
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let sigma = ab();
        let w = Word::parse(&sigma, "a b a");
        assert_eq!(w.len(), 3);
        assert_eq!(w.display(&sigma), "a b a");
        assert_eq!(Word::parse(&sigma, "").len(), 0);
    }

    #[test]
    fn prefix_relations() {
        let sigma = ab();
        let s = Word::parse(&sigma, "a b");
        let t = Word::parse(&sigma, "a b a");
        assert!(s.is_prefix_of(&t));
        assert!(s.is_proper_prefix_of(&t));
        assert!(t.is_prefix_of(&t));
        assert!(!t.is_proper_prefix_of(&t));
        assert!(!t.is_prefix_of(&s));
        assert!(Word::empty().is_prefix_of(&s));
    }

    #[test]
    fn prefixes_are_all_prefixes() {
        let sigma = ab();
        let w = Word::parse(&sigma, "a b");
        let ps = w.prefixes();
        assert_eq!(ps.len(), 3);
        for p in &ps {
            assert!(p.is_prefix_of(&w));
        }
    }

    #[test]
    fn concat_and_push() {
        let sigma = ab();
        let a = Word::parse(&sigma, "a");
        let b = Word::parse(&sigma, "b");
        assert_eq!(a.concat(&b), Word::parse(&sigma, "a b"));
        assert_eq!(
            a.push(sigma.symbol("b").unwrap()),
            Word::parse(&sigma, "a b")
        );
    }

    #[test]
    fn at_is_positional() {
        let sigma = ab();
        let w = Word::parse(&sigma, "a b");
        assert_eq!(w.at(0), sigma.symbol("a"));
        assert_eq!(w.at(1), sigma.symbol("b"));
        assert_eq!(w.at(2), None);
    }

    #[test]
    fn all_words_counts() {
        let sigma = ab();
        // 1 + 2 + 4 + 8 = 15 words of length <= 3.
        assert_eq!(all_words(&sigma, 3).len(), 15);
        // All distinct.
        let mut ws = all_words(&sigma, 3);
        ws.sort();
        ws.dedup();
        assert_eq!(ws.len(), 15);
    }

    #[test]
    #[should_panic(expected = "unknown symbol")]
    fn parse_rejects_unknown() {
        let _ = Word::parse(&ab(), "a q");
    }

    #[test]
    fn from_iterator() {
        let sigma = ab();
        let w: Word = sigma.symbols().collect();
        assert_eq!(w, Word::parse(&sigma, "a b"));
    }
}
