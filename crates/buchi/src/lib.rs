//! # sl-buchi
//!
//! Büchi automata with the closure operator of Manolios & Trefler's
//! *A Lattice-Theoretic Characterization of Safety and Liveness*
//! (PODC 2003), Section 2.4 — plus everything needed to make the
//! paper's claims about ω-regular languages executable:
//!
//! * the closure operator `cl` on automata, with `L(cl B) = lcl(L(B))`
//!   ([`closure()`]);
//! * boolean operations and two complementation constructions
//!   ([`ops`], [`complement()`]), which make the ω-regular languages a
//!   Boolean algebra — the lattice on which the paper's Theorem 2 is
//!   instantiated (and which Gumm's σ-complete framework cannot handle);
//! * exact deciders for safety and liveness ([`classify()`]);
//! * the Alpern–Schneider decomposition `L(B) = L(B_S) ∩ L(B_L)`
//!   ([`decompose()`]);
//! * deterministic safety monitors and Schneider security automata
//!   ([`monitor`]).
//!
//! ```
//! use sl_buchi::{decompose::decompose, BuchiBuilder};
//! use sl_omega::Alphabet;
//!
//! // Rem's p3 (a ∧ F ¬a): neither safe nor live — but it decomposes.
//! let sigma = Alphabet::ab();
//! let a = sigma.symbol("a").unwrap();
//! let b = sigma.symbol("b").unwrap();
//! let mut builder = BuchiBuilder::new(sigma.clone());
//! let q0 = builder.add_state(false);
//! let wait = builder.add_state(false);
//! let done = builder.add_state(true);
//! builder.add_transition(q0, a, wait);
//! builder.add_transition(wait, a, wait);
//! builder.add_transition(wait, b, done);
//! builder.add_transition(done, a, done);
//! builder.add_transition(done, b, done);
//! let p3 = builder.build(q0);
//!
//! let d = decompose(&p3);
//! assert_eq!(d.check_sampled(&p3, 3, 3), None);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod antichain;
pub mod automaton;
pub mod classify;
pub mod closure;
pub mod compiled;
pub mod complement;
pub mod decompose;
pub mod empty;
mod graph;
pub mod hoa;
pub mod incl;
pub mod interned;
pub mod member;
pub mod monitor;
pub mod ops;
pub mod random;
pub mod reduce;

pub use antichain::{
    antichain_stats, equivalent_antichain, equivalent_antichain_budgeted, equivalent_onthefly,
    equivalent_onthefly_budgeted, equivalent_onthefly_budgeted_with_cache,
    equivalent_onthefly_with_cache, included_antichain, included_antichain_budgeted,
    included_onthefly, included_onthefly_budgeted, included_onthefly_budgeted_with_cache,
    included_onthefly_with_cache, universal_antichain, universal_onthefly,
    universal_onthefly_with_cache, AntichainStats, DEFAULT_ANTICHAIN_BUDGET,
};
pub use automaton::{Buchi, BuchiBuilder, StateId};
pub use classify::{classify, is_liveness, is_safety, Classification};
pub use closure::{closure, is_closure_shaped, live_states};
pub use compiled::{CompileError, CompiledMonitor, MonitorFleet};
pub use complement::{
    complement, complement_budgeted, complement_safety, ComplementBudgetExceeded,
};
pub use decompose::{decompose, BuchiDecomposition};
pub use empty::{find_accepted_word, is_empty};
pub use incl::{
    engine_stats, equivalent, equivalent_budgeted, equivalent_rank, equivalent_rank_with_cache,
    incl_engine, included, included_budgeted, included_rank, included_rank_budgeted,
    included_rank_with_cache, included_with_complement, reset_shared_complement_cache,
    shared_complement_cache_stats, universal, universal_rank, universal_rank_with_cache,
    ComplementCache, ComplementCacheStats, EngineStats, InclEngine, Inclusion,
};
pub use interned::{
    reset_shared_quotient_cache, scratch_quotient, shared_quotient_cache,
    shared_quotient_cache_stats, AdvanceReport, InternedGraph, InternedNode, QuotientCache,
    QuotientCacheStats,
};
pub use member::{accepts, BuchiProperty};
pub use monitor::{Monitor, SecurityAutomaton, Verdict};
pub use ops::{intersection, intersection_all, union, union_all};
pub use random::{random_buchi, RandomConfig};
pub use reduce::{direct_simulation, reduce};
