//! Nondeterministic Büchi automata.
//!
//! Following the paper's Section 2.4, a Büchi automaton is a 5-tuple
//! `(Σ, Q, q0, δ, F)`; a run on an ω-word is accepting iff it visits `F`
//! infinitely often. [`Buchi`] stores the transition relation densely by
//! `(state, symbol)` and is built through [`BuchiBuilder`].

use sl_lattice::Bitset;
use sl_omega::{Alphabet, Symbol};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A state index in a [`Buchi`] automaton.
pub type StateId = usize;

/// A nondeterministic Büchi automaton over an interned [`Alphabet`].
///
/// # Examples
///
/// ```
/// use sl_buchi::BuchiBuilder;
/// use sl_omega::{Alphabet, LassoWord};
///
/// // Accepts words with infinitely many a's (Rem's p5, GF a).
/// let sigma = Alphabet::ab();
/// let a = sigma.symbol("a").unwrap();
/// let b = sigma.symbol("b").unwrap();
/// let mut builder = BuchiBuilder::new(sigma.clone());
/// let q0 = builder.add_state(false);
/// let qa = builder.add_state(true);
/// builder.add_transition(q0, b, q0);
/// builder.add_transition(q0, a, qa);
/// builder.add_transition(qa, b, q0);
/// builder.add_transition(qa, a, qa);
/// let automaton = builder.build(q0);
/// assert!(automaton.accepts(&LassoWord::parse(&sigma, "b", "a b")));
/// assert!(!automaton.accepts(&LassoWord::parse(&sigma, "a", "b")));
/// ```
#[derive(Debug, Clone)]
pub struct Buchi {
    alphabet: Alphabet,
    accepting: Vec<bool>,
    /// `delta[state][symbol]` is the sorted list of successors.
    delta: Vec<Vec<Vec<StateId>>>,
    initial: StateId,
    /// Per-state successors over any symbol, sorted and deduplicated —
    /// precomputed once in [`BuchiBuilder::build`] so the graph
    /// algorithms never re-sort on the hot path.
    all_succ: Vec<Vec<StateId>>,
    /// The same successor sets as packed bitsets, for word-parallel
    /// membership and intersection tests.
    succ_sets: Vec<Bitset>,
}

// Equality, like hashing, is over the defining 5-tuple only; the
// derived successor caches are a function of `delta` and must not
// (and structurally cannot meaningfully) participate.
impl PartialEq for Buchi {
    fn eq(&self, other: &Self) -> bool {
        self.alphabet == other.alphabet
            && self.accepting == other.accepting
            && self.delta == other.delta
            && self.initial == other.initial
    }
}

impl Eq for Buchi {}

impl Hash for Buchi {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.alphabet.hash(state);
        self.accepting.hash(state);
        self.delta.hash(state);
        self.initial.hash(state);
    }
}

/// Incremental constructor for [`Buchi`].
#[derive(Debug, Clone)]
pub struct BuchiBuilder {
    alphabet: Alphabet,
    accepting: Vec<bool>,
    delta: Vec<Vec<Vec<StateId>>>,
}

impl BuchiBuilder {
    /// Starts a builder over the alphabet.
    #[must_use]
    pub fn new(alphabet: Alphabet) -> Self {
        BuchiBuilder {
            alphabet,
            accepting: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.accepting.push(accepting);
        self.delta.push(vec![Vec::new(); self.alphabet.len()]);
        self.accepting.len() - 1
    }

    /// Adds a transition `from --sym--> to`. Duplicates are ignored.
    ///
    /// # Panics
    ///
    /// Panics if a state id or symbol is out of range.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!(from < self.delta.len(), "from-state out of range");
        assert!(to < self.delta.len(), "to-state out of range");
        assert!(sym.index() < self.alphabet.len(), "symbol out of range");
        let succs = &mut self.delta[from][sym.index()];
        if let Err(pos) = succs.binary_search(&to) {
            succs.insert(pos, to);
        }
    }

    /// Finishes the automaton with the given initial state.
    ///
    /// # Panics
    ///
    /// Panics if the builder has no states or `initial` is out of range.
    #[must_use]
    pub fn build(self, initial: StateId) -> Buchi {
        assert!(!self.accepting.is_empty(), "automaton needs states");
        assert!(initial < self.accepting.len(), "initial out of range");
        let n = self.accepting.len();
        let mut all_succ = Vec::with_capacity(n);
        let mut succ_sets = Vec::with_capacity(n);
        for row in &self.delta {
            let mut merged: Vec<StateId> = row.iter().flatten().copied().collect();
            merged.sort_unstable();
            merged.dedup();
            succ_sets.push(Bitset::from_indices(n, &merged));
            all_succ.push(merged);
        }
        Buchi {
            alphabet: self.alphabet,
            accepting: self.accepting,
            delta: self.delta,
            initial,
            all_succ,
            succ_sets,
        }
    }
}

impl Buchi {
    /// An automaton with the empty language over the alphabet.
    #[must_use]
    pub fn empty_language(alphabet: Alphabet) -> Buchi {
        let mut b = BuchiBuilder::new(alphabet);
        let q = b.add_state(false);
        b.build(q)
    }

    /// An automaton accepting all of `Σ^ω`.
    #[must_use]
    pub fn universal(alphabet: Alphabet) -> Buchi {
        let mut b = BuchiBuilder::new(alphabet.clone());
        let q = b.add_state(true);
        for sym in alphabet.symbols() {
            b.add_transition(q, sym, q);
        }
        b.build(q)
    }

    /// The alphabet.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Total number of transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.delta
            .iter()
            .map(|row| row.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether the state is accepting.
    #[must_use]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q]
    }

    /// The accepting states.
    #[must_use]
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.num_states())
            .filter(|&q| self.accepting[q])
            .collect()
    }

    /// Successors of `q` on `sym`.
    #[must_use]
    pub fn successors(&self, q: StateId, sym: Symbol) -> &[StateId] {
        &self.delta[q][sym.index()]
    }

    /// All successors of `q` over any symbol (deduplicated, sorted).
    /// Precomputed at build time — calling this in a loop is free.
    #[must_use]
    pub fn all_successors(&self, q: StateId) -> &[StateId] {
        &self.all_succ[q]
    }

    /// The successors of `q` over any symbol as a packed bitset over
    /// `{0..num_states}`, for word-parallel membership and intersection
    /// tests. Precomputed at build time.
    #[must_use]
    pub fn successor_bitset(&self, q: StateId) -> &Bitset {
        &self.succ_sets[q]
    }

    /// A deterministic 64-bit hash of the defining 5-tuple (alphabet,
    /// states, initial, transitions, acceptance). Equal automata hash
    /// equally across processes and runs — unlike `std`'s randomized
    /// `DefaultHasher` — so the value can key caches and appear in
    /// reproducible logs. Collisions are possible; callers that need
    /// exactness must confirm with `==` (see `ComplementCache`).
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        // FNV-1a over a canonical u64 stream, with length prefixes so
        // differently-shaped automata cannot alias by concatenation.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(PRIME);
        let mut h = OFFSET;
        h = mix(h, self.alphabet.len() as u64);
        for sym in self.alphabet.symbols() {
            let name = self.alphabet.name(sym);
            h = mix(h, name.len() as u64);
            for byte in name.bytes() {
                h = mix(h, u64::from(byte));
            }
        }
        h = mix(h, self.num_states() as u64);
        h = mix(h, self.initial as u64);
        for (q, &acc) in self.accepting.iter().enumerate() {
            h = mix(h, (q as u64) << 1 | u64::from(acc));
        }
        for row in &self.delta {
            for succs in row {
                h = mix(h, succs.len() as u64);
                for &t in succs {
                    h = mix(h, t as u64);
                }
            }
        }
        h
    }

    /// States reachable from the initial state.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.initial];
        seen[self.initial] = true;
        while let Some(q) = stack.pop() {
            for &succ in self.all_successors(q) {
                if !seen[succ] {
                    seen[succ] = true;
                    stack.push(succ);
                }
            }
        }
        seen
    }

    /// Restricts the automaton to the states where `keep` is true,
    /// preserving the language *of the kept part*. If the initial state
    /// is dropped, the result has the empty language.
    #[must_use]
    pub fn restrict(&self, keep: &[bool]) -> Buchi {
        assert_eq!(keep.len(), self.num_states(), "keep mask size mismatch");
        if !keep[self.initial] {
            return Buchi::empty_language(self.alphabet.clone());
        }
        let mut remap = vec![usize::MAX; self.num_states()];
        let mut builder = BuchiBuilder::new(self.alphabet.clone());
        for q in 0..self.num_states() {
            if keep[q] {
                remap[q] = builder.add_state(self.accepting[q]);
            }
        }
        for q in 0..self.num_states() {
            if !keep[q] {
                continue;
            }
            for sym in self.alphabet.symbols() {
                for &succ in self.successors(q, sym) {
                    if keep[succ] {
                        builder.add_transition(remap[q], sym, remap[succ]);
                    }
                }
            }
        }
        builder.build(remap[self.initial])
    }

    /// Drops unreachable states.
    #[must_use]
    pub fn trim_unreachable(&self) -> Buchi {
        self.restrict(&self.reachable())
    }

    /// Returns a copy with every state accepting (the second half of the
    /// paper's closure construction).
    #[must_use]
    pub fn with_all_accepting(&self) -> Buchi {
        let mut out = self.clone();
        for flag in &mut out.accepting {
            *flag = true;
        }
        out
    }

    /// Returns a copy rooted at a different initial state — the paper's
    /// `B(q)` notation (Section 4.4 uses it for Rabin automata; it is
    /// just as useful here).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn rooted_at(&self, q: StateId) -> Buchi {
        assert!(q < self.num_states(), "state out of range");
        let mut out = self.clone();
        out.initial = q;
        out
    }
}

impl fmt::Display for Buchi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Buchi({} states, {} transitions, initial {})",
            self.num_states(),
            self.num_transitions(),
            self.initial
        )?;
        for q in 0..self.num_states() {
            let marker = if self.accepting[q] { "*" } else { " " };
            for sym in self.alphabet.symbols() {
                for succ in self.successors(q, sym) {
                    writeln!(f, "  {marker}{q} --{}--> {succ}", self.alphabet.name(sym))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gfa() -> (Alphabet, Buchi) {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        (sigma, builder.build(q0))
    }

    #[test]
    fn builder_basics() {
        let (_, m) = gfa();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_transitions(), 4);
        assert_eq!(m.initial(), 0);
        assert!(!m.is_accepting(0));
        assert!(m.is_accepting(1));
        assert_eq!(m.accepting_states(), vec![1]);
    }

    #[test]
    fn duplicate_transitions_ignored() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut b = BuchiBuilder::new(sigma);
        let q = b.add_state(true);
        b.add_transition(q, a, q);
        b.add_transition(q, a, q);
        assert_eq!(b.build(q).num_transitions(), 1);
    }

    #[test]
    fn successors_sorted() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut b = BuchiBuilder::new(sigma);
        let q0 = b.add_state(false);
        let q1 = b.add_state(false);
        let q2 = b.add_state(false);
        b.add_transition(q0, a, q2);
        b.add_transition(q0, a, q1);
        let m = b.build(q0);
        assert_eq!(m.successors(q0, a), &[q1, q2]);
        assert_eq!(m.all_successors(q0), vec![q1, q2]);
    }

    #[test]
    fn reachable_and_trim() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut b = BuchiBuilder::new(sigma);
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        let _orphan = b.add_state(true);
        b.add_transition(q0, a, q1);
        b.add_transition(q1, a, q1);
        let m = b.build(q0);
        assert_eq!(m.reachable(), vec![true, true, false]);
        let t = m.trim_unreachable();
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.num_transitions(), 2);
    }

    #[test]
    fn restrict_dropping_initial_empties() {
        let (_, m) = gfa();
        let out = m.restrict(&[false, true]);
        assert_eq!(out.num_states(), 1);
        assert_eq!(out.num_transitions(), 0);
    }

    #[test]
    fn rooted_at_changes_start() {
        let (_, m) = gfa();
        let r = m.rooted_at(1);
        assert_eq!(r.initial(), 1);
        assert_eq!(r.num_states(), m.num_states());
    }

    #[test]
    fn with_all_accepting() {
        let (_, m) = gfa();
        let c = m.with_all_accepting();
        assert!(c.is_accepting(0) && c.is_accepting(1));
    }

    #[test]
    fn canned_automata() {
        let sigma = Alphabet::ab();
        let empty = Buchi::empty_language(sigma.clone());
        assert_eq!(empty.num_transitions(), 0);
        let univ = Buchi::universal(sigma);
        assert_eq!(univ.num_states(), 1);
        assert_eq!(univ.num_transitions(), 2);
    }

    #[test]
    fn display_shows_structure() {
        let (_, m) = gfa();
        let text = m.to_string();
        assert!(text.contains("2 states"));
        assert!(text.contains("--a-->"));
    }

    #[test]
    fn successor_bitset_matches_list() {
        let (_, m) = gfa();
        for q in 0..m.num_states() {
            let set = m.successor_bitset(q);
            assert_eq!(set.universe(), m.num_states());
            assert_eq!(
                set.iter().collect::<Vec<_>>(),
                m.all_successors(q).to_vec(),
                "state {q}"
            );
        }
    }

    #[test]
    fn structural_hash_is_stable_and_separates() {
        let (sigma, m) = gfa();
        // Equal automata hash equally; a rebuilt clone is equal.
        let (_, m2) = gfa();
        assert_eq!(m, m2);
        assert_eq!(m.structural_hash(), m2.structural_hash());
        // Changing any tuple component changes the automaton; the hash
        // should separate these simple variants (not guaranteed in
        // general, but a fixed collision here would be a bug magnet).
        let rooted = m.rooted_at(1);
        assert_ne!(m.structural_hash(), rooted.structural_hash());
        let all_acc = m.with_all_accepting();
        assert_ne!(m.structural_hash(), all_acc.structural_hash());
        assert_ne!(
            m.structural_hash(),
            Buchi::universal(sigma).structural_hash()
        );
    }

    #[test]
    #[should_panic(expected = "initial out of range")]
    fn build_checks_initial() {
        let sigma = Alphabet::ab();
        let mut b = BuchiBuilder::new(sigma);
        b.add_state(false);
        let _ = b.build(7);
    }
}
