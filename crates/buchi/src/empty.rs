//! Emptiness checking with accepting-lasso extraction.
//!
//! `L(B)` is nonempty iff some accepting state lying on a cycle is
//! reachable from the initial state; the witness is then an ultimately
//! periodic word, which we return as a [`LassoWord`].

use crate::automaton::{Buchi, StateId};
use crate::graph::{tarjan, Graph};
use sl_omega::{LassoWord, Symbol, Word};

/// Finds an accepted lasso word, or `None` if the language is empty.
#[must_use]
pub fn find_accepted_word(b: &Buchi) -> Option<LassoWord> {
    let reachable = b.reachable();
    let graph = Graph {
        n: b.num_states(),
        succ: Box::new(|q| std::borrow::Cow::Borrowed(b.all_successors(q))),
    };
    let scc = tarjan(&graph);
    let members = scc.members();
    let scc_size: Vec<usize> = members.iter().map(Vec::len).collect();

    for q in 0..b.num_states() {
        if !reachable[q] || !b.is_accepting(q) {
            continue;
        }
        let nontrivial = scc_size[scc.component[q]] > 1 || b.all_successors(q).contains(&q);
        if !nontrivial {
            continue;
        }
        // Stem: shortest symbol path initial -> q.
        let stem = symbol_path(b, b.initial(), q, false)?;
        // Cycle: shortest nonempty symbol path q -> q.
        let cycle = symbol_path(b, q, q, true)?;
        return Some(LassoWord::new(&stem, &cycle));
    }
    None
}

/// Whether the automaton's language is empty.
#[must_use]
pub fn is_empty(b: &Buchi) -> bool {
    find_accepted_word(b).is_none()
}

/// BFS for a symbol-labeled path from `from` to `to`. With
/// `require_step`, the path must take at least one transition (for
/// cycles).
fn symbol_path(b: &Buchi, from: StateId, to: StateId, require_step: bool) -> Option<Word> {
    // parent[q] = (previous state, symbol) on a shortest path.
    let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; b.num_states()];
    let mut visited = vec![false; b.num_states()];
    let mut queue = std::collections::VecDeque::new();

    if !require_step && from == to {
        return Some(Word::empty());
    }
    // Seed with the first step explicitly so cycles work.
    for sym in b.alphabet().symbols() {
        for &succ in b.successors(from, sym) {
            if succ == to {
                return Some(Word::new(&[sym]));
            }
            if !visited[succ] {
                visited[succ] = true;
                parent[succ] = Some((from, sym));
                queue.push_back(succ);
            }
        }
    }
    while let Some(q) = queue.pop_front() {
        for sym in b.alphabet().symbols() {
            for &succ in b.successors(q, sym) {
                if succ == to {
                    // Reconstruct path: from ... q, then sym.
                    let mut symbols = vec![sym];
                    let mut cur = q;
                    while cur != from {
                        let (prev, s) = parent[cur].expect("parent chain broken");
                        symbols.push(s);
                        cur = prev;
                    }
                    symbols.reverse();
                    return Some(Word::new(&symbols));
                }
                if !visited[succ] {
                    visited[succ] = true;
                    parent[succ] = Some((q, sym));
                    queue.push_back(succ);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use crate::member::accepts;
    use sl_omega::Alphabet;

    #[test]
    fn universal_is_nonempty() {
        let sigma = Alphabet::ab();
        let w = find_accepted_word(&Buchi::universal(sigma)).unwrap();
        assert_eq!(w.period(), 1);
    }

    #[test]
    fn empty_language_is_empty() {
        let sigma = Alphabet::ab();
        assert!(is_empty(&Buchi::empty_language(sigma)));
    }

    #[test]
    fn accepting_state_without_cycle_is_empty() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut b = BuchiBuilder::new(sigma);
        let q0 = b.add_state(false);
        let qf = b.add_state(true);
        b.add_transition(q0, a, qf);
        assert!(is_empty(&b.build(q0)));
    }

    #[test]
    fn unreachable_accepting_cycle_is_empty() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut b = BuchiBuilder::new(sigma);
        let q0 = b.add_state(false);
        let qf = b.add_state(true);
        b.add_transition(qf, a, qf);
        b.add_transition(q0, a, q0); // q0 loops but never reaches qf
        assert!(is_empty(&b.build(q0)));
    }

    #[test]
    fn witness_is_accepted() {
        // GF a automaton.
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let bsym = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, bsym, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, bsym, q0);
        builder.add_transition(qa, a, qa);
        let m = builder.build(q0);
        let w = find_accepted_word(&m).unwrap();
        assert!(accepts(&m, &w), "witness {w} must be accepted");
    }

    #[test]
    fn witness_needs_nonempty_stem() {
        // Accepting cycle only reachable after reading 'b a'.
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let bsym = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(false);
        let q1 = builder.add_state(false);
        let qf = builder.add_state(true);
        builder.add_transition(q0, bsym, q1);
        builder.add_transition(q1, a, qf);
        builder.add_transition(qf, a, qf);
        let m = builder.build(q0);
        let w = find_accepted_word(&m).unwrap();
        assert!(accepts(&m, &w));
        // The only accepted word is b a a^ω = b (a)^ω.
        assert_eq!(w, LassoWord::parse(&sigma, "b", "a"));
    }

    #[test]
    fn self_loop_accepting_cycle_found() {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(sigma.clone());
        let q0 = builder.add_state(true);
        builder.add_transition(q0, a, q0);
        let m = builder.build(q0);
        assert_eq!(
            find_accepted_word(&m).unwrap(),
            LassoWord::parse(&sigma, "", "a")
        );
    }
}
