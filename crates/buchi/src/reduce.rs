//! State-space reduction by direct simulation.
//!
//! Direct simulation for Büchi automata: `q ≤ r` iff (`q` accepting
//! implies `r` accepting) and every `σ`-successor of `q` is simulated by
//! some `σ`-successor of `r`. Quotienting by mutual direct simulation
//! (`q ≤ r ≤ q`) preserves the language, and pruning transitions to
//! simulation-dominated successors preserves it too. Reduction keeps
//! the closure/complement constructions downstream small — which
//! matters, since their costs are exponential in the state count.

use crate::automaton::{Buchi, BuchiBuilder, StateId};
use sl_lattice::Bitset;
use sl_omega::Symbol;

/// Per-(state, symbol) successor sets, fixed for the whole refinement.
pub(crate) fn successor_sets(b: &Buchi) -> Vec<Vec<Bitset>> {
    let n = b.num_states();
    let syms: Vec<Symbol> = b.alphabet().symbols().collect();
    (0..n)
        .map(|q| {
            syms.iter()
                .map(|&sym| Bitset::from_indices(n, b.successors(q, sym)))
                .collect()
        })
        .collect()
}

/// The acceptance-consistent complete relation — the top element of
/// the refinement: `rows[q] = F_B` for accepting `q`, everything
/// otherwise.
pub(crate) fn initial_rows(b: &Buchi) -> Vec<Bitset> {
    let n = b.num_states();
    let accepting = Bitset::from_indices(
        n,
        &(0..n).filter(|&q| b.is_accepting(q)).collect::<Vec<_>>(),
    );
    let full = Bitset::full(n);
    (0..n)
        .map(|q| {
            if b.is_accepting(q) {
                accepting.clone()
            } else {
                full.clone()
            }
        })
        .collect()
}

/// Refines `rows[q] = { r | q ≤ r }` in place to the greatest fixpoint
/// of the direct-simulation operator. The starting relation may be any
/// set between the fixpoint and [`initial_rows`]: removals only ever
/// drop pairs that fail against a superset of the fixpoint (so no true
/// pair is lost), and the stable relation is a post-fixpoint, hence
/// *the* greatest fixpoint — which is what lets
/// [`crate::interned::InternedGraph::advance`] seed the loop with stale
/// verdicts from a previous automaton version and still land on a
/// bit-identical result.
pub(crate) fn refine_rows(succ: &[Vec<Bitset>], rows: &mut [Bitset]) {
    let n = rows.len();
    let nsyms = if n == 0 { 0 } else { succ[0].len() };
    loop {
        let mut changed = false;
        for q in 0..n {
            // A pair failing the check against the current (over-
            // approximate) rows fails against every smaller relation, so
            // removals in any order converge to the greatest fixpoint.
            let dropped: Vec<usize> = rows[q]
                .iter()
                .filter(|&r| {
                    !(0..nsyms)
                        .all(|s| succ[q][s].iter().all(|qs| rows[qs].intersects(&succ[r][s])))
                })
                .collect();
            for r in dropped {
                rows[q].remove(r);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// The greatest-fixpoint simulation as one [`Bitset`] row per state.
pub(crate) fn simulation_rows(b: &Buchi) -> Vec<Bitset> {
    let succ = successor_sets(b);
    let mut rows = initial_rows(b);
    refine_rows(&succ, &mut rows);
    rows
}

/// The direct-simulation preorder as a boolean matrix:
/// `result[q * n + r]` iff `q` is (direct-)simulated by `r`.
///
/// Internally the relation is refined as one [`Bitset`] row per state, so
/// the inner "some `σ`-successor of `r` simulates `qs`" test is a
/// word-parallel [`Bitset::intersects`] over `u64` blocks instead of a
/// nested scan.
#[must_use]
pub fn direct_simulation(b: &Buchi) -> Vec<bool> {
    let n = b.num_states();
    let rows = simulation_rows(b);
    let mut sim = vec![false; n * n];
    for (q, row) in rows.iter().enumerate() {
        for r in row.iter() {
            sim[q * n + r] = true;
        }
    }
    sim
}

/// Quotients the automaton by mutual direct simulation and prunes
/// transitions whose target is strictly dominated by a sibling target.
/// The result recognizes the same language with at most as many states.
#[must_use]
pub fn reduce(b: &Buchi) -> Buchi {
    quotient_from_rows(b, &simulation_rows(b))
}

/// The quotient-and-prune half of [`reduce`], over an already-computed
/// greatest-fixpoint simulation (`rows[q] = { r | q ≤ r }`). Because
/// the fixpoint is unique, any two routes to `rows` — from-scratch
/// refinement or the incremental seeding in [`crate::interned`] — yield
/// bit-identical quotients here.
pub(crate) fn quotient_from_rows(b: &Buchi, rows: &[Bitset]) -> Buchi {
    let n = b.num_states();
    let le = |q: usize, r: usize| rows[q].contains(r);
    // Representative of each mutual-simulation class: smallest index.
    let rep: Vec<usize> = (0..n)
        .map(|q| {
            (0..=q)
                .find(|&r| le(q, r) && le(r, q))
                .expect("q is equivalent to itself")
        })
        .collect();
    let mut builder = BuchiBuilder::new(b.alphabet().clone());
    let mut new_id = vec![usize::MAX; n];
    for q in 0..n {
        if rep[q] == q {
            new_id[q] = builder.add_state(b.is_accepting(q));
        }
    }
    for q in 0..n {
        if rep[q] != q {
            continue;
        }
        for sym in b.alphabet().symbols() {
            // Keep only simulation-maximal successors (by class rep).
            let succs: Vec<StateId> = b.successors(q, sym).to_vec();
            for &t in &succs {
                let dominated = succs.iter().any(|&u| rep[u] != rep[t] && le(t, u));
                if !dominated {
                    builder.add_transition(new_id[q], sym, new_id[rep[t]]);
                }
            }
        }
    }
    builder.build(new_id[rep[b.initial()]]).trim_unreachable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use crate::random::{random_buchi, RandomConfig};
    use sl_omega::{all_lassos, Alphabet};

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    #[test]
    fn simulation_is_reflexive_and_respects_acceptance() {
        let s = sigma();
        let m = random_buchi(&s, 3, RandomConfig::default());
        let n = m.num_states();
        let sim = direct_simulation(&m);
        for q in 0..n {
            assert!(sim[q * n + q], "reflexivity at {q}");
            for r in 0..n {
                if sim[q * n + r] && m.is_accepting(q) {
                    assert!(m.is_accepting(r));
                }
            }
        }
    }

    #[test]
    fn simulation_is_transitive() {
        let s = sigma();
        for seed in 0..10 {
            let m = random_buchi(&s, seed, RandomConfig::default());
            let n = m.num_states();
            let sim = direct_simulation(&m);
            for a in 0..n {
                for b in 0..n {
                    for c in 0..n {
                        if sim[a * n + b] && sim[b * n + c] {
                            assert!(sim[a * n + c], "seed {seed}: {a} <= {b} <= {c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn duplicate_states_collapse() {
        // Two identical accepting states looping on a.
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut b = BuchiBuilder::new(s.clone());
        let q0 = b.add_state(false);
        let q1 = b.add_state(true);
        let q2 = b.add_state(true);
        b.add_transition(q0, a, q1);
        b.add_transition(q0, a, q2);
        b.add_transition(q1, a, q1);
        b.add_transition(q2, a, q2);
        let m = b.build(q0);
        let r = reduce(&m);
        assert!(r.num_states() < m.num_states());
        for w in all_lassos(&s, 2, 2) {
            assert_eq!(m.accepts(&w), r.accepts(&w), "{w}");
        }
    }

    #[test]
    fn reduction_preserves_language_on_random_corpus() {
        let s = sigma();
        for seed in 0..60 {
            let m = random_buchi(
                &s,
                seed,
                RandomConfig {
                    states: 6,
                    density_percent: 70,
                    accepting_percent: 40,
                },
            );
            let r = reduce(&m);
            assert!(r.num_states() <= m.num_states());
            for w in all_lassos(&s, 2, 3) {
                assert_eq!(m.accepts(&w), r.accepts(&w), "seed {seed} on {w}");
            }
        }
    }

    #[test]
    fn reduction_is_idempotent_on_language() {
        let s = sigma();
        let m = random_buchi(&s, 11, RandomConfig::default());
        let r1 = reduce(&m);
        let r2 = reduce(&r1);
        assert!(r2.num_states() <= r1.num_states());
        for w in all_lassos(&s, 2, 2) {
            assert_eq!(r1.accepts(&w), r2.accepts(&w));
        }
    }

    #[test]
    fn universal_reduces_to_one_state() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b_sym = s.symbol("b").unwrap();
        // A bloated universal automaton.
        let mut b = BuchiBuilder::new(s.clone());
        let q0 = b.add_state(true);
        let q1 = b.add_state(true);
        for sym in [a, b_sym] {
            b.add_transition(q0, sym, q1);
            b.add_transition(q1, sym, q0);
            b.add_transition(q0, sym, q0);
            b.add_transition(q1, sym, q1);
        }
        let m = b.build(q0);
        let r = reduce(&m);
        assert_eq!(r.num_states(), 1);
    }
}
