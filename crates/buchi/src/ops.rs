//! Boolean operations: union and intersection.
//!
//! The paper (Section 3) relies on the languages definable by Büchi
//! automata being closed under union, intersection, and complementation
//! to form a Boolean algebra. Union is a fresh initial state mimicking
//! both originals; intersection is the standard two-track product that
//! alternates between waiting for each operand's acceptance.

use crate::automaton::{Buchi, BuchiBuilder, StateId};
use std::collections::HashMap;

/// An automaton for `L(left) ∪ L(right)`.
///
/// # Panics
///
/// Panics if the alphabets differ.
#[must_use]
pub fn union(left: &Buchi, right: &Buchi) -> Buchi {
    assert_eq!(left.alphabet(), right.alphabet(), "alphabet mismatch");
    let sigma = left.alphabet().clone();
    let mut builder = BuchiBuilder::new(sigma.clone());
    // Fresh initial, then disjoint copies of both automata.
    let fresh = builder.add_state(false);
    let left_base = 1;
    for q in 0..left.num_states() {
        builder.add_state(left.is_accepting(q));
        let _ = q;
    }
    let right_base = 1 + left.num_states();
    for q in 0..right.num_states() {
        builder.add_state(right.is_accepting(q));
        let _ = q;
    }
    for q in 0..left.num_states() {
        for sym in sigma.symbols() {
            for &succ in left.successors(q, sym) {
                builder.add_transition(left_base + q, sym, left_base + succ);
            }
        }
    }
    for q in 0..right.num_states() {
        for sym in sigma.symbols() {
            for &succ in right.successors(q, sym) {
                builder.add_transition(right_base + q, sym, right_base + succ);
            }
        }
    }
    // The fresh initial copies the outgoing transitions of both initials.
    for sym in sigma.symbols() {
        for &succ in left.successors(left.initial(), sym) {
            builder.add_transition(fresh, sym, left_base + succ);
        }
        for &succ in right.successors(right.initial(), sym) {
            builder.add_transition(fresh, sym, right_base + succ);
        }
    }
    builder.build(fresh)
}

/// An automaton for `L(left) ∩ L(right)` via the two-track product.
///
/// Track 0 waits for a left-accepting state, track 1 for a
/// right-accepting one; the accepting set is "right-accepting while on
/// track 1", which is visited infinitely often iff both operands accept.
///
/// # Panics
///
/// Panics if the alphabets differ.
#[must_use]
pub fn intersection(left: &Buchi, right: &Buchi) -> Buchi {
    assert_eq!(left.alphabet(), right.alphabet(), "alphabet mismatch");
    let sigma = left.alphabet().clone();
    let mut builder = BuchiBuilder::new(sigma.clone());
    let mut ids: HashMap<(StateId, StateId, u8), StateId> = HashMap::new();
    let mut work: Vec<(StateId, StateId, u8)> = Vec::new();

    let start = (left.initial(), right.initial(), 0u8);
    let accepting = |(_l, r, track): (StateId, StateId, u8)| track == 1 && right.is_accepting(r);
    let start_id = builder.add_state(accepting(start));
    ids.insert(start, start_id);
    work.push(start);

    while let Some(node @ (l, r, track)) = work.pop() {
        let from = ids[&node];
        // Track advances when the current state fulfills what the track
        // is waiting for.
        let next_track = match track {
            0 if left.is_accepting(l) => 1,
            1 if right.is_accepting(r) => 0,
            t => t,
        };
        for sym in sigma.symbols() {
            for &ls in left.successors(l, sym) {
                for &rs in right.successors(r, sym) {
                    let succ = (ls, rs, next_track);
                    let to = *ids.entry(succ).or_insert_with(|| {
                        work.push(succ);
                        builder.add_state(accepting(succ))
                    });
                    builder.add_transition(from, sym, to);
                }
            }
        }
    }
    builder.build(start_id)
}

/// The union of a nonempty list of automata.
///
/// # Panics
///
/// Panics if `automata` is empty.
#[must_use]
pub fn union_all(automata: &[Buchi]) -> Buchi {
    let (first, rest) = automata.split_first().expect("need at least one automaton");
    rest.iter().fold(first.clone(), |acc, b| union(&acc, b))
}

/// The intersection of a nonempty list of automata.
///
/// # Panics
///
/// Panics if `automata` is empty.
#[must_use]
pub fn intersection_all(automata: &[Buchi]) -> Buchi {
    let (first, rest) = automata.split_first().expect("need at least one automaton");
    rest.iter()
        .fold(first.clone(), |acc, b| intersection(&acc, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::{all_lassos, Alphabet};

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    /// Automaton for "infinitely many a" (GF a).
    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    /// Automaton for "first symbol is a".
    fn first_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, b, q1);
        builder.build(q0)
    }

    /// Automaton for "finitely many a" (FG !a).
    fn fin_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qb = builder.add_state(true);
        builder.add_transition(q0, a, q0);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, b, qb);
        builder.add_transition(qb, b, qb);
        builder.build(q0)
    }

    #[test]
    fn union_semantics() {
        let s = sigma();
        let u = union(&inf_a(&s), &fin_a(&s));
        // GF a ∪ FG !a = everything.
        for w in all_lassos(&s, 2, 3) {
            assert!(u.accepts(&w), "{w}");
        }
    }

    #[test]
    fn union_with_empty_is_identity_on_samples() {
        let s = sigma();
        let m = first_a(&s);
        let u = union(&m, &Buchi::empty_language(s.clone()));
        for w in all_lassos(&s, 2, 2) {
            assert_eq!(u.accepts(&w), m.accepts(&w), "{w}");
        }
    }

    #[test]
    fn intersection_semantics() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let i = intersection(&first_a(&s), &inf_a(&s));
        for w in all_lassos(&s, 2, 3) {
            let expected = w.first() == a && w.infinitely_often(a);
            assert_eq!(i.accepts(&w), expected, "{w}");
        }
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let s = sigma();
        let i = intersection(&inf_a(&s), &fin_a(&s));
        for w in all_lassos(&s, 2, 3) {
            assert!(!i.accepts(&w), "{w}");
        }
        assert!(crate::empty::is_empty(&i));
    }

    #[test]
    fn intersection_with_universal_is_identity_on_samples() {
        let s = sigma();
        let m = inf_a(&s);
        let i = intersection(&m, &Buchi::universal(s.clone()));
        for w in all_lassos(&s, 2, 3) {
            assert_eq!(i.accepts(&w), m.accepts(&w), "{w}");
        }
    }

    #[test]
    fn n_ary_combinators() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let all = intersection_all(&[first_a(&s), inf_a(&s), Buchi::universal(s.clone())]);
        let any = union_all(&[Buchi::empty_language(s.clone()), fin_a(&s), inf_a(&s)]);
        for w in all_lassos(&s, 2, 2) {
            assert_eq!(all.accepts(&w), w.first() == a && w.infinitely_often(a));
            assert!(any.accepts(&w));
        }
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn mismatched_alphabets_rejected() {
        let s1 = Alphabet::ab();
        let s2 = Alphabet::new(&["x", "y"]);
        let _ = union(&Buchi::universal(s1), &Buchi::universal(s2));
    }

    #[test]
    #[should_panic(expected = "need at least one automaton")]
    fn empty_list_rejected() {
        let _ = union_all(&[]);
    }
}
