//! Export to the Hanoi Omega-Automata (HOA) format.
//!
//! HOA is the interchange format understood by Spot, Owl, and the rest
//! of the ω-automata ecosystem; exporting lets the automata produced
//! here (tableau translations, closures, decomposition parts) be
//! inspected and cross-validated with external tooling.
//!
//! The encoding maps each alphabet symbol to one atomic proposition and
//! labels a transition on symbol `i` with the conjunction
//! `ap_i ∧ ⋀_{j≠i} ¬ap_j` — the standard embedding of a
//! symbol-alphabet automaton into HOA's AP-based edge labels.

use crate::automaton::Buchi;
use std::fmt::Write as _;

/// Renders the automaton in HOA v1 syntax with state-based Büchi
/// acceptance.
///
/// # Examples
///
/// ```
/// use sl_buchi::{hoa::to_hoa, Buchi};
/// use sl_omega::Alphabet;
///
/// let text = to_hoa(&Buchi::universal(Alphabet::ab()), "universal");
/// assert!(text.starts_with("HOA: v1"));
/// assert!(text.contains("acc-name: Buchi"));
/// ```
#[must_use]
pub fn to_hoa(b: &Buchi, name: &str) -> String {
    let sigma = b.alphabet();
    let mut out = String::new();
    let _ = writeln!(out, "HOA: v1");
    let _ = writeln!(out, "name: \"{name}\"");
    let _ = writeln!(out, "States: {}", b.num_states());
    let _ = writeln!(out, "Start: {}", b.initial());
    let aps: Vec<String> = sigma
        .symbols()
        .map(|s| format!("\"{}\"", sigma.name(s)))
        .collect();
    let _ = writeln!(out, "AP: {} {}", sigma.len(), aps.join(" "));
    let _ = writeln!(out, "acc-name: Buchi");
    let _ = writeln!(out, "Acceptance: 1 Inf(0)");
    let _ = writeln!(out, "properties: trans-labels explicit-labels state-acc");
    let _ = writeln!(out, "--BODY--");
    for q in 0..b.num_states() {
        if b.is_accepting(q) {
            let _ = writeln!(out, "State: {q} {{0}}");
        } else {
            let _ = writeln!(out, "State: {q}");
        }
        for sym in sigma.symbols() {
            // One-hot label: this symbol true, all others false.
            let label: Vec<String> = sigma
                .symbols()
                .map(|s| {
                    if s == sym {
                        format!("{}", s.index())
                    } else {
                        format!("!{}", s.index())
                    }
                })
                .collect();
            for &succ in b.successors(q, sym) {
                let _ = writeln!(out, "[{}] {succ}", label.join("&"));
            }
        }
    }
    let _ = writeln!(out, "--END--");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn gfa() -> Buchi {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma);
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    #[test]
    fn header_fields() {
        let text = to_hoa(&gfa(), "GF a");
        assert!(text.starts_with("HOA: v1\n"));
        assert!(text.contains("name: \"GF a\""));
        assert!(text.contains("States: 2"));
        assert!(text.contains("Start: 0"));
        assert!(text.contains("AP: 2 \"a\" \"b\""));
        assert!(text.contains("Acceptance: 1 Inf(0)"));
    }

    #[test]
    fn body_structure() {
        let text = to_hoa(&gfa(), "GF a");
        // Accepting state carries the {0} marker.
        assert!(text.contains("State: 1 {0}"));
        assert!(text.contains("State: 0\n"));
        // One-hot labels for both symbols appear.
        assert!(text.contains("[0&!1] 1")); // q0 --a--> qa
        assert!(text.contains("[!0&1] 0")); // q0 --b--> q0
        assert!(text.ends_with("--END--\n"));
    }

    #[test]
    fn transition_count_matches() {
        let m = gfa();
        let text = to_hoa(&m, "m");
        let edges = text.lines().filter(|l| l.starts_with('[')).count();
        assert_eq!(edges, m.num_transitions());
    }

    #[test]
    fn empty_language_automaton_exports() {
        let sigma = Alphabet::ab();
        let text = to_hoa(&Buchi::empty_language(sigma), "empty");
        assert!(text.contains("States: 1"));
        assert!(!text.contains('['), "no transitions expected");
    }
}
