//! Export to — and import from — the Hanoi Omega-Automata (HOA) format.
//!
//! HOA is the interchange format understood by Spot, Owl, and the rest
//! of the ω-automata ecosystem; exporting lets the automata produced
//! here (tableau translations, closures, decomposition parts) be
//! inspected and cross-validated with external tooling, and
//! [`from_hoa`] is the ingest format of the `sld` query daemon
//! (`sl-service`): a `define` request may carry an automaton as HOA
//! text instead of an LTL formula.
//!
//! The encoding maps each alphabet symbol to one atomic proposition and
//! labels a transition on symbol `i` with the conjunction
//! `ap_i ∧ ⋀_{j≠i} ¬ap_j` — the standard embedding of a
//! symbol-alphabet automaton into HOA's AP-based edge labels.
//! [`from_hoa`] accepts exactly this state-based Büchi fragment
//! (`Acceptance: 1 Inf(0)`, one-hot explicit edge labels) and
//! round-trips [`to_hoa`] output bit-exactly; anything outside the
//! fragment is rejected with a line-numbered
//! [`SlError::InvalidInput`] diagnostic instead of a panic — the text
//! crosses a trust boundary when it arrives over the daemon protocol.

use crate::automaton::{Buchi, BuchiBuilder};
use sl_omega::Alphabet;
use sl_support::SlError;
use std::fmt::Write as _;

/// Renders the automaton in HOA v1 syntax with state-based Büchi
/// acceptance.
///
/// # Examples
///
/// ```
/// use sl_buchi::{hoa::to_hoa, Buchi};
/// use sl_omega::Alphabet;
///
/// let text = to_hoa(&Buchi::universal(Alphabet::ab()), "universal");
/// assert!(text.starts_with("HOA: v1"));
/// assert!(text.contains("acc-name: Buchi"));
/// ```
#[must_use]
pub fn to_hoa(b: &Buchi, name: &str) -> String {
    let sigma = b.alphabet();
    let mut out = String::new();
    let _ = writeln!(out, "HOA: v1");
    let _ = writeln!(out, "name: \"{name}\"");
    let _ = writeln!(out, "States: {}", b.num_states());
    let _ = writeln!(out, "Start: {}", b.initial());
    let aps: Vec<String> = sigma
        .symbols()
        .map(|s| format!("\"{}\"", sigma.name(s)))
        .collect();
    let _ = writeln!(out, "AP: {} {}", sigma.len(), aps.join(" "));
    let _ = writeln!(out, "acc-name: Buchi");
    let _ = writeln!(out, "Acceptance: 1 Inf(0)");
    let _ = writeln!(out, "properties: trans-labels explicit-labels state-acc");
    let _ = writeln!(out, "--BODY--");
    for q in 0..b.num_states() {
        if b.is_accepting(q) {
            let _ = writeln!(out, "State: {q} {{0}}");
        } else {
            let _ = writeln!(out, "State: {q}");
        }
        for sym in sigma.symbols() {
            // One-hot label: this symbol true, all others false.
            let label: Vec<String> = sigma
                .symbols()
                .map(|s| {
                    if s == sym {
                        format!("{}", s.index())
                    } else {
                        format!("!{}", s.index())
                    }
                })
                .collect();
            for &succ in b.successors(q, sym) {
                let _ = writeln!(out, "[{}] {succ}", label.join("&"));
            }
        }
    }
    let _ = writeln!(out, "--END--");
    out
}

/// A line-numbered ingest error: every rejection names the offending
/// line (1-based) so daemon clients can point at their input.
fn bad(line_no: usize, message: impl std::fmt::Display) -> SlError {
    SlError::InvalidInput(format!("hoa line {line_no}: {message}"))
}

/// Parses the quoted strings of an `AP:` header tail (`2 "a" "b"`).
fn parse_ap_names(tail: &str, line_no: usize) -> Result<Vec<String>, SlError> {
    let tail = tail.trim();
    let (count_text, names_text) = tail
        .split_once(char::is_whitespace)
        .ok_or_else(|| bad(line_no, "AP header needs a count and quoted names"))?;
    let count: usize = count_text
        .parse()
        .map_err(|_| bad(line_no, format!("AP count `{count_text}` is not a number")))?;
    // The count comes from untrusted text; bound it before it sizes an
    // allocation. `Alphabet` holds at most `u16::MAX` symbols, and each
    // declared name occupies at least two bytes (`""`) of the tail, so
    // a count beyond either bound cannot be satisfied anyway.
    if count > usize::from(u16::MAX) {
        return Err(bad(
            line_no,
            format!(
                "AP count {count} exceeds the {} propositions an alphabet supports",
                u16::MAX
            ),
        ));
    }
    if count > names_text.len() {
        return Err(bad(
            line_no,
            format!("AP count {count} is larger than the header could possibly list"),
        ));
    }
    let mut names = Vec::with_capacity(count);
    let mut rest = names_text.trim();
    while !rest.is_empty() {
        let Some(stripped) = rest.strip_prefix('"') else {
            return Err(bad(line_no, format!("expected a quoted AP name at `{rest}`")));
        };
        let Some(end) = stripped.find('"') else {
            return Err(bad(line_no, "unterminated AP name quote"));
        };
        names.push(stripped[..end].to_string());
        rest = stripped[end + 1..].trim_start();
    }
    if names.len() != count {
        return Err(bad(
            line_no,
            format!("AP header declares {count} propositions but lists {}", names.len()),
        ));
    }
    if names.is_empty() {
        return Err(bad(line_no, "automaton needs at least one proposition"));
    }
    let mut seen = std::collections::HashSet::new();
    for name in &names {
        if !seen.insert(name.as_str()) {
            return Err(bad(line_no, format!("duplicate proposition name \"{name}\"")));
        }
    }
    Ok(names)
}

/// Parses a one-hot edge label (`0&!1&!2` style): a conjunction of
/// literals over the AP indices with exactly one positive literal,
/// whose index is the transition's symbol.
fn parse_one_hot(label: &str, ap_count: usize, line_no: usize) -> Result<usize, SlError> {
    let mut positive: Option<usize> = None;
    for literal in label.split('&') {
        let literal = literal.trim();
        let (negated, index_text) = match literal.strip_prefix('!') {
            Some(rest) => (true, rest.trim()),
            None => (false, literal),
        };
        let index: usize = index_text.parse().map_err(|_| {
            bad(line_no, format!("label literal `{literal}` is not an AP index"))
        })?;
        if index >= ap_count {
            return Err(bad(
                line_no,
                format!("label references AP {index} but only {ap_count} are declared"),
            ));
        }
        if !negated {
            if positive.is_some() {
                return Err(bad(
                    line_no,
                    "label has more than one positive proposition; only one-hot \
                     symbol labels are supported",
                ));
            }
            positive = Some(index);
        }
    }
    positive.ok_or_else(|| {
        bad(line_no, "label has no positive proposition; one-hot symbol labels need exactly one")
    })
}

/// Parses HOA v1 text in the fragment [`to_hoa`] emits — state-based
/// Büchi acceptance (`Acceptance: 1 Inf(0)`), explicit one-hot edge
/// labels mapping atomic propositions to alphabet symbols — and
/// rebuilds the automaton. `from_hoa(&to_hoa(b, name))` reproduces `b`
/// exactly (the round-trip property in `tests/property_based.rs`).
///
/// Unknown header keys are ignored (HOA tooling adds informative
/// headers freely); structural problems are rejected.
///
/// # Errors
///
/// [`SlError::InvalidInput`] with a line-numbered message on malformed
/// text: a missing `HOA:` preamble, a non-Büchi acceptance condition,
/// out-of-range states or AP indices, labels that are not one-hot,
/// edges before the first `State:` header, or a truncated body.
pub fn from_hoa(text: &str) -> Result<Buchi, SlError> {
    let total_lines = text.lines().count();
    let mut states: Option<usize> = None;
    let mut start: Option<usize> = None;
    let mut ap_names: Option<Vec<String>> = None;
    let mut acceptance_ok = false;
    let mut saw_preamble = false;
    let mut body_at = None;

    let mut lines = text.lines().enumerate();
    for (i, raw) in lines.by_ref() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if !saw_preamble {
            let version = line
                .strip_prefix("HOA:")
                .ok_or_else(|| bad(line_no, "expected the `HOA: v1` preamble"))?;
            if version.trim() != "v1" {
                return Err(bad(line_no, format!("unsupported HOA version `{}`", version.trim())));
            }
            saw_preamble = true;
            continue;
        }
        if line == "--BODY--" {
            body_at = Some(line_no);
            break;
        }
        let Some((key, tail)) = line.split_once(':') else {
            return Err(bad(line_no, format!("malformed header line `{line}`")));
        };
        let tail = tail.trim();
        match key.trim() {
            "States" => {
                let n: usize = tail
                    .parse()
                    .map_err(|_| bad(line_no, format!("state count `{tail}` is not a number")))?;
                if n == 0 {
                    return Err(bad(line_no, "automaton needs at least one state"));
                }
                // The count comes from untrusted text and later sizes
                // allocations. In the accepted fragment every state has
                // its own `State:` line, so a count beyond the input's
                // line count cannot be honest — reject it before it can
                // drive an absurd allocation.
                if n > total_lines {
                    return Err(bad(
                        line_no,
                        format!(
                            "state count {n} exceeds the {total_lines} lines of input"
                        ),
                    ));
                }
                states = Some(n);
            }
            "Start" => {
                start = Some(tail.parse().map_err(|_| {
                    bad(line_no, format!("start state `{tail}` is not a number"))
                })?);
            }
            "AP" => ap_names = Some(parse_ap_names(tail, line_no)?),
            "Acceptance" => {
                if tail.split_whitespace().collect::<Vec<_>>() != ["1", "Inf(0)"] {
                    return Err(bad(
                        line_no,
                        format!(
                            "acceptance `{tail}` is not state-based Büchi; only \
                             `Acceptance: 1 Inf(0)` is supported"
                        ),
                    ));
                }
                acceptance_ok = true;
            }
            // Informative headers (name, acc-name, properties, tool, ...)
            // carry no structure we need.
            _ => {}
        }
    }

    if !saw_preamble {
        return Err(bad(1, "expected the `HOA: v1` preamble"));
    }
    let body_line = body_at.ok_or_else(|| bad(text.lines().count(), "missing --BODY--"))?;
    let n = states.ok_or_else(|| bad(body_line, "missing States header"))?;
    let start = start.ok_or_else(|| bad(body_line, "missing Start header"))?;
    let names = ap_names.ok_or_else(|| bad(body_line, "missing AP header"))?;
    if !acceptance_ok {
        return Err(bad(body_line, "missing Acceptance header"));
    }
    if start >= n {
        return Err(bad(body_line, format!("start state {start} out of range (States: {n})")));
    }

    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let sigma = Alphabet::new(&name_refs);
    let mut accepting = vec![false; n];
    let mut edges: Vec<(usize, usize, usize)> = Vec::new();
    let mut current: Option<usize> = None;
    let mut ended = false;

    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if ended {
            return Err(bad(line_no, "content after --END--"));
        }
        if line == "--END--" {
            ended = true;
            continue;
        }
        if let Some(tail) = line.strip_prefix("State:") {
            let tail = tail.trim();
            let (index_text, marker) = match tail.split_once(char::is_whitespace) {
                Some((idx, rest)) => (idx, rest.trim()),
                None => (tail, ""),
            };
            let q: usize = index_text
                .parse()
                .map_err(|_| bad(line_no, format!("state id `{index_text}` is not a number")))?;
            if q >= n {
                return Err(bad(line_no, format!("state {q} out of range (States: {n})")));
            }
            match marker {
                "" => {}
                "{0}" => accepting[q] = true,
                other => {
                    return Err(bad(
                        line_no,
                        format!("unsupported state annotation `{other}`; only `{{0}}` is recognized"),
                    ))
                }
            }
            current = Some(q);
            continue;
        }
        if let Some(tail) = line.strip_prefix('[') {
            let from = current
                .ok_or_else(|| bad(line_no, "edge before the first State: header"))?;
            let (label, succ_text) = tail
                .split_once(']')
                .ok_or_else(|| bad(line_no, "unterminated edge label"))?;
            let sym_index = parse_one_hot(label, sigma.len(), line_no)?;
            let succ: usize = succ_text.trim().parse().map_err(|_| {
                bad(line_no, format!("edge target `{}` is not a state id", succ_text.trim()))
            })?;
            if succ >= n {
                return Err(bad(line_no, format!("edge target {succ} out of range (States: {n})")));
            }
            edges.push((from, sym_index, succ));
            continue;
        }
        return Err(bad(line_no, format!("unrecognized body line `{line}`")));
    }
    if !ended {
        return Err(bad(text.lines().count(), "missing --END--"));
    }

    // Accepting flags are fixed at add_state time, so the automaton is
    // assembled only now that the whole body has been validated.
    let mut builder = BuchiBuilder::new(sigma.clone());
    for &acc in &accepting {
        builder.add_state(acc);
    }
    let symbols: Vec<_> = sigma.symbols().collect();
    for (from, sym_index, succ) in edges {
        builder.add_transition(from, symbols[sym_index], succ);
    }
    Ok(builder.build(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn gfa() -> Buchi {
        let sigma = Alphabet::ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(sigma);
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    #[test]
    fn header_fields() {
        let text = to_hoa(&gfa(), "GF a");
        assert!(text.starts_with("HOA: v1\n"));
        assert!(text.contains("name: \"GF a\""));
        assert!(text.contains("States: 2"));
        assert!(text.contains("Start: 0"));
        assert!(text.contains("AP: 2 \"a\" \"b\""));
        assert!(text.contains("Acceptance: 1 Inf(0)"));
    }

    #[test]
    fn body_structure() {
        let text = to_hoa(&gfa(), "GF a");
        // Accepting state carries the {0} marker.
        assert!(text.contains("State: 1 {0}"));
        assert!(text.contains("State: 0\n"));
        // One-hot labels for both symbols appear.
        assert!(text.contains("[0&!1] 1")); // q0 --a--> qa
        assert!(text.contains("[!0&1] 0")); // q0 --b--> q0
        assert!(text.ends_with("--END--\n"));
    }

    #[test]
    fn transition_count_matches() {
        let m = gfa();
        let text = to_hoa(&m, "m");
        let edges = text.lines().filter(|l| l.starts_with('[')).count();
        assert_eq!(edges, m.num_transitions());
    }

    #[test]
    fn empty_language_automaton_exports() {
        let sigma = Alphabet::ab();
        let text = to_hoa(&Buchi::empty_language(sigma), "empty");
        assert!(text.contains("States: 1"));
        assert!(!text.contains('['), "no transitions expected");
    }

    #[test]
    fn round_trip_reproduces_the_automaton() {
        for m in [
            gfa(),
            Buchi::universal(Alphabet::ab()),
            Buchi::empty_language(Alphabet::ab()),
        ] {
            let back = from_hoa(&to_hoa(&m, "rt")).expect("round-trip parses");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn round_trip_survives_larger_alphabets() {
        let sigma = Alphabet::new(&["req", "ack", "nak"]);
        let m = crate::random::random_buchi(&sigma, 7, crate::random::RandomConfig::default());
        let back = from_hoa(&to_hoa(&m, "abc")).unwrap();
        assert_eq!(back, m);
    }

    /// Every rejection is a typed `InvalidInput` naming the offending
    /// line — the diagnostics daemon clients see.
    #[test]
    fn malformed_text_is_rejected_with_line_diagnostics() {
        let cases: [(&str, &str); 10] = [
            (
                "HOA: v1\nStates: 18446744073709551615\nStart: 0\nAP: 1 \"a\"\nAcceptance: 1 Inf(0)\n--BODY--\n--END--\n",
                "state count",
            ),
            (
                "HOA: v1\nStates: 1\nStart: 0\nAP: 4000000000 \"a\"\nAcceptance: 1 Inf(0)\n--BODY--\nState: 0\n--END--\n",
                "AP count",
            ),
            (
                "HOA: v1\nStates: 1\nStart: 0\nAP: 2 \"a\" \"a\"\nAcceptance: 1 Inf(0)\n--BODY--\nState: 0\n--END--\n",
                "duplicate proposition",
            ),
            ("", "`HOA: v1` preamble"),
            ("HOA: v2\n--BODY--\n--END--\n", "unsupported HOA version"),
            (
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"a\"\nAcceptance: 2 Inf(0)&Inf(1)\n--BODY--\nState: 0\n--END--\n",
                "not state-based B",
            ),
            (
                "HOA: v1\nStates: 1\nStart: 3\nAP: 1 \"a\"\nAcceptance: 1 Inf(0)\n--BODY--\n--END--\n",
                "start state 3 out of range",
            ),
            (
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"a\"\nAcceptance: 1 Inf(0)\n--BODY--\n[0] 0\n--END--\n",
                "edge before the first State:",
            ),
            (
                "HOA: v1\nStates: 1\nStart: 0\nAP: 2 \"a\" \"b\"\nAcceptance: 1 Inf(0)\n--BODY--\nState: 0\n[0&1] 0\n--END--\n",
                "more than one positive",
            ),
            (
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"a\"\nAcceptance: 1 Inf(0)\n--BODY--\nState: 0\n",
                "missing --END--",
            ),
        ];
        for (text, needle) in cases {
            let err = from_hoa(text).expect_err(text);
            let message = err.to_string();
            assert!(
                matches!(err, SlError::InvalidInput(_)),
                "expected InvalidInput for {text:?}, got {err:?}"
            );
            assert!(message.contains(needle), "{message:?} missing {needle:?}");
            assert!(message.contains("line"), "{message:?} names no line");
        }
    }

    #[test]
    fn unknown_headers_are_ignored() {
        let mut text = to_hoa(&gfa(), "GF a");
        text = text.replace(
            "acc-name: Buchi\n",
            "acc-name: Buchi\ntool: \"sl-buchi\"\nowner: tests\n",
        );
        assert_eq!(from_hoa(&text).unwrap(), gfa());
    }
}
