//! Seeded pseudo-random automata for property tests and benchmarks.
//!
//! Deterministic in the seed (SplitMix64), with a density knob so tests
//! can sweep from sparse near-deterministic machines to dense tangles.

use crate::automaton::{Buchi, BuchiBuilder};
use sl_omega::Alphabet;
use sl_support::SplitMix;

/// Configuration for [`random_buchi`].
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of states (must be at least 1).
    pub states: usize,
    /// Expected transitions per (state, symbol) pair, in percent
    /// (100 means on average one successor per pair).
    pub density_percent: u32,
    /// Probability of each state being accepting, in percent.
    pub accepting_percent: u32,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            states: 5,
            density_percent: 80,
            accepting_percent: 30,
        }
    }
}

/// Generates a pseudo-random Büchi automaton. Every state gets at least
/// one outgoing transition so runs do not die trivially; beyond that,
/// transitions are sampled independently at the configured density.
///
/// # Panics
///
/// Panics if `config.states == 0`.
#[must_use]
pub fn random_buchi(alphabet: &Alphabet, seed: u64, config: RandomConfig) -> Buchi {
    assert!(config.states > 0, "need at least one state");
    // The promoted sl_support::SplitMix reproduces the exact streams of
    // the SplitMix struct that used to be private here, so seeded
    // corpora stay bit-identical across the migration.
    let mut rng = SplitMix::new(seed);
    let mut builder = BuchiBuilder::new(alphabet.clone());
    for _ in 0..config.states {
        builder.add_state(rng.percent() < config.accepting_percent);
    }
    for q in 0..config.states {
        let mut has_outgoing = false;
        for sym in alphabet.symbols() {
            if rng.percent() < config.density_percent {
                builder.add_transition(q, sym, rng.below(config.states));
                has_outgoing = true;
            }
        }
        if !has_outgoing {
            let sym_index = rng.below(alphabet.len());
            let sym = alphabet.symbols().nth(sym_index).expect("in range");
            builder.add_transition(q, sym, rng.below(config.states));
        }
    }
    builder.build(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::closure::closure;
    use crate::decompose::decompose;
    use sl_omega::all_lassos;

    #[test]
    fn deterministic_in_seed() {
        let sigma = Alphabet::ab();
        let a = random_buchi(&sigma, 7, RandomConfig::default());
        let b = random_buchi(&sigma, 7, RandomConfig::default());
        assert_eq!(a, b);
        let c = random_buchi(&sigma, 8, RandomConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn every_state_has_outgoing() {
        let sigma = Alphabet::ab();
        for seed in 0..20 {
            let m = random_buchi(
                &sigma,
                seed,
                RandomConfig {
                    states: 6,
                    density_percent: 10,
                    accepting_percent: 50,
                },
            );
            for q in 0..m.num_states() {
                assert!(!m.all_successors(q).is_empty(), "seed {seed} state {q}");
            }
        }
    }

    #[test]
    fn random_decompositions_hold_on_samples() {
        let sigma = Alphabet::ab();
        for seed in 0..25 {
            let m = random_buchi(&sigma, seed, RandomConfig::default());
            let d = decompose(&m);
            assert_eq!(
                d.check_sampled(&m, 2, 3),
                None,
                "decomposition failed for seed {seed}"
            );
        }
    }

    #[test]
    fn closure_extensive_on_random_machines() {
        let sigma = Alphabet::ab();
        for seed in 0..25 {
            let m = random_buchi(&sigma, seed, RandomConfig::default());
            let c = closure(&m);
            for w in all_lassos(&sigma, 2, 2) {
                if m.accepts(&w) {
                    assert!(c.accepts(&w), "seed {seed}, word {w}");
                }
            }
        }
    }

    #[test]
    fn classification_is_total_on_random_machines() {
        let sigma = Alphabet::ab();
        for seed in 0..10 {
            let m = random_buchi(
                &sigma,
                seed,
                RandomConfig {
                    states: 4,
                    ..RandomConfig::default()
                },
            );
            // Should not error within budget for 4-state machines.
            let _ = classify(&m).unwrap();
        }
    }
}
