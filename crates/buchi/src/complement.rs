//! Complementation of Büchi automata.
//!
//! Two constructions:
//!
//! * [`complement_safety`] — for *all-accepting* automata (the shape the
//!   closure operator produces), whose language is "some infinite run
//!   exists". The complement is the co-safety language "all runs die",
//!   obtained by a subset construction with an accepting dead-state sink.
//!   This is cheap (at most `2^n` subsets) and is all the decomposition
//!   theorem needs for the liveness part `B ∪ ¬cl(B)`.
//! * [`complement`] — full Kupferman–Vardi rank-based complementation
//!   for arbitrary NBA, used by the exact safety/liveness deciders and
//!   language-inclusion checks. States are (level ranking, obligation
//!   set) pairs explored lazily; the construction is exponential, so a
//!   state budget guards against blow-ups.

use crate::automaton::{Buchi, BuchiBuilder, StateId};
use sl_support::{fault, Budget, SlError};
use std::collections::HashMap;
use std::fmt;

/// Error for complementation blow-ups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplementBudgetExceeded {
    /// The state budget that was exceeded.
    pub budget: usize,
}

impl fmt::Display for ComplementBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "complement construction exceeded {} states", self.budget)
    }
}

impl std::error::Error for ComplementBudgetExceeded {}

impl From<ComplementBudgetExceeded> for SlError {
    fn from(err: ComplementBudgetExceeded) -> Self {
        SlError::BudgetExceeded {
            phase: "buchi.complement",
            spent: err.budget as u64,
        }
    }
}

/// Complements an all-accepting ("closure-shaped") automaton via the
/// subset construction.
///
/// # Panics
///
/// Panics if some state of `b` is non-accepting; apply
/// [`crate::closure::closure`] first, or use [`complement`].
#[must_use]
pub fn complement_safety(b: &Buchi) -> Buchi {
    assert!(
        (0..b.num_states()).all(|q| b.is_accepting(q)),
        "complement_safety requires an all-accepting automaton"
    );
    let sigma = b.alphabet().clone();
    let mut builder = BuchiBuilder::new(sigma.clone());
    // The accepting sink that swallows words once all runs have died.
    let dead = builder.add_state(true);
    for sym in sigma.symbols() {
        builder.add_transition(dead, sym, dead);
    }
    let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let start: Vec<StateId> = vec![b.initial()];
    let start_id = builder.add_state(false);
    ids.insert(start.clone(), start_id);
    let mut work = vec![start];
    while let Some(subset) = work.pop() {
        let from = ids[&subset];
        for sym in sigma.symbols() {
            let mut next: Vec<StateId> = subset
                .iter()
                .flat_map(|&q| b.successors(q, sym).iter().copied())
                .collect();
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                builder.add_transition(from, sym, dead);
            } else {
                let to = *ids.entry(next.clone()).or_insert_with(|| {
                    work.push(next);
                    builder.add_state(false)
                });
                builder.add_transition(from, sym, to);
            }
        }
    }
    builder.build(start_id)
}

/// A ranking-construction state: ranks per original state (`-1` =
/// absent) plus the obligation set as a bitmask.
type RankState = (Vec<i8>, u64);

/// Default state budget for [`complement`].
pub const DEFAULT_COMPLEMENT_BUDGET: usize = 1 << 17;

/// Complements an arbitrary Büchi automaton (Kupferman–Vardi rank-based
/// construction) with the default state budget.
///
/// # Errors
///
/// Returns [`ComplementBudgetExceeded`] if the construction grows past
/// [`DEFAULT_COMPLEMENT_BUDGET`] states.
pub fn complement(b: &Buchi) -> Result<Buchi, ComplementBudgetExceeded> {
    complement_with_budget(b, DEFAULT_COMPLEMENT_BUDGET)
}

/// Complements with an explicit state budget.
///
/// # Errors
///
/// Returns [`ComplementBudgetExceeded`] if more than `budget` states are
/// created.
///
/// # Panics
///
/// Panics if the automaton has more than 64 states (the obligation set
/// is a `u64` bitmask).
pub fn complement_with_budget(b: &Buchi, budget: usize) -> Result<Buchi, ComplementBudgetExceeded> {
    complement_rank_core(b, budget, &mut |_| Ok(()))
        .map_err(|_| ComplementBudgetExceeded { budget })
}

/// Complements under a cooperative [`Budget`]: every created state
/// charges the budget's meter (phase `"buchi.complement"`), so a step
/// limit, wall-clock deadline, or cancellation flag aborts the
/// construction mid-flight with a typed error instead of running to the
/// state cap. This entry also consults the process-wide fault plan
/// ([`fault::global`], site `"buchi.complement"`), making it the drill
/// point for error-propagation fault injection.
///
/// # Errors
///
/// * [`SlError::BudgetExceeded`] / [`SlError::Cancelled`] from the
///   budget (or from hitting [`DEFAULT_COMPLEMENT_BUDGET`] states);
/// * [`SlError::FaultInjected`] when the global fault plan fires;
/// * [`SlError::InvalidInput`] if the automaton has more than 64 states.
pub fn complement_budgeted(b: &Buchi, budget: &Budget) -> Result<Buchi, SlError> {
    if b.num_states() > 64 {
        return Err(SlError::InvalidInput(format!(
            "rank-based complement limited to 64 states, got {}",
            b.num_states()
        )));
    }
    let mut meter = budget.meter("buchi.complement");
    let plan = fault::global();
    complement_rank_core(b, DEFAULT_COMPLEMENT_BUDGET, &mut |created| {
        meter.charge(1)?;
        plan.inject_error("buchi.complement", created as u64)?;
        Ok(())
    })
}

/// The shared Kupferman–Vardi construction. `on_state(k)` runs before
/// the `k`-th state is admitted; any error it returns aborts the
/// construction (that is how budgets and fault drills hook in).
fn complement_rank_core(
    b: &Buchi,
    state_cap: usize,
    on_state: &mut dyn FnMut(usize) -> Result<(), SlError>,
) -> Result<Buchi, SlError> {
    let n = b.num_states();
    assert!(n <= 64, "rank-based complement limited to 64 states");
    // Fast path: all-accepting automata complement by subset construction.
    if (0..n).all(|q| b.is_accepting(q)) {
        return Ok(complement_safety(b));
    }
    // Kupferman–Vardi: ranks of rejecting run DAGs are bounded by
    // 2(n - |F|), not just 2n — a substantial saving since the rank
    // alphabet enters the state space exponentially.
    let accepting_count = (0..n).filter(|&q| b.is_accepting(q)).count();
    let max_rank = (2 * (n - accepting_count)) as i8;
    let sigma = b.alphabet().clone();
    let mut builder = BuchiBuilder::new(sigma.clone());
    let mut ids: HashMap<RankState, StateId> = HashMap::new();

    let mut initial_rank = vec![-1i8; n];
    // Accepting states must carry even ranks; max_rank = 2n is even, so
    // the initial rank is legal regardless of the initial state's flag.
    initial_rank[b.initial()] = max_rank;
    let start: RankState = (initial_rank, 0);
    on_state(0)?;
    let start_id = builder.add_state(true); // O = ∅ is accepting
    ids.insert(start.clone(), start_id);
    let mut work = vec![start];

    while let Some((ranks, obligations)) = work.pop() {
        let from = ids[&(ranks.clone(), obligations)];
        let domain: Vec<usize> = (0..n).filter(|&q| ranks[q] >= 0).collect();
        for sym in sigma.symbols() {
            // Upper bound for each successor's rank: min over predecessors.
            let mut bound = vec![i8::MIN; n];
            let mut present = vec![false; n];
            for &q in &domain {
                for &succ in b.successors(q, sym) {
                    if !present[succ] {
                        present[succ] = true;
                        bound[succ] = ranks[q];
                    } else {
                        bound[succ] = bound[succ].min(ranks[q]);
                    }
                }
            }
            let successors: Vec<usize> = (0..n).filter(|&q| present[q]).collect();
            // Enumerate all rankings f' with f'(q') <= bound[q'] and
            // accepting states even-ranked.
            let mut assignments: Vec<Vec<i8>> = vec![vec![-1i8; n]];
            for &q in &successors {
                let mut extended = Vec::new();
                for partial in &assignments {
                    for r in 0..=bound[q] {
                        if b.is_accepting(q) && r % 2 == 1 {
                            continue;
                        }
                        let mut next = partial.clone();
                        next[q] = r;
                        extended.push(next);
                    }
                }
                assignments = extended;
                if assignments.is_empty() {
                    break;
                }
            }
            for ranks_next in assignments {
                // Obligation set: trace even-ranked states; reset when
                // empty.
                let source: Vec<usize> = if obligations != 0 {
                    (0..n).filter(|&q| obligations & (1 << q) != 0).collect()
                } else {
                    domain.clone()
                };
                let mut next_obl: u64 = 0;
                for &q in &source {
                    for &succ in b.successors(q, sym) {
                        if ranks_next[succ] >= 0 && ranks_next[succ] % 2 == 0 {
                            next_obl |= 1 << succ;
                        }
                    }
                }
                let key: RankState = (ranks_next, next_obl);
                let to = match ids.get(&key) {
                    Some(&id) => id,
                    None => {
                        if ids.len() >= state_cap {
                            return Err(SlError::BudgetExceeded {
                                phase: "buchi.complement",
                                spent: state_cap as u64,
                            });
                        }
                        on_state(ids.len())?;
                        let id = builder.add_state(next_obl == 0);
                        ids.insert(key.clone(), id);
                        work.push(key);
                        id
                    }
                };
                builder.add_transition(from, sym, to);
            }
        }
    }
    Ok(builder.build(start_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use crate::closure::closure;
    use sl_omega::{all_lassos, Alphabet};

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    fn first_a_safety(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        let q1 = builder.add_state(true);
        builder.add_transition(q0, a, q1);
        builder.add_transition(q1, a, q1);
        builder.add_transition(q1, b, q1);
        builder.build(q0)
    }

    #[test]
    fn safety_complement_of_first_a() {
        let s = sigma();
        let m = first_a_safety(&s);
        let c = complement_safety(&m);
        for w in all_lassos(&s, 2, 3) {
            assert_eq!(c.accepts(&w), !m.accepts(&w), "{w}");
        }
    }

    #[test]
    fn safety_complement_of_universal_is_empty() {
        let s = sigma();
        let c = complement_safety(&Buchi::universal(s.clone()));
        for w in all_lassos(&s, 2, 3) {
            assert!(!c.accepts(&w));
        }
        assert!(crate::empty::is_empty(&c));
    }

    #[test]
    fn rank_complement_of_inf_a_is_fin_a() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let m = inf_a(&s);
        let c = complement(&m).unwrap();
        for w in all_lassos(&s, 3, 3) {
            assert_eq!(c.accepts(&w), w.finitely_often(a), "{w}");
        }
    }

    #[test]
    fn rank_complement_roundtrip_on_samples() {
        let s = sigma();
        let m = inf_a(&s);
        let cc = complement(&complement(&m).unwrap());
        // The double complement can be large; fall back to sampling only
        // if it fits the budget.
        if let Ok(cc) = cc {
            for w in all_lassos(&s, 2, 2) {
                assert_eq!(cc.accepts(&w), m.accepts(&w), "{w}");
            }
        }
    }

    #[test]
    fn rank_complement_of_empty_is_universal() {
        let s = sigma();
        let c = complement(&Buchi::empty_language(s.clone())).unwrap();
        for w in all_lassos(&s, 2, 2) {
            assert!(c.accepts(&w), "{w}");
        }
    }

    #[test]
    fn rank_complement_agrees_with_safety_complement() {
        let s = sigma();
        let m = closure(&inf_a(&s)); // universal, all-accepting
        let c1 = complement_safety(&m);
        let c2 = complement(&m).unwrap();
        for w in all_lassos(&s, 2, 3) {
            assert_eq!(c1.accepts(&w), c2.accepts(&w), "{w}");
        }
    }

    #[test]
    fn complement_partitions_language_on_random_like_machine() {
        // A slightly gnarlier machine: accepts words where 'a' occurs at
        // some position followed immediately by 'b' infinitely often
        // (GF (a & X b)).
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(false); // just saw a
        let qf = builder.add_state(true); // saw a then b
        builder.add_transition(q0, a, qa);
        builder.add_transition(q0, b, q0);
        builder.add_transition(qa, a, qa);
        builder.add_transition(qa, b, qf);
        builder.add_transition(qf, a, qa);
        builder.add_transition(qf, b, q0);
        let m = builder.build(q0);
        let c = complement(&m).unwrap();
        for w in all_lassos(&s, 2, 4) {
            assert_ne!(m.accepts(&w), c.accepts(&w), "{w}");
        }
    }

    #[test]
    fn budget_is_enforced() {
        let s = sigma();
        let m = inf_a(&s);
        let err = complement_with_budget(&m, 1).unwrap_err();
        assert_eq!(err.budget, 1);
        assert!(err.to_string().contains("exceeded 1 states"));
    }

    #[test]
    #[should_panic(expected = "requires an all-accepting automaton")]
    fn safety_complement_rejects_general_automata() {
        let s = sigma();
        let _ = complement_safety(&inf_a(&s));
    }

    #[test]
    fn budgeted_complement_matches_unbudgeted() {
        let s = sigma();
        let m = inf_a(&s);
        match complement_budgeted(&m, &Budget::unlimited()) {
            Ok(c) => {
                let reference = complement(&m).unwrap();
                for w in all_lassos(&s, 3, 3) {
                    assert_eq!(c.accepts(&w), reference.accepts(&w), "{w}");
                }
            }
            // Under a process-wide fault drill (SL_FAULT_RATE > 0) the
            // injection site may fire; degrading with a typed error is
            // the contract, not a failure.
            Err(err) => assert!(err.root().is_fault_injected(), "{err}"),
        }
    }

    #[test]
    fn budgeted_complement_stops_on_step_limit() {
        let s = sigma();
        let m = inf_a(&s);
        let err = complement_budgeted(&m, &Budget::unlimited().with_steps(2)).unwrap_err();
        assert!(
            err.root().is_budget_exceeded() || err.root().is_fault_injected(),
            "{err}"
        );
        if err.root().is_budget_exceeded() {
            assert_eq!(err.spent(), Some(3), "fails on the charge after the limit");
        }
    }

    #[test]
    fn budgeted_complement_rejects_oversized_automata() {
        let s = sigma();
        let a = s.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let states: Vec<_> = (0..65).map(|i| builder.add_state(i == 0)).collect();
        for pair in states.windows(2) {
            builder.add_transition(pair[0], a, pair[1]);
        }
        let big = builder.build(states[0]);
        let err = complement_budgeted(&big, &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, SlError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn legacy_error_converts_into_sl_error() {
        let err: SlError = ComplementBudgetExceeded { budget: 9 }.into();
        assert!(err.is_budget_exceeded());
        assert_eq!(err.spent(), Some(9));
    }
}
