//! Language inclusion, equivalence, and universality.
//!
//! All three reduce to emptiness through complementation:
//! `L(A) ⊆ L(B)` iff `L(A) ∩ ¬L(B) = ∅`. When `B` is all-accepting the
//! cheap subset-construction complement is used automatically.

use crate::automaton::Buchi;
use crate::complement::{complement, ComplementBudgetExceeded};
use crate::empty::{find_accepted_word, is_empty};
use crate::ops::intersection;
use sl_omega::LassoWord;

/// The outcome of an inclusion check: either inclusion holds, or a
/// counterexample word in `L(A) \ L(B)` is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inclusion {
    /// `L(A) ⊆ L(B)`.
    Holds,
    /// A word accepted by `A` but not by `B`.
    CounterExample(LassoWord),
}

impl Inclusion {
    /// Whether inclusion holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Inclusion::Holds)
    }
}

/// Decides `L(a) ⊆ L(b)`.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`] if complementing `b` blows
/// up. When a complement of `b` is available by other means — e.g. `b`
/// came from an LTL formula, whose negation translates directly — use
/// [`included_with_complement`] instead.
pub fn included(a: &Buchi, b: &Buchi) -> Result<Inclusion, ComplementBudgetExceeded> {
    let not_b = complement(b)?;
    Ok(included_with_complement(a, &not_b))
}

/// Decides `L(a) ⊆ L(b)` given an automaton `not_b` for the complement
/// of `b`: inclusion holds iff `L(a) ∩ L(not_b) = ∅`. This sidesteps
/// the exponential complementation when the caller has a cheap
/// complement (negated formula, subset-construction complement of a
/// safety automaton, ...).
#[must_use]
pub fn included_with_complement(a: &Buchi, not_b: &Buchi) -> Inclusion {
    match find_accepted_word(&intersection(a, not_b)) {
        None => Inclusion::Holds,
        Some(w) => Inclusion::CounterExample(w),
    }
}

/// Decides `L(a) = L(b)`, returning a word on which they differ if not.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn equivalent(a: &Buchi, b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    if let Inclusion::CounterExample(w) = included(a, b)? {
        return Ok(Err(w));
    }
    if let Inclusion::CounterExample(w) = included(b, a)? {
        return Ok(Err(w));
    }
    Ok(Ok(()))
}

/// Decides `L(b) = Σ^ω`, returning a rejected word if not.
///
/// # Errors
///
/// Propagates [`ComplementBudgetExceeded`].
pub fn universal(b: &Buchi) -> Result<Result<(), LassoWord>, ComplementBudgetExceeded> {
    let not_b = complement(b)?;
    Ok(match find_accepted_word(&not_b) {
        None => Ok(()),
        Some(w) => Err(w),
    })
}

/// Convenience: emptiness re-exported next to its siblings.
#[must_use]
pub fn empty(b: &Buchi) -> bool {
    is_empty(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::BuchiBuilder;
    use sl_omega::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::ab()
    }

    fn inf_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(false);
        let qa = builder.add_state(true);
        builder.add_transition(q0, b, q0);
        builder.add_transition(q0, a, qa);
        builder.add_transition(qa, b, q0);
        builder.add_transition(qa, a, qa);
        builder.build(q0)
    }

    /// Accepts a^ω only.
    fn only_a(s: &Alphabet) -> Buchi {
        let a = s.symbol("a").unwrap();
        let mut builder = BuchiBuilder::new(s.clone());
        let q0 = builder.add_state(true);
        builder.add_transition(q0, a, q0);
        builder.build(q0)
    }

    #[test]
    fn inclusion_holds_for_subset() {
        let s = sigma();
        // a^ω ⊆ GF a.
        let inc = included(&only_a(&s), &inf_a(&s)).unwrap();
        assert!(inc.holds());
    }

    #[test]
    fn inclusion_counterexample_is_genuine() {
        let s = sigma();
        // GF a ⊄ {a^ω}: counterexample must be accepted by GF a, not a^ω.
        let inc = included(&inf_a(&s), &only_a(&s)).unwrap();
        match inc {
            Inclusion::CounterExample(w) => {
                assert!(inf_a(&s).accepts(&w));
                assert!(!only_a(&s).accepts(&w));
            }
            Inclusion::Holds => panic!("inclusion should fail"),
        }
    }

    #[test]
    fn equivalence_of_identical_machines() {
        let s = sigma();
        assert!(equivalent(&inf_a(&s), &inf_a(&s)).unwrap().is_ok());
    }

    #[test]
    fn equivalence_failure_produces_separator() {
        let s = sigma();
        let w = equivalent(&inf_a(&s), &Buchi::universal(s.clone()))
            .unwrap()
            .unwrap_err();
        // The separator is accepted by exactly one of the two.
        assert_ne!(
            inf_a(&s).accepts(&w),
            Buchi::universal(s.clone()).accepts(&w)
        );
    }

    #[test]
    fn universality() {
        let s = sigma();
        assert!(universal(&Buchi::universal(s.clone())).unwrap().is_ok());
        let rejected = universal(&inf_a(&s)).unwrap().unwrap_err();
        assert!(!inf_a(&s).accepts(&rejected));
    }

    #[test]
    fn empty_helper() {
        let s = sigma();
        assert!(empty(&Buchi::empty_language(s.clone())));
        assert!(!empty(&Buchi::universal(s)));
    }
}
